#!/usr/bin/env python3
"""The paper's motivating workload: CRYSTALS-Kyber matrix expansion.

Kyber generates its public k x k matrix A from one seed with k^2
independent SHAKE-128 calls — exactly the many-parallel-Keccak-states
pattern the paper's vector register file accelerates.  This example:

1. expands the Kyber1024 matrix sequentially and with batched parallel
   Keccak states (bit-identical results);
2. samples the secret/error vectors with the CBD sampler;
3. projects the whole expansion workload onto each of the paper's
   architectures using the simulator's measured permutation latencies.

Run:  python examples/kyber_matrix_expansion.py
"""

import time

from repro.arch import ArchConfig
from repro.eval.measure import measure_config, measure_scalar_baseline
from repro.pqc import (
    ParallelShake128,
    estimate_workload_cycles,
    generate_matrix_parallel,
    generate_matrix_sequential,
    sample_secret,
)

SEED = bytes.fromhex(
    "000102030405060708090a0b0c0d0e0f"
    "101112131415161718191a1b1c1d1e1f"
)


def main() -> None:
    k = 4  # Kyber1024

    start = time.perf_counter()
    sequential = generate_matrix_sequential(SEED, k)
    t_seq = time.perf_counter() - start

    start = time.perf_counter()
    parallel = generate_matrix_parallel(SEED, k)
    t_par = time.perf_counter() - start

    assert sequential == parallel
    print(f"Kyber1024 matrix A: {k}x{k} entries of 256 coefficients")
    print(f"  sequential expansion: {1000 * t_seq:7.2f} ms")
    print(f"  batched expansion:    {1000 * t_par:7.2f} ms "
          f"({t_seq / t_par:.1f}x, bit-identical)")

    secret = sample_secret(SEED, k, eta=2)
    error = sample_secret(SEED, k, eta=2, nonce_base=k)
    print(f"  secret vector: {len(secret)} polynomials, "
          f"first coefficients {secret[0][:6]}")
    print(f"  error vector:  {len(error)} polynomials, "
          f"first coefficients {error[0][:6]}")

    # How many Keccak permutations does the expansion need?
    xof = ParallelShake128(
        [SEED + bytes([j, i]) for i in range(k) for j in range(k)]
    )
    for _ in range(3):  # 3 blocks cover Parse with high probability
        xof.read_block()
    permutations = k * k * xof.permutation_count // xof.permutation_count \
        * xof.permutation_count
    permutations = k * k * 3
    print(f"\nworkload: ~{permutations} Keccak-f[1600] permutations")

    print("\nprojection onto the paper's architectures "
          "(batches x permutation latency):")
    baseline = measure_scalar_baseline()
    rows = [("Ibex core, C-code (no vector unit)",
             baseline.permutation_cycles, 1)]
    for elen in (64, 32):
        for elenum in (5, 30):
            config = ArchConfig(elen, elenum, 8, elenum // 5)
            m = measure_config(config)
            rows.append((config.label, m.permutation_cycles, m.num_states))
    scalar_total = None
    for label, latency, states in rows:
        est = estimate_workload_cycles(permutations, latency, states, label)
        if scalar_total is None:
            scalar_total = est.total_cycles
        speedup = scalar_total / est.total_cycles
        print(f"  {label:45s} {est.batches:3d} batches  "
              f"{est.total_cycles:9d} cycles  ({speedup:6.1f}x)")


if __name__ == "__main__":
    main()
