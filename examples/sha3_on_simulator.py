#!/usr/bin/env python3
"""End-to-end SHA-3 on the simulated processor.

Every Keccak-f[1600] permutation of the sponge runs as machine code on the
SIMD processor simulator — vector loads of the state image through the
VecLSU, the full Algorithm 2/3 instruction stream, vector stores back —
and the resulting digests still match CPython's hashlib bit for bit.

Also prints the architecture comparison for hashing a realistic message.

Run:  python examples/sha3_on_simulator.py
"""

import hashlib

from repro.programs import SimulatedPermutation, simulated_sha3_256


def main() -> None:
    message = (b"In the sponge construction, arbitrary-length input is "
               b"absorbed into the 1600-bit state and output of arbitrary "
               b"length is squeezed out of it." * 3)
    reference = hashlib.sha3_256(message).digest()
    print(f"message: {len(message)} bytes "
          f"({-(-len(message) // 136)} SHA3-256 rate blocks)")
    print(f"hashlib digest:   {reference.hex()}")
    print()

    for elen, lmul, label in (
        (64, 1, "64-bit, LMUL=1 (Algorithm 2)"),
        (64, 8, "64-bit, LMUL=8 (Algorithm 3)"),
        (32, 8, "32-bit, LMUL=8 (hi/lo split)"),
    ):
        perm = SimulatedPermutation(elen=elen, lmul=lmul, elenum=5)
        digest = simulated_sha3_256(message, perm)
        status = "OK" if digest == reference else "MISMATCH"
        print(f"{label}")
        print(f"  digest: {digest.hex()}  [{status}]")
        print(f"  permutations executed on the simulator: "
              f"{perm.call_count}")
        print(f"  total cycles (incl. state load/store):  "
              f"{perm.total_cycles}")
        print(f"  cycles per message byte:                "
              f"{perm.total_cycles / len(message):.1f}")
        print()
        assert digest == reference


if __name__ == "__main__":
    main()
