#!/usr/bin/env python3
"""Batch hashing: six distinct messages, one instruction stream.

The multi-state register file's real use case: hash N independent
messages at once.  Each message owns one of the SN Keccak states; a single
program run permutes them all, so six messages cost the same cycle count
as one (throughput x6 at equal latency — the scaling behind Table 7/8's
EleNum=30 rows).

Run:  python examples/batch_hashing.py
"""

import hashlib

from repro.programs.batch_driver import BatchPermutation, batch_sha3_256


def main() -> None:
    messages = [
        b"message for device 0",
        b"a considerably longer message for device 1 " * 8,
        b"",
        b"device 3: " + bytes(range(200)),
        b"short",
        b"device 5 " * 30,
    ]

    # One message at a time (EleNum=5: one state per permutation).
    solo = BatchPermutation(elen=64, lmul=8, elenum=5)
    for message in messages:
        digest = batch_sha3_256([message], solo)[0]
        assert digest == hashlib.sha3_256(message).digest()
    print(f"one-at-a-time (EleNum=5):   {solo.call_count:3d} program runs, "
          f"{solo.total_cycles:7d} cycles")

    # All six together (EleNum=30: six states per permutation).
    batch = BatchPermutation(elen=64, lmul=8, elenum=30)
    digests = batch_sha3_256(messages, batch)
    for message, digest in zip(messages, digests):
        assert digest == hashlib.sha3_256(message).digest()
    print(f"batched 6-wide (EleNum=30): {batch.call_count:3d} program runs, "
          f"{batch.total_cycles:7d} cycles")
    print(f"cycle reduction:            "
          f"{solo.total_cycles / batch.total_cycles:.2f}x")
    print()
    print("digests (all verified against hashlib):")
    for message, digest in zip(messages, digests):
        preview = (message[:24] + b"...") if len(message) > 24 else message
        print(f"  {digest.hex()[:32]}...  <- {preview!r}")


if __name__ == "__main__":
    main()
