#!/usr/bin/env python3
"""A tour of the ten custom vector instructions (paper Section 3.3).

Shows each instruction's encoding, assembles and disassembles it, executes
it on the vector unit with small traceable values, and renders the paper's
semantics figures (Figs. 7 and 8).

Run:  python examples/custom_instruction_tour.py
"""

from repro.assembler import assemble, disassemble_word
from repro.eval.figures import render_fig7, render_fig8
from repro.isa import ISA, decode_operands
from repro.isa.custom import CUSTOM_SPECS
from repro.isa.vector import encode_vtype
from repro.sim import DataMemory, VectorUnit


def show_encodings() -> None:
    print("The ten custom vector extensions (custom-1 opcode space):")
    print(f"  {'mnemonic':16s} {'funct6':>7s} {'format':8s} description")
    for spec in CUSTOM_SPECS:
        funct6 = spec.match >> 26
        print(f"  {spec.mnemonic:16s} {funct6:#07b} {spec.fmt:8s} "
              f"{spec.description[:58]}")
    print()


def run_one(unit, source, scalars=None):
    word = assemble(source).words[0]
    spec = ISA.find(word)
    ops = decode_operands(word, spec)
    values = scalars or {}
    cycles = unit.execute(spec, ops, lambda n: values.get(n, 0))
    print(f"  {source:34s} -> {disassemble_word(word):40s} [{cycles} cc]")
    return cycles


def demo_slides() -> None:
    print("vslidedownm / vslideupm — modulo-five slides (Fig. 7):")
    unit = VectorUnit(10 * 64, DataMemory(64))
    unit.configure(10, encode_vtype(64, 1))  # two states
    unit.regfile.write_elements(5, 64, [100 + x for x in range(5)]
                                + [200 + x for x in range(5)])
    run_one(unit, "vslidedownm.vi v7, v5, 1")
    run_one(unit, "vslideupm.vi v6, v5, 1")
    print(f"  source:     {unit.regfile.read_elements(5, 64)}")
    print(f"  slide down: {unit.regfile.read_elements(7, 64)}")
    print(f"  slide up:   {unit.regfile.read_elements(6, 64)}")
    print()


def demo_rotations() -> None:
    print("vrotup / v64rho — 64-bit rotations:")
    unit = VectorUnit(5 * 64, DataMemory(64))
    unit.configure(5, encode_vtype(64, 1))
    unit.regfile.write_elements(7, 64, [1, 2, 3, 1 << 63, 0])
    run_one(unit, "vrotup.vi v7, v7, 1")
    print(f"  rotated by 1: {[hex(v) for v in unit.regfile.read_elements(7, 64)]}")
    unit.regfile.write_elements(1, 64, [1] * 5)
    run_one(unit, "v64rho.vi v2, v1, 2")
    print(f"  rho row 2 offsets applied to 1: "
          f"{[hex(v) for v in unit.regfile.read_elements(2, 64)]}")
    print()


def demo_pair_rotations() -> None:
    print("v32lrotup / v32hrotup — 32-bit pair rotation (hi||lo):")
    unit = VectorUnit(5 * 32, DataMemory(64))
    unit.configure(5, encode_vtype(32, 1))
    unit.regfile.write_elements(23, 32, [0x80000000] * 5)  # hi halves
    unit.regfile.write_elements(7, 32, [0x00000001] * 5)   # lo halves
    run_one(unit, "v32lrotup.vv v8, v23, v7")
    run_one(unit, "v32hrotup.vv v9, v23, v7")
    print(f"  lo out: {[hex(v) for v in unit.regfile.read_elements(8, 32)][:2]}...")
    print(f"  hi out: {[hex(v) for v in unit.regfile.read_elements(9, 32)][:2]}...")
    print()


def demo_pi_and_iota() -> None:
    print("vpi — column-mode lane scramble (Fig. 8):")
    unit = VectorUnit(5 * 64, DataMemory(64))
    unit.configure(5, encode_vtype(64, 1))
    unit.regfile.write_elements(1, 64, [100, 101, 102, 103, 104])
    run_one(unit, "vpi.vi v5, v1, 0")
    for reg in range(5, 10):
        print(f"  v{reg}: {unit.regfile.read_elements(reg, 64)}")
    print()
    print("viota — round-constant XOR into lane (0, y):")
    unit.regfile.write_elements(1, 64, [0] * 5)
    run_one(unit, "viota.vx v2, v1, s3", scalars={19: 0})
    print(f"  v2: {[hex(v) for v in unit.regfile.read_elements(2, 64)]}")
    print()


def main() -> None:
    show_encodings()
    demo_slides()
    demo_rotations()
    demo_pair_rotations()
    demo_pi_and_iota()
    print(render_fig7(num_states=3, offset=1))
    print()
    print(render_fig8(num_states=1))


if __name__ == "__main__":
    main()
