#!/usr/bin/env python3
"""Regenerate the paper's full evaluation: Tables 7 and 8 and the
Section 4.2 headline speedup factors, paper vs measured.

Run:  python examples/reproduce_tables.py
"""

from repro.eval import (
    generate_report,
    generate_table7,
    generate_table8,
    render_report,
    render_table,
)


def main() -> None:
    print(render_table(
        generate_table7(),
        "Table 7 — 64-bit architectures vs the 64-bit reference",
    ))
    print()
    print(render_table(
        generate_table8(),
        "Table 8 — 32-bit architectures vs five 32-bit references",
    ))
    print()
    print(render_report(generate_report()))
    print()
    print(render_report(generate_report(use_measured_baseline=True)))
    print()
    print("note: the second report uses our own simulated scalar baseline")
    print("instead of the paper's published Ibex C-code number.")


if __name__ == "__main__":
    main()
