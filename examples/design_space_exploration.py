#!/usr/bin/env python3
"""Design-space exploration: everything the paper's evaluation implies.

Sweeps the full (ELEN, LMUL, EleNum) grid plus the future-work fused
variant, prints the Pareto frontier, decomposes each variant's round into
step mappings, projects absolute throughput at the paper's 100 MHz clock,
and quantifies the §3.2 bit-interleaving trade-off.

Run:  python examples/design_space_exploration.py
"""

from repro.arch import ArchConfig, at_frequency
from repro.eval import (
    measure_config,
    measure_instruction_mix,
    pareto_frontier,
    render_interleave_analysis,
    render_sweep,
    sweep_design_space,
)
from repro.keccak import KeccakState
from repro.programs import keccak64_fused, keccak64_lmul8


def main() -> None:
    points = sweep_design_space()
    print(render_sweep(points))
    print()
    print("Pareto frontier (throughput vs area):")
    for p in pareto_frontier(points):
        print(f"  {p.label:48s} {p.throughput_e3:9.2f} tput e3  "
              f"{p.area_slices:8.0f} slices")
    print()

    state = [KeccakState(list(range(25)))]
    for builder in (keccak64_lmul8, keccak64_fused):
        print(measure_instruction_mix(builder.build(5), state).render())
        print()

    print("Absolute throughput at the paper's 100 MHz clock:")
    for elen, lmul, elenum in ((64, 8, 30), (32, 8, 30)):
        config = ArchConfig(elen, elenum, lmul, elenum // 5)
        m = measure_config(config)
        perf = at_frequency(config.label, m.permutation_cycles,
                            m.num_states)
        print(f"  {config.label:48s} "
              f"{perf.throughput_mbit_per_second:7.1f} Mbit/s   "
              f"{perf.hash_rate_per_second() / 1e6:5.1f} MB/s SHA3-256")
    print()
    print(render_interleave_analysis())


if __name__ == "__main__":
    main()
