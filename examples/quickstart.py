#!/usr/bin/env python3
"""Quickstart: hash with the reference SHA-3, then run the paper's
vectorized Keccak program on the SIMD processor simulator.

Run:  python examples/quickstart.py
"""

import hashlib

import repro
from repro import SHA3_256, SHAKE128, KeccakState, keccak_f1600, sha3_256
from repro.programs import build_program


def main() -> None:
    # 1. The SHA-3 reference library (checked against hashlib).
    message = b"Maximizing the Potential of Custom RISC-V Vector Extensions"
    digest = sha3_256(message)
    print(f"SHA3-256(message)   = {digest.hex()}")
    assert digest == hashlib.sha3_256(message).digest()

    # Streaming API, hashlib-style.
    hasher = SHA3_256()
    hasher.update(message[:20])
    hasher.update(message[20:])
    assert hasher.digest() == digest

    # Extendable output.
    xof = SHAKE128(b"seed")
    print(f"SHAKE128(seed, 32)  = {xof.digest(32).hex()}")

    # 2. The raw permutation on a state you control.
    state = KeccakState()
    state.xor_bytes(b"hello keccak")
    permuted = keccak_f1600(state)
    print(f"permuted lane (0,0) = {permuted[0, 0]:#018x}")

    # 3. The same permutation, executed instruction by instruction on the
    #    simulated SIMD processor with the paper's 64-bit LMUL=8 program
    #    (Algorithm 3) — bit-exact, and cycle-counted.
    program = build_program(elen=64, lmul=8, elenum=5)
    result = repro.run(program, [state], trace=True)
    assert result.states[0] == permuted
    print(f"simulator agrees    = True")
    print(f"cycles/round        = {result.cycles_per_round:.0f}  "
          f"(paper: 75)")
    print(f"permutation cycles  = {result.permutation_cycles}  "
          f"(paper: 1892)")
    print(f"cycles/byte         = {result.cycles_per_byte:.1f}  "
          f"(paper: 9.5)")

    # 4. Six states in parallel: same latency, 6x throughput.
    states = [KeccakState([i * 25 + j for j in range(25)])
              for i in range(6)]
    batch = repro.run(build_program(64, 8, 30), states, trace=True)
    assert batch.permutation_cycles == result.permutation_cycles
    print(f"6-state latency     = {batch.permutation_cycles} "
          "(unchanged — throughput scales 6x)")
    print(f"throughput x10^3    = {batch.throughput_kbits_per_cycle:.0f} "
          f"(vs {result.throughput_kbits_per_cycle:.0f} single-state)")


if __name__ == "__main__":
    main()
