"""Benchmark harness for Figs. 5/6 (state layouts) and Figs. 7/8
(custom-instruction semantics): regenerates the structural figures and
times the layout conversions that the vector load/store path performs.
"""

import pytest

from repro.eval.figures import render_fig5, render_fig6, render_fig7, render_fig8
from repro.programs import layout
from repro.sim import VectorRegfile

from conftest import make_states


@pytest.fixture(scope="module", autouse=True)
def print_figures():
    yield
    print()
    print(render_fig5(16, 3))
    print()
    print(render_fig6(5, 1))
    print()
    print(render_fig7(num_states=3, offset=1))
    print()
    print(render_fig8(num_states=1))


def test_fig5_and_fig6_round_trip(states6):
    image64 = layout.memory_image64(states6, 30)
    assert layout.parse_memory_image64(image64, 30, 6) == states6
    image32 = layout.memory_image32(states6, 30)
    assert layout.parse_memory_image32(image32, 30, 6) == states6


def test_bench_memory_image64(benchmark, states6):
    benchmark(lambda: layout.memory_image64(states6, 30))


def test_bench_memory_image32(benchmark, states6):
    benchmark(lambda: layout.memory_image32(states6, 30))


def test_bench_regfile_load64(benchmark, states6):
    regfile = VectorRegfile(30 * 64)

    def run():
        layout.load_states_regfile64(regfile, states6)
        return layout.read_states_regfile64(regfile, 6)

    assert benchmark(run) == states6


def test_bench_regfile_load32(benchmark, states6):
    regfile = VectorRegfile(30 * 32)

    def run():
        layout.load_states_regfile32(regfile, states6)
        return layout.read_states_regfile32(regfile, 6)

    assert benchmark(run) == states6


def test_bench_figure_rendering(benchmark):
    def render_all():
        return (render_fig5(30, 6), render_fig6(30, 6),
                render_fig7(6, 2), render_fig8(6))

    outputs = benchmark(render_all)
    assert all(outputs)
