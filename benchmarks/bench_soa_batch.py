"""SoA mega-batch speedup guard: >= 2x warm throughput over compiled.

The structure-of-arrays engine exists to amortize Python interpreter
overhead across a whole batch: one generated kernel call advances up to
``soa_width()`` Keccak states at once as packed giant-int columns,
instead of one compiled-kernel call per state group.  This module pins
that claim on the batch-hashing acceptance workload (600 ragged-length
messages through ``run_many``):

* digest equivalence first — the SoA digests must match the per-call
  compiled engine and hashlib bit-for-bit (deterministic, cannot flake);
* warm-cache wall-clock for the whole batch must be at least
  ``SPEEDUP_FLOOR``x faster than the compiled engine, interleaved
  best-of-N so frequency drift hits both legs;
* both legs are recorded to ``BENCH_*soa*.json`` via ``--bench-json``
  so the perf trajectory across PRs is diffable.
"""

import hashlib
import time

import pytest

from repro.programs.batch_driver import run_many
from repro.sim import codegen

#: The tentpole's acceptance floor: SoA must halve the compiled
#: engine's warm batch wall-clock (measured: ~3x, so 2x has headroom).
SPEEDUP_FLOOR = 2.0

#: 600 ragged-length messages — the batch-hashing acceptance workload.
#: Lengths sweep 11..77 bytes so block counts and final-lane occupancy
#: both vary across the batch.
MESSAGES = [bytes([n % 256]) * (11 + n % 67) for n in range(600)]

EXPECTED = [hashlib.sha3_256(m).digest() for m in MESSAGES]


def test_soa_batch_matches_compiled_and_hashlib():
    soa = run_many(MESSAGES, engine="soa")
    compiled = run_many(MESSAGES, engine="compiled")
    assert soa == compiled
    assert soa == EXPECTED


def test_soa_speedup_over_compiled():
    # Warm both legs: SoA kernels for every bucket size the batch
    # touches, per-geometry kernels for compiled.
    run_many(MESSAGES, engine="soa")
    run_many(MESSAGES, engine="compiled")

    def best_of(engine, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            run_many(MESSAGES, engine=engine)
            best = min(best, time.perf_counter() - start)
        return best

    def measure_speedup():
        # Interleave the legs in small groups so scheduler contention
        # and clock-frequency drift hit both sides equally.
        compiled_best = float("inf")
        soa_best = float("inf")
        for _ in range(3):
            compiled_best = min(compiled_best, best_of("compiled", 1))
            soa_best = min(soa_best, best_of("soa", 2))
        return compiled_best / soa_best

    # Measured headroom is ~1.5x the floor, so a failing session means a
    # real regression — but retry twice anyway so one noisy measurement
    # session cannot fail the build.
    speedups = []
    for _ in range(3):
        speedups.append(measure_speedup())
        if speedups[-1] >= SPEEDUP_FLOOR:
            break
    assert speedups[-1] >= SPEEDUP_FLOOR, (
        f"soa engine consistently under {SPEEDUP_FLOOR}x vs compiled "
        f"in {len(speedups)} sessions: "
        + ", ".join(f"{s:.2f}x" for s in speedups)
    )


@pytest.mark.parametrize("engine", ["compiled", "soa"])
def test_bench_soa_batch(benchmark, engine):
    run_many(MESSAGES, engine=engine)  # warm caches outside the timing

    def run():
        return run_many(MESSAGES, engine=engine)

    digests = benchmark.pedantic(run, rounds=3, iterations=1)
    assert digests == EXPECTED
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["messages"] = len(MESSAGES)
    benchmark.extra_info["soa_lanes"] = codegen.soa_width()
