"""Benchmark harness for the timing-model design-space exploration.

Times a reduced ``repro explore`` grid (one EleNum, one variant, the
bank/issue microarchitecture axes) and records the default-timing
V64H8 permutation cycles — the paper's 1892-cycle pin, measured through
the TimingModel path — into the benchmark trajectory
(``PIN_BENCHES`` row ``test_bench_explore_grid``).
"""

import pytest

from repro.eval.explore import (
    build_artifact,
    check_pins,
    explore,
    explore_grid,
    pareto_frontier,
    render_explore,
)

GRID = explore_grid(elenums=(5,), variants=((64, 8),),
                    banks=(1, 2), issue_widths=(1, 2))


@pytest.fixture(scope="module")
def results():
    return explore(GRID)


@pytest.fixture(scope="module", autouse=True)
def print_explore(results):
    yield
    print()
    print(render_explore(results))


def test_grid_shape(results):
    assert len(results) == 4
    assert sum(r.point.is_default_timing for r in results) == 1


def test_default_row_reproduces_pin(results):
    default = [r for r in results if r.point.is_default_timing]
    assert len(default) == 1
    assert default[0].permutation_cycles == 1892
    assert default[0].cycles_per_round == 75.0


def test_artifact_is_valid(results):
    doc = build_artifact(results)
    assert check_pins(doc) == []


def test_microarch_knobs_strictly_help(results):
    """Banked regfiles and dual issue must reduce cycles (and the
    frontier must not be the single default point)."""
    by_knobs = {(r.point.register_banks, r.point.issue_width): r
                for r in results}
    assert by_knobs[(2, 1)].permutation_cycles \
        < by_knobs[(1, 1)].permutation_cycles
    assert by_knobs[(1, 2)].permutation_cycles \
        < by_knobs[(1, 1)].permutation_cycles
    assert len(pareto_frontier(results)) >= 2


def test_bench_explore_grid(benchmark):
    """Time the reduced sweep; record the default-timing pin cycles."""
    measured = benchmark(lambda: explore(GRID))
    default = [r for r in measured if r.point.is_default_timing]
    benchmark.extra_info["cycles"] = default[0].permutation_cycles
    benchmark.extra_info["points"] = len(measured)
