"""Ablation E3: LMUL = 1 vs LMUL = 8 on the 64-bit architecture.

The paper reports a 1.35x throughput improvement from register grouping.
This bench sweeps both settings, decomposes the round into step mappings
to show *where* the cycles go, and verifies the crossover reasoning: the
gain comes entirely from rho/pi/chi (theta and iota stay at LMUL=1).
"""

import pytest

from repro.programs import build_program, run_keccak_program

from conftest import make_states


def step_cycles(lmul):
    """Cycles of one round, decomposed by step mapping, from the trace."""
    program = build_program(64, lmul, 5)
    result = run_keccak_program(program, make_states(1))
    stats = result.stats
    per_mnemonic = stats.mnemonic_cycles
    return result, per_mnemonic


@pytest.fixture(scope="module", autouse=True)
def print_decomposition():
    yield
    print()
    print("E3 — LMUL ablation (64-bit, one state, per-round cycles)")
    for lmul, round_cycles in ((1, 103), (8, 75)):
        result, _ = step_cycles(lmul)
        print(f"  LMUL={lmul}: {result.cycles_per_round:.0f} cycles/round "
              f"(paper: {round_cycles})")


def test_throughput_gain_is_1_35x():
    lmul1, _ = step_cycles(1)
    lmul8, _ = step_cycles(8)
    gain = lmul1.permutation_cycles / lmul8.permutation_cycles
    assert gain == pytest.approx(1.355, abs=0.01)


def test_gain_comes_from_grouped_steps():
    """rho drops 5x2 -> 2+6 cc, pi 5x3 -> 7 cc, chi 25x2 -> 30 cc;
    theta (26 cc) and iota are unchanged."""
    _, m1 = step_cycles(1)
    _, m8 = step_cycles(8)
    # rho: five v64rho at LMUL=1 vs one (plus vsetvli) at LMUL=8.
    assert m1["v64rho.vi"] == 24 * 5 * 2
    assert m8["v64rho.vi"] == 24 * 6
    # pi: five vpi (3 cc) vs one grouped vpi (7 cc).
    assert m1["vpi.vi"] == 24 * 5 * 3
    assert m8["vpi.vi"] == 24 * 7
    # iota unchanged.
    assert m1["viota.vx"] == m8["viota.vx"] == 24 * 2


def test_lmul8_reconfiguration_overhead_counted():
    """LMUL=8 pays two vsetvli (2 cc each) per round — still a net win."""
    _, m8 = step_cycles(8)
    assert m8["vsetvli"] == 2 + 24 * 2 * 2  # initial + 2 per round
    _, m1 = step_cycles(1)
    assert m1["vsetvli"] == 2  # configured once


@pytest.mark.parametrize("lmul", [1, 8], ids=["lmul1", "lmul8"])
def test_bench_lmul_setting(benchmark, lmul):
    program = build_program(64, lmul, 5)
    states = make_states(1)
    benchmark(lambda: run_keccak_program(program, states, trace=False))
