"""Benchmarks of the software Keccak substrate itself.

Not a paper table, but the measurement backbone: times the pure-Python
reference permutation, the numpy batch permutation (the software analogue
of the paper's multi-state registers), the hash functions against
CPython's C implementation, and the end-to-end simulated SHA3.
"""

import hashlib

import pytest

from repro.keccak import KeccakState, keccak_f1600, sha3_256, shake128
from repro.keccak.parallel import ParallelKeccak
from repro.programs import SimulatedPermutation, simulated_sha3_256

from conftest import make_states

MESSAGE = bytes(range(256)) * 4  # 1 KiB


def test_bench_reference_permutation(benchmark):
    state = make_states(1)[0]
    out = benchmark(lambda: keccak_f1600(state))
    assert out != state


def test_bench_parallel_permutation_1_state(benchmark):
    batch = ParallelKeccak.from_states(make_states(1))
    benchmark(batch.permute)


def test_bench_parallel_permutation_64_states(benchmark):
    """Batch permutation amortizes: 64 states cost far less than 64x."""
    batch = ParallelKeccak.from_states(make_states(64))
    benchmark(batch.permute)


def test_batch_effect_shape():
    """The software batch effect mirrors the paper's SN scaling: going
    from 1 to 64 states costs much less than 64x (vectorized lanes)."""
    import time

    def wall(fn, repeat=5):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    one = ParallelKeccak.from_states(make_states(1))
    many = ParallelKeccak.from_states(make_states(64))
    t_one = wall(one.permute)
    t_many = wall(many.permute)
    assert t_many < 16 * t_one  # far below the 64x sequential cost


def test_bench_sha3_256_pure_python(benchmark):
    digest = benchmark(lambda: sha3_256(MESSAGE))
    assert digest == hashlib.sha3_256(MESSAGE).digest()


def test_bench_shake128_squeeze(benchmark):
    out = benchmark(lambda: shake128(b"seed", 1344))
    assert out == hashlib.shake_128(b"seed").digest(1344)


def test_bench_simulated_sha3(benchmark):
    """SHA3-256 with every permutation executed on the cycle simulator."""
    perm = SimulatedPermutation(elen=64, lmul=8, elenum=5)
    digest = benchmark(lambda: simulated_sha3_256(b"bench", perm))
    assert digest == hashlib.sha3_256(b"bench").digest()
