"""Benchmark harness: reduced-round (KangarooTwelve) workloads.

TurboSHAKE / K12 use Keccak-p[1600, 12] — the same datapath, half the
rounds.  Every per-round cycle result of the paper transfers; this bench
regenerates the projected K12-mode table and checks the shapes.
"""

import pytest

from repro.keccak import kangarootwelve, keccak_p1600, turboshake128
from repro.programs import build_program, run_keccak_program

from conftest import make_states


@pytest.fixture(scope="module", autouse=True)
def print_k12_table():
    yield
    print()
    print("Keccak-p[1600, 12] (TurboSHAKE/K12 mode) permutation latency:")
    for elen, lmul in ((64, 1), (64, 8), (32, 8)):
        full = run_keccak_program(build_program(elen, lmul, 5),
                                  make_states(1), trace=False)
        reduced = run_keccak_program(
            build_program(elen, lmul, 5, num_rounds=12),
            make_states(1), trace=False)
        print(f"  {elen}-bit LMUL={lmul}: {reduced.stats.cycles:5d} vs "
              f"{full.stats.cycles:5d} cycles "
              f"({full.stats.cycles / reduced.stats.cycles:.2f}x)")


@pytest.mark.parametrize("elen,lmul", [(64, 1), (64, 8), (32, 8)],
                         ids=["64l1", "64l8", "32l8"])
def test_reduced_rounds_correct_and_roughly_half(elen, lmul):
    states = make_states(1)
    reduced = run_keccak_program(
        build_program(elen, lmul, 5, num_rounds=12), states, trace=False)
    assert reduced.states[0] == keccak_p1600(states[0], 12)
    full = run_keccak_program(build_program(elen, lmul, 5), states,
                              trace=False)
    ratio = full.stats.cycles / reduced.stats.cycles
    assert 1.85 < ratio < 2.05


def test_k12_single_chunk_known_answer():
    assert kangarootwelve(b"", 32).hex().upper().startswith("1AC2D450")


def test_bench_turboshake128(benchmark):
    out = benchmark(lambda: turboshake128(b"data" * 100, 64))
    assert len(out) == 64


def test_bench_k12_single_chunk(benchmark):
    message = bytes(1000)
    benchmark(lambda: kangarootwelve(message, 32))


def test_bench_k12_tree_mode(benchmark):
    message = bytes(3 * 8192)
    benchmark(lambda: kangarootwelve(message, 32))


def test_bench_simulated_k12_permutation(benchmark):
    program = build_program(64, 8, 5, num_rounds=12)
    states = make_states(1)
    result = benchmark(lambda: run_keccak_program(program, states,
                                                  trace=False))
    assert result.stats.cycles < 1100
