"""Benchmark harness: the §3.2 representation trade-off, measured.

Runs both scalar 32-bit baselines — hi/lo split and bit-interleaved —
and regenerates the comparison that justifies the paper's choice of the
hi/lo split on this ISA.
"""

import pytest

from repro.keccak import keccak_f1600
from repro.programs import scalar_keccak, scalar_keccak_interleaved
from repro.sim import SIMDProcessor

from conftest import make_states


def run_variant(module, state, trace=True):
    program = module.build()
    processor = SIMDProcessor(elen=32, elenum=5, trace=trace)
    processor.load_program(program.assemble())
    module.setup_data(processor.memory, state)
    stats = processor.run()
    return module.read_state(processor.memory), stats, program.assemble()


@pytest.fixture(scope="module", autouse=True)
def print_comparison():
    yield
    state = make_states(1)[0]
    print()
    print("Scalar 32-bit representations (Section 3.2), measured:")
    for name, module in (("hi/lo split", scalar_keccak),
                         ("bit-interleaved", scalar_keccak_interleaved)):
        out, stats, assembled = run_variant(module, state)
        body = stats.cycles_in_pc_range(assembled.symbols["round_body"],
                                        assembled.symbols["round_end"])
        extra = ""
        if "interleave_start" in assembled.symbols:
            conv = stats.cycles_in_pc_range(
                assembled.symbols["interleave_start"],
                assembled.symbols["interleave_end"]
            ) + stats.cycles_in_pc_range(
                assembled.symbols["deinterleave_start"],
                assembled.symbols["deinterleave_end"])
            extra = f"  (+{conv} conversion)"
        print(f"  {name:16s} {stats.cycles:6d} total cycles, "
              f"{body / 24:6.0f}/round{extra}")


def test_both_bit_exact():
    state = make_states(1)[0]
    expected = keccak_f1600(state)
    for module in (scalar_keccak, scalar_keccak_interleaved):
        out, _, _ = run_variant(module, state, trace=False)
        assert out == expected


def test_hilo_wins_on_riscv():
    """The paper's representation choice holds for scalar software too on
    an ISA without rotate instructions."""
    state = make_states(1)[0]
    _, hilo, _ = run_variant(scalar_keccak, state, trace=False)
    _, interleaved, _ = run_variant(scalar_keccak_interleaved, state,
                                    trace=False)
    assert hilo.cycles < interleaved.cycles
    # ... but only by a modest margin (< 15%): the trade-off is real.
    assert interleaved.cycles / hilo.cycles < 1.15


@pytest.mark.parametrize("module", [scalar_keccak,
                                    scalar_keccak_interleaved],
                         ids=["hilo", "interleaved"])
def test_bench_scalar_variant(benchmark, module):
    state = make_states(1)[0]
    program = module.build()
    assembled = program.assemble()

    def run():
        processor = SIMDProcessor(elen=32, elenum=5, trace=False)
        processor.load_program(assembled)
        module.setup_data(processor.memory, state)
        return processor.run()

    stats = benchmark(run)
    assert stats.cycles > 50_000
