"""Compiled-engine speedup guard: >= 2x over the fused engine.

The AOT code generator exists to make per-permutation wall-clock cheap:
one flat specialized function instead of a superblock dispatch loop.
This module pins the claim against the PR 2 fused engine on the
bench_table7 workloads (the three paper programs at their Table 7/8
EleNum=30 operating points):

* architectural equivalence first — the compiled run must match the
  fused run's states and cycle counters bit-for-bit (a deterministic
  guard that cannot flake);
* warm-cache per-permutation wall-clock must be at least
  ``SPEEDUP_FLOOR``x faster than fused, interleaved best-of-N so
  frequency drift hits both legs;
* both legs are recorded to ``BENCH_*codegen*.json`` via
  ``--bench-json`` so the perf trajectory across PRs is diffable.
"""

import time

import pytest

from repro.keccak import keccak_f1600
from repro.programs import build_program
from repro.programs.session import Session

from conftest import make_states

#: The tentpole's acceptance floor: compiled must halve fused's
#: per-permutation wall-clock (measured: 5-9x, so 2x has headroom).
SPEEDUP_FLOOR = 2.0

#: (ELEN, LMUL, EleNum, SN) — the Table 7/8 EleNum=30 operating points.
CONFIGS = [
    (64, 1, 30, 6),
    (64, 8, 30, 6),
    (32, 8, 30, 6),
]

_IDS = [f"{elen}bit-lmul{lmul}" for elen, lmul, _, _ in CONFIGS]


def _legs(elen, lmul, elenum):
    program = build_program(elen, lmul, elenum)
    return program, Session(engine="fused"), Session(engine="compiled")


@pytest.mark.parametrize("elen,lmul,elenum,sn", CONFIGS, ids=_IDS)
def test_compiled_matches_fused_exactly(elen, lmul, elenum, sn):
    program, fused, compiled = _legs(elen, lmul, elenum)
    states = make_states(sn)
    a = fused.run(program, states)
    b = compiled.run(program, states)
    assert b.states == a.states
    assert b.states == [keccak_f1600(s) for s in states]
    assert b.stats.cycles == a.stats.cycles
    assert b.stats.instructions == a.stats.instructions
    assert b.stats.mnemonic_counts == a.stats.mnemonic_counts


@pytest.mark.parametrize("elen,lmul,elenum,sn", CONFIGS, ids=_IDS)
def test_compiled_speedup_over_fused(elen, lmul, elenum, sn):
    program, fused, compiled = _legs(elen, lmul, elenum)
    states = make_states(sn)
    # Warm both legs: superblocks for fused, kernel caches for compiled.
    fused.run(program, states)
    compiled.run(program, states)

    def best_of(session, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            session.run(program, states)
            best = min(best, time.perf_counter() - start)
        return best

    def measure_speedup():
        # Interleave the legs in small groups so scheduler contention
        # and clock-frequency drift hit both sides equally.
        fused_best = float("inf")
        compiled_best = float("inf")
        for _ in range(4):
            fused_best = min(fused_best, best_of(fused, 2))
            compiled_best = min(compiled_best, best_of(compiled, 3))
        return fused_best / compiled_best

    # Measured headroom is ~3-4x the floor, so a failing session means a
    # real regression — but retry twice anyway so one noisy measurement
    # session cannot fail the build.
    speedups = []
    for _ in range(3):
        speedups.append(measure_speedup())
        if speedups[-1] >= SPEEDUP_FLOOR:
            break
    assert speedups[-1] >= SPEEDUP_FLOOR, (
        f"compiled engine consistently under {SPEEDUP_FLOOR}x vs fused "
        f"in {len(speedups)} sessions: "
        + ", ".join(f"{s:.2f}x" for s in speedups)
    )


@pytest.mark.parametrize("leg", ["fused", "compiled"])
def test_bench_codegen(benchmark, leg):
    elen, lmul, elenum, sn = CONFIGS[1]  # the 64-bit LMUL=8 flagship
    program = build_program(elen, lmul, elenum)
    session = Session(engine=leg)
    states = make_states(sn)
    session.run(program, states)  # warm caches outside the timed region
    result = benchmark(lambda: session.run(program, states))
    assert result.states == [keccak_f1600(s) for s in states]
    benchmark.extra_info["cycles"] = result.stats.cycles
    benchmark.extra_info["engine"] = leg
