"""Ablation E4: 64-bit vs 32-bit architecture at LMUL = 8.

The paper: "the 64-bit architecture runs almost twice as fast as the
32-bit architecture, and both use similar resources."  This bench
quantifies both halves of that claim and shows where the 32-bit penalty
originates (doubled theta/chi work, pair-rotation instructions, split
iota).
"""

import pytest

from repro.arch import ArchConfig, slices
from repro.eval.measure import measure_config
from repro.programs import build_program, run_keccak_program

from conftest import make_states


@pytest.fixture(scope="module", autouse=True)
def print_comparison():
    yield
    m64 = measure_config(ArchConfig(64, 30, 8, 6))
    m32 = measure_config(ArchConfig(32, 30, 8, 6))
    print()
    print("E4 — ELEN ablation at LMUL=8, EleNum=30")
    print(f"  64-bit: {m64.cycles_per_round:.0f} cc/round, "
          f"{m64.area_slices:.0f} slices")
    print(f"  32-bit: {m32.cycles_per_round:.0f} cc/round, "
          f"{m32.area_slices:.0f} slices")
    print(f"  speed ratio: {m32.cycles_per_round / m64.cycles_per_round:.2f}"
          f"x, area ratio: {m64.area_slices / m32.area_slices:.3f}x")


def test_64bit_almost_twice_as_fast():
    m64 = measure_config(ArchConfig(64, 30, 8, 6))
    m32 = measure_config(ArchConfig(32, 30, 8, 6))
    ratio = m32.permutation_cycles / m64.permutation_cycles
    assert 1.8 < ratio < 2.0  # 3620 / 1892 = 1.913


def test_similar_resources_at_elenum_30():
    ratio = slices(64, 30) / slices(32, 30)
    assert 0.95 < ratio < 1.05


def test_32bit_penalty_decomposition():
    """Per round: theta 26->52, rho 6->12, pi 7->14, chi 30->60,
    iota 2->5 (two viota + one addi) — exactly doubling the vector work
    except iota's extra scalar add."""
    r64 = run_keccak_program(build_program(64, 8, 5), make_states(1))
    r32 = run_keccak_program(build_program(32, 8, 5), make_states(1))
    m64 = r64.stats.mnemonic_cycles
    m32 = r32.stats.mnemonic_cycles
    # chi slides: 2 per round at 64-bit, 4 per round at 32-bit.
    assert m32["vslidedownm.vi"] == 2 * m64["vslidedownm.vi"]
    # iota runs twice per round on 32-bit.
    assert m32["viota.vx"] == 2 * m64["viota.vx"]
    # 32-bit rho uses the pair instructions, 64-bit uses v64rho.
    assert "v32lrho.vv" in m32 and "v32hrho.vv" in m32
    assert "v64rho.vi" not in m32
    assert "v32lrho.vv" not in m64


def test_both_architectures_bit_exact(states6):
    from repro.keccak import keccak_f1600

    expected = [keccak_f1600(s) for s in states6]
    for elen in (64, 32):
        result = run_keccak_program(build_program(elen, 8, 30), states6)
        assert result.states == expected


@pytest.mark.parametrize("elen", [64, 32], ids=["elen64", "elen32"])
def test_bench_elen_setting(benchmark, elen):
    program = build_program(elen, 8, 5)
    states = make_states(1)
    benchmark(lambda: run_keccak_program(program, states, trace=False))
