"""Benchmark harness for the design-space sweep (Pareto figure data).

Extends the paper's three-point-per-architecture evaluation to the full
EleNum grid and derives the throughput-vs-area efficiency frontier.
"""

import pytest

from repro.eval.sweep import pareto_frontier, render_sweep, sweep_design_space


@pytest.fixture(scope="module")
def points():
    return sweep_design_space()


@pytest.fixture(scope="module", autouse=True)
def print_sweep(points):
    yield
    print()
    print(render_sweep(points))
    print()
    print("Pareto frontier:")
    for p in pareto_frontier(points):
        print(f"  {p.label:48s} {p.throughput_e3:9.2f} tput  "
              f"{p.area_slices:8.0f} slices")


def test_full_grid_size(points):
    # 6 EleNums x 4 variants.
    assert len(points) == 24


def test_throughput_monotone_in_elenum(points):
    """More states never hurt throughput at fixed latency."""
    for elen, lmul, fused in ((64, 1, False), (64, 8, False),
                              (32, 8, False), (64, 8, True)):
        series = sorted(
            (p for p in points
             if p.elen == elen and p.lmul == lmul and p.fused == fused),
            key=lambda p: p.elenum,
        )
        values = [p.throughput_e3 for p in series]
        assert values == sorted(values)


def test_efficiency_ranking(points):
    """Throughput-per-slice: fused > LMUL=8 > LMUL=1 > 32-bit at any
    common EleNum (the 64-bit datapath amortizes better)."""
    for elenum in (5, 30):
        at = {(p.elen, p.lmul, p.fused): p.throughput_per_kslice
              for p in points if p.elenum == elenum}
        assert at[(64, 8, True)] > at[(64, 8, False)]
        assert at[(64, 8, False)] > at[(64, 1, False)]
        assert at[(64, 1, False)] > at[(32, 8, False)]


def test_bench_sweep(benchmark):
    """Time a reduced sweep (measurements are cached after first run)."""
    result = benchmark(lambda: sweep_design_space(elenums=[5, 30]))
    assert len(result) == 8
