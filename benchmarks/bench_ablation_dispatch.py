"""Ablation: sensitivity of the results to the cycle-model dispatch cost.

Our calibrated model charges one dispatch cycle per vector instruction
(through the VecISAInterface).  Rawat & Schaumont's comparison point
assumes one cycle per instruction with *no* dispatch overhead; this bench
sweeps the dispatch cost to show how much of the paper's cycle budget is
pipeline overhead vs. register-file passes — and that the paper's
comparative conclusions (who wins) are robust to the assumption.
"""

import pytest

from repro.keccak import keccak_f1600
from repro.programs import build_program, run_keccak_program
from repro.sim.cycles import CycleModel

from conftest import make_states


def round_cycles(dispatch: int, elen: int = 64, lmul: int = 8) -> float:
    model = CycleModel(vector_dispatch=dispatch)
    program = build_program(elen, lmul, 5)
    states = make_states(1)
    result = run_keccak_program(program, states, cycle_model=model)
    assert result.states == [keccak_f1600(s) for s in states]
    return result.cycles_per_round


@pytest.fixture(scope="module", autouse=True)
def print_sensitivity():
    yield
    print()
    print("Dispatch-cost sensitivity (cycles/round):")
    print(f"  {'dispatch':>9s} {'64/LMUL1':>9s} {'64/LMUL8':>9s} "
          f"{'32/LMUL8':>9s}")
    for dispatch in (0, 1, 2):
        row = [round_cycles(dispatch, 64, 1), round_cycles(dispatch, 64, 8),
               round_cycles(dispatch, 32, 8)]
        print(f"  {dispatch:9d} {row[0]:9.0f} {row[1]:9.0f} {row[2]:9.0f}")


def test_calibrated_dispatch_is_one():
    """dispatch=1 reproduces the paper's 103/75/147 exactly."""
    assert round_cycles(1, 64, 1) == 103
    assert round_cycles(1, 64, 8) == 75
    assert round_cycles(1, 32, 8) == 147


def test_zero_dispatch_lower_bound():
    """With free dispatch, LMUL=1 round = 49 single-pass ops + vpi extra."""
    assert round_cycles(0, 64, 1) == 54  # 49 ops + 5 vpi column cycles
    assert round_cycles(0, 64, 8) < 75


def test_ordering_robust_to_dispatch_cost():
    """64-bit beats 32-bit, and LMUL=8 never loses to LMUL=1, for any
    dispatch cost.  At dispatch=0 the two LMUL settings tie exactly (54
    cycles/round): total register-file passes are identical, so the
    *entire* LMUL=8 benefit is instruction-dispatch amortization."""
    for dispatch in (0, 1, 2, 3):
        lmul1 = round_cycles(dispatch, 64, 1)
        lmul8 = round_cycles(dispatch, 64, 8)
        k32 = round_cycles(dispatch, 32, 8)
        if dispatch == 0:
            assert lmul8 == lmul1 == 54
        else:
            assert lmul8 < lmul1
        assert lmul8 < k32


def test_lmul8_advantage_grows_with_dispatch_cost():
    """Register grouping amortizes dispatch: the costlier the dispatch,
    the bigger LMUL=8's relative win."""
    gains = []
    for dispatch in (0, 1, 3):
        gains.append(round_cycles(dispatch, 64, 1)
                     / round_cycles(dispatch, 64, 8))
    assert gains[0] < gains[1] < gains[2]


@pytest.mark.parametrize("dispatch", [0, 1, 2])
def test_bench_dispatch_setting(benchmark, dispatch):
    model = CycleModel(vector_dispatch=dispatch)
    program = build_program(64, 8, 5)
    states = make_states(1)
    benchmark(lambda: run_keccak_program(program, states, trace=False,
                                         cycle_model=model))
