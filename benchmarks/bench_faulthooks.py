"""Fault-instrumentation overhead guard: an unarmed injector is free.

The injector instruments by wrapping decoded entries and invalidating
the cached superblocks; ``disarm`` restores the original executors, so
after an arm/disarm cycle the fused hot loop runs exactly the code it
ran before — no hook check, no wrapper frames.  This module pins that
claim three ways:

* cycle counts after arm/disarm are *identical* to a pristine run (a
  deterministic guard that cannot flake);
* wall-clock overhead of the fused path after arm/disarm stays under
  3% (interleaved best-of-N so frequency drift hits both legs);
* both legs are recorded to ``BENCH_*faulthooks*.json`` via
  ``--bench-json`` so the trajectory across PRs is diffable.
"""

import time

import pytest

from repro.keccak import keccak_f1600
from repro.programs import keccak64_lmul8, layout
from repro.programs.runner import make_processor
from repro.resilience import FaultInjector, FaultSpec

from conftest import make_states

PROGRAM = keccak64_lmul8.build(5)
ASSEMBLED = PROGRAM.assemble()
[STATE] = make_states(1)
EXPECTED = keccak_f1600(STATE)

#: Wall-clock guard threshold (satellite requirement: fused-path
#: overhead with hooks disarmed must stay under 3%).
OVERHEAD_LIMIT = 0.03


def _processor():
    proc = make_processor(PROGRAM, trace=False)
    proc.load_program(ASSEMBLED)
    return proc


def _arm_disarm(proc):
    """One arm/disarm cycle: what a self-checked deployment pays once."""
    with FaultInjector(proc) as injector:
        injector.arm(FaultSpec("raise",
                               pc=ASSEMBLED.symbols["round_body"]))
    # Context exit disarmed the fault; the next run() rebuilds the
    # superblocks around the restored (original) executors.


def _permute(proc):
    proc.reset(trace=False)
    layout.load_states_regfile64(proc.vector.regfile, [STATE])
    proc.run()
    return layout.read_states_regfile64(proc.vector.regfile, 1)[0]


def test_arm_disarm_leaves_cycles_identical():
    pristine = _processor()
    assert _permute(pristine) == EXPECTED
    baseline_cycles = pristine.stats.cycles

    restored = _processor()
    _arm_disarm(restored)
    assert _permute(restored) == EXPECTED
    assert restored.stats.cycles == baseline_cycles
    assert restored.stats.instructions == pristine.stats.instructions


def test_fused_overhead_after_disarm_under_3pct():
    pristine = _processor()
    restored = _processor()
    _arm_disarm(restored)
    # Warm-up: build superblocks and JIT-warm both processors.
    assert _permute(pristine) == EXPECTED
    assert _permute(restored) == EXPECTED

    def best_of(proc, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _permute(proc)
            best = min(best, time.perf_counter() - start)
        return best

    def measure_overhead():
        # Interleave the legs in small groups so scheduler contention
        # and clock-frequency drift hit both sides; the min over all
        # groups approximates each leg's true floor.
        base_best = float("inf")
        restored_best = float("inf")
        for _ in range(8):
            base_best = min(base_best, best_of(pristine, 3))
            restored_best = min(restored_best, best_of(restored, 3))
        return restored_best / base_best - 1.0

    # The two legs execute identical code objects (disarm restored the
    # original executors, verified cycle-exact above), so any measured
    # difference is machine noise — but the guard must still catch a
    # real regression.  A systematic >3% overhead fails every session;
    # noise does not, so retry up to three measurement sessions.
    overheads = []
    for _ in range(3):
        overheads.append(measure_overhead())
        if overheads[-1] < OVERHEAD_LIMIT:
            break
    assert overheads[-1] < OVERHEAD_LIMIT, (
        f"fused path consistently slower after arm/disarm in "
        f"{len(overheads)} sessions: "
        + ", ".join(f"{o:+.1%}" for o in overheads)
        + f" (limit {OVERHEAD_LIMIT:.0%})"
    )


@pytest.mark.parametrize("leg", ["pristine", "after_disarm"])
def test_bench_faulthooks(benchmark, leg):
    proc = _processor()
    if leg == "after_disarm":
        _arm_disarm(proc)
    _permute(proc)  # warm superblocks outside the timed region
    out = benchmark(lambda: _permute(proc))
    assert out == EXPECTED
    benchmark.extra_info["cycles"] = proc.stats.cycles
    benchmark.extra_info["leg"] = leg
