"""Benchmark harness for batch hashing (E9): N messages, one stream.

Quantifies the multi-state amortization end to end — the sponge layer
included, not just the raw permutation.
"""

import hashlib
import os

import pytest

from repro.programs.batch_driver import (
    BatchPermutation,
    batch_sha3_256,
    run_many,
)

MESSAGES = [bytes([i]) * 120 for i in range(6)]

#: The process-parallel acceptance workload: >= 600 messages sharded
#: across the pool.  Scaling benches only mean something on multicore.
MANY_MESSAGES = [bytes([i % 256, i // 256]) * 20 for i in range(600)]
_MULTICORE = (os.cpu_count() or 1) >= 2


@pytest.fixture(scope="module", autouse=True)
def print_amortization():
    yield
    solo = BatchPermutation(elenum=5)
    for message in MESSAGES:
        batch_sha3_256([message], solo)
    batch = BatchPermutation(elenum=30)
    batch_sha3_256(MESSAGES, batch)
    print()
    print("E9 — batch hashing, six 120-byte messages (SHA3-256):")
    print(f"  one-at-a-time (EleNum=5):   {solo.call_count} program runs, "
          f"{solo.total_cycles} cycles")
    print(f"  batched 6-wide (EleNum=30): {batch.call_count} program runs, "
          f"{batch.total_cycles} cycles "
          f"({solo.total_cycles / batch.total_cycles:.2f}x)")


def test_batch_digests_correct():
    digests = batch_sha3_256(MESSAGES, BatchPermutation(elenum=30))
    for message, digest in zip(MESSAGES, digests):
        assert digest == hashlib.sha3_256(message).digest()


def test_batching_shape_6x_fewer_runs():
    solo = BatchPermutation(elenum=5)
    for message in MESSAGES:
        batch_sha3_256([message], solo)
    batch = BatchPermutation(elenum=30)
    batch_sha3_256(MESSAGES, batch)
    assert solo.call_count == 6 * batch.call_count


def test_bench_batched_hashing(benchmark):
    perm = BatchPermutation(elenum=30)
    digests = benchmark(lambda: batch_sha3_256(MESSAGES, perm))
    assert len(digests) == 6


def test_bench_one_at_a_time(benchmark):
    perm = BatchPermutation(elenum=5)

    def run():
        return [batch_sha3_256([m], perm)[0] for m in MESSAGES]

    digests = benchmark(run)
    assert len(digests) == 6


@pytest.mark.parametrize("workers", [1, 4], ids=["workers1", "workers4"])
def test_bench_run_many_600(benchmark, workers):
    """The workers=4 vs workers=1 scaling pair over 600 messages.

    One round per measurement (the workload is seconds long); compare the
    two BENCH json records to read off the speedup.  The pool only helps
    with real cores, so the 4-worker leg is skipped on single-core boxes.
    """
    if workers > 1 and not _MULTICORE:
        pytest.skip("multi-worker scaling needs more than one core")

    def run():
        return run_many(MANY_MESSAGES, workers=workers)

    digests = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["messages"] = len(MANY_MESSAGES)
    assert digests == [hashlib.sha3_256(m).digest() for m in MANY_MESSAGES]
