"""Zero-copy transport speedup guard: shm vs pickle ``run_many``.

The shared-memory arena exists to take payload bytes out of the task
queues: the pickle transport copies every message four times (parent
pickle, pipe write, pipe read, worker unpickle) while the arena packs
once and lets workers hash straight from the shared buffer.  This module
pins that claim on the batch transport acceptance workload — 600
ragged messages in the 64 KiB payload class and up — with the
``reference`` engine, so hashing runs at C speed and the measurement is
transport-bound, not simulator-bound:

* digest equivalence first — shm and pickle transports must agree with
  each other and with ``hashlib`` bit-for-bit, on the hashlib-backed
  engine *and* on a simulator (``soa``) slice (deterministic, cannot
  flake);
* warm wall-clock for the whole batch must be at least
  ``SPEEDUP_FLOOR``x faster over shm, interleaved best-of-N so
  frequency drift hits both legs;
* both legs are recorded to ``BENCH_*shm*.json`` via ``--bench-json``
  so the perf trajectory across PRs is diffable.

The floor is scheduling-aware: the 1.5x claim needs workers hashing in
parallel behind the parent's *serial* queue feeding, i.e. at least two
hardware threads.  On a single-CPU machine both legs serialize the
identical sha3 work (~3.5 ms/MB) behind one core, so the reachable
ratio is bounded by (hash + queue)/(hash + memcpy) — about 1.3x with
this machine class's queue throughput — and the floor derates to 1.15x.
"""

import hashlib
import os
import time

import pytest

from repro.programs.batch_driver import run_many

try:
    EFFECTIVE_CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - no affinity API
    EFFECTIVE_CORES = os.cpu_count() or 1

#: The tentpole's acceptance floor: zero-copy transport must beat the
#: pickle path by 1.5x on multicore machines (see the module docstring
#: for why a single hardware thread caps the honest ratio near 1.3x).
SPEEDUP_FLOOR = 1.5 if EFFECTIVE_CORES >= 2 else 1.15

WORKERS = 2

#: 600 ragged messages, 64..448 KiB each (~150 MB total) — big enough
#: that per-run fixed costs (worker fork, span scheduling) are noise
#: against the bytes being moved.
_PATTERN = bytes(range(256)) * 1792
MESSAGES = [_PATTERN[: 65536 + (n * 7919) % 393216] for n in range(600)]

EXPECTED = [hashlib.sha3_256(m).digest() for m in MESSAGES]

#: A small slice for the simulator-engine equivalence leg (the soa
#: engine hashes whole lane groups; it is far too slow for 150 MB).
SIM_MESSAGES = [bytes([n % 256]) * (11 + n % 67) for n in range(120)]


def _run(transport, **kwargs):
    return run_many(MESSAGES, workers=WORKERS, engine="reference",
                    transport=transport, **kwargs)


def test_transports_agree_with_each_other_and_hashlib():
    assert _run("shm") == EXPECTED
    assert _run("pickle") == EXPECTED


def test_transports_agree_on_a_simulator_engine():
    via_shm = run_many(SIM_MESSAGES, workers=WORKERS, engine="soa",
                       transport="shm")
    via_pickle = run_many(SIM_MESSAGES, workers=WORKERS, engine="soa",
                          transport="pickle")
    assert via_shm == via_pickle
    assert via_shm == [hashlib.sha3_256(m).digest() for m in SIM_MESSAGES]


def test_shm_speedup_over_pickle():
    # Warm both legs: worker import state, the arena pool's segment.
    _run("pickle")
    _run("shm")

    def best_of(transport, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _run(transport)
            best = min(best, time.perf_counter() - start)
        return best

    def measure_speedup():
        # Interleave the legs in small groups so scheduler contention
        # and clock-frequency drift hit both sides equally.
        pickle_best = float("inf")
        shm_best = float("inf")
        for _ in range(3):
            pickle_best = min(pickle_best, best_of("pickle", 1))
            shm_best = min(shm_best, best_of("shm", 1))
        return pickle_best / shm_best

    # Retry up to three sessions so one noisy measurement session
    # cannot fail the build.
    speedups = []
    for _ in range(3):
        speedups.append(measure_speedup())
        if speedups[-1] >= SPEEDUP_FLOOR:
            break
    assert speedups[-1] >= SPEEDUP_FLOOR, (
        f"shm transport consistently under {SPEEDUP_FLOOR}x vs pickle "
        f"in {len(speedups)} sessions: "
        + ", ".join(f"{s:.2f}x" for s in speedups)
    )


@pytest.mark.parametrize("transport", ["pickle", "shm"])
def test_bench_shm_transport(benchmark, transport):
    _run(transport)  # warm workers-adjacent caches outside the timing

    def run():
        return _run(transport)

    digests = benchmark.pedantic(run, rounds=3, iterations=1)
    assert digests == EXPECTED
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["messages"] = len(MESSAGES)
    benchmark.extra_info["payload_mb"] = round(
        sum(len(m) for m in MESSAGES) / 1e6, 1)
    benchmark.extra_info["workers"] = WORKERS
