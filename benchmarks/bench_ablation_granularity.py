"""Ablation: instruction granularity (the paper's future-work prediction).

Section 5: "Predictably, the two architectures' performance will improve
more if we increase the granularity or combine some adjacent operations."
This bench quantifies the whole granularity axis on the 64-bit
architecture:

* LMUL=1 (Algorithm 2)             — 103 cycles/round
* LMUL=4+1 (the rejected option)   —  87 cycles/round
* LMUL=8 (Algorithm 3)             —  75 cycles/round
* fused rho+pi and chi (future work) — 45 cycles/round
"""

import pytest

from repro.programs import (
    keccak64_fused,
    keccak64_lmul1,
    keccak64_lmul41,
    keccak64_lmul8,
    run_keccak_program,
)

from conftest import make_states

VARIANTS = [
    ("LMUL=1 (Algorithm 2)", keccak64_lmul1, 103),
    ("LMUL=4+1 (rejected)", keccak64_lmul41, 87),
    ("LMUL=8 (Algorithm 3)", keccak64_lmul8, 75),
    ("fused rho+pi / chi", keccak64_fused, 45),
]


@pytest.fixture(scope="module", autouse=True)
def print_granularity_ladder():
    yield
    print()
    print("Granularity ladder (64-bit, cycles/round):")
    for label, builder, _ in VARIANTS:
        result = run_keccak_program(builder.build(5), make_states(1))
        print(f"  {label:28s} {result.cycles_per_round:6.0f} cc/round  "
              f"{result.permutation_cycles:5d} cc/permutation")


@pytest.mark.parametrize("label,builder,expected",
                         VARIANTS, ids=[v[0] for v in VARIANTS])
def test_cycles_per_round(label, builder, expected):
    result = run_keccak_program(builder.build(5), make_states(1))
    assert result.cycles_per_round == expected


def test_ladder_is_strictly_ordered():
    """Coarser granularity is strictly faster, at every step."""
    cycles = [
        run_keccak_program(b.build(5), make_states(1)).cycles_per_round
        for _, b, _ in VARIANTS
    ]
    assert cycles == sorted(cycles, reverse=True)
    assert len(set(cycles)) == len(cycles)


def test_all_variants_bit_exact():
    from repro.keccak import keccak_f1600

    states = make_states(3)
    expected = [keccak_f1600(s) for s in states]
    for _, builder, _ in VARIANTS:
        result = run_keccak_program(builder.build(15), states)
        assert result.states == expected


def test_fused_improvement_factor():
    """Fusing rho+pi and chi buys another 1.61x over Algorithm 3."""
    lmul8 = run_keccak_program(keccak64_lmul8.build(5), make_states(1))
    fused = run_keccak_program(keccak64_fused.build(5), make_states(1))
    gain = lmul8.permutation_cycles / fused.permutation_cycles
    assert gain == pytest.approx(1.614, abs=0.01)


@pytest.mark.parametrize("label,builder,expected",
                         VARIANTS, ids=[v[0] for v in VARIANTS])
def test_bench_variant(benchmark, label, builder, expected):
    program = builder.build(5)
    states = make_states(1)
    benchmark(lambda: run_keccak_program(program, states, trace=False))
