"""Serving-path SLO benchmark: open-loop load against a live daemon.

Each round boots a real :class:`HashServer` on a unix socket, fires a
fixed open-loop request schedule at it with the load generator, and
tears the daemon down with a full drain — so the measured time covers
the entire serving path (accept, admission, coalescing, executor,
response) and not just the hash kernel.  The client-side latency
quantiles (p50/p99) land in ``extra_info`` and join the perf
trajectory via ``--bench-json``, one row for the inline executor and
one for the pooled executor, so a regression in the batching loop or
the pool handoff shows up as an SLO shift, not just a throughput blip.

The pooled row measures *steady-state* serving: the worker pool is
forked once and shared across rounds (a drain normally closes the
executor, so a close-deferring wrapper keeps it alive), which keeps
the per-round minimum stable enough for the trajectory's regression
gate instead of being dominated by fork noise.

Correctness rides along: every response is verified against
``hashlib`` and a single mismatch fails the round.
"""

import asyncio
import os
import shutil
import tempfile

import pytest

from repro.serve import HashServer, PooledExecutor, ServeConfig
from repro.serve.loadgen import run_load_async

REQUESTS = 120
MESSAGE_SIZE = 64
WORKERS = 2


class _KeepOpen:
    """Executor wrapper whose close() defers to the benchmark teardown,
    so one warm worker pool serves every round."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def close(self):
        pass


def _serve_round(executor=None):
    async def main():
        scratch = tempfile.mkdtemp(dir="/tmp", prefix="rslo")
        sock = os.path.join(scratch, "s.sock")
        config = ServeConfig(
            socket_path=sock, workers=0, engine="reference",
            observability=False, default_deadline=60.0,
            batch_window=0.002, max_batch=64)
        server = HashServer(
            config, executor=_KeepOpen(executor) if executor else None)
        await server.start()
        try:
            return await run_load_async(
                sock, None, 0, REQUESTS, 0.0, MESSAGE_SIZE,
                "sha3_256", 32, None, 7, True, 60.0)
        finally:
            await server.drain()
            shutil.rmtree(scratch, ignore_errors=True)

    return asyncio.run(main())


def test_serve_round_trip_is_correct():
    report = _serve_round()
    assert report.ok == REQUESTS
    assert report.mismatches == 0


@pytest.mark.parametrize("mode", ["inline", "pooled"])
def test_bench_serve_slo(benchmark, mode):
    executor = PooledExecutor(WORKERS, engine="reference") \
        if mode == "pooled" else None
    try:
        _serve_round(executor)  # warm the pool and import state

        def run():
            return _serve_round(executor)

        report = benchmark.pedantic(run, rounds=5, iterations=1)
    finally:
        if executor is not None:
            executor.close()
    assert report.ok == REQUESTS
    assert report.mismatches == 0
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["workers"] = WORKERS if mode == "pooled" else 0
    benchmark.extra_info["requests"] = REQUESTS
    benchmark.extra_info["message_size"] = MESSAGE_SIZE
    benchmark.extra_info["p50_ms"] = round(report.p50() * 1000, 3)
    benchmark.extra_info["p99_ms"] = round(report.p99() * 1000, 3)
