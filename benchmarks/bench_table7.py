"""Benchmark harness for Table 7: the 64-bit architectures.

Regenerates every row of the paper's Table 7 (cycles/round, cycles/byte,
throughput x10^3, slices) from the cycle-level simulator, checks the
paper-vs-measured agreement, and times the simulation workloads.
"""

import pytest

from repro.arch import ArchConfig, TABLE7_CONFIGS
from repro.eval.measure import measure_config
from repro.eval.tables import PAPER_TABLE7, generate_table7, render_table
from repro.programs import build_program, run_keccak_program

from conftest import make_states


@pytest.fixture(scope="module", autouse=True)
def print_table7():
    """Print the regenerated table once per benchmark session."""
    yield
    print()
    print(render_table(generate_table7(), "Table 7 — 64-bit architectures"))


@pytest.mark.parametrize("config", TABLE7_CONFIGS, ids=lambda c: c.label)
def test_table7_row_matches_paper(config):
    """Every measured row must agree with the published row."""
    measurement = measure_config(config)
    c_round, c_byte, tput, slices = PAPER_TABLE7[config.label]
    assert measurement.cycles_per_round == c_round
    assert measurement.cycles_per_byte == pytest.approx(c_byte, abs=0.1)
    assert measurement.throughput_e3 == pytest.approx(tput, rel=0.001)
    assert measurement.area_slices == slices


def test_table7_shape_lmul8_wins():
    """Within Table 7, LMUL=8 beats LMUL=1 at every EleNum."""
    for elenum in (5, 15, 30):
        lmul1 = measure_config(ArchConfig(64, elenum, 1, elenum // 5))
        lmul8 = measure_config(ArchConfig(64, elenum, 8, elenum // 5))
        assert lmul8.throughput_e3 > lmul1.throughput_e3


def test_table7_shape_vs_rawat():
    """The EleNum=30 configs beat the Rawat vector extensions ~5x."""
    from repro.related import RAWAT_VECTOR_EXTENSIONS

    best = measure_config(ArchConfig(64, 30, 8, 6))
    factor = best.throughput_e3 / RAWAT_VECTOR_EXTENSIONS.throughput_e3
    assert 4.5 < factor < 5.5


@pytest.mark.parametrize("lmul,cycles", [(1, 2564), (8, 1892)],
                         ids=["lmul1", "lmul8"])
def test_bench_64bit_permutation(benchmark, lmul, cycles):
    """Time the full simulated permutation (1 state, EleNum=5)."""
    program = build_program(64, lmul, 5)
    states = make_states(1)

    def run():
        return run_keccak_program(program, states, trace=False)

    result = benchmark(run)
    benchmark.extra_info["cycles"] = result.stats.cycles
    assert result.stats.cycles >= cycles


def test_bench_64bit_six_states(benchmark):
    """Time the 6-state batch (EleNum=30) — latency must not grow."""
    program = build_program(64, 8, 30)
    states = make_states(6)

    def run():
        return run_keccak_program(program, states, trace=False)

    result = benchmark(run)
    benchmark.extra_info["cycles"] = result.stats.cycles
    assert result.stats.cycles == run_keccak_program(
        build_program(64, 8, 5), make_states(1), trace=False
    ).stats.cycles
