"""Metrics-instrumentation overhead guard: disarmed metrics are free.

Instrumented sites follow the arming rule of
``repro.observability.metrics``: one module-attribute load and branch at
coarse boundaries (per run, per compile, per chunk), nothing inside the
per-instruction hot loops.  This module pins the two acceptance claims
the same three ways the fault-hook guard does:

* simulated cycle counts with metrics *armed* are bit-identical to
  disarmed runs for all three paper programs (2564/1892/3620 per
  permutation; metrics observe the simulation, never touch it);
* disarmed wall-clock overhead on the ``bench_table7`` workload stays
  under 3% against a baseline measured the same way (interleaved
  best-of-N so frequency drift hits both legs);
* both legs land in ``BENCH_*metrics*.json`` via ``--bench-json`` so
  the trajectory across PRs is diffable.
"""

import time

import pytest

from repro.keccak import keccak_f1600
from repro.observability import metrics
from repro.programs import Session, build_program

from conftest import make_states

#: Wall-clock guard threshold (satellite requirement: disarmed metrics
#: overhead on bench_table7 must stay under 3%).
OVERHEAD_LIMIT = 0.03

#: The paper's per-permutation cycle pins (Tables 7/8).
PINS = [
    ((64, 1), 2564),
    ((64, 8), 1892),
    ((32, 8), 3620),
]


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends disarmed with a clean registry."""
    metrics.disarm()
    metrics.registry().reset()
    yield
    metrics.disarm()
    metrics.registry().reset()


def _measure(session, program, states, trace):
    result = session.run(program, states, trace=trace)
    return result


@pytest.mark.parametrize("arch,pin", PINS,
                         ids=[f"{e}bit_lmul{l}" for (e, l), _ in PINS])
def test_armed_cycles_bit_identical(arch, pin):
    """Arming metrics must not move a single simulated cycle."""
    elen, lmul = arch
    program = build_program(elen, lmul, 5)
    states = make_states(1)
    expected = [keccak_f1600(s) for s in states]

    session = Session()
    disarmed = session.run(program, states, trace=True)
    assert disarmed.states == expected
    assert disarmed.permutation_cycles == pin

    metrics.arm()
    try:
        armed = session.run(program, states, trace=True)
        armed_untraced = session.run(program, states)
    finally:
        metrics.disarm()
    assert armed.states == expected
    assert armed.permutation_cycles == pin
    assert armed.stats.cycles == disarmed.stats.cycles
    assert armed.stats.instructions == disarmed.stats.instructions
    assert armed_untraced.states == expected

    # The armed runs actually recorded something (the guard guards an
    # instrumented path, not a no-op).
    runs = metrics.registry().get("session_runs_total")
    assert runs is not None and runs.value(
        program=program.name, geometry=f"{elen}x5") == 2


def test_disarmed_overhead_under_3pct():
    """The bench_table7 workload pays <3% after an arm/disarm cycle.

    Mirrors the fault-hook guard: leg A is a session that was never
    armed, leg B went through arm → instrumented runs → disarm.  Both
    are measured disarmed, so the guard pins the wrap-on-arm claim —
    arming flips a flag and leaves nothing wrapped, re-decoded or
    re-compiled behind.
    """
    program = build_program(64, 8, 5)
    states = make_states(1)
    expected = [keccak_f1600(s) for s in states]
    pristine = Session()
    cycled = Session()
    assert pristine.run(program, states).states == expected  # warm
    metrics.arm()
    try:
        assert cycled.run(program, states).states == expected
    finally:
        metrics.disarm()

    def best_of(session, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            session.run(program, states)
            best = min(best, time.perf_counter() - start)
        return best

    def measure_overhead():
        # Interleave the legs in small groups so scheduler contention
        # and clock-frequency drift hit both sides; the min over all
        # groups approximates each leg's true floor.
        pristine_best = float("inf")
        cycled_best = float("inf")
        for _ in range(8):
            pristine_best = min(pristine_best, best_of(pristine, 3))
            cycled_best = min(cycled_best, best_of(cycled, 3))
        return cycled_best / pristine_best - 1.0

    # A systematic >3% overhead fails every session; noise does not, so
    # retry up to three measurement sessions (same policy as the
    # fault-hook guard).
    overheads = []
    for _ in range(3):
        overheads.append(measure_overhead())
        if overheads[-1] < OVERHEAD_LIMIT:
            break
    assert overheads[-1] < OVERHEAD_LIMIT, (
        f"disarmed metrics consistently slower in {len(overheads)} "
        f"sessions: " + ", ".join(f"{o:+.1%}" for o in overheads)
        + f" (limit {OVERHEAD_LIMIT:.0%})"
    )


@pytest.mark.parametrize("leg", ["disarmed", "armed"])
def test_bench_metrics(benchmark, leg):
    program = build_program(64, 8, 5)
    states = make_states(1)
    session = Session()
    expected = [keccak_f1600(s) for s in states]
    session.run(program, states)  # warm predecode + kernel caches
    if leg == "armed":
        metrics.arm()
    try:
        result = benchmark(lambda: session.run(program, states))
    finally:
        metrics.disarm()
    assert result.states == expected
    benchmark.extra_info["cycles"] = result.stats.cycles
    benchmark.extra_info["leg"] = leg
