"""Benchmark harness for the PQC motivation (paper Section 1, future work).

The paper motivates multi-state Keccak with Kyber's matrix-A expansion.
This bench measures the software batch effect (numpy-parallel states vs
one-at-a-time SHAKE) and projects the workload onto the paper's
architectures via the simulator's permutation latencies.
"""

import pytest

from repro.arch import ArchConfig
from repro.eval.measure import measure_config, measure_scalar_baseline
from repro.pqc import (
    estimate_workload_cycles,
    generate_matrix_parallel,
    generate_matrix_sequential,
)

SEED = bytes(range(32))


@pytest.fixture(scope="module", autouse=True)
def print_projection():
    yield
    k = 4  # Kyber1024: 16 XOF streams, each needs >= 3 permutations
    permutations = 16 * 3
    print()
    print("Kyber1024 matrix-A expansion projected onto the architectures")
    baseline = measure_scalar_baseline()
    rows = [("Ibex C-code (1 state)", baseline.permutation_cycles, 1)]
    for elen, lmul in ((64, 8), (32, 8)):
        for elenum in (5, 30):
            config = ArchConfig(elen, elenum, lmul, elenum // 5)
            m = measure_config(config)
            rows.append((config.label, m.permutation_cycles, m.num_states))
    for label, cycles, sn in rows:
        est = estimate_workload_cycles(permutations, cycles, sn, label)
        print(f"  {label:45s} {est.batches:4d} batches  "
              f"{est.total_cycles:9d} cycles")


def test_parallel_matches_sequential_kyber768():
    assert generate_matrix_parallel(SEED, 3) == \
        generate_matrix_sequential(SEED, 3)


def test_projection_shape_parallel_states_win():
    """6-state configs need 6x fewer permutation batches."""
    one = estimate_workload_cycles(48, 1892, 1, "one")
    six = estimate_workload_cycles(48, 1892, 6, "six")
    assert one.total_cycles == 6 * six.total_cycles


def test_projection_vs_scalar_baseline():
    """The projected vector speedup on the Kyber workload matches the
    paper's per-permutation speedup (latency ratio x state count)."""
    baseline = measure_scalar_baseline()
    vector = measure_config(ArchConfig(64, 30, 8, 6))
    scalar_est = estimate_workload_cycles(
        48, baseline.permutation_cycles, 1, "scalar")
    vector_est = estimate_workload_cycles(
        48, vector.permutation_cycles, 6, "vector")
    speedup = scalar_est.total_cycles / vector_est.total_cycles
    expected = 6 * baseline.permutation_cycles / vector.permutation_cycles
    assert speedup == pytest.approx(expected)
    assert speedup > 100


def test_bench_sequential_matrix(benchmark):
    benchmark(lambda: generate_matrix_sequential(SEED, 2))


def test_bench_parallel_matrix(benchmark):
    benchmark(lambda: generate_matrix_parallel(SEED, 2))


def test_bench_parallel_matrix_kyber1024(benchmark):
    benchmark(lambda: generate_matrix_parallel(SEED, 4))
