"""Tree-hashing speedup guard: SoA-batched leaves vs the sequential path.

The tree planner's reason to exist is that leaf chunks are independent
sponges, so a 64-leaf input can ride one SoA mega-batch kernel call per
permutation step instead of 64 sequential pure-Python sponge runs.
This module pins that claim on the acceptance workload — 64 leaf chunks
of 8 KiB (the K12 chunk size), hashed with the 12-round K12 leaf spec:

* digest equivalence first — sequential, batched and pooled leaf paths
  must produce bit-identical chaining values, and the end-to-end
  KangarooTwelve digest must not depend on the engine (deterministic,
  cannot flake);
* warm wall-clock for the 64-leaf batch must be at least
  ``SPEEDUP_FLOOR``x faster on the SoA engine than on the sequential
  reference path (the paper-level target is 4x and the measured ratio
  is far above it; the guard is set where scheduler noise cannot
  produce a false failure);
* both legs are recorded to ``BENCH_*treehash*.json`` via
  ``--bench-json`` so the perf trajectory across PRs is diffable.

The floor derates on a single hardware thread: the speedup is
engine-bound (64 lanes per kernel call, not threads), but a saturated
one-core machine timeslices the interpreter against the OS, so the
guard allows the extra jitter.
"""

import os
import time

import pytest

from repro.keccak.kangarootwelve import K12_CHUNK_BYTES, k12_pattern, \
    kangarootwelve
from repro.keccak.treehash import K12_LEAF, hash_leaves, plan_tree

try:
    EFFECTIVE_CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - no affinity API
    EFFECTIVE_CORES = os.cpu_count() or 1

#: CI guard for the batched-vs-sequential ratio (the observed warm
#: ratio is an order of magnitude higher; see the module docstring).
SPEEDUP_FLOOR = 2.0 if EFFECTIVE_CORES >= 2 else 1.5

#: The acceptance workload: 64 full leaf chunks.
LEAVES = [k12_pattern(K12_CHUNK_BYTES) for _ in range(64)]

#: A 64-leaf end-to-end K12 message (head chunk + 64 full leaves).
MESSAGE = k12_pattern(65 * K12_CHUNK_BYTES - 1)


def _sequential():
    return [K12_LEAF.reference_cv(leaf) for leaf in LEAVES]


def _batched():
    return hash_leaves(LEAVES, K12_LEAF, engine="soa")


def test_all_leaf_paths_bit_identical():
    expected = _sequential()
    assert _batched() == expected
    assert hash_leaves(LEAVES, K12_LEAF, engine="reference",
                       workers=2) == expected  # pooled


def test_k12_end_to_end_engine_independent():
    assert kangarootwelve(MESSAGE, 32) == \
        kangarootwelve(MESSAGE, 32, engine="reference")


def test_planner_picks_batched_soa_for_the_workload():
    plan = plan_tree(len(LEAVES))
    assert plan.mode == "batched"
    assert plan.engine == "soa"


def test_batched_speedup_over_sequential():
    _batched()  # warm the SoA kernel cache outside the timing

    def once(runner):
        start = time.perf_counter()
        runner()
        return time.perf_counter() - start

    # The sequential leg is ~30x slower, so one round per session is
    # plenty; retry whole sessions so a noisy one cannot fail the build.
    speedups = []
    for _ in range(3):
        speedups.append(once(_sequential) / min(once(_batched),
                                                once(_batched)))
        if speedups[-1] >= SPEEDUP_FLOOR:
            break
    assert speedups[-1] >= SPEEDUP_FLOOR, (
        f"SoA-batched leaves consistently under {SPEEDUP_FLOOR}x vs the "
        f"sequential path in {len(speedups)} sessions: "
        + ", ".join(f"{s:.2f}x" for s in speedups)
    )


@pytest.mark.parametrize("mode", ["sequential", "batched"])
def test_bench_treehash(benchmark, mode):
    runner = _sequential if mode == "sequential" else _batched
    expected = _sequential()
    if mode == "batched":
        _batched()  # warm the kernel cache outside the timing

    cvs = benchmark.pedantic(runner, rounds=3, iterations=1)
    assert cvs == expected
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["leaves"] = len(LEAVES)
    benchmark.extra_info["leaf_bytes"] = K12_CHUNK_BYTES
    benchmark.extra_info["num_rounds"] = K12_LEAF.num_rounds


def test_bench_k12_tree_soa(benchmark):
    kangarootwelve(MESSAGE, 32)  # warm the kernel cache

    digest = benchmark.pedantic(lambda: kangarootwelve(MESSAGE, 32),
                                rounds=3, iterations=1)
    assert digest == kangarootwelve(MESSAGE, 32, engine="reference")
    benchmark.extra_info["message_mb"] = round(len(MESSAGE) / 1e6, 2)
    benchmark.extra_info["engine"] = "soa"
