"""Benchmark harness for the Section 4.2 headline speedup factors (E5).

Regenerates all eight paper-vs-measured comparison factors and asserts
each within tolerance; also times the full report generation.
"""

import pytest

from repro.eval.report import generate_report, render_report


@pytest.fixture(scope="module")
def report():
    return generate_report()


@pytest.fixture(scope="module", autouse=True)
def print_report(report):
    yield
    print()
    print(render_report(report))


def test_all_headline_factors_reproduced(report):
    """Every Section 4.2 factor within 6% of the paper's claim."""
    assert len(report) == 9
    for comparison in report:
        assert comparison.relative_error < 0.06, comparison.description


@pytest.mark.parametrize("fragment,expected", [
    ("LMUL=8 vs LMUL=1", 1.35),
    ("vs C-code throughput", 117.9),
    ("vs C-code area", 111.2),
    ("MIPS Co-processor ISE throughput", 45.7),
    ("MIPS Co-processor ISE area", 6.3),
    ("DASIP throughput", 43.2),
    ("DASIP area", 31.5),
])
def test_individual_factor(report, fragment, expected):
    matches = [c for c in report if fragment in c.description]
    assert len(matches) == 1
    assert matches[0].measured_factor == pytest.approx(expected, rel=0.06)


def test_bench_report_generation(benchmark):
    """Time the full evaluation pipeline (uses cached measurements)."""
    result = benchmark(generate_report)
    assert len(result) == 9
