"""Machine-readable benchmark recording (``--bench-json``).

With ``pytest benchmarks/ --benchmark-only --bench-json=DIR``, each
benchmark's wall-clock statistics (and any simulator cycle counts the
benchmark attached via ``benchmark.extra_info``) are written to
``DIR/BENCH_<name>.json``, one file per benchmark, so the performance
trajectory across PRs can be diffed and plotted without parsing pytest
output.

Schema of each file (shared with
``repro.observability.trajectory.WALL_CLOCK_FIELDS`` — the round-trip
test in ``tests/observability`` pins the two in sync)::

    {
      "name": "test_bench_64bit_permutation[lmul1]",
      "wall_clock": {"min": ..., "max": ..., "mean": ...,
                     "stddev": ..., "rounds": N},
      "extra": {"cycles": ..., ...}        # whatever the bench recorded
    }

``repro stats`` consumes these records: it diffs a fresh run against the
committed ``benchmarks/baseline/`` snapshot and updates that snapshot
with ``--update-baseline``.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict

#: The wall-clock fields every record carries, in schema order.
WALL_CLOCK_FIELDS = ("min", "max", "mean", "stddev", "rounds")


def _slug(name: str) -> str:
    """A filesystem-safe version of a benchmark's test name."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


def record_benchmark(directory: str, name: str,
                     stats: Dict[str, Any],
                     extra: Dict[str, Any]) -> str:
    """Write one benchmark's record; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{_slug(name)}.json")
    with open(path, "w") as handle:
        json.dump({"name": name, "wall_clock": stats, "extra": extra},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def extract_stats(bench) -> Dict[str, Any]:
    """Pull the portable wall-clock numbers off a pytest-benchmark entry."""
    stats = bench.stats.stats if hasattr(bench.stats, "stats") else bench.stats
    return {name: getattr(stats, name) for name in WALL_CLOCK_FIELDS}
