"""Benchmark harness for Table 8: the 32-bit architectures vs references.

Regenerates the paper's Table 8 rows, checks every measured row against
the published one, asserts the comparison *shape* (our designs beat all
five related designs; the ranking among references holds), and times the
32-bit simulation plus the scalar Ibex baseline.
"""

import pytest

from repro.arch import ArchConfig, TABLE8_CONFIGS
from repro.eval.measure import measure_config, measure_scalar_baseline
from repro.eval.tables import PAPER_TABLE8, generate_table8, render_table
from repro.programs import build_program, run_keccak_program, scalar_keccak
from repro.related import TABLE8_RELATED
from repro.sim import SIMDProcessor

from conftest import make_states


@pytest.fixture(scope="module", autouse=True)
def print_table8():
    yield
    print()
    print(render_table(generate_table8(), "Table 8 — 32-bit architectures"))


@pytest.mark.parametrize("config", TABLE8_CONFIGS, ids=lambda c: c.label)
def test_table8_row_matches_paper(config):
    measurement = measure_config(config)
    c_round, c_byte, tput, slices = PAPER_TABLE8[config.label]
    assert measurement.cycles_per_round == c_round
    assert measurement.cycles_per_byte == pytest.approx(c_byte, abs=0.1)
    assert measurement.throughput_e3 == pytest.approx(tput, rel=0.001)
    assert measurement.area_slices == slices


def test_table8_shape_our_designs_win():
    """Who wins: every 32-bit vector config beats every related design."""
    references = [d.throughput_e3 for d in TABLE8_RELATED]
    weakest_ours = measure_config(ArchConfig(32, 5, 8, 1))
    assert weakest_ours.throughput_e3 > max(references)


def test_table8_shape_reference_ranking_preserved():
    """Among the references: DASIP > MIPS Co-proc > MIPS Native >
    OASIP > Ibex C-code > LEON3 in throughput (paper's Table 8)."""
    ordering = [d.throughput_e3 for d in TABLE8_RELATED
                if d.throughput_e3 is not None]
    expected = sorted(
        [21.68, 44.92, 58.01, 27.44, 61.35, 22.45], reverse=True
    )
    assert sorted(ordering, reverse=True) == expected


def test_scalar_baseline_in_regime():
    """Our C-code-equivalent baseline lands in the paper's regime."""
    baseline = measure_scalar_baseline()
    assert 250 < baseline.cycles_per_byte < 400
    # Paper: 117.9x between the 6-state 32-bit design and C-code.
    best = measure_config(ArchConfig(32, 30, 8, 6))
    factor = best.throughput_e3 / baseline.throughput_e3
    assert 80 < factor < 140


def test_bench_32bit_permutation(benchmark):
    program = build_program(32, 8, 5)
    states = make_states(1)

    def run():
        return run_keccak_program(program, states, trace=False)

    result = benchmark(run)
    benchmark.extra_info["cycles"] = result.stats.cycles
    assert result.stats.cycles >= 3620


def test_bench_scalar_baseline(benchmark):
    """Time the scalar Ibex-core simulation (the slow baseline)."""
    program = scalar_keccak.build()
    assembled = program.assemble()
    state = make_states(1)[0]

    def run():
        processor = SIMDProcessor(elen=32, elenum=5, trace=False)
        processor.load_program(assembled)
        scalar_keccak.setup_data(processor.memory, state)
        return processor.run()

    stats = benchmark(run)
    assert stats.cycles > 50_000
