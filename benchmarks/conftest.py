"""Shared helpers for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module regenerates
one table/figure/ablation of the paper: the ``bench_`` functions time the
simulator workloads with pytest-benchmark, and session-scoped report
fixtures print the regenerated rows so the harness output mirrors the
paper's evaluation section.
"""

from __future__ import annotations

import random

import pytest

from repro.keccak import KeccakState

from record import extract_stats, record_benchmark


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=None, metavar="DIR",
        help="write per-benchmark wall-clock + cycles to "
             "DIR/BENCH_<name>.json; diff against the committed "
             "benchmarks/baseline/ with `python -m repro stats "
             "--bench-dir DIR`",
    )


def pytest_sessionfinish(session, exitstatus):
    directory = session.config.getoption("--bench-json")
    if not directory:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    for bench in bench_session.benchmarks:
        if not bench.has_error and bench.stats is not None:
            record_benchmark(directory, bench.name, extract_stats(bench),
                             dict(bench.extra_info))


def make_states(count: int, seed: int = 2023):
    rng = random.Random(seed)
    return [
        KeccakState([rng.getrandbits(64) for _ in range(25)])
        for _ in range(count)
    ]


@pytest.fixture(scope="session")
def states6():
    return make_states(6)
