"""Shared helpers for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module regenerates
one table/figure/ablation of the paper: the ``bench_`` functions time the
simulator workloads with pytest-benchmark, and session-scoped report
fixtures print the regenerated rows so the harness output mirrors the
paper's evaluation section.
"""

from __future__ import annotations

import random

import pytest

from repro.keccak import KeccakState


def make_states(count: int, seed: int = 2023):
    rng = random.Random(seed)
    return [
        KeccakState([rng.getrandbits(64) for _ in range(25)])
        for _ in range(count)
    ]


@pytest.fixture(scope="session")
def states6():
    return make_states(6)
