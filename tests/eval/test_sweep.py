"""Tests for the design-space sweep."""

import pytest

from repro.eval.sweep import pareto_frontier, render_sweep, sweep_design_space


@pytest.fixture(scope="module")
def points():
    return sweep_design_space(elenums=[5, 15, 30])


class TestSweep:
    def test_point_count(self, points):
        # 3 EleNums x (3 paper configs + 1 fused).
        assert len(points) == 12

    def test_latency_constant_across_elenum(self, points):
        for lmul, elen in ((1, 64), (8, 64), (8, 32)):
            rounds = {p.cycles_per_round for p in points
                      if p.lmul == lmul and p.elen == elen and not p.fused}
            assert len(rounds) == 1

    def test_throughput_scales_with_states(self, points):
        lmul8_64 = sorted(
            (p for p in points if p.elen == 64 and p.lmul == 8
             and not p.fused),
            key=lambda p: p.num_states,
        )
        base = lmul8_64[0].throughput_e3
        for p in lmul8_64:
            assert p.throughput_e3 == pytest.approx(
                base * p.num_states, rel=0.001)

    def test_fused_fastest_at_every_elenum(self, points):
        for elenum in (5, 15, 30):
            group = [p for p in points if p.elenum == elenum]
            best = max(group, key=lambda p: p.throughput_e3)
            assert best.fused

    def test_fused_cycles(self, points):
        fused = [p for p in points if p.fused]
        assert all(p.cycles_per_round == 45 for p in fused)
        assert all(p.permutation_cycles == 1172 for p in fused)

    def test_without_fused(self):
        points = sweep_design_space(elenums=[5], include_fused=False)
        assert len(points) == 3
        assert not any(p.fused for p in points)

    def test_efficiency_metric(self, points):
        p = points[0]
        assert p.throughput_per_kslice == pytest.approx(
            1000 * p.throughput_e3 / p.area_slices)


class TestPareto:
    def test_frontier_subset(self, points):
        frontier = pareto_frontier(points)
        assert set(p.label for p in frontier) <= set(p.label for p in points)
        assert frontier

    def test_frontier_sorted_by_area(self, points):
        frontier = pareto_frontier(points)
        areas = [p.area_slices for p in frontier]
        assert areas == sorted(areas)

    def test_no_point_dominates_frontier_member(self, points):
        frontier = pareto_frontier(points)
        for f in frontier:
            for p in points:
                dominates = (p.throughput_e3 > f.throughput_e3
                             and p.area_slices <= f.area_slices)
                assert not dominates, (p.label, f.label)

    def test_fused_on_frontier(self, points):
        frontier = pareto_frontier(points)
        assert any(p.fused for p in frontier)


class TestRendering:
    def test_render(self, points):
        text = render_sweep(points)
        assert "Design-space sweep" in text
        assert "tput/kslice" in text
        assert "64-bit fused" in text
