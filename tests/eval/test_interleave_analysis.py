"""Tests for the bit-interleaving trade-off (§3.2) — modeled and measured."""

import pytest

from repro.eval.interleave_analysis import (
    HARDWARE_ROTATE,
    ROTATIONS_PER_PERMUTATION,
    RV32_LOOPED,
    Scenario,
    analyze,
    render_analysis,
)
from repro.keccak import KeccakState, keccak_f1600
from repro.programs import scalar_keccak, scalar_keccak_interleaved
from repro.sim import SIMDProcessor


def run_baseline(module, state):
    program = module.build()
    processor = SIMDProcessor(elen=32, elenum=5, trace=True)
    processor.load_program(program.assemble())
    module.setup_data(processor.memory, state)
    stats = processor.run()
    return module.read_state(processor.memory), stats, program.assemble()


@pytest.fixture(scope="module")
def measured():
    state = KeccakState([(i * 0x9E3779B97F4A7C15) % (1 << 64)
                         for i in range(25)])
    expected = keccak_f1600(state)
    results = {}
    for name, module in (("hilo", scalar_keccak),
                         ("interleaved", scalar_keccak_interleaved)):
        out, stats, assembled = run_baseline(module, state)
        assert out == expected, name
        body = stats.cycles_in_pc_range(assembled.symbols["round_body"],
                                        assembled.symbols["round_end"])
        results[name] = {"stats": stats, "assembled": assembled,
                         "round": body / 24}
    return results


class TestMeasuredTradeoff:
    def test_both_representations_bit_exact(self, measured):
        assert set(measured) == {"hilo", "interleaved"}

    def test_rounds_within_five_percent(self, measured):
        """On RV32 (no rotate instruction) the representations are nearly
        tied per round — the folklore advantage of interleaving needs a
        hardware rotate."""
        hilo = measured["hilo"]["round"]
        interleaved = measured["interleaved"]["round"]
        assert abs(interleaved - hilo) / hilo < 0.05

    def test_conversion_overhead_measured(self, measured):
        stats = measured["interleaved"]["stats"]
        assembled = measured["interleaved"]["assembled"]
        conv_in = stats.cycles_in_pc_range(
            assembled.symbols["interleave_start"],
            assembled.symbols["interleave_end"])
        conv_out = stats.cycles_in_pc_range(
            assembled.symbols["deinterleave_start"],
            assembled.symbols["deinterleave_end"])
        assert conv_in == conv_out == 1809
        # Conversion is a real but secondary cost: ~5% of the permutation.
        total = stats.cycles
        assert 0.03 < (conv_in + conv_out) / total < 0.10

    def test_hilo_wins_overall_on_rv32(self, measured):
        hilo_total = measured["hilo"]["stats"].cycles
        interleaved_total = measured["interleaved"]["stats"].cycles
        assert hilo_total < interleaved_total

    def test_interleaved_rhopi_is_branch_poor(self, measured):
        """The interleaved rho never takes the >=32 swap branch path that
        the hi/lo variant needs (all rotation amounts are < 32)."""
        stats = measured["interleaved"]["stats"]
        # The only conditional inside rhopi besides the loop is the
        # odd-amount swap; count taken branches indirectly via cycles of
        # beqz/bnez-free structure: just assert the program ran with the
        # expected instruction set.
        assert stats.mnemonic_counts["sub"] > 0
        assert stats.mnemonic_counts["sll"] > 0


class TestScenarioModel:
    def test_rotation_count(self):
        assert ROTATIONS_PER_PERMUTATION == 24 * 29

    def test_rv32_looped_never_breaks_even(self):
        assert RV32_LOOPED.break_even_permutations == float("inf")
        assert not RV32_LOOPED.interleaving_wins(1_000_000)

    def test_hardware_rotate_breaks_even_quickly(self):
        be = HARDWARE_ROTATE.break_even_permutations
        assert be < 1.0  # one permutation already amortizes the transform
        assert HARDWARE_ROTATE.interleaving_wins(24)

    def test_custom_scenario(self):
        s = Scenario("x", hilo_rotation_cycles=6,
                     interleaved_rotation_cycles=5,
                     conversion_cycles_per_state=696)
        assert s.rotation_savings_per_permutation == 24 * 29
        assert s.break_even_permutations == pytest.approx(1.0)

    def test_analyze_default(self):
        assert analyze() is RV32_LOOPED


class TestRendering:
    def test_render_mentions_both_regimes(self):
        text = render_analysis()
        assert "RV32IM" in text
        assert "rotate" in text
        assert "break-even" in text
