"""The design-space sweeper: grid construction, measurement, transport
identity, Pareto reduction, artifact schema and the paper pins."""

import copy
import json

import pytest

from repro.arch.area import (
    AREA_ANCHORS,
    IBEX_SLICES,
    explore_slices,
    slices,
)
from repro.eval.explore import (
    EXPLORE_SCHEMA,
    PAPER_PINS,
    ExplorePoint,
    build_artifact,
    check_pins,
    default_artifact_path,
    explore,
    explore_grid,
    measure_point,
    pareto_frontier,
    validate_artifact,
    validate_artifact_file,
    write_artifact,
)

#: A small grid reused across tests: one EleNum, one variant, the
#: bank/issue microarchitecture axes (4 points, 1 default-timing).
SMALL_GRID = explore_grid(elenums=(5,), variants=((64, 8),),
                          banks=(1, 2), issue_widths=(1, 2))


@pytest.fixture(scope="module")
def small_results():
    return explore(SMALL_GRID)


class TestGrid:
    def test_default_grid_shape(self):
        grid = explore_grid()
        # 3 elenums x 3 variants x 2 banks x 2 issue widths
        assert len(grid) == 36
        assert sum(p.is_default_timing for p in grid) == 9

    def test_default_timing_points_sort_first(self):
        grid = explore_grid()
        defaults = [p.is_default_timing for p in grid]
        assert defaults == sorted(defaults, reverse=True)

    def test_rejects_bad_elenum(self):
        with pytest.raises(ValueError):
            explore_grid(elenums=(7,))
        with pytest.raises(ValueError):
            explore_grid(elenums=(0,))

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            explore_grid(variants=((128, 8),))

    def test_points_run_fully_occupied(self):
        for point in explore_grid(elenums=(5, 15)):
            assert point.num_states == point.elenum // 5


class TestMeasurement:
    def test_default_points_reproduce_every_pin(self):
        for (elen, lmul), (cycles, cpr) in PAPER_PINS.items():
            result = measure_point(ExplorePoint(
                elen=elen, lmul=lmul, elenum=5, num_states=1))
            assert result.permutation_cycles == cycles
            assert result.cycles_per_round == cpr

    def test_pins_are_elenum_independent(self):
        for elenum in (5, 15):
            result = measure_point(ExplorePoint(
                elen=64, lmul=8, elenum=elenum,
                num_states=elenum // 5))
            assert result.permutation_cycles == 1892

    def test_knobs_reduce_cycles(self, small_results):
        by_knobs = {(r.point.register_banks, r.point.issue_width): r
                    for r in small_results}
        default = by_knobs[(1, 1)].permutation_cycles
        assert default == 1892
        assert by_knobs[(2, 1)].permutation_cycles < default
        assert by_knobs[(1, 2)].permutation_cycles < default
        assert by_knobs[(2, 2)].permutation_cycles \
            < by_knobs[(2, 1)].permutation_cycles


class TestTransportIdentity:
    """Serial, pickle and shm runs must agree bit for bit."""

    @pytest.mark.parametrize("transport", ("pickle", "shm"))
    def test_parallel_matches_serial(self, transport, small_results):
        parallel = explore(SMALL_GRID, workers=2, transport=transport)
        assert [(r.point, r.permutation_cycles, r.cycles_per_round,
                 r.timing_fingerprint) for r in parallel] \
            == [(r.point, r.permutation_cycles, r.cycles_per_round,
                 r.timing_fingerprint) for r in small_results]

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            explore(SMALL_GRID, workers=2, transport="carrier-pigeon")

    def test_empty_grid(self):
        assert explore([]) == []


class TestAreaModel:
    def test_defaults_reduce_to_calibrated_anchors(self):
        for elen, anchors in AREA_ANCHORS.items():
            for elenum, expected in anchors:
                assert explore_slices(elen, elenum) \
                    == slices(elen, elenum) == expected

    def test_knobs_grow_area(self):
        base = explore_slices(64, 5)
        assert explore_slices(64, 5, register_banks=2) > base
        assert explore_slices(64, 5, issue_width=2) \
            == base + 0.25 * IBEX_SLICES

    def test_validation(self):
        with pytest.raises(ValueError):
            explore_slices(64, 5, register_banks=0)
        with pytest.raises(ValueError):
            explore_slices(64, 5, issue_width=0)


class TestArtifact:
    def test_round_trips_and_validates(self, small_results, tmp_path):
        doc = build_artifact(small_results)
        path = write_artifact(doc, str(tmp_path / "pareto.json"))
        loaded = validate_artifact_file(path)
        assert loaded == doc
        assert loaded["schema"] == EXPLORE_SCHEMA
        assert check_pins(loaded) == []

    def test_writes_deterministically(self, small_results, tmp_path):
        doc = build_artifact(small_results)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_artifact(doc, str(a))
        write_artifact(build_artifact(explore(SMALL_GRID)), str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            build_artifact([])

    def test_frontier_labels_are_swept_points(self, small_results):
        doc = build_artifact(small_results)
        labels = {row["label"] for row in doc["points"]}
        assert doc["frontier"]
        assert set(doc["frontier"]) <= labels

    @pytest.mark.parametrize("mutate,fragment", [
        (lambda d: d.update(schema="bogus/9"), "schema"),
        (lambda d: d.pop("points"), "points"),
        (lambda d: d["points"][0].pop("permutation_cycles"), "mistyped"),
        (lambda d: d["points"][0].update(permutation_cycles=True),
         "numeric"),
        (lambda d: d["frontier"].append("not a point"), "frontier"),
        (lambda d: d.pop("axes"), "axes"),
    ])
    def test_validation_rejects_corruption(self, small_results, mutate,
                                           fragment):
        doc = copy.deepcopy(build_artifact(small_results))
        mutate(doc)
        with pytest.raises(ValueError, match=fragment):
            validate_artifact(doc)

    def test_check_pins_catches_wrong_cycles(self, small_results):
        doc = copy.deepcopy(build_artifact(small_results))
        for row in doc["points"]:
            if row["default_timing"]:
                row["permutation_cycles"] += 1
        problems = check_pins(doc)
        assert problems and "1893 != paper pin 1892" in problems[0]

    def test_check_pins_requires_default_row_per_variant(
            self, small_results):
        doc = copy.deepcopy(build_artifact(small_results))
        for row in doc["points"]:
            row["default_timing"] = False
        assert any("no default-timing row" in p for p in check_pins(doc))


class TestCommittedArtifact:
    """The artifact in benchmarks/baseline/ is the acceptance evidence:
    schema-valid, and its default rows reproduce the pins exactly."""

    def test_committed_artifact_validates_with_pins(self):
        doc = validate_artifact_file(default_artifact_path())
        assert len(doc["points"]) == 36
        defaults = [row for row in doc["points"] if row["default_timing"]]
        assert len(defaults) == 9
        for row in defaults:
            cycles, cpr = PAPER_PINS[(row["elen"], row["lmul"])]
            assert row["permutation_cycles"] == cycles
            assert row["cycles_per_round"] == cpr

    def test_committed_artifact_is_regenerable(self):
        """Byte-identical regeneration: same grid -> same file."""
        with open(default_artifact_path(), encoding="utf-8") as handle:
            committed = handle.read()
        doc = build_artifact(explore(explore_grid()))
        assert json.dumps(doc, indent=2, sort_keys=True) + "\n" \
            == committed


class TestPareto:
    def test_frontier_is_non_dominated(self, small_results):
        frontier = pareto_frontier(small_results)
        assert frontier
        for p in frontier:
            assert not any(
                q.throughput_e3 >= p.throughput_e3
                and q.area_slices <= p.area_slices
                and (q.throughput_e3 > p.throughput_e3
                     or q.area_slices < p.area_slices)
                for q in small_results)

    def test_frontier_sorted_by_area(self, small_results):
        areas = [r.area_slices for r in pareto_frontier(small_results)]
        assert areas == sorted(areas)
