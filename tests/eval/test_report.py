"""Tests for the Section 4.2 headline-factor report."""

import pytest

from repro.eval.report import Comparison, generate_report, render_report


@pytest.fixture(scope="module")
def report():
    return generate_report()


def by_description(report, fragment):
    matches = [c for c in report if fragment in c.description]
    assert len(matches) == 1, fragment
    return matches[0]


class TestHeadlineFactors:
    def test_lmul8_vs_lmul1_is_1_35(self, report):
        c = by_description(report, "LMUL=8 vs LMUL=1")
        assert c.paper_factor == 1.35
        assert c.measured_factor == pytest.approx(1.355, abs=0.01)

    def test_64_vs_32_bit_almost_twice(self, report):
        c = by_description(report, "64-bit vs 32-bit")
        assert c.measured_factor == pytest.approx(1.913, abs=0.01)

    def test_vs_c_code_117_9(self, report):
        c = by_description(report, "vs C-code throughput")
        assert c.measured_factor == pytest.approx(117.9, rel=0.01)

    def test_vs_c_code_area_111_2(self, report):
        c = by_description(report, "vs C-code area")
        assert c.measured_factor == pytest.approx(111.2, rel=0.01)

    def test_vs_mips_coprocessor_45_7(self, report):
        c = by_description(report, "MIPS Co-processor ISE throughput")
        assert c.measured_factor == pytest.approx(45.7, rel=0.01)

    def test_vs_dasip_43_2(self, report):
        c = by_description(report, "DASIP throughput")
        assert c.measured_factor == pytest.approx(43.2, rel=0.01)

    def test_vs_rawat(self, report):
        # The paper states 5.3x; recomputing from its own table values
        # (5073.00 / 1010.1) gives 5.02x — we reproduce the recomputation.
        c = by_description(report, "Rawat")
        assert c.measured_factor == pytest.approx(5.02, abs=0.02)
        assert c.relative_error < 0.06

    def test_all_factors_within_6_percent(self, report):
        for c in report:
            assert c.relative_error < 0.06, c.description


class TestMeasuredBaselineVariant:
    def test_measured_baseline_shifts_c_code_factor(self):
        report = generate_report(use_measured_baseline=True)
        c = by_description(report, "vs C-code throughput")
        # Our hand-written looped assembly is somewhat faster than the
        # paper's compiled C, so the factor drops but stays ~100x.
        assert 80 < c.measured_factor < 130


class TestRendering:
    def test_render(self, report):
        text = render_report(report)
        assert "Section 4.2 headline factors" in text
        assert "paper" in text and "measured" in text
        assert "117.9" in text or "117.90" in text

    def test_comparison_relative_error(self):
        c = Comparison("x", 2.0, 2.2)
        assert c.relative_error == pytest.approx(0.1)
