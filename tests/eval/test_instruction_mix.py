"""Tests for the per-step-mapping cycle breakdown."""

import pytest

from repro.eval.instruction_mix import measure_instruction_mix
from repro.keccak import KeccakState
from repro.programs import (
    keccak32_lmul8,
    keccak64_fused,
    keccak64_lmul1,
    keccak64_lmul8,
)


@pytest.fixture(scope="module")
def state():
    return [KeccakState(list(range(25)))]


class TestAlgorithm2Mix:
    def test_sections_sum_to_total(self, state):
        mix = measure_instruction_mix(keccak64_lmul1.build(5), state)
        assert sum(mix.section_cycles.values()) == mix.total_cycles

    def test_exact_section_cycles(self, state):
        """Algorithm 2 per-round: theta 26, rho 10, pi 15, chi 50, iota 2."""
        mix = measure_instruction_mix(keccak64_lmul1.build(5), state)
        assert mix.section_cycles["theta"] == 24 * 26
        assert mix.section_cycles["rho"] == 24 * 10
        assert mix.section_cycles["pi"] == 24 * 15
        assert mix.section_cycles["chi"] == 24 * 50
        assert mix.section_cycles["iota"] == 24 * 2

    def test_chi_dominates(self, state):
        mix = measure_instruction_mix(keccak64_lmul1.build(5), state)
        assert mix.section_cycles["chi"] == max(
            cycles for section, cycles in mix.section_cycles.items()
            if section not in ("setup", "loop")
        )


class TestLmul8Mix:
    def test_exact_section_cycles(self, state):
        """Algorithm 3: rho section includes its vsetvli (2+6), iota its
        vsetvli (2+2)."""
        mix = measure_instruction_mix(keccak64_lmul8.build(5), state)
        assert mix.section_cycles["theta"] == 24 * 26
        assert mix.section_cycles["rho"] == 24 * 8
        assert mix.section_cycles["pi"] == 24 * 7
        assert mix.section_cycles["chi"] == 24 * 30
        assert mix.section_cycles["iota"] == 24 * 4

    def test_grouping_shrinks_rho_pi_chi_only(self, state):
        m1 = measure_instruction_mix(keccak64_lmul1.build(5), state)
        m8 = measure_instruction_mix(keccak64_lmul8.build(5), state)
        assert m8.section_cycles["theta"] == m1.section_cycles["theta"]
        for section in ("rho", "pi", "chi"):
            assert m8.section_cycles[section] < m1.section_cycles[section]


class TestFusedMix:
    def test_theta_becomes_the_bottleneck(self, state):
        """After fusing rho+pi and chi, theta dominates the round —
        the next optimization target the breakdown exposes."""
        mix = measure_instruction_mix(keccak64_fused.build(5), state)
        step_sections = {k: v for k, v in mix.section_cycles.items()
                         if k in ("theta", "rho", "pi", "chi", "iota")}
        assert max(step_sections, key=step_sections.get) == "theta"
        assert mix.fraction("theta") > 0.5


class Test32BitMix:
    def test_sections_double_vs_64bit(self, state):
        m64 = measure_instruction_mix(keccak64_lmul8.build(5), state)
        m32 = measure_instruction_mix(keccak32_lmul8.build(5), state)
        assert m32.section_cycles["theta"] == 2 * m64.section_cycles["theta"]
        assert m32.section_cycles["chi"] == 2 * m64.section_cycles["chi"]


class TestRendering:
    def test_render(self, state):
        mix = measure_instruction_mix(keccak64_lmul1.build(5), state)
        text = mix.render()
        assert "keccak64_lmul1" in text
        assert "chi" in text and "%" in text

    def test_fraction(self, state):
        mix = measure_instruction_mix(keccak64_lmul1.build(5), state)
        total = sum(mix.fraction(s) for s in mix.section_cycles)
        assert total == pytest.approx(1.0)
