"""Tests for the measurement driver."""

import pytest

from repro.arch import ArchConfig
from repro.eval.measure import (
    Measurement,
    measure_config,
    measure_scalar_baseline,
)


class TestMeasureConfig:
    def test_64bit_lmul1(self):
        m = measure_config(ArchConfig(64, 5, 1, 1))
        assert m.cycles_per_round == 103
        assert m.permutation_cycles == 2564
        assert m.cycles_per_byte == pytest.approx(12.8, abs=0.05)
        assert m.throughput_e3 == pytest.approx(624.02, abs=0.01)
        assert m.area_slices == 7323

    def test_64bit_lmul8(self):
        m = measure_config(ArchConfig(64, 30, 8, 6))
        assert m.cycles_per_round == 75
        assert m.permutation_cycles == 1892
        assert m.throughput_e3 == pytest.approx(5074.0, abs=0.1)

    def test_32bit_lmul8(self):
        m = measure_config(ArchConfig(32, 15, 8, 3))
        assert m.cycles_per_round == 147
        assert m.permutation_cycles == 3620
        assert m.throughput_e3 == pytest.approx(1325.97, abs=0.01)
        assert m.area_slices == 23408

    def test_measurement_cached(self):
        config = ArchConfig(64, 5, 1, 1)
        assert measure_config(config) is measure_config(config)

    def test_labels_match_paper(self):
        m = measure_config(ArchConfig(64, 15, 8, 3))
        assert m.label == "64-bit with LMUL=8 (EleNum=15, 3 states)"


class TestScalarBaseline:
    def test_in_paper_regime(self):
        m = measure_scalar_baseline()
        assert 2000 < m.cycles_per_round < 3500
        assert 250 < m.cycles_per_byte < 400
        assert m.area_slices == 432

    def test_throughput_same_order_as_paper(self):
        m = measure_scalar_baseline()
        # Paper: 22.45; ours must be the same order of magnitude.
        assert 15 < m.throughput_e3 < 35


class TestMeasurementDataclass:
    def test_derived_fields(self):
        m = Measurement("x", 100, 2000, 2, 1000.0)
        assert m.cycles_per_byte == 10.0
        assert m.throughput_e3 == pytest.approx(1600.0)
