"""Tests for the Table 7 / Table 8 regeneration."""

import pytest

from repro.eval.tables import (
    PAPER_TABLE7,
    PAPER_TABLE8,
    generate_table7,
    generate_table8,
    render_table,
)


@pytest.fixture(scope="module")
def table7():
    return generate_table7()


@pytest.fixture(scope="module")
def table8():
    return generate_table8()


def measured_by_label(rows):
    return {r.implementation: r for r in rows if r.source == "measured"}


class TestTable7:
    def test_contains_rawat_literature_row(self, table7):
        lit = [r for r in table7 if r.source == "literature"]
        assert len(lit) == 1
        assert "Vector Extensions" in lit[0].implementation
        assert lit[0].cycles_per_round == 66

    def test_all_six_configs_measured(self, table7):
        measured = measured_by_label(table7)
        assert len(measured) == 6
        for label in PAPER_TABLE7:
            assert label in measured

    def test_measured_matches_paper_within_tolerance(self, table7):
        measured = measured_by_label(table7)
        for label, (c_round, c_byte, tput, area) in PAPER_TABLE7.items():
            row = measured[label]
            assert row.cycles_per_round == c_round, label
            assert row.cycles_per_byte == pytest.approx(c_byte, abs=0.1)
            assert row.throughput_e3 == pytest.approx(tput, rel=0.001)
            assert row.area_slices == area

    def test_paper_rows_interleaved(self, table7):
        paper_rows = [r for r in table7 if r.source == "paper"]
        assert len(paper_rows) == 6


class TestTable8:
    def test_contains_five_related_plus_ibex(self, table8):
        lit = [r for r in table8 if r.source == "literature"]
        names = " ".join(r.implementation for r in lit)
        for expected in ("LEON3", "MIPS Native", "MIPS Co-processor",
                         "OASIP", "DASIP", "Ibex core"):
            assert expected in names
        assert len(lit) == 6

    def test_measured_scalar_baseline_present(self, table8):
        measured = [r for r in table8 if r.source == "measured"]
        baselines = [r for r in measured if "C-code" in r.implementation]
        assert len(baselines) == 1
        assert 250 < baselines[0].cycles_per_byte < 400

    def test_measured_matches_paper(self, table8):
        measured = measured_by_label(table8)
        for label, (c_round, c_byte, tput, area) in PAPER_TABLE8.items():
            row = measured[label]
            assert row.cycles_per_round == c_round
            assert row.throughput_e3 == pytest.approx(tput, rel=0.001)
            assert row.area_slices == area

    def test_our_designs_beat_every_reference(self, table8):
        """The paper's core claim: the vector designs outperform all
        related work in throughput."""
        best_reference = max(
            r.throughput_e3 for r in table8
            if r.source == "literature" and r.throughput_e3
        )
        ours = [r for r in table8 if r.source == "measured"
                and "LMUL" in r.implementation]
        for row in ours:
            assert row.throughput_e3 > best_reference, row.implementation


class TestRendering:
    def test_render_contains_headers_and_rows(self, table7):
        text = render_table(table7, "Table 7")
        assert "Table 7" in text
        assert "cyc/rnd" in text
        assert "64-bit with LMUL=8 (EleNum=30, 6 states)" in text

    def test_render_handles_missing_values(self, table7):
        text = render_table(table7, "t")
        assert " - " in text or "-" in text  # Rawat has no slice count
