"""Tests for the figure reproductions (Figs. 5-8)."""

import pytest

from repro.eval.figures import (
    pi_rearrangement,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    slide_modulo_five,
)
from repro.keccak import KeccakState, pi


class TestFig5:
    def test_renders_all_registers(self):
        text = render_fig5(16, 3)
        for y in range(5):
            assert f"v{y}" in text

    def test_marks_occupied_slots(self):
        text = render_fig5(16, 3)
        assert "A0s00" in text
        assert "A2s44" in text

    def test_empty_slots_for_partial_occupancy(self):
        text = render_fig5(16, 1)
        assert "A1s" not in text

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            render_fig5(5, 2)


class TestFig6:
    def test_both_half_regions(self):
        text = render_fig6(15, 3)
        assert "high halves" in text
        assert "low halves" in text
        assert "v16" in text and "v0" in text

    def test_sh_and_sl_prefixes(self):
        text = render_fig6(5, 1)
        assert "sh000" in text
        assert "sl000" in text


class TestSlideModuloFive:
    def test_fig7_slide_down(self):
        elements = [f"s{x}0" for _ in range(3) for x in range(5)]
        out = slide_modulo_five(elements, 1, "down")
        assert out[:5] == ["s10", "s20", "s30", "s40", "s00"]
        # Third state shows the same rotation (no cross-state mixing).
        assert out[10:15] == ["s10", "s20", "s30", "s40", "s00"]

    def test_fig7_slide_up(self):
        elements = [f"s{x}0" for _ in range(2) for x in range(5)]
        out = slide_modulo_five(elements, 1, "up")
        assert out[:5] == ["s40", "s00", "s10", "s20", "s30"]

    def test_tail_elements_stay(self):
        elements = ["a", "b", "c", "d", "e", "tail1", "tail2"]
        out = slide_modulo_five(elements, 1, "down")
        assert out[5:] == ["tail1", "tail2"]

    def test_offset_zero_is_identity(self):
        elements = list("abcde")
        assert slide_modulo_five(elements, 0, "down") == elements

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            slide_modulo_five(list("abcde"), 1, "left")

    def test_render_fig7(self):
        text = render_fig7(num_states=3, offset=1)
        assert "slide down" in text
        assert "slide up" in text


class TestFig8:
    def test_pi_rearrangement_matches_reference_pi(self, random_state):
        grid = pi_rearrangement(1)
        permuted = pi(random_state)
        for y in range(5):
            for x in range(5):
                name = grid[y][x]  # "s<x><y>" of the source lane
                src_x, src_y = int(name[1]), int(name[2])
                assert permuted[x, y] == random_state[src_x, src_y]

    def test_multi_state_grid(self):
        grid = pi_rearrangement(3)
        assert len(grid[0]) == 15
        # Same scramble replicated per state.
        assert grid[2][0] == grid[2][5] == grid[2][10]

    def test_render_fig8(self):
        text = render_fig8()
        assert "pi operation" in text
        assert "s00" in text
