"""Tree hashing: ParallelHash/TupleHash vectors, the leaf planner
matrix, streaming objects, and kill-and-resume of a pooled tree batch.

The cross-path matrix is the module's core claim: every (leaf count,
engine, workers) combination must produce chaining values bit-identical
to the sequential pure-Python sponge, because the planner is allowed to
pick any of them at its own discretion.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.keccak import (
    K12_LEAF,
    PH128_LEAF,
    PH256_LEAF,
    ParallelHash128,
    ParallelHash256,
    hash_leaves,
    kangarootwelve,
    parallelhash128,
    parallelhash128_xof,
    parallelhash256,
    parallelhash256_xof,
    plan_tree,
    tuplehash128,
    tuplehash128_xof,
    tuplehash256,
    tuplehash256_xof,
)
from repro.keccak.kangarootwelve import K12_CHUNK_BYTES, k12_pattern
from repro.keccak.treehash import MIN_BATCH_LEAVES, TreePlan
from repro.sim import engines as sim_engines

# NIST SP 800-185 sample inputs (the published sample files' byte
# sequences 00 01 02 ... laid out as in the samples document).
_T1 = (b"\x00\x01\x02", b"\x10\x11\x12\x13\x14\x15")
_T3 = _T1 + (b"\x20\x21\x22\x23\x24\x25\x26\x27\x28",)
_X24 = bytes(range(8)) + bytes(range(0x10, 0x18)) + bytes(range(0x20, 0x28))
_X44 = (bytes(range(0x0C)) + bytes(range(0x10, 0x1C))
        + bytes(range(0x20, 0x2C)) + bytes(range(0x30, 0x38)))
_S = b"Parallel Data"


class TestTupleHashVectors:
    """NIST SP 800-185 TupleHash samples."""

    def test_tuplehash128_sample1(self):
        assert tuplehash128(_T1, 32).hex().upper() == (
            "C5D8786C1AFB9B82111AB34B65B2C004"
            "8FA64E6D48E263264CE1707D3FFC8ED1"
        )

    def test_tuplehash128_sample2_customization(self):
        assert tuplehash128(_T1, 32, b"My Tuple App").hex().upper() == (
            "75CDB20FF4DB1154E841D758E24160C5"
            "4BAE86EB8C13E7F5F40EB35588E96DFB"
        )

    def test_tuplehash128_sample3_three_strings(self):
        assert tuplehash128(_T3, 32, b"My Tuple App").hex().upper() == (
            "E60F202C89A2631EDA8D4C588CA5FD07"
            "F39E5151998DECCF973ADB3804BB6E84"
        )

    def test_tuplehash256_sample1(self):
        assert tuplehash256(_T1, 64).hex().upper() == (
            "CFB7058CACA5E668F81A12A20A2195CE97A925F1DBA3E744"
            "9A56F82201EC607311AC2696B1AB5EA2352DF1423BDE7BD4"
            "BB78C9AED1A853C78672F9EB23BBE194"
        )

    def test_tuple_boundaries_are_unambiguous(self):
        # ("ab", "c") and ("a", "bc") concatenate identically; the
        # encode_string framing must still separate them.
        assert tuplehash128((b"ab", b"c"), 32) != \
            tuplehash128((b"a", b"bc"), 32)

    def test_xof_variant_differs_and_streams_consistently(self):
        fixed = tuplehash128(_T1, 32)
        xof = tuplehash128_xof(_T1, 32)
        assert fixed != xof  # L is encoded into the node for the fixed form
        assert tuplehash128_xof(_T1, 64)[:32] == xof
        assert tuplehash256_xof(_T1, 64)[:32] == \
            tuplehash256_xof(_T1, 32)

    def test_256_xof_differs_from_fixed(self):
        assert tuplehash256(_T1, 64) != tuplehash256_xof(_T1, 64)

    def test_empty_tuple_and_empty_strings_distinct(self):
        assert tuplehash128((), 32) != tuplehash128((b"",), 32)
        assert tuplehash128((b"",), 32) != tuplehash128((b"", b""), 32)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            tuplehash128(_T1, -1)


class TestParallelHashVectors:
    """NIST SP 800-185 ParallelHash samples (block size 8 and 12)."""

    def test_parallelhash128_sample1(self):
        assert parallelhash128(_X24, 32, 8).hex().upper() == (
            "BA8DC1D1D979331D3F813603C67F7260"
            "9AB5E44B94A0B8F9AF46514454A2B4F5"
        )

    def test_parallelhash128_sample2_customization(self):
        assert parallelhash128(_X24, 32, 8, _S).hex().upper() == (
            "FC484DCB3F84DCEEDC353438151BEE58"
            "157D6EFED0445A81F165E495795B7206"
        )

    def test_parallelhash128_sample3_ragged_tail(self):
        # 44 bytes over B=12: three full blocks plus an 8-byte tail.
        assert parallelhash128(_X44, 32, 12, _S).hex().upper() == (
            "8887CF08CB274D54D371832ADCBDA586"
            "B657ED350DCAAD88128145F406BD6030"
        )

    def test_parallelhash256_sample1(self):
        assert parallelhash256(_X24, 64, 8).hex().upper() == (
            "BC1EF124DA34495E948EAD207DD98422"
            "35DA432D2BBC54B4C110E64C45110553"
            "1B7F2A3E0CE055C02805E7C2DE1FB746"
            "AF97A1DD01F43B824E31B87612410429"
        )

    def test_parallelhash256_sample2_customization(self):
        assert parallelhash256(_X24, 64, 8, _S).hex().upper() == (
            "CDF15289B54F6212B4BC270528B49526"
            "006DD9B54E2B6ADD1EF6900DDA3963BB"
            "33A72491F236969CA8AFAEA29C682D47"
            "A393C065B38E29FAE651A2091C833110"
        )

    def test_parallelhash256_sample3_ragged_tail(self):
        assert parallelhash256(_X44, 64, 12, _S).hex().upper() == (
            "FC40E2421457E8D89AA802F5AD76B811"
            "7E334046F8F2548605503A7655328E35"
            "80212D67107FBFA262A90BD25CBB8C36"
            "089CC49FD4CE614AFE2E2159749E579F"
        )

    def test_parallelhash128_xof_samples(self):
        assert parallelhash128_xof(_X24, 32, 8).hex().upper() == (
            "FE47D661E49FFE5B7D999922C0623567"
            "50CAF552985B8E8CE6667F2727C3C8D3"
        )
        assert parallelhash128_xof(_X24, 32, 8, _S).hex().upper() == (
            "EA2A793140820F7A128B8EB70A9439F9"
            "3257C6E6E79B4A540D291D6DAE7098D7"
        )
        assert parallelhash128_xof(_X44, 32, 12, _S).hex().upper() == (
            "DB33BA3F1D9F5B2E566E160DAB5FC6F5"
            "BB48AB7CACA6A6B58CEF1FF07B6403A9"
        )

    def test_parallelhash256_xof_sample3(self):
        assert parallelhash256_xof(_X44, 64, 12, _S).hex().upper() == (
            "8B2757AEF066BA37135D201FBE57F354"
            "77A0C1D29086062F118013109F73BDA7"
            "FB69B6744EA2D2B2DB4C7A7053379190"
            "815FA0A7B31496FC6C46E7460EDE4D01"
        )

    def test_xof_prefix_consistent(self):
        assert parallelhash128_xof(_X24, 64, 8)[:32] == \
            parallelhash128_xof(_X24, 32, 8)

    def test_block_size_and_length_validated(self):
        with pytest.raises(ValueError):
            parallelhash128(b"x", 32, 0)
        with pytest.raises(ValueError):
            parallelhash128(b"x", -1)

    def test_empty_message_is_one_empty_block(self):
        # SP 800-185: n = ceil(len/B) = 0 blocks for the empty string.
        assert len(parallelhash128(b"", 32)) == 32
        assert parallelhash128(b"", 32) != parallelhash128(b"\x00", 32)


class TestPlanner:
    def test_below_floor_is_sequential(self):
        for count in range(MIN_BATCH_LEAVES):
            plan = plan_tree(count)
            assert plan.mode == "sequential"
            assert plan.workers == 1

    def test_reference_without_pool_is_sequential(self):
        plan = plan_tree(100, engine="reference", workers=1)
        assert plan.mode == "sequential"
        assert plan.engine == "reference"

    def test_auto_prefers_soa(self):
        plan = plan_tree(100)
        assert plan.engine == "soa"
        assert plan.mode == "batched"
        assert plan.lane_width >= 1

    def test_pooled_needs_two_lane_groups(self):
        batched = plan_tree(100, workers=4)  # 100 < 2 * 64 soa lanes
        assert batched.mode == "batched"
        pooled = plan_tree(1000, workers=4)
        assert pooled.mode == "pooled"
        assert pooled.workers == 4

    def test_reference_pool_is_pooled(self):
        # The reference engine has no lane groups (whole-message C
        # hashing), so two leaves already fill 2 * lane_width = 2.
        plan = plan_tree(100, engine="reference", workers=2)
        assert plan.mode == "pooled"
        assert plan.lane_width == 1

    def test_twelve_round_plans_match_twenty_four(self):
        # Lane width comes from the arch, not the round count.
        assert plan_tree(500, num_rounds=12).lane_width == \
            plan_tree(500, num_rounds=24).lane_width

    def test_reasons_are_human_readable(self):
        assert "floor" in plan_tree(1).reason
        assert "workers" in plan_tree(1000, workers=4).reason

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            plan_tree(10, workers=-1)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            plan_tree(10, engine="warp-drive")

    def test_plan_is_frozen(self):
        plan = plan_tree(10)
        assert isinstance(plan, TreePlan)
        with pytest.raises(AttributeError):
            plan.mode = "other"


# -- the cross-path identity matrix -------------------------------------------

#: Leaf counts exercising every interesting lane boundary: below the
#: batching floor, one lane group minus one, exactly one group, one
#: group plus one, and a pool-worthy set.
LEAF_COUNTS = (1, 2, 63, 64, 65, 1000)

_MATRIX_ENGINES = [name for name in ("soa", "compiled", "reference")
                   if name in sim_engines.names()]


def _leaves(count):
    return [bytes([n % 251]) * (40 + n % 64) for n in range(count)]


@pytest.fixture(scope="module")
def reference_cvs():
    cache = {}

    def get(spec, count):
        key = (spec.algorithm, count)
        if key not in cache:
            cache[key] = [spec.reference_cv(leaf)
                          for leaf in _leaves(count)]
        return cache[key]

    return get


class TestCrossPathIdentity:
    @pytest.mark.parametrize("count", LEAF_COUNTS)
    @pytest.mark.parametrize("engine", _MATRIX_ENGINES)
    @pytest.mark.parametrize("workers", (1, 4))
    def test_k12_leaves_bit_identical(self, count, engine, workers,
                                      reference_cvs):
        got = hash_leaves(_leaves(count), K12_LEAF, engine=engine,
                          workers=workers)
        assert got == reference_cvs(K12_LEAF, count), (
            f"count={count} engine={engine} workers={workers} diverged "
            "from the sequential reference"
        )

    @pytest.mark.parametrize("count", (1, 65))
    @pytest.mark.parametrize("engine", _MATRIX_ENGINES)
    def test_shake_leaf_specs_bit_identical(self, count, engine,
                                            reference_cvs):
        for spec in (PH128_LEAF, PH256_LEAF):
            got = hash_leaves(_leaves(count), spec, engine=engine)
            assert got == reference_cvs(spec, count)

    def test_shake_leaves_match_hashlib(self):
        leaves = _leaves(65)
        assert hash_leaves(leaves, PH128_LEAF) == \
            [hashlib.shake_128(leaf).digest(32) for leaf in leaves]
        assert hash_leaves(leaves, PH256_LEAF) == \
            [hashlib.shake_256(leaf).digest(64) for leaf in leaves]

    def test_parallelhash_identical_across_paths(self):
        # 40 blocks of 64 bytes: batched vs pooled vs pure sequential.
        data = k12_pattern(40 * 64)
        expected = parallelhash128(data, 32, 64, engine="reference")
        assert parallelhash128(data, 32, 64, engine="soa") == expected
        assert parallelhash128(data, 32, 64, engine="reference",
                               workers=2) == expected
        assert parallelhash256(data, 64, 64, engine="soa") == \
            parallelhash256(data, 64, 64, engine="reference")

    def test_k12_identical_across_paths(self):
        message = k12_pattern(5 * K12_CHUNK_BYTES + 117)
        expected = kangarootwelve(message, 48, engine="reference")
        assert kangarootwelve(message, 48) == expected
        assert kangarootwelve(message, 48, engine="reference",
                              workers=2) == expected


class TestParallelHashObjects:
    def test_update_matches_one_shot(self):
        obj = ParallelHash128(customization=_S, block_size=8)
        obj.update(_X24[:10])
        obj.update(_X24[10:])
        assert obj.digest(32) == parallelhash128(_X24, 32, 8, _S)
        assert obj.hexdigest(32) == obj.digest(32).hex()

    def test_digest_is_restartable(self):
        obj = ParallelHash256(_X24, 8)
        assert obj.digest(64) == obj.digest(64)
        assert obj.digest(32) == parallelhash256(_X24, 32, 8)

    def test_read_streams_the_xof_variant(self):
        obj = ParallelHash128(_X44, 12, _S)
        assert not obj.squeezing
        first, second = obj.read(16), obj.read(16)
        assert obj.squeezing
        assert first + second == parallelhash128_xof(_X44, 32, 12, _S)

    def test_update_after_read_rejected(self):
        obj = ParallelHash128(b"x", 8)
        obj.read(1)
        with pytest.raises(RuntimeError):
            obj.update(b"more")

    def test_copy_preserves_stream_position(self):
        obj = ParallelHash128(_X24, 8)
        obj.read(16)
        clone = obj.copy()
        assert clone.read(16) == obj.read(16)

    def test_copy_before_read_is_independent(self):
        obj = ParallelHash128(_X24, 8)
        clone = obj.copy()
        obj.update(b"tail")
        assert clone.digest(32) == parallelhash128(_X24, 32, 8)

    def test_base_class_refuses_instantiation(self):
        from repro.keccak.treehash import _ParallelHashBase

        with pytest.raises(TypeError):
            _ParallelHashBase()

    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            ParallelHash128(block_size=0)


class TestKillAndResume:
    """SIGKILL a pooled tree-hash batch mid-run, resume from the
    manifest, and require byte-identical digests with checkpoint hits."""

    COUNT, SEED = 12, 7
    SIZE = 2 * K12_CHUNK_BYTES + 1024  # three leaf chunks per message

    def _argv(self, manifest):
        return [sys.executable, "-m", "repro", "batch",
                "--algorithm", "k12", "--length", "32",
                "--count", str(self.COUNT), "--size", str(self.SIZE),
                "--seed", str(self.SEED), "--workers", "2",
                "--resume", manifest]

    def test_killed_tree_batch_resumes_byte_identical(self, tmp_path):
        from repro.programs import run_many_report

        manifest = str(tmp_path / "tree.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.path.dirname(__file__),
                                       "..", "..", "src"),
                          env.get("PYTHONPATH", "")]))
        child = subprocess.Popen(self._argv(manifest), env=env,
                                 stdout=subprocess.DEVNULL,
                                 stderr=subprocess.DEVNULL,
                                 start_new_session=True)
        try:
            deadline = time.monotonic() + 120
            progressed = False
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break  # finished before the kill could land
                try:
                    with open(manifest) as handle:
                        saved = json.load(handle)
                    if len(saved.get("completed", {})) >= 2:
                        progressed = True
                        break
                except (OSError, json.JSONDecodeError):
                    pass  # not written yet / mid-replace
                time.sleep(0.01)
            if progressed:
                os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup path
                os.killpg(child.pid, signal.SIGKILL)
                child.wait(timeout=60)

        with open(manifest) as handle:
            completed = len(json.load(handle)["completed"])
        assert completed >= 1

        import random
        rng = random.Random(self.SEED)
        messages = [rng.randbytes(self.SIZE) for _ in range(self.COUNT)]
        outcome = run_many_report(messages, algorithm="k12", length=32,
                                  workers=2, checkpoint=manifest)
        assert outcome.ok
        assert outcome.stats.checkpoint_hits == completed
        assert outcome.digests == [
            kangarootwelve(m, 32, engine="reference") for m in messages
        ]
