"""Tests for the batched multi-state permutation (paper Section 3.1)."""

import hashlib

import pytest

from repro.keccak import KeccakState, keccak_f1600
from repro.keccak.parallel import ParallelKeccak, parallel_shake128


class TestParallelKeccak:
    def test_single_state_matches_reference(self, random_state):
        batch = ParallelKeccak.from_states([random_state])
        batch.permute()
        assert batch.to_states()[0] == keccak_f1600(random_state)

    def test_six_states_match_reference(self, random_states):
        states = random_states(6)
        batch = ParallelKeccak.from_states(states)
        batch.permute()
        out = batch.to_states()
        for i, state in enumerate(states):
            assert out[i] == keccak_f1600(state), f"state {i}"

    def test_states_are_independent(self, random_states):
        """Permuting states in a batch equals permuting them alone."""
        states = random_states(3)
        batch = ParallelKeccak.from_states(states)
        batch.permute()
        batched = batch.to_states()
        for i, state in enumerate(states):
            solo = ParallelKeccak.from_states([state])
            solo.permute()
            assert solo.to_states()[0] == batched[i]

    def test_round_by_round_matches_reference(self, random_state):
        from repro.keccak import keccak_round

        batch = ParallelKeccak.from_states([random_state])
        expected = random_state
        for i in range(24):
            batch.round(i)
            expected = keccak_round(expected, i)
            assert batch.to_states()[0] == expected, f"after round {i}"

    def test_zero_states_rejected(self):
        with pytest.raises(ValueError):
            ParallelKeccak(0)

    def test_xor_block_and_extract(self):
        batch = ParallelKeccak(2)
        batch.xor_block(1, b"\x01\x02\x03")
        assert batch.extract_bytes(1, 3) == b"\x01\x02\x03"
        assert batch.extract_bytes(0, 3) == b"\x00\x00\x00"

    def test_xor_block_too_large(self):
        with pytest.raises(ValueError):
            ParallelKeccak(1).xor_block(0, b"\x00" * 201)

    def test_extract_length_bounds(self):
        batch = ParallelKeccak(1)
        with pytest.raises(ValueError):
            batch.extract_bytes(0, 201)
        assert batch.extract_bytes(0, 0) == b""

    def test_large_batch(self, random_states):
        states = random_states(32)
        batch = ParallelKeccak.from_states(states)
        batch.permute()
        out = batch.to_states()
        # Spot-check first, middle, last.
        for i in (0, 15, 31):
            assert out[i] == keccak_f1600(states[i])


class TestParallelShake128:
    def test_matches_hashlib_single_block(self):
        seeds = [b"alpha", b"beta", b"gamma"]
        outputs = parallel_shake128(seeds, 100)
        for seed, out in zip(seeds, outputs):
            assert out == hashlib.shake_128(seed).digest(100)

    def test_matches_hashlib_multi_block(self):
        seeds = [b"s1", b"s2"]
        outputs = parallel_shake128(seeds, 1000)  # ~6 squeeze blocks
        for seed, out in zip(seeds, outputs):
            assert out == hashlib.shake_128(seed).digest(1000)

    def test_kyber_style_seeds(self):
        # 32-byte seed + 2 index bytes, the matrix-A expansion pattern.
        base = bytes(range(32))
        seeds = [base + bytes([i, j]) for i in range(2) for j in range(2)]
        outputs = parallel_shake128(seeds, 504)
        for seed, out in zip(seeds, outputs):
            assert out == hashlib.shake_128(seed).digest(504)

    def test_seed_too_long_rejected(self):
        with pytest.raises(ValueError, match="rate block"):
            parallel_shake128([b"x" * 168], 10)

    def test_exact_rate_length_output(self):
        outputs = parallel_shake128([b"q"], 168)
        assert outputs[0] == hashlib.shake_128(b"q").digest(168)
