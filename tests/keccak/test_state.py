"""Tests for the KeccakState array and its partition views (Fig. 2)."""

import pytest

from repro.keccak import KeccakState


def indexed_state():
    """State whose lane (x, y) holds the value 10*y + x (easy to track)."""
    return KeccakState([10 * (i // 5) + (i % 5) for i in range(25)])


class TestConstruction:
    def test_default_is_all_zero(self):
        state = KeccakState()
        assert all(lane == 0 for lane in state.lanes)

    def test_from_lane_list(self):
        state = KeccakState(list(range(25)))
        assert state.lanes == tuple(range(25))

    def test_wrong_lane_count_rejected(self):
        with pytest.raises(ValueError, match="25 lanes"):
            KeccakState([0] * 24)

    def test_oversized_lane_rejected(self):
        lanes = [0] * 25
        lanes[7] = 1 << 64
        with pytest.raises(ValueError, match="64-bit"):
            KeccakState(lanes)

    def test_negative_lane_rejected(self):
        lanes = [0] * 25
        lanes[0] = -1
        with pytest.raises(ValueError):
            KeccakState(lanes)

    def test_constructor_copies_input(self):
        lanes = [0] * 25
        state = KeccakState(lanes)
        lanes[0] = 99
        assert state[0, 0] == 0


class TestIndexing:
    def test_get_set_round_trip(self):
        state = KeccakState()
        state[3, 2] = 0xABCD
        assert state[3, 2] == 0xABCD

    def test_lane_order_is_row_major(self):
        state = indexed_state()
        assert state[2, 4] == 42
        assert state.lanes[5 * 4 + 2] == 42

    def test_out_of_range_coordinates(self):
        state = KeccakState()
        with pytest.raises(IndexError):
            state[5, 0]
        with pytest.raises(IndexError):
            state[0, -1]

    def test_oversized_value_rejected(self):
        state = KeccakState()
        with pytest.raises(ValueError):
            state[0, 0] = 1 << 64

    def test_get_bit(self):
        state = KeccakState()
        state[1, 1] = 0b1010
        assert state.get_bit(1, 1, 0) == 0
        assert state.get_bit(1, 1, 1) == 1
        assert state.get_bit(1, 1, 3) == 1

    def test_get_bit_z_out_of_range(self):
        with pytest.raises(IndexError):
            KeccakState().get_bit(0, 0, 64)


class TestPartitions:
    def test_plane_contains_row(self):
        state = indexed_state()
        assert state.plane(3) == (30, 31, 32, 33, 34)

    def test_sheet_contains_column(self):
        state = indexed_state()
        assert state.sheet(2) == (2, 12, 22, 32, 42)

    def test_slice_extracts_bit_matrix(self):
        state = KeccakState()
        state[1, 2] = 1 << 5
        matrix = state.slice(5)
        assert matrix[2][1] == 1
        assert sum(sum(row) for row in matrix) == 1

    def test_set_plane(self):
        state = KeccakState()
        state.set_plane(1, [9, 8, 7, 6, 5])
        assert state.plane(1) == (9, 8, 7, 6, 5)
        assert state.plane(0) == (0,) * 5

    def test_set_plane_wrong_length(self):
        with pytest.raises(ValueError):
            KeccakState().set_plane(0, [1, 2, 3])

    def test_plane_index_out_of_range(self):
        with pytest.raises(IndexError):
            KeccakState().plane(5)

    def test_sheet_index_out_of_range(self):
        with pytest.raises(IndexError):
            KeccakState().sheet(-1)

    def test_slice_index_out_of_range(self):
        with pytest.raises(IndexError):
            KeccakState().slice(64)

    def test_planes_cover_state(self):
        state = indexed_state()
        collected = [lane for y in range(5) for lane in state.plane(y)]
        assert tuple(collected) == state.lanes


class TestSerialization:
    def test_round_trip(self, random_state):
        assert KeccakState.from_bytes(random_state.to_bytes()) == random_state

    def test_to_bytes_length(self):
        assert len(KeccakState().to_bytes()) == 200

    def test_lane_zero_is_first_eight_bytes_little_endian(self):
        state = KeccakState()
        state[0, 0] = 0x0102030405060708
        assert state.to_bytes()[:8] == bytes(
            [8, 7, 6, 5, 4, 3, 2, 1]
        )

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError, match="200"):
            KeccakState.from_bytes(b"\x00" * 199)

    def test_xor_bytes_affects_prefix_only(self):
        state = KeccakState()
        state.xor_bytes(b"\xff" * 8)
        assert state[0, 0] == (1 << 64) - 1
        assert state[1, 0] == 0

    def test_xor_bytes_is_involution(self, random_state):
        data = bytes(range(136))
        snapshot = random_state.copy()
        random_state.xor_bytes(data)
        random_state.xor_bytes(data)
        assert random_state == snapshot

    def test_xor_bytes_too_long(self):
        with pytest.raises(ValueError):
            KeccakState().xor_bytes(b"\x00" * 201)

    def test_xor_bytes_partial_lane(self):
        state = KeccakState()
        state.xor_bytes(b"\x00\x00\x00\x00\x00\x00\x00\x00\xff")
        assert state[0, 0] == 0
        assert state[1, 0] == 0xFF


class TestEqualityAndCopy:
    def test_copy_is_independent(self, random_state):
        clone = random_state.copy()
        clone[0, 0] ^= 1
        assert clone != random_state

    def test_equality(self):
        assert KeccakState(list(range(25))) == KeccakState(list(range(25)))

    def test_inequality_with_other_types(self):
        assert KeccakState() != 42

    def test_hashable(self):
        a = KeccakState(list(range(25)))
        b = KeccakState(list(range(25)))
        assert len({a, b}) == 1

    def test_iteration_yields_lanes(self):
        state = indexed_state()
        assert list(state) == list(state.lanes)

    def test_repr_contains_all_planes(self):
        text = repr(indexed_state())
        for y in range(5):
            assert f"y={y}" in text
