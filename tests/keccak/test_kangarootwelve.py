"""Tests for Keccak-p, TurboSHAKE and KangarooTwelve."""

import pytest

from repro.keccak import KeccakState, keccak_f1600, keccak_round
from repro.keccak.kangarootwelve import (
    K12,
    K12_CHUNK_BYTES,
    k12_pattern,
    k12_sponge,
    kangarootwelve,
    length_encode,
    turboshake128,
    turboshake256,
    turboshake_sponge,
)
from repro.keccak.permutation import keccak_p1600


class TestKeccakP:
    def test_24_rounds_equals_keccak_f(self, random_state):
        assert keccak_p1600(random_state, 24) == keccak_f1600(random_state)

    def test_12_rounds_uses_last_constants(self, random_state):
        expected = random_state
        for round_index in range(12, 24):
            expected = keccak_round(expected, round_index)
        assert keccak_p1600(random_state, 12) == expected

    def test_single_round(self, random_state):
        assert keccak_p1600(random_state, 1) == \
            keccak_round(random_state, 23)

    def test_round_count_validated(self, random_state):
        with pytest.raises(ValueError):
            keccak_p1600(random_state, 0)
        with pytest.raises(ValueError):
            keccak_p1600(random_state, 25)

    def test_fewer_rounds_differ(self, random_state):
        assert keccak_p1600(random_state, 12) != \
            keccak_p1600(random_state, 24)


class TestLengthEncode:
    def test_zero_is_single_byte(self):
        # K12's length_encode(0) = 0x00 (unlike SP 800-185 right_encode).
        assert length_encode(0) == b"\x00"

    def test_small_values(self):
        assert length_encode(12) == b"\x0c\x01"
        assert length_encode(65538) == b"\x01\x00\x02\x03"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            length_encode(-1)


class TestTurboShake:
    def test_lengths(self):
        assert len(turboshake128(b"x", 100)) == 100
        assert len(turboshake256(b"x", 100)) == 100

    def test_domain_byte_separates(self):
        a = turboshake128(b"m", 32, domain=0x07)
        b = turboshake128(b"m", 32, domain=0x0B)
        assert a != b

    def test_domain_byte_validated(self):
        with pytest.raises(ValueError):
            turboshake128(b"", 32, domain=0x00)
        with pytest.raises(ValueError):
            turboshake128(b"", 32, domain=0x80)

    def test_differs_from_full_round_shake(self):
        import hashlib

        # 12 rounds != 24 rounds even at the same rate/suffix structure.
        assert turboshake128(b"", 32, domain=0x1F) != \
            hashlib.shake_128(b"").digest(32)

    def test_128_and_256_differ(self):
        assert turboshake128(b"m", 32) != turboshake256(b"m", 32)


class TestK12KnownAnswers:
    """Published KangarooTwelve test vectors (draft-irtf-cfrg-kangarootwelve)."""

    def test_empty_message_32(self):
        assert kangarootwelve(b"", 32).hex().upper() == (
            "1AC2D450FC3B4205D19DA7BFCA1B3751"
            "3C0803577AC7167F06FE2CE1F0EF39E5"
        )

    def test_pattern_17_bytes(self):
        assert kangarootwelve(k12_pattern(17), 32).hex().upper() == (
            "6BF75FA2239198DB4772E36478F8E19B"
            "0F371205F6A9A93A273F51DF37122888"
        )

    def test_customization_1_byte(self):
        assert kangarootwelve(b"", 32, k12_pattern(1)).hex().upper() == (
            "FAB658DB63E94A246188BF7AF69A1330"
            "45F46EE984C56E3C3328CAAF1AA1A583"
        )


class TestK12Structure:
    def test_pattern_helper(self):
        pattern = k12_pattern(0xFB + 2)
        assert pattern[0] == 0
        assert pattern[0xFA] == 0xFA
        assert pattern[0xFB] == 0

    def test_single_chunk_is_turboshake_07(self):
        message = b"m" * 100
        stream = message + length_encode(0)
        assert kangarootwelve(message, 32) == \
            turboshake128(stream, 32, domain=0x07)

    def test_tree_mode_kicks_in_above_chunk_size(self):
        # At the boundary the combined stream exceeds one chunk.
        at_boundary = kangarootwelve(b"a" * K12_CHUNK_BYTES, 32)
        single_chunk = turboshake128(
            b"a" * K12_CHUNK_BYTES + length_encode(0), 32, domain=0x07
        )
        # |M| + |length_encode(0)| = 8193 > 8192: tree mode, not single.
        assert at_boundary != single_chunk

    def test_tree_mode_deterministic(self):
        message = k12_pattern(3 * K12_CHUNK_BYTES + 5)
        assert kangarootwelve(message, 64) == \
            kangarootwelve(message, 64)

    def test_tree_outputs_prefix_consistent(self):
        message = k12_pattern(2 * K12_CHUNK_BYTES)
        assert kangarootwelve(message, 64)[:32] == \
            kangarootwelve(message, 32)

    def test_customization_separates(self):
        assert kangarootwelve(b"m", 32, b"ctx-a") != \
            kangarootwelve(b"m", 32, b"ctx-b")

    def test_customization_vs_message_ambiguity_resolved(self):
        # (M="ab", C="c") and (M="a", C="bc") must differ: the length
        # encoding of C disambiguates the concatenation.
        assert kangarootwelve(b"ab", 32, b"c") != \
            kangarootwelve(b"a", 32, b"bc")

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            kangarootwelve(b"", -1)

    def test_k12_halves_the_permutation_work(self):
        """The cycle argument: K12 permutations are 12 rounds, so every
        per-round cycle count in the evaluation applies with ~half the
        permutation latency (plus the constant loop overhead)."""
        rounds_full, rounds_k12 = 24, 12
        cycles_per_round = 75  # 64-bit LMUL=8
        full = rounds_full * cycles_per_round
        k12 = rounds_k12 * cycles_per_round
        assert k12 == full / 2


class TestTurboShakeSponge:
    def test_streaming_matches_one_shot(self):
        sponge = turboshake_sponge(domain=0x1F)
        sponge.absorb(b"stream").absorb(b"ing")
        assert sponge.squeeze(16) + sponge.squeeze(16) == \
            turboshake128(b"streaming", 32)

    def test_capacity_selects_256_variant(self):
        sponge = turboshake_sponge(domain=0x1F, capacity_bits=512)
        assert sponge.absorb(b"m").squeeze(32) == turboshake256(b"m", 32)

    def test_domain_validated(self):
        with pytest.raises(ValueError):
            turboshake_sponge(domain=0x00)
        with pytest.raises(ValueError):
            turboshake_sponge(domain=0x80)


class TestK12Boundaries:
    """The framing edge cases: empty customization, the one-chunk
    boundary at 8192 bytes, and zero-length output."""

    def test_empty_customization_appends_single_zero_byte(self):
        # C = "" encodes as length_encode(0) = 00: S = M || 00.
        message = b"boundary"
        assert kangarootwelve(message, 32) == \
            kangarootwelve(message, 32, b"")
        assert kangarootwelve(message, 32) == \
            turboshake128(message + b"\x00", 32, domain=0x07)

    def test_exactly_one_chunk_stays_single_node(self):
        # |S| = 8191 + 1 = 8192 = one chunk exactly: still domain 0x07.
        message = b"a" * (K12_CHUNK_BYTES - 1)
        assert kangarootwelve(message, 32) == \
            turboshake128(message + b"\x00", 32, domain=0x07)

    def test_one_byte_past_the_chunk_switches_to_tree(self):
        # |S| = 8192 + 1: the final length_encode byte pushes the
        # stream over the boundary, so the 8192-byte message itself is
        # already tree mode with a single 1-byte leaf.
        message = b"a" * K12_CHUNK_BYTES
        single = turboshake128(message + b"\x00", 32, domain=0x07)
        tree = kangarootwelve(message, 32)
        assert tree != single
        # The leaf is length_encode(0)'s lone 00 byte: reconstruct the
        # final node by hand to pin the framing.
        leaf_cv = turboshake128(b"\x00", 32, domain=0x0B)
        node = (message + b"\x03" + b"\x00" * 7 + leaf_cv
                + length_encode(1) + b"\xff\xff")
        assert tree == turboshake128(node, 32, domain=0x06)

    def test_customization_can_push_over_the_boundary(self):
        # M fits a chunk alone but M||C||len(C) does not.
        message = b"m" * (K12_CHUNK_BYTES - 4)
        custom = b"c" * 16
        single_form = turboshake128(
            message + custom + length_encode(len(custom)), 32, domain=0x07)
        assert kangarootwelve(message, 32, custom) != single_form

    def test_zero_length_output(self):
        assert kangarootwelve(b"m", 0) == b""
        assert kangarootwelve(k12_pattern(3 * K12_CHUNK_BYTES), 0) == b""

    def test_k12_sponge_streams_across_chunk_boundaries(self):
        message = k12_pattern(2 * K12_CHUNK_BYTES + 7)
        sponge = k12_sponge(message)
        assert sponge.squeeze(24) + sponge.squeeze(40) == \
            kangarootwelve(message, 64)


class TestK12Object:
    def test_update_matches_one_shot(self):
        message = k12_pattern(2 * K12_CHUNK_BYTES + 100)
        obj = K12()
        obj.update(message[:5000])
        obj.update(message[5000:])
        assert obj.digest(32) == kangarootwelve(message, 32)
        assert obj.hexdigest(32) == obj.digest(32).hex()

    def test_customization_forwarded(self):
        obj = K12(b"msg", b"ctx")
        assert obj.digest(32) == kangarootwelve(b"msg", 32, b"ctx")

    def test_read_streams_and_digest_stays_restartable(self):
        obj = K12(b"stream me")
        assert not obj.squeezing
        first = obj.read(32)
        second = obj.read(32)
        assert obj.squeezing
        assert first + second == kangarootwelve(b"stream me", 64)
        # digest() is unaffected by the reader's position.
        assert obj.digest(32) == first

    def test_update_after_read_rejected(self):
        obj = K12(b"x")
        obj.read(1)
        with pytest.raises(RuntimeError):
            obj.update(b"more")

    def test_update_invalidates_cached_final(self):
        obj = K12(b"a")
        assert obj.digest(32) == kangarootwelve(b"a", 32)
        obj.update(b"b")
        assert obj.digest(32) == kangarootwelve(b"ab", 32)

    def test_copy_preserves_stream_position(self):
        obj = K12(b"copy me")
        obj.read(16)
        clone = obj.copy()
        assert clone.read(16) == obj.read(16)

    def test_copy_before_read_is_independent(self):
        obj = K12(b"base")
        clone = obj.copy()
        obj.update(b"-more")
        assert clone.digest(32) == kangarootwelve(b"base", 32)
        assert obj.digest(32) == kangarootwelve(b"base-more", 32)
