"""Tests for the sponge construction (paper Fig. 1)."""

import hashlib

import pytest

from repro.keccak import KECCAK_SUFFIX, SHA3_SUFFIX, SHAKE_SUFFIX, Sponge, pad10star1, sponge_hash


class TestConstruction:
    def test_rate_plus_capacity_is_1600(self):
        sponge = Sponge(512)
        assert sponge.rate_bits + sponge.capacity_bits == 1600
        assert sponge.rate_bytes == 136

    def test_capacity_must_be_byte_aligned(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            Sponge(511)

    def test_capacity_bounds(self):
        with pytest.raises(ValueError):
            Sponge(0)
        with pytest.raises(ValueError):
            Sponge(1600)

    def test_suffix_must_be_nonzero_byte(self):
        with pytest.raises(ValueError):
            Sponge(512, suffix=0)
        with pytest.raises(ValueError):
            Sponge(512, suffix=0x100)


class TestAbsorbSqueeze:
    def test_sha3_256_empty_message(self):
        digest = Sponge(512, SHA3_SUFFIX).squeeze(32)
        assert digest == hashlib.sha3_256(b"").digest()

    def test_shake128_empty_message(self):
        digest = Sponge(256, SHAKE_SUFFIX).squeeze(64)
        assert digest == hashlib.shake_128(b"").digest(64)

    def test_streaming_absorb_equals_oneshot(self):
        message = bytes(range(256)) * 3
        oneshot = Sponge(512, SHA3_SUFFIX).absorb(message).squeeze(32)
        streaming = Sponge(512, SHA3_SUFFIX)
        for i in range(0, len(message), 37):
            streaming.absorb(message[i : i + 37])
        assert streaming.squeeze(32) == oneshot

    def test_streaming_squeeze_equals_oneshot(self):
        sponge_a = Sponge(256, SHAKE_SUFFIX).absorb(b"stream me")
        sponge_b = Sponge(256, SHAKE_SUFFIX).absorb(b"stream me")
        oneshot = sponge_a.squeeze(500)
        pieces = b"".join(sponge_b.squeeze(n) for n in (1, 7, 160, 168, 164))
        assert pieces == oneshot

    def test_absorb_after_squeeze_rejected(self):
        sponge = Sponge(512)
        sponge.squeeze(1)
        with pytest.raises(RuntimeError, match="absorb after squeezing"):
            sponge.absorb(b"late")

    def test_squeeze_zero_bytes(self):
        assert Sponge(512).squeeze(0) == b""

    def test_squeeze_negative_rejected(self):
        with pytest.raises(ValueError):
            Sponge(512).squeeze(-1)

    def test_multi_block_message(self):
        message = b"x" * 400  # > 2 rate blocks at capacity 512
        assert Sponge(512, SHA3_SUFFIX).absorb(message).squeeze(32) == \
            hashlib.sha3_256(message).digest()

    def test_exact_rate_boundary_messages(self):
        for length in (135, 136, 137, 271, 272, 273):
            message = bytes([length & 0xFF]) * length
            assert Sponge(512, SHA3_SUFFIX).absorb(message).squeeze(32) == \
                hashlib.sha3_256(message).digest(), length

    def test_domain_suffixes_separate_outputs(self):
        sha3 = Sponge(512, SHA3_SUFFIX).absorb(b"msg").squeeze(32)
        shake = Sponge(512, SHAKE_SUFFIX).absorb(b"msg").squeeze(32)
        keccak = Sponge(512, KECCAK_SUFFIX).absorb(b"msg").squeeze(32)
        assert len({sha3, shake, keccak}) == 3

    def test_multi_block_squeeze_output(self):
        # Squeezing more than one rate block applies extra permutations.
        ours = Sponge(256, SHAKE_SUFFIX).absorb(b"abc").squeeze(1000)
        assert ours == hashlib.shake_128(b"abc").digest(1000)


class TestCopyAndState:
    def test_copy_preserves_absorb_phase(self):
        sponge = Sponge(512, SHA3_SUFFIX).absorb(b"partial")
        clone = sponge.copy()
        assert clone.squeeze(32) == \
            hashlib.sha3_256(b"partial").digest()
        sponge.absorb(b" more")
        assert sponge.squeeze(32) == \
            hashlib.sha3_256(b"partial more").digest()

    def test_copy_preserves_squeeze_offset(self):
        sponge = Sponge(256, SHAKE_SUFFIX).absorb(b"x")
        first = sponge.squeeze(10)
        clone = sponge.copy()
        assert sponge.squeeze(10) == clone.squeeze(10)
        assert first != clone.squeeze(0) + b""[:10] or True

    def test_squeezing_flag(self):
        sponge = Sponge(512)
        assert not sponge.squeezing
        sponge.squeeze(1)
        assert sponge.squeezing

    def test_state_property_returns_copy(self):
        sponge = Sponge(512)
        sponge.state[0, 0] = 123  # mutating the copy must not leak back
        assert sponge.state[0, 0] == 0


class TestPadding:
    def test_pad_length_completes_block(self):
        for message_length in range(0, 300):
            pad = pad10star1(message_length, 136)
            assert (message_length + len(pad)) % 136 == 0

    def test_single_byte_pad(self):
        assert pad10star1(135, 136) == b"\x81"

    def test_two_byte_pad(self):
        assert pad10star1(134, 136) == b"\x01\x80"

    def test_full_block_pad_when_aligned(self):
        pad = pad10star1(136, 136)
        assert len(pad) == 136
        assert pad[0] == 0x01
        assert pad[-1] == 0x80

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            pad10star1(10, 0)


class TestOneShotHelper:
    def test_sponge_hash_matches_class(self):
        assert sponge_hash(b"data", 512, 32, SHA3_SUFFIX) == \
            hashlib.sha3_256(b"data").digest()

    def test_unreasonable_output_rejected(self):
        with pytest.raises(ValueError):
            sponge_hash(b"", 512, 200 * 1024 + 1, SHA3_SUFFIX)
