"""Tests for the Keccak constant tables and rotation helpers."""

import pytest

from repro.keccak.constants import (
    LANE_BITS,
    MASK64,
    NUM_ROUNDS,
    RHO_BY_ROW,
    RHO_OFFSETS,
    ROUND_CONSTANTS,
    STATE_BYTES,
    rotl64,
    rotr64,
)


class TestRoundConstants:
    def test_there_are_24_round_constants(self):
        assert len(ROUND_CONSTANTS) == NUM_ROUNDS == 24

    def test_first_and_last_match_fips202(self):
        assert ROUND_CONSTANTS[0] == 0x0000000000000001
        assert ROUND_CONSTANTS[23] == 0x8000000080008008

    def test_spot_values_match_paper_table6(self):
        assert ROUND_CONSTANTS[2] == 0x800000000000808A
        assert ROUND_CONSTANTS[10] == 0x0000000080008009
        assert ROUND_CONSTANTS[17] == 0x8000000000000080

    def test_all_fit_in_64_bits(self):
        for rc in ROUND_CONSTANTS:
            assert 0 <= rc <= MASK64

    def test_round_constants_follow_lfsr_definition(self):
        # FIPS 202: RC bits come from the rc(t) LFSR at positions 2^j - 1.
        def rc_bit(t):
            if t % 255 == 0:
                return 1
            r = 0x01
            for _ in range(t % 255):
                r <<= 1
                if r & 0x100:
                    r ^= 0x171
            return r & 1

        for i, rc in enumerate(ROUND_CONSTANTS):
            expected = 0
            for j in range(7):
                if rc_bit(j + 7 * i):
                    expected |= 1 << ((1 << j) - 1)
            assert rc == expected, f"round {i}"


class TestRhoOffsets:
    def test_shape(self):
        assert len(RHO_OFFSETS) == 5
        assert all(len(row) == 5 for row in RHO_OFFSETS)

    def test_origin_lane_not_rotated(self):
        assert RHO_OFFSETS[0][0] == 0

    def test_matches_paper_table2(self):
        # Paper Table 2 is indexed [y][x]; RHO_BY_ROW mirrors that layout.
        paper = (
            (0, 1, 62, 28, 27),
            (36, 44, 6, 55, 20),
            (3, 10, 43, 25, 39),
            (41, 45, 15, 21, 8),
            (18, 2, 61, 56, 14),
        )
        assert RHO_BY_ROW == paper

    def test_by_row_is_transpose_of_by_xy(self):
        for x in range(5):
            for y in range(5):
                assert RHO_BY_ROW[y][x] == RHO_OFFSETS[x][y]

    def test_offsets_follow_triangular_number_definition(self):
        # rho offset of the t-th lane in the (x,y) walk is (t+1)(t+2)/2 mod 64.
        x, y = 1, 0
        for t in range(24):
            expected = ((t + 1) * (t + 2) // 2) % 64
            assert RHO_OFFSETS[x][y] == expected
            x, y = y, (2 * x + 3 * y) % 5

    def test_all_nonzero_offsets_distinct(self):
        offsets = [RHO_OFFSETS[x][y] for x in range(5) for y in range(5)]
        nonzero = [o for o in offsets if o != 0]
        assert len(nonzero) == 24
        assert len(set(nonzero)) == 24


class TestRotations:
    def test_rotl_by_zero_is_identity(self):
        assert rotl64(0x0123456789ABCDEF, 0) == 0x0123456789ABCDEF

    def test_rotl_by_64_is_identity(self):
        assert rotl64(0xDEADBEEF, 64) == 0xDEADBEEF

    def test_rotl_wraps_msb_into_lsb(self):
        assert rotl64(1 << 63, 1) == 1

    def test_rotl_known_value(self):
        assert rotl64(0x8000000000000001, 1) == 0x0000000000000003

    def test_rotr_is_inverse_of_rotl(self):
        value = 0xFEDCBA9876543210
        for amount in (0, 1, 7, 31, 32, 33, 63):
            assert rotr64(rotl64(value, amount), amount) == value

    def test_rotl_negative_amount_wraps(self):
        value = 0x0123456789ABCDEF
        assert rotl64(value, -1) == rotl64(value, 63)

    def test_rotl_masks_oversized_input(self):
        assert rotl64((1 << 64) | 1, 0) == 1


class TestDimensions:
    def test_lane_and_state_sizes(self):
        assert LANE_BITS == 64
        assert STATE_BYTES == 200
        assert MASK64 == (1 << 64) - 1
