"""Tests for the step mappings and the full Keccak-f[1600] permutation."""

import hashlib

import pytest

from repro.keccak import (
    KeccakState,
    chi,
    chi_inverse,
    iota,
    iota_inverse,
    keccak_f1600,
    keccak_f1600_inverse,
    keccak_f1600_lanes,
    keccak_round,
    pi,
    pi_inverse,
    rho,
    rho_inverse,
    theta,
    theta_inverse,
)
from repro.keccak.constants import RHO_OFFSETS, ROUND_CONSTANTS, rotl64


#: Keccak-f[1600] of the all-zero state (first block permutation of any
#: SHA-3 computation; widely published known-answer value, first lane).
ZERO_STATE_LANE0 = 0xF1258F7940E1DDE7


class TestFullPermutation:
    def test_zero_state_known_answer(self):
        out = keccak_f1600(KeccakState())
        assert out[0, 0] == ZERO_STATE_LANE0

    def test_zero_state_full_known_answer_via_hashlib(self):
        # Derive the permutation of a chosen state from hashlib: absorbing
        # a full-rate SHAKE128 block of zeros makes the state after one
        # permutation equal to permute(padded block), whose first 168
        # bytes hashlib will squeeze out.
        rate = 168
        block = bytearray(200)
        block[0] = 0x1F  # SHAKE128 suffix in byte 0 of an empty message
        block[rate - 1] ^= 0x80
        ours = keccak_f1600(KeccakState.from_bytes(bytes(block)))
        expected = hashlib.shake_128(b"").digest(rate)
        assert ours.to_bytes()[:rate] == expected

    def test_permutation_changes_every_lane(self, random_state):
        out = keccak_f1600(random_state)
        changed = sum(
            out[x, y] != random_state[x, y]
            for x in range(5) for y in range(5)
        )
        assert changed == 25

    def test_permutation_is_deterministic(self, random_state):
        assert keccak_f1600(random_state) == keccak_f1600(random_state)

    def test_input_not_mutated(self, random_state):
        snapshot = random_state.copy()
        keccak_f1600(random_state)
        assert random_state == snapshot

    def test_lanes_wrapper_matches(self, random_state):
        assert keccak_f1600_lanes(list(random_state.lanes)) == list(
            keccak_f1600(random_state).lanes
        )

    def test_round_composition_equals_permutation(self, random_state):
        state = random_state
        for i in range(24):
            state = keccak_round(state, i)
        assert state == keccak_f1600(random_state)

    def test_round_is_composition_of_steps(self, random_state):
        expected = iota(chi(pi(rho(theta(random_state)))), 5)
        assert keccak_round(random_state, 5) == expected


class TestTheta:
    def test_zero_state_fixed_point(self):
        assert theta(KeccakState()) == KeccakState()

    def test_column_parity_definition(self, random_state):
        out = theta(random_state)
        b = [0] * 5
        for x in range(5):
            for y in range(5):
                b[x] ^= random_state[x, y]
        for x in range(5):
            c = b[(x - 1) % 5] ^ rotl64(b[(x + 1) % 5], 1)
            for y in range(5):
                assert out[x, y] == random_state[x, y] ^ c

    def test_theta_is_linear(self, random_states):
        a, b = random_states(2)
        xored = KeccakState([la ^ lb for la, lb in zip(a.lanes, b.lanes)])
        expected = KeccakState([
            la ^ lb for la, lb in zip(theta(a).lanes, theta(b).lanes)
        ])
        assert theta(xored) == expected

    def test_theta_inverse(self, random_state):
        assert theta_inverse(theta(random_state)) == random_state
        assert theta(theta_inverse(random_state)) == random_state


class TestRho:
    def test_lane_00_unchanged(self, random_state):
        assert rho(random_state)[0, 0] == random_state[0, 0]

    def test_rotation_offsets_applied(self, random_state):
        out = rho(random_state)
        for x in range(5):
            for y in range(5):
                assert out[x, y] == rotl64(
                    random_state[x, y], RHO_OFFSETS[x][y]
                )

    def test_rho_inverse(self, random_state):
        assert rho_inverse(rho(random_state)) == random_state

    def test_rho_preserves_popcount(self, random_state):
        before = sum(bin(lane).count("1") for lane in random_state.lanes)
        after = sum(bin(lane).count("1") for lane in rho(random_state).lanes)
        assert before == after


class TestPi:
    def test_lane_00_fixed(self, random_state):
        assert pi(random_state)[0, 0] == random_state[0, 0]

    def test_definition(self, random_state):
        out = pi(random_state)
        for x in range(5):
            for y in range(5):
                assert out[x, y] == random_state[(x + 3 * y) % 5, x]

    def test_pi_is_a_permutation_of_lanes(self, random_state):
        assert sorted(pi(random_state).lanes) == sorted(random_state.lanes)

    def test_pi_inverse(self, random_state):
        assert pi_inverse(pi(random_state)) == random_state
        assert pi(pi_inverse(random_state)) == random_state

    def test_pi_order_divides_24(self, random_state):
        # The pi lane permutation has order 24 on non-origin lanes.
        state = random_state
        for _ in range(24):
            state = pi(state)
        assert state == random_state


class TestChi:
    def test_definition(self, random_state):
        out = chi(random_state)
        mask = (1 << 64) - 1
        for y in range(5):
            for x in range(5):
                g = (~random_state[(x + 1) % 5, y] & mask) & \
                    random_state[(x + 2) % 5, y]
                assert out[x, y] == random_state[x, y] ^ g

    def test_chi_inverse(self, random_state):
        assert chi_inverse(chi(random_state)) == random_state
        assert chi(chi_inverse(random_state)) == random_state

    def test_chi_operates_row_locally(self, random_states):
        a, b = random_states(2)
        # Make row 0 equal in both states; chi must then produce the same
        # row 0 regardless of the other rows.
        for x in range(5):
            b[x, 0] = a[x, 0]
        out_a, out_b = chi(a), chi(b)
        for x in range(5):
            assert out_a[x, 0] == out_b[x, 0]

    def test_chi_is_nonlinear(self):
        # chi(a ^ b) != chi(a) ^ chi(b) in general.
        a = KeccakState(list(range(25)))
        b = KeccakState([(7 * i + 3) % 97 for i in range(25)])
        xored = KeccakState([la ^ lb for la, lb in zip(a.lanes, b.lanes)])
        linear = KeccakState([
            la ^ lb for la, lb in zip(chi(a).lanes, chi(b).lanes)
        ])
        assert chi(xored) != linear


class TestIota:
    def test_only_lane_00_changes(self, random_state):
        out = iota(random_state, 3)
        assert out[0, 0] == random_state[0, 0] ^ ROUND_CONSTANTS[3]
        for x in range(5):
            for y in range(5):
                if (x, y) != (0, 0):
                    assert out[x, y] == random_state[x, y]

    def test_iota_is_involution(self, random_state):
        assert iota(iota(random_state, 7), 7) == random_state
        assert iota_inverse(iota(random_state, 7), 7) == random_state

    def test_round_index_out_of_range(self, random_state):
        with pytest.raises(ValueError):
            iota(random_state, 24)
        with pytest.raises(ValueError):
            iota(random_state, -1)

    def test_different_rounds_differ(self, random_state):
        assert iota(random_state, 0) != iota(random_state, 1)


class TestInversePermutation:
    def test_full_inverse(self, random_state):
        assert keccak_f1600_inverse(keccak_f1600(random_state)) == \
            random_state

    def test_inverse_of_zero_permutation(self):
        permuted = keccak_f1600(KeccakState())
        assert keccak_f1600_inverse(permuted) == KeccakState()

    def test_forward_of_inverse(self, random_state):
        assert keccak_f1600(keccak_f1600_inverse(random_state)) == \
            random_state
