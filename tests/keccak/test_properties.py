"""Property-based tests (hypothesis) for the Keccak core invariants."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.keccak import (
    KeccakState,
    Sponge,
    SHA3_SUFFIX,
    chi,
    chi_inverse,
    keccak_f1600,
    pi,
    pi_inverse,
    rho,
    rho_inverse,
    sha3_256,
    shake128,
    theta,
    theta_inverse,
)
from repro.keccak.interleave import (
    deinterleave,
    interleave,
    join_hi_lo,
    rotate_interleaved,
    rotate_pair_left,
    split_hi_lo,
)
from repro.keccak.constants import rotl64

lanes_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    min_size=25, max_size=25,
)

lane_strategy = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(data=st.binary(max_size=600))
@settings(max_examples=30, deadline=None)
def test_sha3_256_matches_hashlib(data):
    assert sha3_256(data) == hashlib.sha3_256(data).digest()


@given(data=st.binary(max_size=400),
       length=st.integers(min_value=0, max_value=400))
@settings(max_examples=30, deadline=None)
def test_shake128_matches_hashlib(data, length):
    assert shake128(data, length) == hashlib.shake_128(data).digest(length)


@given(data=st.binary(max_size=500),
       split=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_split_absorb_equals_oneshot(data, split):
    split = min(split, len(data))
    oneshot = Sponge(512, SHA3_SUFFIX).absorb(data).squeeze(32)
    streamed = (
        Sponge(512, SHA3_SUFFIX)
        .absorb(data[:split])
        .absorb(data[split:])
        .squeeze(32)
    )
    assert streamed == oneshot


@given(lanes=lanes_strategy)
@settings(max_examples=25, deadline=None)
def test_state_bytes_round_trip(lanes):
    state = KeccakState(lanes)
    assert KeccakState.from_bytes(state.to_bytes()) == state


@given(lanes=lanes_strategy)
@settings(max_examples=15, deadline=None)
def test_step_mappings_are_bijections(lanes):
    state = KeccakState(lanes)
    assert theta_inverse(theta(state)) == state
    assert rho_inverse(rho(state)) == state
    assert pi_inverse(pi(state)) == state
    assert chi_inverse(chi(state)) == state


@given(lanes=lanes_strategy)
@settings(max_examples=10, deadline=None)
def test_permutation_round_trips_through_serialization(lanes):
    state = KeccakState(lanes)
    out = keccak_f1600(state)
    again = keccak_f1600(KeccakState.from_bytes(state.to_bytes()))
    assert out == again


@given(lane=lane_strategy,
       amount=st.integers(min_value=0, max_value=63))
@settings(max_examples=50, deadline=None)
def test_hi_lo_rotation_equivalence(lane, amount):
    hi, lo = split_hi_lo(lane)
    rhi, rlo = rotate_pair_left(hi, lo, amount)
    assert join_hi_lo(rhi, rlo) == rotl64(lane, amount)


@given(lane=lane_strategy,
       amount=st.integers(min_value=0, max_value=63))
@settings(max_examples=50, deadline=None)
def test_interleaved_rotation_equivalence(lane, amount):
    even, odd = interleave(lane)
    re, ro = rotate_interleaved(even, odd, amount)
    assert deinterleave(re, ro) == rotl64(lane, amount)


@given(lane=lane_strategy)
@settings(max_examples=50, deadline=None)
def test_both_decompositions_round_trip(lane):
    hi, lo = split_hi_lo(lane)
    assert join_hi_lo(hi, lo) == lane
    even, odd = interleave(lane)
    assert deinterleave(even, odd) == lane


@given(lanes=lanes_strategy, rounds=st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_repeated_permutation_never_cycles_quickly(lanes, rounds):
    """Keccak-f has no short cycles on random states (overwhelming odds)."""
    state = KeccakState(lanes)
    current = state
    for _ in range(rounds):
        current = keccak_f1600(current)
        assert current != state
