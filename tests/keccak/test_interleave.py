"""Tests for the 32-bit lane decompositions (paper Section 3.2)."""

import pytest

from repro.keccak import rotl64
from repro.keccak.interleave import (
    deinterleave,
    deinterleave_state,
    interleave,
    interleave_state,
    join_hi_lo,
    rotate_interleaved,
    rotate_pair_left,
    split_hi_lo,
)


class TestHiLoSplit:
    def test_round_trip(self, rng):
        for _ in range(50):
            lane = rng.getrandbits(64)
            hi, lo = split_hi_lo(lane)
            assert join_hi_lo(hi, lo) == lane

    def test_halves_are_32_bit(self):
        hi, lo = split_hi_lo(0xFFFFFFFFFFFFFFFF)
        assert hi == lo == 0xFFFFFFFF

    def test_known_split(self):
        assert split_hi_lo(0x0123456789ABCDEF) == (0x01234567, 0x89ABCDEF)

    def test_split_rejects_oversized(self):
        with pytest.raises(ValueError):
            split_hi_lo(1 << 64)

    def test_join_rejects_oversized_halves(self):
        with pytest.raises(ValueError):
            join_hi_lo(1 << 32, 0)
        with pytest.raises(ValueError):
            join_hi_lo(0, -1)

    def test_rotate_pair_matches_rotl64(self, rng):
        for amount in (0, 1, 31, 32, 33, 63):
            lane = rng.getrandbits(64)
            hi, lo = split_hi_lo(lane)
            rhi, rlo = rotate_pair_left(hi, lo, amount)
            assert join_hi_lo(rhi, rlo) == rotl64(lane, amount)

    def test_rotate_pair_is_v32rotup_semantics(self):
        # v32lrotup/v32hrotup rotate the hi||lo pair left by one.
        hi, lo = 0x80000000, 0x00000001
        rhi, rlo = rotate_pair_left(hi, lo, 1)
        assert rlo == 0x00000003  # MSB of hi wraps into LSB of lo
        assert rhi == 0x00000000


class TestBitInterleaving:
    def test_round_trip(self, rng):
        for _ in range(50):
            lane = rng.getrandbits(64)
            even, odd = interleave(lane)
            assert deinterleave(even, odd) == lane

    def test_even_bits_extracted(self):
        # 0b0101 = bits 0 and 2 set -> both even positions.
        even, odd = interleave(0b0101)
        assert even == 0b11
        assert odd == 0

    def test_odd_bits_extracted(self):
        even, odd = interleave(0b1010)
        assert even == 0
        assert odd == 0b11

    def test_interleave_rejects_oversized(self):
        with pytest.raises(ValueError):
            interleave(1 << 64)

    def test_deinterleave_rejects_oversized(self):
        with pytest.raises(ValueError):
            deinterleave(1 << 32, 0)

    def test_rotation_by_even_amount(self, rng):
        lane = rng.getrandbits(64)
        even, odd = interleave(lane)
        for amount in (0, 2, 8, 30, 32, 62):
            re, ro = rotate_interleaved(even, odd, amount)
            assert deinterleave(re, ro) == rotl64(lane, amount)

    def test_rotation_by_odd_amount(self, rng):
        lane = rng.getrandbits(64)
        even, odd = interleave(lane)
        for amount in (1, 3, 7, 31, 33, 63):
            re, ro = rotate_interleaved(even, odd, amount)
            assert deinterleave(re, ro) == rotl64(lane, amount)

    def test_state_round_trip(self, random_state):
        evens, odds = interleave_state(list(random_state.lanes))
        assert deinterleave_state(evens, odds) == list(random_state.lanes)

    def test_state_mismatched_lengths(self):
        with pytest.raises(ValueError):
            deinterleave_state([1, 2], [3])


class TestTradeoffDocumented:
    """The paper's argument: hi/lo split avoids pre/post transform."""

    def test_hi_lo_needs_no_transformation(self, rng):
        # Splitting is just byte-slicing of the little-endian lane: the low
        # word equals bytes 0-3, the high word bytes 4-7 — i.e. data can be
        # loaded directly with indexed vector loads (paper Section 3.2).
        lane = rng.getrandbits(64)
        raw = lane.to_bytes(8, "little")
        hi, lo = split_hi_lo(lane)
        assert lo == int.from_bytes(raw[:4], "little")
        assert hi == int.from_bytes(raw[4:], "little")

    def test_interleaving_is_not_byte_slicing(self):
        # Bit interleaving genuinely reshuffles bits across bytes.
        lane = 0x0000000100000000
        even, odd = interleave(lane)
        raw = lane.to_bytes(8, "little")
        assert even != int.from_bytes(raw[:4], "little") or \
            odd != int.from_bytes(raw[4:], "little")
