"""Tests for the SP 800-185 derived functions (cSHAKE, KMAC)."""

import hashlib

import pytest

from repro.keccak.cshake import (
    bytepad,
    cshake128,
    cshake256,
    encode_string,
    kmac128,
    kmac128_xof,
    kmac256,
    kmac256_xof,
    left_encode,
    right_encode,
)

#: NIST SP 800-185 sample inputs.
DATA4 = bytes([0x00, 0x01, 0x02, 0x03])
DATA200 = bytes(range(0xC8))
KEY = bytes(range(0x40, 0x60))
SIG = b"Email Signature"
APP = b"My Tagged Application"


class TestEncodingPrimitives:
    def test_left_encode_zero(self):
        assert left_encode(0) == b"\x01\x00"

    def test_left_encode_small(self):
        assert left_encode(168) == b"\x01\xa8"

    def test_left_encode_multibyte(self):
        assert left_encode(0x1234) == b"\x02\x12\x34"

    def test_right_encode_zero(self):
        assert right_encode(0) == b"\x00\x01"

    def test_right_encode_small(self):
        assert right_encode(256) == b"\x01\x00\x02"

    def test_encode_negative_rejected(self):
        with pytest.raises(ValueError):
            left_encode(-1)
        with pytest.raises(ValueError):
            right_encode(-1)

    def test_encode_string_empty(self):
        assert encode_string(b"") == b"\x01\x00"

    def test_encode_string_prefixes_bit_length(self):
        assert encode_string(b"KMAC") == b"\x01\x20" + b"KMAC"

    def test_bytepad_pads_to_width(self):
        out = bytepad(b"abc", 8)
        assert len(out) % 8 == 0
        assert out.startswith(left_encode(8))

    def test_bytepad_invalid_width(self):
        with pytest.raises(ValueError):
            bytepad(b"", 0)


class TestCshakeNistVectors:
    """The published SP 800-185 sample vectors."""

    def test_cshake128_sample1(self):
        assert cshake128(DATA4, 32, b"", SIG).hex().upper() == (
            "C1C36925B6409A04F1B504FCBCA9D82B"
            "4017277CB5ED2B2065FC1D3814D5AAF5"
        )

    def test_cshake256_sample3(self):
        out = cshake256(DATA200, 64, b"", SIG)
        assert out[:32].hex().upper() == (
            "07DC27B11E51FBAC75BC7B3C1D983E8B"
            "4B85FB1DEFAF218912AC864302730917"
        )


class TestCshakeProperties:
    def test_empty_n_and_s_equals_shake(self):
        """SP 800-185: cSHAKE(X, L, "", "") = SHAKE(X, L)."""
        for data in (b"", b"abc", bytes(300)):
            assert cshake128(data, 64) == \
                hashlib.shake_128(data).digest(64)
            assert cshake256(data, 64) == \
                hashlib.shake_256(data).digest(64)

    def test_customization_separates_outputs(self):
        a = cshake128(b"msg", 32, b"", b"context-a")
        b = cshake128(b"msg", 32, b"", b"context-b")
        plain = cshake128(b"msg", 32)
        assert len({a, b, plain}) == 3

    def test_function_name_separates_outputs(self):
        a = cshake128(b"msg", 32, b"FN1", b"")
        b = cshake128(b"msg", 32, b"FN2", b"")
        assert a != b

    def test_output_lengths(self):
        for length in (0, 1, 167, 168, 169, 500):
            assert len(cshake128(b"x", length, b"", b"c")) == length


class TestKmacNistVectors:
    def test_kmac128_sample1(self):
        assert kmac128(KEY, DATA4, 32).hex().upper() == (
            "E5780B0D3EA6F7D3A429C5706AA43A00"
            "FADBD7D49628839E3187243F456EE14E"
        )

    def test_kmac128_sample2(self):
        assert kmac128(KEY, DATA4, 32, APP).hex().upper() == (
            "3B1FBA963CD8B0B59E8C1A6D71888B71"
            "43651AF8BA0A7070C0979E2811324AA5"
        )


class TestKmacProperties:
    def test_key_separates_outputs(self):
        a = kmac128(b"key-a" * 4, b"msg", 32)
        b = kmac128(b"key-b" * 4, b"msg", 32)
        assert a != b

    def test_output_length_binds_the_mac(self):
        """KMAC (non-XOF) encodes L into the input, so different lengths
        give unrelated outputs — not prefixes of each other."""
        short = kmac128(KEY, DATA4, 16)
        long = kmac128(KEY, DATA4, 32)
        assert long[:16] != short

    def test_xof_variant_is_prefix_consistent(self):
        """KMACXOF encodes L = 0, so outputs are prefix-consistent."""
        short = kmac128_xof(KEY, DATA4, 16)
        long = kmac128_xof(KEY, DATA4, 32)
        assert long[:16] == short

    def test_xof_differs_from_fixed(self):
        assert kmac128_xof(KEY, DATA4, 32) != kmac128(KEY, DATA4, 32)

    def test_kmac256_variants(self):
        a = kmac256(KEY, DATA4, 64)
        b = kmac256_xof(KEY, DATA4, 64)
        assert len(a) == len(b) == 64
        assert a != b

    def test_customization(self):
        assert kmac256(KEY, DATA4, 32, APP) != kmac256(KEY, DATA4, 32)
