"""Tests for the six SHA-3 family functions, cross-checked against hashlib."""

import hashlib

import pytest

from repro.keccak import (
    SHA3_224,
    SHA3_256,
    SHA3_384,
    SHA3_512,
    SHA3_VARIANTS,
    SHAKE128,
    SHAKE256,
    SHAKE_VARIANTS,
    sha3_224,
    sha3_256,
    sha3_384,
    sha3_512,
    shake128,
    shake256,
)

_FIXED_MESSAGES = [
    b"",
    b"abc",
    b"The quick brown fox jumps over the lazy dog",
    bytes(range(256)),
    b"\x00" * 1000,
    b"a" * 143,  # SHA3-224 rate - 1
    b"a" * 144,  # SHA3-224 rate
]


class TestKnownAnswerVectors:
    """Published FIPS 202 test vectors (independent of hashlib)."""

    def test_sha3_224_empty(self):
        assert sha3_224(b"").hex() == (
            "6b4e03423667dbb73b6e15454f0eb1abd4597f9a1b078e3f5b5a6bc7"
        )

    def test_sha3_256_empty(self):
        assert sha3_256(b"").hex() == (
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        )

    def test_sha3_384_empty(self):
        assert sha3_384(b"").hex() == (
            "0c63a75b845e4f7d01107d852e4c2485c51a50aaaa94fc61995e71bbee983a2a"
            "c3713831264adb47fb6bd1e058d5f004"
        )

    def test_sha3_512_empty(self):
        assert sha3_512(b"").hex() == (
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6"
            "15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
        )

    def test_sha3_256_abc(self):
        assert sha3_256(b"abc").hex() == (
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        )

    def test_shake128_empty_first_bytes(self):
        assert shake128(b"", 16).hex() == "7f9c2ba4e88f827d616045507605853e"

    def test_shake256_empty_first_bytes(self):
        assert shake256(b"", 16).hex() == "46b9dd2b0ba88d13233b3feb743eeb24"


class TestAgainstHashlib:
    @pytest.mark.parametrize("message", _FIXED_MESSAGES,
                             ids=lambda m: f"len{len(m)}")
    @pytest.mark.parametrize("name", sorted(SHA3_VARIANTS))
    def test_fixed_hashes(self, name, message):
        ours = SHA3_VARIANTS[name](message).digest()
        theirs = hashlib.new(name, message).digest()
        assert ours == theirs

    @pytest.mark.parametrize("message", _FIXED_MESSAGES,
                             ids=lambda m: f"len{len(m)}")
    @pytest.mark.parametrize("name", sorted(SHAKE_VARIANTS))
    def test_fixed_xofs(self, name, message):
        ours = SHAKE_VARIANTS[name](message).digest(333)
        theirs = hashlib.new(name, message).digest(333)
        assert ours == theirs

    def test_random_messages(self, rng):
        for _ in range(20):
            message = bytes(rng.getrandbits(8)
                            for _ in range(rng.randrange(0, 500)))
            assert sha3_256(message) == hashlib.sha3_256(message).digest()
            assert shake256(message, 77) == \
                hashlib.shake_256(message).digest(77)


class TestHashlibLikeApi:
    def test_incremental_update(self):
        h = SHA3_256()
        h.update(b"hello ")
        h.update(b"world")
        assert h.digest() == hashlib.sha3_256(b"hello world").digest()

    def test_digest_does_not_finalize(self):
        h = SHA3_512(b"part one")
        first = h.digest()
        assert h.digest() == first  # repeatable
        h.update(b" part two")
        assert h.digest() == hashlib.sha3_512(b"part one part two").digest()

    def test_hexdigest(self):
        assert SHA3_224(b"x").hexdigest() == \
            hashlib.sha3_224(b"x").hexdigest()

    def test_copy_forks_the_stream(self):
        h = SHA3_256(b"common")
        fork = h.copy()
        h.update(b"-a")
        fork.update(b"-b")
        assert h.digest() == hashlib.sha3_256(b"common-a").digest()
        assert fork.digest() == hashlib.sha3_256(b"common-b").digest()

    def test_digest_size_properties(self):
        assert SHA3_224().digest_size == 28
        assert SHA3_256().digest_size == 32
        assert SHA3_384().digest_size == 48
        assert SHA3_512().digest_size == 64

    def test_block_size_is_rate(self):
        assert SHA3_224().block_size == 144
        assert SHA3_256().block_size == 136
        assert SHA3_384().block_size == 104
        assert SHA3_512().block_size == 72
        assert SHAKE128().block_size == 168
        assert SHAKE256().block_size == 136

    def test_names(self):
        assert SHA3_256().name == "sha3_256"
        assert SHAKE128().name == "shake_128"

    def test_base_classes_not_instantiable(self):
        from repro.keccak.hashes import _Sha3Base, _ShakeBase

        with pytest.raises(TypeError):
            _Sha3Base()
        with pytest.raises(TypeError):
            _ShakeBase()


class TestShakeStreaming:
    def test_read_continues_stream(self):
        xof = SHAKE128(b"seed")
        combined = xof.read(100) + xof.read(100)
        assert combined == hashlib.shake_128(b"seed").digest(200)

    def test_digest_is_restartable_but_read_is_not(self):
        xof = SHAKE256(b"seed")
        assert xof.digest(50) == xof.digest(50)
        first = xof.read(50)
        second = xof.read(50)
        assert first + second == hashlib.shake_256(b"seed").digest(100)

    def test_copy_preserves_read_position(self):
        xof = SHAKE128(b"seed")
        xof.read(10)
        clone = xof.copy()
        assert xof.read(20) == clone.read(20)

    def test_very_long_output(self):
        assert shake128(b"long", 5000) == \
            hashlib.shake_128(b"long").digest(5000)


class TestMonteCarloChains:
    """NIST-style Monte Carlo: iterate digest -> message 300 times."""

    def test_sha3_256_chain_matches_hashlib(self):
        ours = theirs = b"\x5a" * 32
        for _ in range(300):
            ours = SHA3_256(ours).digest()
            theirs = hashlib.sha3_256(theirs).digest()
        assert ours == theirs

    def test_shake128_feedback_chain(self):
        ours = theirs = b"\x11" * 16
        for _ in range(100):
            ours = SHAKE128(ours).digest(16)
            theirs = hashlib.shake_128(theirs).digest(16)
        assert ours == theirs


class TestNewFactory:
    """new() reaches the whole family, including the tree-hashing XOFs."""

    def test_fips_names_normalize(self):
        from repro.keccak import new

        assert new("SHA3-256", b"abc").digest() == \
            hashlib.sha3_256(b"abc").digest()
        assert new("shake_128", b"abc").digest(32) == \
            hashlib.shake_128(b"abc").digest(32)

    def test_turboshake_names(self):
        from repro.keccak import new
        from repro.keccak.kangarootwelve import turboshake128, turboshake256

        assert new("turboshake128", b"m").digest(32) == \
            turboshake128(b"m", 32)
        assert new("turboshake-256", b"m").digest(32) == \
            turboshake256(b"m", 32)

    def test_k12_names(self):
        from repro.keccak import new
        from repro.keccak.kangarootwelve import kangarootwelve

        for name in ("k12", "kangarootwelve"):
            assert new(name, b"m").digest(32) == kangarootwelve(b"m", 32)

    def test_parallelhash_names(self):
        from repro.keccak import new, parallelhash128, parallelhash256

        assert new("parallelhash128", b"m").digest(32) == \
            parallelhash128(b"m", 32)
        assert new("parallelhash_256", b"m").digest(64) == \
            parallelhash256(b"m", 64)

    def test_every_xof_streams_read(self):
        # The streaming contract: read(n) + read(n) == digest(2n) for
        # every XOF new() can construct (ParallelHash reads stream the
        # XOF variant, which by design differs from digest()).
        from repro.keccak import new, parallelhash128_xof
        from repro.keccak.kangarootwelve import turboshake128

        ts = new("turboshake128", b"seed")
        assert ts.read(16) + ts.read(16) == turboshake128(b"seed", 32)
        k12 = new("k12", b"seed")
        assert k12.read(16) + k12.read(16) == k12.digest(32)
        ph = new("parallelhash128", b"seed")
        assert ph.read(16) + ph.read(16) == \
            parallelhash128_xof(b"seed", 32)

    def test_unknown_name_rejected(self):
        from repro.keccak import new

        with pytest.raises(ValueError):
            new("md5")
