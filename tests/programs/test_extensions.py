"""Tests for the extension programs: fused instructions and LMUL=4+1."""

import pytest

from repro.isa import ISA, decode_operands
from repro.isa.vector import encode_vtype
from repro.assembler import assemble
from repro.keccak import KeccakState, chi, keccak_f1600, pi, rho
from repro.programs import keccak64_fused, keccak64_lmul41, run_keccak_program
from repro.programs import layout
from repro.sim import DataMemory, VectorUnit
from repro.sim.exceptions import IllegalInstructionError


def execute(unit, text, scalars=None):
    word = assemble(text).words[0]
    spec = ISA.find(word)
    ops = decode_operands(word, spec)
    values = scalars or {}
    return unit.execute(spec, ops, lambda n: values.get(n, 0))


class TestVrhopiInstruction:
    def test_matches_rho_then_pi(self, random_state):
        unit = VectorUnit(5 * 64, DataMemory(64))
        unit.configure(25, encode_vtype(64, 8))
        layout.load_states_regfile64(unit.regfile, [random_state])
        execute(unit, "vrhopi.vi v8, v0, -1")
        unit.configure(5, encode_vtype(64, 1))
        out = layout.read_states_regfile64(unit.regfile, 1, base_reg=8)[0]
        assert out == pi(rho(random_state))

    def test_explicit_rows(self, random_state):
        unit = VectorUnit(5 * 64, DataMemory(64))
        unit.configure(5, encode_vtype(64, 1))
        layout.load_states_regfile64(unit.regfile, [random_state])
        for y in range(5):
            execute(unit, f"vrhopi.vi v8, v{y}, {y}")
        out = layout.read_states_regfile64(unit.regfile, 1, base_reg=8)[0]
        assert out == pi(rho(random_state))

    def test_multi_state(self, random_states):
        states = random_states(3)
        unit = VectorUnit(15 * 64, DataMemory(64))
        unit.configure(75, encode_vtype(64, 8))
        layout.load_states_regfile64(unit.regfile, states)
        execute(unit, "vrhopi.vi v8, v0, -1")
        unit.configure(15, encode_vtype(64, 1))
        out = layout.read_states_regfile64(unit.regfile, 3, base_reg=8)
        assert out == [pi(rho(s)) for s in states]

    def test_requires_sew64(self):
        unit = VectorUnit(5 * 32, DataMemory(64))
        unit.configure(5, encode_vtype(32, 1))
        with pytest.raises(IllegalInstructionError, match="64-bit"):
            execute(unit, "vrhopi.vi v8, v0, 0")

    def test_costs_like_vpi(self):
        unit = VectorUnit(5 * 64, DataMemory(64))
        unit.configure(25, encode_vtype(64, 8))
        assert execute(unit, "vrhopi.vi v8, v0, -1") == 7


class TestVchiInstruction:
    def test_matches_chi(self, random_state):
        unit = VectorUnit(5 * 64, DataMemory(64))
        unit.configure(25, encode_vtype(64, 8))
        layout.load_states_regfile64(unit.regfile, [random_state])
        execute(unit, "vchi.vi v8, v0, 0")
        unit.configure(5, encode_vtype(64, 1))
        out = layout.read_states_regfile64(unit.regfile, 1, base_reg=8)[0]
        assert out == chi(random_state)

    def test_works_on_32bit_halves(self, random_state):
        # chi is bitwise, so it applies to hi/lo halves independently.
        unit = VectorUnit(5 * 32, DataMemory(64))
        unit.configure(25, encode_vtype(32, 8))
        layout.load_states_regfile32(unit.regfile, [random_state],
                                     lo_base=0, hi_base=16)
        execute(unit, "vchi.vi v8, v0, 0")
        execute(unit, "vchi.vi v24, v16, 0")
        unit.configure(5, encode_vtype(32, 1))
        out = layout.read_states_regfile32(unit.regfile, 1,
                                           lo_base=8, hi_base=24)[0]
        assert out == chi(random_state)

    def test_reserved_immediate(self):
        unit = VectorUnit(5 * 64, DataMemory(64))
        unit.configure(5, encode_vtype(64, 1))
        with pytest.raises(IllegalInstructionError, match="reserved"):
            execute(unit, "vchi.vi v8, v0, 1")

    def test_in_place(self, random_state):
        unit = VectorUnit(5 * 64, DataMemory(64))
        unit.configure(25, encode_vtype(64, 8))
        layout.load_states_regfile64(unit.regfile, [random_state])
        execute(unit, "vchi.vi v0, v0, 0")
        unit.configure(5, encode_vtype(64, 1))
        out = layout.read_states_regfile64(unit.regfile, 1)[0]
        assert out == chi(random_state)


class TestFusedProgram:
    def test_correct_all_configs(self, random_states):
        for elenum, count in ((5, 1), (15, 3), (30, 6)):
            states = random_states(count)
            result = run_keccak_program(keccak64_fused.build(elenum), states)
            assert result.states == [keccak_f1600(s) for s in states]

    def test_45_cycles_per_round(self, random_states):
        result = run_keccak_program(keccak64_fused.build(5),
                                    random_states(1))
        assert result.cycles_per_round == 45
        assert result.permutation_cycles == 1172

    def test_improvement_over_algorithm3(self, random_states):
        from repro.programs import keccak64_lmul8

        fused = run_keccak_program(keccak64_fused.build(5), random_states(1))
        baseline = run_keccak_program(keccak64_lmul8.build(5),
                                      random_states(1))
        gain = baseline.permutation_cycles / fused.permutation_cycles
        assert gain == pytest.approx(1892 / 1172, abs=0.001)
        assert gain > 1.6  # the paper's predicted further improvement

    def test_memory_io_variant(self, random_states):
        states = random_states(2)
        program = keccak64_fused.build(15, include_memory_io=True)
        result = run_keccak_program(program, states)
        assert result.states == [keccak_f1600(s) for s in states]


class TestLmul41Program:
    def test_correct(self, random_states):
        for elenum, count in ((5, 1), (30, 6)):
            states = random_states(count)
            result = run_keccak_program(keccak64_lmul41.build(elenum),
                                        states)
            assert result.states == [keccak_f1600(s) for s in states]

    def test_87_cycles_per_round(self, random_states):
        result = run_keccak_program(keccak64_lmul41.build(5),
                                    random_states(1))
        assert result.cycles_per_round == 87

    def test_validates_papers_rejection(self, random_states):
        """Section 4.1: alternating LMUL 'would consume more time' —
        quantitatively: 87 > 75 cycles/round."""
        from repro.programs import keccak64_lmul8

        lmul41 = run_keccak_program(keccak64_lmul41.build(5),
                                    random_states(1))
        lmul8 = run_keccak_program(keccak64_lmul8.build(5),
                                   random_states(1))
        assert lmul41.cycles_per_round > lmul8.cycles_per_round
        # But still better than no grouping at all (103).
        assert lmul41.cycles_per_round < 103

    def test_memory_io_not_supported(self):
        with pytest.raises(NotImplementedError):
            keccak64_lmul41.build(5, include_memory_io=True)

    def test_uses_alternating_vsetvli(self, random_states):
        result = run_keccak_program(keccak64_lmul41.build(5),
                                    random_states(1))
        # 4 vsetvli per round (m4/m1/m4/m1) + 1 initial.
        assert result.stats.mnemonic_counts["vsetvli"] == 1 + 24 * 4
