"""The process-wide default-session cache: LRU-bounded, keyed by
normalized timing model."""

import pytest

from repro.programs import session as session_mod
from repro.programs.session import default_session
from repro.sim.cycles import CycleModel, DEFAULT_CYCLE_MODEL
from repro.sim.lru import LRU
from repro.sim.timing import DEFAULT_TIMING_MODEL, TimingModel


@pytest.fixture(autouse=True)
def isolated_session_cache():
    """Snapshot and restore the module-global cache around each test."""
    saved = list(zip(session_mod._DEFAULT_SESSIONS.keys(),
                     session_mod._DEFAULT_SESSIONS.values()))
    session_mod._DEFAULT_SESSIONS.clear()
    yield
    session_mod._DEFAULT_SESSIONS.clear()
    for key, value in saved:
        session_mod._DEFAULT_SESSIONS.put(key, value)


def test_cache_is_a_bounded_lru():
    assert isinstance(session_mod._DEFAULT_SESSIONS, LRU)
    assert session_mod._DEFAULT_SESSIONS.capacity \
        == session_mod._MAX_DEFAULT_SESSIONS


def test_same_model_returns_same_session():
    assert default_session() is default_session()
    custom = TimingModel(register_banks=2)
    assert default_session(custom) is default_session(custom)


def test_default_spellings_share_one_session():
    """CycleModel, TimingModel and implicit-default callers must all
    land on the same cache entry, not three."""
    a = default_session()
    assert default_session(DEFAULT_CYCLE_MODEL) is a
    assert default_session(CycleModel()) is a
    assert default_session(DEFAULT_TIMING_MODEL) is a
    assert default_session(TimingModel()) is a
    assert len(session_mod._DEFAULT_SESSIONS) == 1


def test_eviction_is_bounded_and_lru_ordered():
    cap = session_mod._MAX_DEFAULT_SESSIONS
    models = [TimingModel(dispatch_overhead=n) for n in range(cap + 2)]
    sessions = [default_session(m) for m in models]
    assert len(session_mod._DEFAULT_SESSIONS) == cap

    # The two oldest were evicted; re-requesting builds fresh sessions.
    for old_model, old_session in zip(models[:2], sessions[:2]):
        assert old_model not in session_mod._DEFAULT_SESSIONS
        assert default_session(old_model) is not old_session
    # The most recent survivors are still served from cache.
    assert default_session(models[-1]) is sessions[-1]


def test_access_refreshes_recency():
    cap = session_mod._MAX_DEFAULT_SESSIONS
    first = default_session(TimingModel(dispatch_overhead=0))
    for n in range(1, cap):
        default_session(TimingModel(dispatch_overhead=n))
    # Touch the oldest entry, then insert one more: the touched entry
    # must survive and the second-oldest must be evicted instead.
    assert default_session(TimingModel(dispatch_overhead=0)) is first
    default_session(TimingModel(dispatch_overhead=cap))
    assert default_session(TimingModel(dispatch_overhead=0)) is first
    assert TimingModel(dispatch_overhead=1) \
        not in session_mod._DEFAULT_SESSIONS
