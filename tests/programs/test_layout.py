"""Tests for the state layouts of Figs. 5 and 6."""

import pytest

from repro.keccak import KeccakState, split_hi_lo
from repro.programs import layout
from repro.sim import VectorRegfile


class TestRegfile64:
    def test_round_trip_single_state(self, random_state):
        regfile = VectorRegfile(5 * 64)
        layout.load_states_regfile64(regfile, [random_state])
        assert layout.read_states_regfile64(regfile, 1)[0] == random_state

    def test_round_trip_multi_state(self, random_states):
        states = random_states(3)
        regfile = VectorRegfile(16 * 64)
        layout.load_states_regfile64(regfile, states)
        assert layout.read_states_regfile64(regfile, 3) == states

    def test_fig5_placement(self, random_state):
        # Plane y in register y; lane (x, y) of state s at element 5s+x.
        regfile = VectorRegfile(16 * 64)
        layout.load_states_regfile64(regfile, [random_state, random_state])
        assert regfile.get_element(2, 3, 64) == random_state[3, 2]
        assert regfile.get_element(2, 5 + 3, 64) == random_state[3, 2]

    def test_capacity_enforced(self, random_states):
        regfile = VectorRegfile(5 * 64)
        with pytest.raises(ValueError, match="elements"):
            layout.load_states_regfile64(regfile, random_states(2))

    def test_base_register_offset(self, random_state):
        regfile = VectorRegfile(5 * 64)
        layout.load_states_regfile64(regfile, [random_state], base_reg=8)
        assert layout.read_states_regfile64(regfile, 1, base_reg=8)[0] == \
            random_state
        assert regfile.read_raw(0) == 0


class TestRegfile32:
    def test_round_trip(self, random_states):
        states = random_states(2)
        regfile = VectorRegfile(10 * 32)
        layout.load_states_regfile32(regfile, states)
        assert layout.read_states_regfile32(regfile, 2) == states

    def test_fig6_hi_lo_placement(self, random_state):
        regfile = VectorRegfile(5 * 32)
        layout.load_states_regfile32(regfile, [random_state])
        hi, lo = split_hi_lo(random_state[2, 1])
        assert regfile.get_element(1, 2, 32) == lo     # low in v0..v4
        assert regfile.get_element(17, 2, 32) == hi    # high in v16..v20

    def test_custom_bases(self, random_state):
        regfile = VectorRegfile(5 * 32)
        layout.load_states_regfile32(regfile, [random_state],
                                     lo_base=8, hi_base=24)
        assert layout.read_states_regfile32(
            regfile, 1, lo_base=8, hi_base=24)[0] == random_state


class TestMemoryImages:
    def test_image64_round_trip(self, random_states):
        states = random_states(3)
        image = layout.memory_image64(states, elenum=16)
        assert len(image) == 5 * 16 * 8
        assert layout.parse_memory_image64(image, 16, 3) == states

    def test_image64_lane_position(self, random_state):
        image = layout.memory_image64([random_state], elenum=5)
        # Lane (x=2, y=1) at offset (1*5 + 2) * 8.
        offset = 7 * 8
        assert image[offset : offset + 8] == \
            random_state[2, 1].to_bytes(8, "little")

    def test_image32_round_trip(self, random_states):
        states = random_states(2)
        image = layout.memory_image32(states, elenum=10)
        assert len(image) == 2 * 5 * 10 * 4
        assert layout.parse_memory_image32(image, 10, 2) == states

    def test_image32_regions(self, random_state):
        image = layout.memory_image32([random_state], elenum=5)
        region = 5 * 5 * 4
        hi, lo = split_hi_lo(random_state[0, 0])
        assert image[0:4] == lo.to_bytes(4, "little")
        assert image[region : region + 4] == hi.to_bytes(4, "little")

    def test_parse_too_small(self):
        with pytest.raises(ValueError, match="too small"):
            layout.parse_memory_image64(b"", 5, 1)
        with pytest.raises(ValueError, match="too small"):
            layout.parse_memory_image32(b"", 5, 1)

    def test_capacity_checks(self, random_states):
        with pytest.raises(ValueError):
            layout.memory_image64(random_states(2), elenum=5)
        with pytest.raises(ValueError):
            layout.check_capacity(5, 0)
