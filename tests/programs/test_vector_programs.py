"""End-to-end tests of the three vector Keccak programs.

These are the central correctness tests of the reproduction: the assembly
programs of Algorithms 2/3 (and the 32-bit variant), executed instruction
by instruction on the processor simulator, must produce states
bit-identical to the NIST-checked reference permutation — for every
configuration the paper evaluates — and must cost exactly the cycle counts
the paper reports.
"""

import pytest

from repro.keccak import KeccakState, keccak_f1600
from repro.programs import (
    build_program,
    keccak32_lmul8,
    keccak64_lmul1,
    keccak64_lmul8,
    run_keccak_program,
)

ALL_BUILDERS = [
    pytest.param(keccak64_lmul1, 64, 1, id="64bit-lmul1"),
    pytest.param(keccak64_lmul8, 64, 8, id="64bit-lmul8"),
    pytest.param(keccak32_lmul8, 32, 8, id="32bit-lmul8"),
]

#: The paper's cycle results: builder name -> (cycles/round, permutation).
PAPER_CYCLES = {
    "keccak64_lmul1": (103, 2564),
    "keccak64_lmul8": (75, 1892),
    "keccak32_lmul8": (147, 3620),
}


class TestCorrectness:
    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_single_state(self, builder, elen, lmul, random_states):
        states = random_states(1)
        result = run_keccak_program(builder.build(5), states)
        assert result.states[0] == keccak_f1600(states[0])

    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    @pytest.mark.parametrize("elenum,count", [(15, 3), (30, 6)])
    def test_multi_state(self, builder, elen, lmul, elenum, count,
                         random_states):
        states = random_states(count)
        result = run_keccak_program(builder.build(elenum), states)
        expected = [keccak_f1600(s) for s in states]
        assert result.states == expected

    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_zero_state(self, builder, elen, lmul):
        result = run_keccak_program(builder.build(5), [KeccakState()])
        assert result.states[0] == keccak_f1600(KeccakState())

    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_all_ones_state(self, builder, elen, lmul):
        state = KeccakState([(1 << 64) - 1] * 25)
        result = run_keccak_program(builder.build(5), [state])
        assert result.states[0] == keccak_f1600(state)

    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_states_are_independent(self, builder, elen, lmul,
                                    random_states):
        """Each state's result is unaffected by its neighbours."""
        states = random_states(3)
        together = run_keccak_program(builder.build(15), states).states
        for i, state in enumerate(states):
            alone = run_keccak_program(builder.build(15), [state]).states[0]
            # Note: single state occupies slot 0; compare values.
            assert keccak_f1600(state) == alone
            assert together[i] == alone

    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_partial_occupancy(self, builder, elen, lmul, random_states):
        """2 states in a 3-state register file: empty slots stay zero."""
        states = random_states(2)
        result = run_keccak_program(builder.build(15), states)
        assert result.states == [keccak_f1600(s) for s in states]

    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_memory_io_variant(self, builder, elen, lmul, random_states):
        states = random_states(3)
        program = builder.build(15, include_memory_io=True)
        result = run_keccak_program(program, states)
        assert result.states == [keccak_f1600(s) for s in states]

    def test_too_many_states_rejected(self, random_states):
        with pytest.raises(ValueError, match="at most"):
            run_keccak_program(keccak64_lmul1.build(5), random_states(2))


class TestCycleCounts:
    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_cycles_match_paper(self, builder, elen, lmul, random_states):
        result = run_keccak_program(builder.build(5), random_states(1))
        expected_round, expected_perm = PAPER_CYCLES[builder.build(5).name]
        assert result.cycles_per_round == expected_round
        assert result.permutation_cycles == expected_perm

    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_latency_independent_of_state_count(self, builder, elen, lmul,
                                                random_states):
        """Paper: 'The latency is the same no matter how many Keccak
        states there are in the system simultaneously.'"""
        one = run_keccak_program(builder.build(30), random_states(1))
        six = run_keccak_program(builder.build(30), random_states(6))
        assert one.permutation_cycles == six.permutation_cycles
        assert one.cycles_per_round == six.cycles_per_round

    @pytest.mark.parametrize("builder,elen,lmul", ALL_BUILDERS)
    def test_latency_independent_of_elenum(self, builder, elen, lmul,
                                           random_states):
        small = run_keccak_program(builder.build(5), random_states(1))
        large = run_keccak_program(builder.build(30), random_states(1))
        assert small.permutation_cycles == large.permutation_cycles

    def test_cycles_per_byte(self, random_states):
        result = run_keccak_program(keccak64_lmul8.build(5),
                                    random_states(1))
        assert result.cycles_per_byte == pytest.approx(9.46, abs=0.05)

    def test_lmul8_is_faster_than_lmul1(self, random_states):
        lmul1 = run_keccak_program(keccak64_lmul1.build(5), random_states(1))
        lmul8 = run_keccak_program(keccak64_lmul8.build(5), random_states(1))
        assert lmul8.permutation_cycles < lmul1.permutation_cycles

    def test_64bit_roughly_twice_as_fast_as_32bit(self, random_states):
        k64 = run_keccak_program(keccak64_lmul8.build(5), random_states(1))
        k32 = run_keccak_program(keccak32_lmul8.build(5), random_states(1))
        ratio = k32.permutation_cycles / k64.permutation_cycles
        assert 1.7 < ratio < 2.1  # "almost twice as fast"


class TestBuilders:
    def test_build_program_dispatch(self):
        assert build_program(64, 1, 5).name == "keccak64_lmul1"
        assert build_program(64, 8, 15).name == "keccak64_lmul8"
        assert build_program(32, 8, 30).name == "keccak32_lmul8"

    def test_build_program_unknown_combination(self):
        with pytest.raises(ValueError, match="no program"):
            build_program(32, 1, 5)

    def test_max_states(self):
        assert keccak64_lmul1.build(5).max_states == 1
        assert keccak64_lmul1.build(16).max_states == 3
        assert keccak32_lmul8.build(30).max_states == 6

    def test_assemble_caches(self):
        program = keccak64_lmul1.build(5)
        assert program.assemble() is program.assemble()

    def test_source_has_round_markers(self):
        for builder in (keccak64_lmul1, keccak64_lmul8, keccak32_lmul8):
            program = builder.build(5)
            assembled = program.assemble()
            assert "permutation" in assembled.symbols
            assert "round_body" in assembled.symbols
            assert "round_end" in assembled.symbols

    def test_memory_io_flag_adds_loads_and_stores(self):
        plain = keccak64_lmul1.build(5).assemble()
        with_io = keccak64_lmul1.build(5, include_memory_io=True).assemble()
        plain_mnemonics = [i.mnemonic for i in plain.instructions]
        io_mnemonics = [i.mnemonic for i in with_io.instructions]
        assert "vle64.v" not in plain_mnemonics
        assert io_mnemonics.count("vle64.v") == 5
        assert io_mnemonics.count("vse64.v") == 5

    def test_32bit_memory_io_loads_both_halves(self):
        program = keccak32_lmul8.build(5, include_memory_io=True).assemble()
        mnemonics = [i.mnemonic for i in program.instructions]
        assert mnemonics.count("vle32.v") == 10
        assert mnemonics.count("vse32.v") == 10

    def test_instruction_counts_match_algorithm2(self):
        """Algorithm 2's round body: 13 + 5 + 5 + 25 + 1 = 49 vector ops."""
        program = keccak64_lmul1.build(5).assemble()
        body_start = program.symbols["round_body"]
        body_end = program.symbols["round_end"]
        body = [i for i in program.instructions
                if body_start <= i.address < body_end]
        assert len(body) == 49
