"""Tests for reduced-round (Keccak-p) program variants — the K12 mode."""

import pytest

from repro.keccak import keccak_f1600, keccak_p1600, turboshake128
from repro.keccak.sponge import Sponge
from repro.programs import (
    SimulatedPermutation,
    build_program,
    keccak32_lmul8,
    keccak64_lmul1,
    keccak64_lmul8,
    run_keccak_program,
)


class TestReducedRoundPrograms:
    @pytest.mark.parametrize("builder", [keccak64_lmul1, keccak64_lmul8,
                                         keccak32_lmul8],
                             ids=["64l1", "64l8", "32l8"])
    @pytest.mark.parametrize("rounds", [1, 12, 24])
    def test_matches_keccak_p(self, builder, rounds, random_states):
        states = random_states(1)
        program = builder.build(5, num_rounds=rounds)
        result = run_keccak_program(program, states)
        assert result.states[0] == keccak_p1600(states[0], rounds)

    def test_24_rounds_is_keccak_f(self, random_states):
        states = random_states(1)
        program = keccak64_lmul8.build(5, num_rounds=24)
        result = run_keccak_program(program, states)
        assert result.states[0] == keccak_f1600(states[0])

    def test_k12_permutation_latency(self, random_states):
        """12 rounds: 12 x 75 + 11 x 4 loop cycles = 944."""
        program = keccak64_lmul8.build(5, num_rounds=12)
        result = run_keccak_program(program, random_states(1))
        assert result.permutation_cycles == 944
        assert result.cycles_per_round == 75

    def test_multi_state_reduced_rounds(self, random_states):
        states = random_states(3)
        program = keccak64_lmul8.build(15, num_rounds=12)
        result = run_keccak_program(program, states)
        assert result.states == [keccak_p1600(s, 12) for s in states]

    def test_32bit_uses_doubled_rc_index(self, random_states):
        states = random_states(1)
        program = keccak32_lmul8.build(5, num_rounds=12)
        result = run_keccak_program(program, states)
        assert result.states[0] == keccak_p1600(states[0], 12)

    def test_round_count_validated(self):
        for builder in (keccak64_lmul1, keccak64_lmul8, keccak32_lmul8):
            with pytest.raises(ValueError):
                builder.build(5, num_rounds=0)
            with pytest.raises(ValueError):
                builder.build(5, num_rounds=25)

    def test_factory_forwards_rounds(self, random_states):
        program = build_program(64, 8, 5, num_rounds=12)
        assert program.num_rounds == 12
        result = run_keccak_program(program, random_states(1))
        assert result.permutation_cycles == 944


class TestTurboShakeOnSimulator:
    def test_turboshake128_digest_matches(self):
        perm12 = SimulatedPermutation(elen=64, lmul=8, elenum=5,
                                      num_rounds=12)
        out = Sponge(256, suffix=0x07, permutation=perm12) \
            .absorb(b"message").squeeze(64)
        assert out == turboshake128(b"message", 64, domain=0x07)

    def test_k12_mode_roughly_halves_cycles(self):
        full = SimulatedPermutation(elen=64, lmul=8, elenum=5)
        reduced = SimulatedPermutation(elen=64, lmul=8, elenum=5,
                                       num_rounds=12)
        Sponge(256, suffix=0x07, permutation=full).absorb(b"m").squeeze(32)
        Sponge(256, suffix=0x07, permutation=reduced).absorb(b"m") \
            .squeeze(32)
        ratio = full.total_cycles / reduced.total_cycles
        assert 1.9 < ratio < 2.1
