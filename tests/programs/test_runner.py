"""Tests for the program runner glue (RunResult, processors)."""

import pytest

from repro.keccak import KeccakState, keccak_f1600
from repro.programs import keccak64_lmul8, run_keccak_program
from repro.programs.runner import RunResult, make_processor


class TestMakeProcessor:
    def test_matches_program_architecture(self):
        program = keccak64_lmul8.build(15)
        processor = make_processor(program)
        assert processor.elen == 64
        assert processor.elenum == 15
        assert processor.vlen_bits == 960

    def test_trace_flag(self):
        program = keccak64_lmul8.build(5)
        assert make_processor(program, trace=True).stats.records is not None
        assert make_processor(program, trace=False).stats.records is None


class TestRunResult:
    def test_cycles_per_byte_definition(self):
        result = RunResult(states=[], stats=None, cycles_per_round=75,
                           permutation_cycles=1892)
        assert result.cycles_per_byte == pytest.approx(1892 / 200)

    def test_untraced_run_estimates_from_totals(self, random_states):
        program = keccak64_lmul8.build(5)
        result = run_keccak_program(program, random_states(1), trace=False)
        # Without a trace the per-round figure is total/rounds — close to
        # but above the body-only number.
        assert 75 <= result.cycles_per_round < 85
        assert result.states[0] is not None

    def test_external_processor_reuse(self, random_states):
        program = keccak64_lmul8.build(5)
        processor = make_processor(program)
        states = random_states(1)
        result = run_keccak_program(program, states, processor=processor)
        assert result.states[0] == keccak_f1600(states[0])

    def test_empty_state_list(self):
        program = keccak64_lmul8.build(5)
        result = run_keccak_program(program, [])
        assert result.states == []
        assert result.permutation_cycles == 1892  # latency is SN-free
