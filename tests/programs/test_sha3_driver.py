"""Tests for SHA-3 hashing with the simulator as permutation engine."""

import hashlib

import pytest

from repro.programs import (
    SimulatedPermutation,
    simulated_sha3_256,
    simulated_shake128,
)
from repro.programs.factory import build_program


@pytest.fixture(scope="module")
def perm64():
    return SimulatedPermutation(elen=64, lmul=8, elenum=5)


@pytest.fixture(scope="module")
def perm32():
    return SimulatedPermutation(elen=32, lmul=8, elenum=5)


class TestDigestsMatchHashlib:
    def test_sha3_256_empty(self, perm64):
        assert simulated_sha3_256(b"", perm64) == \
            hashlib.sha3_256(b"").digest()

    def test_sha3_256_short_message(self, perm64):
        message = b"vectorized keccak"
        assert simulated_sha3_256(message, perm64) == \
            hashlib.sha3_256(message).digest()

    def test_sha3_256_multi_block(self, perm64):
        message = bytes(range(256)) + b"x" * 100  # 3 rate blocks
        assert simulated_sha3_256(message, perm64) == \
            hashlib.sha3_256(message).digest()

    def test_shake128_output(self, perm64):
        assert simulated_shake128(b"seed", 300, perm64) == \
            hashlib.shake_128(b"seed").digest(300)

    def test_32bit_architecture_digests(self, perm32):
        message = b"32-bit hi/lo split"
        assert simulated_sha3_256(message, perm32) == \
            hashlib.sha3_256(message).digest()

    def test_lmul1_program_digests(self):
        perm = SimulatedPermutation(elen=64, lmul=1, elenum=5)
        assert simulated_sha3_256(b"lmul1", perm) == \
            hashlib.sha3_256(b"lmul1").digest()


class TestAccounting:
    def test_call_count_tracks_permutations(self):
        perm = SimulatedPermutation()
        simulated_sha3_256(b"", perm)  # 1 block
        assert perm.call_count == 1
        simulated_sha3_256(b"x" * 200, perm)  # 2 blocks (136-byte rate)
        assert perm.call_count == 3

    def test_cycles_accumulate(self):
        perm = SimulatedPermutation()
        simulated_sha3_256(b"", perm)
        first = perm.total_cycles
        assert first > 1892  # permutation + memory IO
        simulated_sha3_256(b"", perm)
        assert perm.total_cycles == 2 * first

    def test_requires_memory_io_program(self):
        program = build_program(64, 8, 5, include_memory_io=False)
        with pytest.raises(ValueError, match="memory-IO"):
            SimulatedPermutation(program=program)
