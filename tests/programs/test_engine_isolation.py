"""Regression: per-run ``engine=`` overrides never leak.

``Session.run(engine=...)`` borrows the session's cached processor for
one run.  The processor must come back on the session's default engine —
including when the run raises — and the batch drivers' per-process
permutation cache must key on the engine so a pool job requesting
``stepped`` can never hand a later ``auto`` job a stepped permutation.
"""

import pytest

from repro.keccak import keccak_f1600
from repro.observability import metrics
from repro.programs import Session, build_program
from repro.programs import batch_driver, session as session_module


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics.disarm()
    metrics.registry().reset()
    yield
    metrics.disarm()
    metrics.registry().reset()


class TestSessionOverride:
    def test_override_does_not_leak_into_later_runs(self, random_state):
        session = Session()  # default engine: auto
        program = build_program(64, 8, 5)
        proc = session.processor(64, 5)

        session.run(program, [random_state], engine="stepped")
        assert proc.engine == session.engine == "auto"

        # The next default run actually executes on a fast engine, not
        # the leaked stepped one: the armed engine counter is the
        # ground truth for what ran.
        metrics.arm()
        try:
            result = session.run(program, [random_state])
        finally:
            metrics.disarm()
        assert result.states == [keccak_f1600(random_state)]
        runs = metrics.registry().get("sim_runs_total")
        assert runs.value(engine="stepped") == 0

    def test_override_respected_for_its_own_run(self, random_state):
        session = Session(engine="fused")
        program = build_program(64, 8, 5)
        metrics.arm()
        try:
            result = session.run(program, [random_state],
                                 engine="stepped")
        finally:
            metrics.disarm()
        assert result.states == [keccak_f1600(random_state)]
        runs = metrics.registry().get("sim_runs_total")
        assert runs.value(engine="stepped") == 1

    def test_engine_restored_when_run_raises(self, monkeypatch):
        session = Session(engine="fused")
        program = build_program(64, 8, 5)
        proc = session.processor(64, 5)

        def boom(*args, **kwargs):
            raise RuntimeError("injected")

        monkeypatch.setattr(session_module, "_execute", boom)
        with pytest.raises(RuntimeError):
            session.run(program, [], engine="stepped")
        assert proc.engine == "fused"

    def test_invalid_override_rejected_before_any_state_change(self):
        session = Session()
        program = build_program(64, 8, 5)
        with pytest.raises(ValueError):
            session.run(program, [], engine="warp")
        assert session.processor(64, 5).engine == "auto"


class TestBatchDriverCache:
    def test_permutation_cache_keys_on_engine(self):
        arch = (64, 8, 5)
        auto = batch_driver._cached_permutation(arch, "auto")
        stepped = batch_driver._cached_permutation(arch, "stepped")
        assert auto is not stepped
        assert auto.engine == "auto" and stepped.engine == "stepped"
        assert auto._session.engine == "auto"
        assert stepped._session.engine == "stepped"
        # Asking again returns the same warm object per key.
        assert batch_driver._cached_permutation(arch, "auto") is auto

    def test_warm_parent_only_precompiles_compilable_engines(self,
                                                             monkeypatch):
        calls = []

        class _Spy:
            def __init__(self, engine):
                self.engine = engine

            def precompile(self):
                calls.append(self.engine)

        spies = {}

        def fake_cached(arch, engine="auto", num_rounds=24):
            return spies.setdefault((arch, engine, num_rounds),
                                    _Spy(engine))

        monkeypatch.setattr(batch_driver, "_cached_permutation",
                            fake_cached)
        arch = (64, 8, 30)
        batch_driver._warm_parent(arch, "stepped", workers=2)
        batch_driver._warm_parent(arch, "auto", workers=2)
        batch_driver._warm_parent(arch, "auto", workers=1)  # serial: skip
        assert calls == ["stepped", "auto"]
        # precompile() itself refuses non-compiled engines…
        assert batch_driver.BatchPermutation(
            64, 8, 5, engine="stepped").precompile() is False

    def test_chunk_payloads_carry_the_engine(self):
        chunks = batch_driver._prepare_chunks(
            [b"x"] * 4, "sha3_256", 32, (64, 8, 5), chunk_size=2,
            engine="predecoded")
        assert all(chunk[4] == "predecoded" for chunk in chunks)
        # Legacy 4-tuple payloads (old checkpoint manifests) still
        # default to auto inside the task body.
        digests = batch_driver._hash_chunk(
            ("sha3_256", 32, (64, 8, 5), [b"abc"]))
        import hashlib
        assert digests == [hashlib.sha3_256(b"abc").digest()]
