"""Tests for batch hashing over parallel Keccak states."""

import hashlib

import pytest

from repro.keccak.sponge import SHA3_SUFFIX
from repro.programs.batch_driver import (
    BatchPermutation,
    BatchSponge,
    batch_sha3_256,
    batch_shake128,
)
from repro.programs.factory import build_program


@pytest.fixture(scope="module")
def perm6():
    return BatchPermutation(elen=64, lmul=8, elenum=30)


@pytest.fixture(scope="module")
def perm3_32():
    return BatchPermutation(elen=32, lmul=8, elenum=15)


class TestBatchPermutation:
    def test_matches_reference(self, perm6, random_states):
        from repro.keccak import keccak_f1600

        states = random_states(6)
        assert perm6(states) == [keccak_f1600(s) for s in states]

    def test_partial_batch(self, perm6, random_states):
        from repro.keccak import keccak_f1600

        states = random_states(2)
        assert perm6(states) == [keccak_f1600(s) for s in states]

    def test_too_many_states(self, perm6, random_states):
        with pytest.raises(ValueError, match="exceeds"):
            perm6(random_states(7))

    def test_requires_memory_io(self):
        with pytest.raises(ValueError, match="memory-IO"):
            BatchPermutation(program=build_program(64, 8, 5))

    def test_cycle_accounting(self, random_states):
        perm = BatchPermutation(elenum=30)
        perm(random_states(6))
        perm(random_states(1))
        assert perm.call_count == 2
        assert perm.total_cycles > 2 * 1892


class TestBatchSha3:
    def test_equal_length_messages(self, perm6):
        messages = [bytes([i]) * 50 for i in range(6)]
        digests = batch_sha3_256(messages, perm6)
        for message, digest in zip(messages, digests):
            assert digest == hashlib.sha3_256(message).digest()

    def test_unequal_length_messages(self, perm6):
        messages = [b"", b"x", b"y" * 136, b"z" * 300, b"w" * 137, b"v" * 272]
        digests = batch_sha3_256(messages, perm6)
        for message, digest in zip(messages, digests):
            assert digest == hashlib.sha3_256(message).digest()

    def test_single_message(self, perm6):
        assert batch_sha3_256([b"solo"], perm6)[0] == \
            hashlib.sha3_256(b"solo").digest()

    def test_32bit_architecture(self, perm3_32):
        messages = [b"a", b"bb" * 100, b"ccc"]
        digests = batch_sha3_256(messages, perm3_32)
        for message, digest in zip(messages, digests):
            assert digest == hashlib.sha3_256(message).digest()

    def test_batching_cost_amortized(self):
        """Six equal-length messages need the same number of program runs
        as one message (the core multi-state claim)."""
        one = BatchPermutation(elenum=30)
        batch_sha3_256([b"m" * 100], one)
        six = BatchPermutation(elenum=30)
        batch_sha3_256([bytes([i]) * 100 for i in range(6)], six)
        assert six.call_count == one.call_count


class TestBatchShake:
    def test_outputs_match_hashlib(self, perm6):
        messages = [b"s1", b"s2", b"s3"]
        outputs = batch_shake128(messages, 400, perm6)
        for message, output in zip(messages, outputs):
            assert output == hashlib.shake_128(message).digest(400)

    def test_multiblock_squeeze_shares_permutes(self):
        perm = BatchPermutation(elenum=30)
        batch_shake128([b"a", b"b"], 336, perm)  # 2 squeeze blocks
        # 1 absorb permute + 1 extra squeeze permute.
        assert perm.call_count == 2


class TestBatchSpongeValidation:
    def test_lane_bounds(self, perm6):
        sponge = BatchSponge(2, 512, SHA3_SUFFIX, perm6)
        with pytest.raises(IndexError):
            sponge.absorb(2, b"x")

    def test_too_many_lanes(self, perm6):
        with pytest.raises(ValueError, match="exceed"):
            BatchSponge(7, 512, SHA3_SUFFIX, perm6)

    def test_zero_lanes(self, perm6):
        with pytest.raises(ValueError):
            BatchSponge(0, 512, SHA3_SUFFIX, perm6)

    def test_bad_capacity(self, perm6):
        with pytest.raises(ValueError):
            BatchSponge(1, 511, SHA3_SUFFIX, perm6)

    def test_absorb_after_squeeze(self, perm6):
        sponge = BatchSponge(1, 512, SHA3_SUFFIX, perm6)
        sponge.absorb(0, b"data")
        sponge.squeeze(1)
        with pytest.raises(RuntimeError):
            sponge.absorb(0, b"late")

    def test_negative_squeeze(self, perm6):
        sponge = BatchSponge(1, 512, SHA3_SUFFIX, perm6)
        with pytest.raises(ValueError):
            sponge.squeeze(-1)

    def test_incremental_absorb(self, perm6):
        sponge = BatchSponge(2, 512, SHA3_SUFFIX, perm6)
        sponge.absorb(0, b"hello ")
        sponge.absorb(0, b"world")
        sponge.absorb(1, b"other")
        digests = sponge.squeeze(32)
        assert digests[0] == hashlib.sha3_256(b"hello world").digest()
        assert digests[1] == hashlib.sha3_256(b"other").digest()


class TestAlgorithmRegistry:
    """The generalized sponge-algorithm registry behind run_many."""

    def test_supported_algorithms(self):
        from repro.programs.batch_driver import supported_algorithms

        names = supported_algorithms()
        for name in ("sha3_256", "shake128", "shake256", "k12_leaf",
                     "k12", "parallelhash128", "parallelhash256"):
            assert name in names

    def test_digest_size(self):
        from repro.programs.batch_driver import digest_size

        assert digest_size("sha3_256", 99) == 32  # fixed output wins
        assert digest_size("shake128", 48) == 48
        assert digest_size("k12", 64) == 64
        assert digest_size("k12_leaf", 99) == 32  # chaining values

    def test_unknown_algorithm_rejected(self):
        from repro.programs.batch_driver import hash_messages

        with pytest.raises(ValueError, match="algorithm"):
            hash_messages("md5", 32, (64, 8, 30), "auto", [b"x"])

    def test_hash_messages_shake_variants_match_hashlib(self):
        from repro.programs.batch_driver import hash_messages

        messages = [bytes([n]) * (n + 1) for n in range(9)]
        assert hash_messages("shake128", 48, (64, 8, 30), "auto",
                             messages) == \
            [hashlib.shake_128(m).digest(48) for m in messages]
        assert hash_messages("shake256", 64, (64, 8, 30), "auto",
                             messages) == \
            [hashlib.shake_256(m).digest(64) for m in messages]

    def test_hash_messages_k12_leaf_is_turboshake_0b(self):
        from repro.keccak.kangarootwelve import turboshake128
        from repro.programs.batch_driver import hash_messages

        messages = [b"leaf-%d" % n * (n + 1) for n in range(5)]
        assert hash_messages("k12_leaf", 32, (64, 8, 30), "auto",
                             messages) == \
            [turboshake128(m, 32, domain=0x0B) for m in messages]

    def test_run_many_tree_algorithms_single_worker(self):
        from repro.keccak import parallelhash128
        from repro.keccak.kangarootwelve import kangarootwelve
        from repro.programs import run_many

        messages = [bytes([n]) * 9000 for n in range(3)]
        assert run_many(messages, algorithm="k12", length=32,
                        workers=1) == \
            [kangarootwelve(m, 32, engine="reference") for m in messages]
        assert run_many(messages, algorithm="parallelhash128", length=32,
                        workers=1) == \
            [parallelhash128(m, 32, engine="reference") for m in messages]

    def test_run_many_rejects_unknown_algorithm(self):
        from repro.programs import run_many

        with pytest.raises(ValueError, match="algorithm"):
            run_many([b"x"], algorithm="blake3")

    def test_reduced_round_permutations_cached_separately(self):
        from repro.programs.batch_driver import _cached_permutation

        full = _cached_permutation((64, 8, 30), "auto")
        reduced = _cached_permutation((64, 8, 30), "auto", num_rounds=12)
        assert full is not reduced
        assert full is _cached_permutation((64, 8, 30), "auto",
                                           num_rounds=24)
