"""Tests for the scalar (Ibex C-code equivalent) Keccak baseline."""

import pytest

from repro.keccak import KeccakState, keccak_f1600
from repro.keccak.constants import RHO_OFFSETS
from repro.programs import scalar_keccak
from repro.sim import SIMDProcessor


def run_baseline(state, trace=False):
    program = scalar_keccak.build()
    processor = SIMDProcessor(elen=32, elenum=5, trace=trace)
    processor.load_program(program.assemble())
    scalar_keccak.setup_data(processor.memory, state)
    stats = processor.run()
    return scalar_keccak.read_state(processor.memory), stats, program


class TestCorrectness:
    def test_random_state(self, random_state):
        out, _, _ = run_baseline(random_state)
        assert out == keccak_f1600(random_state)

    def test_zero_state(self):
        out, _, _ = run_baseline(KeccakState())
        assert out == keccak_f1600(KeccakState())

    def test_all_ones_state(self):
        state = KeccakState([(1 << 64) - 1] * 25)
        out, _, _ = run_baseline(state)
        assert out == keccak_f1600(state)

    def test_single_bit_states(self):
        # Diffusion check: a single bit anywhere still permutes correctly.
        for lane_index in (0, 12, 24):
            lanes = [0] * 25
            lanes[lane_index] = 1
            state = KeccakState(lanes)
            out, _, _ = run_baseline(state)
            assert out == keccak_f1600(state), f"lane {lane_index}"

    def test_uses_scalar_instructions_only(self, random_state):
        _, stats, _ = run_baseline(random_state)
        vector_mnemonics = [m for m in stats.mnemonic_counts
                            if m.startswith("v")]
        assert vector_mnemonics == []


class TestPerformance:
    def test_cycles_per_round_in_paper_regime(self, random_state):
        """The paper reports 2908 cycles/round for C code on Ibex; our
        looped table-driven assembly must land in the same regime."""
        _, stats, program = run_baseline(random_state, trace=True)
        assembled = program.assemble()
        body = stats.cycles_in_pc_range(assembled.symbols["round_body"],
                                        assembled.symbols["round_end"])
        cycles_per_round = body / 24
        assert 2000 < cycles_per_round < 3500

    def test_deterministic_cycle_count(self, random_states):
        a, b = random_states(2)
        _, stats_a, _ = run_baseline(a)
        _, stats_b, _ = run_baseline(b)
        # Data-independent control flow except the rho shift branches,
        # which depend on the (fixed) offset table only.
        assert stats_a.cycles == stats_b.cycles

    def test_orders_of_magnitude_slower_than_vector(self, random_state):
        from repro.programs import keccak64_lmul8, run_keccak_program

        _, stats, _ = run_baseline(random_state)
        vector = run_keccak_program(keccak64_lmul8.build(5), [random_state])
        assert stats.cycles > 25 * vector.permutation_cycles


class TestTables:
    def test_rho_offset_table_matches_constants(self):
        table = scalar_keccak.rho_offset_table()
        for i, offset in enumerate(table):
            assert offset == RHO_OFFSETS[i % 5][i // 5]

    def test_pi_destination_table_is_permutation(self):
        table = scalar_keccak.pi_destination_table()
        assert sorted(table) == list(range(25))

    def test_pi_destination_matches_reference_pi(self, random_state):
        from repro.keccak import pi

        table = scalar_keccak.pi_destination_table()
        scrambled = [0] * 25
        for i, lane in enumerate(random_state.lanes):
            scrambled[table[i]] = lane
        assert KeccakState(scrambled) == pi(random_state)

    def test_setup_data_writes_all_tables(self, random_state):
        processor = SIMDProcessor(elen=32, elenum=5)
        scalar_keccak.setup_data(processor.memory, random_state)
        assert scalar_keccak.read_state(processor.memory) == random_state
        rc0 = processor.memory.load(scalar_keccak.RC_BASE, 64)
        assert rc0 == 1  # RC[0]
        idx1 = processor.memory.load_bytes(scalar_keccak.IDX1_BASE, 5)
        assert list(idx1) == [1, 2, 3, 4, 0]
