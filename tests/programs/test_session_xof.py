"""Session.xof: the streaming squeeze on simulator-backed sponges.

SessionXof is the incremental counterpart of the batch drivers — every
permutation runs as a program on the session's processor, so the
streaming path exercises the same generated code as the one-shot
drivers while matching hashlib (and TurboSHAKE for 12-round programs)
bit-for-bit.
"""

import hashlib

import pytest

from repro.keccak.kangarootwelve import turboshake128, turboshake256
from repro.programs import Session, SessionXof


@pytest.fixture(scope="module")
def session():
    return Session()


class TestSessionXof:
    def test_matches_hashlib_shake128(self, session):
        xof = session.xof(b"session xof")
        assert xof.digest(64) == hashlib.shake_128(b"session xof") \
            .digest(64)

    def test_capacity_512_is_shake256(self, session):
        xof = session.xof(b"m", capacity_bits=512)
        assert xof.digest(32) == hashlib.shake_256(b"m").digest(32)

    def test_read_continues_the_stream(self, session):
        xof = session.xof(b"stream")
        assert not xof.squeezing
        combined = xof.read(40) + xof.read(24)
        assert xof.squeezing
        assert combined == hashlib.shake_128(b"stream").digest(64)

    def test_digest_is_restartable(self, session):
        xof = session.xof(b"again")
        assert xof.digest(32) == xof.digest(32)
        assert xof.hexdigest(32) == xof.digest(32).hex()

    def test_update_chains_and_matches_one_shot(self, session):
        xof = session.xof()
        xof.update(b"a" * 200).update(b"b" * 13)
        assert xof.digest(32) == \
            hashlib.shake_128(b"a" * 200 + b"b" * 13).digest(32)

    def test_twelve_round_program_is_turboshake(self, session):
        xof = session.xof(b"m", suffix=0x1F, num_rounds=12)
        assert xof.digest(32) == turboshake128(b"m", 32)
        xof256 = session.xof(b"m", capacity_bits=512, suffix=0x1F,
                             num_rounds=12)
        assert xof256.digest(32) == turboshake256(b"m", 32)

    def test_k12_leaf_domain(self, session):
        xof = session.xof(b"leaf bytes", suffix=0x0B, num_rounds=12)
        assert xof.digest(32) == \
            turboshake128(b"leaf bytes", 32, domain=0x0B)

    def test_programs_are_cached_per_shape(self, session):
        first = session.xof(b"a")
        second = session.xof(b"b")
        assert first.program is second.program
        reduced = session.xof(b"c", num_rounds=12)
        assert reduced.program is not first.program

    def test_is_session_xof_instance(self, session):
        assert isinstance(session.xof(), SessionXof)
