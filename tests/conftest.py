"""Shared fixtures for the whole test suite."""

from __future__ import annotations

import random

import pytest

from repro.keccak import KeccakState


@pytest.fixture
def rng():
    """A deterministic RNG, reseeded per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def random_state(rng):
    """One random Keccak state."""
    return KeccakState([rng.getrandbits(64) for _ in range(25)])


@pytest.fixture
def random_states(rng):
    """A factory for lists of random Keccak states."""

    def make(count: int):
        return [
            KeccakState([rng.getrandbits(64) for _ in range(25)])
            for _ in range(count)
        ]

    return make
