"""Smoke tests: every example script must run and self-verify.

Each example asserts its own correctness internally (digests vs hashlib,
simulator vs reference); these tests execute them end to end so the
examples can never rot.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"

ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    runpy.run_path(str(EXAMPLES_DIR / f"{name}.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_expected_examples_present():
    assert set(ALL_EXAMPLES) >= {
        "quickstart",
        "reproduce_tables",
        "sha3_on_simulator",
        "kyber_matrix_expansion",
        "custom_instruction_tour",
        "batch_hashing",
    }


def test_quickstart_reports_paper_numbers(capsys, monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "(paper: 75)" in out
    assert "(paper: 1892)" in out


def test_reproduce_tables_shows_measured_rows(capsys, monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    runpy.run_path(str(EXAMPLES_DIR / "reproduce_tables.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "Table 7" in out and "Table 8" in out
    assert "headline factors" in out
