"""Tests for vtype encode/parse/render (vsetvli configuration)."""

import pytest

from repro.isa.vector import (
    LMUL_ENCODING,
    SEW_ENCODING,
    decode_vtype,
    encode_vtype,
    parse_vtype_tokens,
    render_vtype,
)


class TestEncodeDecode:
    @pytest.mark.parametrize("sew", [8, 16, 32, 64])
    @pytest.mark.parametrize("lmul", [1, 2, 4, 8])
    def test_round_trip(self, sew, lmul):
        vtype = encode_vtype(sew, lmul)
        parts = decode_vtype(vtype)
        assert parts["sew"] == sew
        assert parts["lmul"] == lmul

    def test_field_layout(self):
        # vlmul bits 2:0, vsew bits 5:3, vta bit 6, vma bit 7 (RVV 1.0).
        vtype = encode_vtype(64, 8, tail_agnostic=True, mask_agnostic=True)
        assert vtype & 0x7 == LMUL_ENCODING[8]
        assert (vtype >> 3) & 0x7 == SEW_ENCODING[64]
        assert (vtype >> 6) & 1 == 1
        assert (vtype >> 7) & 1 == 1

    def test_e64_m1_tu_mu_value(self):
        # The configuration Algorithm 2 uses.
        assert encode_vtype(64, 1) == 0b011_000

    def test_unsupported_sew(self):
        with pytest.raises(ValueError):
            encode_vtype(128, 1)

    def test_unsupported_lmul(self):
        with pytest.raises(ValueError, match="LMUL"):
            encode_vtype(64, 3)

    def test_decode_reserved_sew(self):
        with pytest.raises(ValueError):
            decode_vtype(0b111_000)

    def test_decode_fractional_lmul_rejected(self):
        # The paper only supports integer LMUL (Section 2.2, feature 6).
        with pytest.raises(ValueError):
            decode_vtype(0b000_101)


class TestAssemblySyntax:
    def test_parse_paper_syntax(self):
        vtype = parse_vtype_tokens(["e64", "m1", "tu", "mu"])
        assert decode_vtype(vtype) == {"sew": 64, "lmul": 1, "ta": 0, "ma": 0}

    def test_parse_m8(self):
        vtype = parse_vtype_tokens(["e32", "m8", "ta", "ma"])
        assert decode_vtype(vtype) == {"sew": 32, "lmul": 8, "ta": 1, "ma": 1}

    def test_parse_order_insensitive(self):
        assert parse_vtype_tokens(["m2", "e16"]) == \
            parse_vtype_tokens(["e16", "m2"])

    def test_missing_sew(self):
        with pytest.raises(ValueError, match="eSEW"):
            parse_vtype_tokens(["m1", "tu"])

    def test_unknown_token(self):
        with pytest.raises(ValueError, match="unknown vtype token"):
            parse_vtype_tokens(["e64", "m1", "zz"])

    def test_render_round_trip(self):
        for tokens in (["e64", "m1", "tu", "mu"], ["e32", "m8", "ta", "ma"]):
            vtype = parse_vtype_tokens(tokens)
            rendered = render_vtype(vtype)
            assert parse_vtype_tokens(rendered.split(",")) == vtype
