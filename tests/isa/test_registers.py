"""Tests for register-name resolution."""

import pytest

from repro.isa.registers import (
    NUM_SCALAR_REGS,
    NUM_VECTOR_REGS,
    RegisterError,
    is_scalar_register,
    is_vector_register,
    parse_scalar_register,
    parse_vector_register,
    scalar_register_name,
    vector_register_name,
)


class TestScalarRegisters:
    def test_numeric_names(self):
        for i in range(32):
            assert parse_scalar_register(f"x{i}") == i

    def test_abi_aliases(self):
        assert parse_scalar_register("zero") == 0
        assert parse_scalar_register("ra") == 1
        assert parse_scalar_register("sp") == 2
        assert parse_scalar_register("s0") == 8
        assert parse_scalar_register("fp") == 8
        assert parse_scalar_register("s1") == 9
        assert parse_scalar_register("a0") == 10
        assert parse_scalar_register("s2") == 18
        assert parse_scalar_register("s11") == 27
        assert parse_scalar_register("t6") == 31

    def test_case_and_whitespace_insensitive(self):
        assert parse_scalar_register("  T0 ") == 5

    def test_unknown_name(self):
        with pytest.raises(RegisterError):
            parse_scalar_register("x32")
        with pytest.raises(RegisterError):
            parse_scalar_register("r5")

    def test_render_abi_and_numeric(self):
        assert scalar_register_name(18) == "s2"
        assert scalar_register_name(18, abi=False) == "x18"

    def test_render_out_of_range(self):
        with pytest.raises(RegisterError):
            scalar_register_name(32)

    def test_predicate(self):
        assert is_scalar_register("t3")
        assert not is_scalar_register("v3")
        assert not is_scalar_register("1234")

    def test_count(self):
        assert NUM_SCALAR_REGS == 32


class TestVectorRegisters:
    def test_all_names(self):
        for i in range(32):
            assert parse_vector_register(f"v{i}") == i

    def test_unknown(self):
        with pytest.raises(RegisterError):
            parse_vector_register("v32")
        with pytest.raises(RegisterError):
            parse_vector_register("x1")

    def test_render(self):
        assert vector_register_name(7) == "v7"
        with pytest.raises(RegisterError):
            vector_register_name(-1)

    def test_predicate(self):
        assert is_vector_register("v31")
        assert not is_vector_register("t0")

    def test_count_matches_rvv(self):
        # RVV 1.0: 32 vector registers (paper Section 2.2, feature 1).
        assert NUM_VECTOR_REGS == 32
