"""Tests for the bit-level encoding helpers."""

import pytest

from repro.isa.encoding import (
    EncodingError,
    check_signed_range,
    check_unsigned_range,
    decode_b_imm,
    decode_j_imm,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
    get_bits,
    set_bits,
    sign_extend,
    to_unsigned,
)


class TestBitHelpers:
    def test_get_bits(self):
        assert get_bits(0xDEADBEEF, 31, 16) == 0xDEAD
        assert get_bits(0xDEADBEEF, 15, 0) == 0xBEEF
        assert get_bits(0b1010, 3, 3) == 1

    def test_set_bits(self):
        assert set_bits(0, 15, 8, 0xAB) == 0xAB00
        assert set_bits(0xFFFF, 7, 4, 0) == 0xFF0F

    def test_set_bits_overflow(self):
        with pytest.raises(EncodingError):
            set_bits(0, 3, 0, 16)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            get_bits(0, 0, 5)
        with pytest.raises(ValueError):
            set_bits(0, 0, 5, 0)

    def test_sign_extend(self):
        assert sign_extend(0xFFF, 12) == -1
        assert sign_extend(0x7FF, 12) == 2047
        assert sign_extend(0x800, 12) == -2048
        assert sign_extend(0, 12) == 0

    def test_to_unsigned(self):
        assert to_unsigned(-1, 12) == 0xFFF
        assert to_unsigned(5, 12) == 5
        with pytest.raises(EncodingError):
            to_unsigned(-3000, 12)

    def test_range_checks(self):
        check_signed_range(-2048, 12, "imm")
        check_signed_range(2047, 12, "imm")
        with pytest.raises(EncodingError):
            check_signed_range(2048, 12, "imm")
        check_unsigned_range(31, 5, "shamt")
        with pytest.raises(EncodingError):
            check_unsigned_range(32, 5, "shamt")
        with pytest.raises(EncodingError):
            check_unsigned_range(-1, 5, "shamt")


class TestBaseFormats:
    def test_encode_r_known_word(self):
        # add x1, x2, x3 == 0x003100B3
        assert encode_r(0x33, 1, 0, 2, 3, 0) == 0x003100B3

    def test_encode_i_known_word(self):
        # addi x1, x2, 100 == 0x06410093
        assert encode_i(0x13, 1, 0, 2, 100) == 0x06410093

    def test_encode_i_negative_imm(self):
        # addi x18, x18, -1: imm field all ones
        word = encode_i(0x13, 18, 0, 18, -1)
        assert (word >> 20) == 0xFFF

    def test_encode_s_splits_immediate(self):
        word = encode_s(0x23, 2, 2, 5, 8)  # sw x5, 8(x2)
        low = get_bits(word, 11, 7)
        high = get_bits(word, 31, 25)
        assert (high << 5) | low == 8

    def test_b_imm_round_trip(self):
        for offset in (-4096, -2, 0, 2, 4094, -236):
            word = encode_b(0x63, 4, 1, 2, offset)
            assert decode_b_imm(word) == offset

    def test_b_odd_offset_rejected(self):
        with pytest.raises(EncodingError):
            encode_b(0x63, 0, 0, 0, 3)

    def test_b_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_b(0x63, 0, 0, 0, 4096)

    def test_j_imm_round_trip(self):
        for offset in (-1048576, -2, 0, 2, 1048574, 0x1234):
            word = encode_j(0x6F, 1, offset)
            assert decode_j_imm(word) == offset

    def test_j_odd_offset_rejected(self):
        with pytest.raises(EncodingError):
            encode_j(0x6F, 0, 1)

    def test_encode_u(self):
        word = encode_u(0x37, 5, 0xABCDE)
        assert get_bits(word, 31, 12) == 0xABCDE
        assert get_bits(word, 11, 7) == 5

    def test_u_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_u(0x37, 0, 1 << 20)
