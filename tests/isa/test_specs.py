"""Tests of the instruction-spec registry: uniqueness, decode, coverage."""

import itertools

import pytest

from repro.isa import ISA, CUSTOM_MNEMONICS, CUSTOM_OPCODE, build_isa
from repro.isa.custom import CUSTOM_SPECS
from repro.isa.formats import decode_operands, encode_instruction
from repro.isa.spec import InstructionSet, InstructionSpec


class TestRegistry:
    def test_isa_is_populated(self):
        assert len(ISA) >= 90

    def test_extension_counts(self):
        assert len(ISA.by_extension("rv32m")) == 8
        # The paper's ten custom instructions plus the two future-work
        # fused extensions (vrhopi, vchi).
        assert len(ISA.by_extension("custom")) == 12
        assert len(CUSTOM_SPECS) == 10

    def test_baseline_isa_excludes_fused(self):
        baseline = build_isa(include_fused=False)
        assert "vrhopi.vi" not in baseline
        assert "vchi.vi" not in baseline
        assert "vpi.vi" in baseline

    def test_lookup_known(self):
        assert ISA.lookup("vxor.vv").mnemonic == "vxor.vv"

    def test_lookup_is_case_insensitive(self):
        assert ISA.lookup("ADDI").mnemonic == "addi"

    def test_lookup_unknown_gives_suggestion(self):
        with pytest.raises(KeyError, match="vslide"):
            ISA.lookup("vslidedow.vi")

    def test_contains(self):
        assert "addi" in ISA
        assert "nonsense" not in ISA

    def test_duplicate_registration_rejected(self):
        isa = InstructionSet()
        spec = InstructionSpec("dup", "system", 0x73, 0xFFFFFFFF, (), "x")
        isa.register(spec)
        with pytest.raises(ValueError, match="duplicate"):
            isa.register(spec)

    def test_match_outside_mask_rejected(self):
        isa = InstructionSet()
        with pytest.raises(ValueError, match="outside mask"):
            isa.register(
                InstructionSpec("bad", "system", 0xFF, 0x0F, (), "x")
            )

    def test_build_isa_returns_fresh_registry(self):
        assert build_isa() is not ISA
        assert len(build_isa()) == len(ISA)


class TestDecodeUnambiguity:
    def test_no_two_specs_overlap(self):
        """For any pair of specs, some fixed bit distinguishes them.

        Two encodings overlap iff they agree on every bit where both masks
        are set; that would make decoding order-dependent.
        """
        specs = [ISA.lookup(m) for m in ISA.mnemonics()]
        for a, b in itertools.combinations(specs, 2):
            common = a.mask & b.mask
            assert (a.match & common) != (b.match & common), \
                f"{a.mnemonic} and {b.mnemonic} encodings overlap"

    def test_every_spec_decodes_to_itself(self):
        for mnemonic in ISA.mnemonics():
            spec = ISA.lookup(mnemonic)
            assert ISA.find(spec.match).mnemonic == mnemonic

    def test_undecodable_word(self):
        with pytest.raises(LookupError):
            ISA.find(0x00000000)

    def test_decode_order_prefers_specific_masks(self):
        # srai and srli share funct3; funct7 must discriminate.
        srai = ISA.lookup("srai")
        word = encode_instruction(srai, {"rd": 1, "rs1": 2, "shamt": 3})
        assert ISA.find(word).mnemonic == "srai"


class TestCustomInstructionEncodings:
    def test_ten_custom_instructions(self):
        assert len(CUSTOM_MNEMONICS) == 10

    def test_paper_names_present(self):
        expected = {
            "vslidedownm.vi", "vslideupm.vi", "vrotup.vi",
            "v32lrotup.vv", "v32hrotup.vv", "v64rho.vi",
            "v32lrho.vv", "v32hrho.vv", "vpi.vi", "viota.vx",
        }
        assert set(CUSTOM_MNEMONICS) == expected

    def test_all_customs_use_custom1_opcode(self):
        for spec in CUSTOM_SPECS:
            assert spec.match & 0x7F == CUSTOM_OPCODE

    def test_custom_opcode_does_not_collide_with_rvv(self):
        # custom-1 (0101011) differs from OP-V (1010111) and LOAD/STORE-FP.
        assert CUSTOM_OPCODE not in (0x57, 0x07, 0x27)

    def test_custom_funct6_values_distinct(self):
        funct6 = [spec.match >> 26 for spec in CUSTOM_SPECS]
        assert len(set(funct6)) == len(funct6)

    def test_architecture_annotations(self):
        both = {"vslidedownm.vi", "vslideupm.vi", "vpi.vi", "viota.vx"}
        only64 = {"vrotup.vi", "v64rho.vi"}
        only32 = {"v32lrotup.vv", "v32hrotup.vv", "v32lrho.vv", "v32hrho.vv"}
        for spec in CUSTOM_SPECS:
            archs = set(spec.extra["archs"])
            if spec.mnemonic in both:
                assert archs == {"rv64", "rv32"}
            elif spec.mnemonic in only64:
                assert archs == {"rv64"}
            else:
                assert spec.mnemonic in only32
                assert archs == {"rv32"}

    def test_signed_immediates_where_paper_says_simm(self):
        assert ISA.lookup("v64rho.vi").extra.get("signed_imm")
        assert ISA.lookup("vpi.vi").extra.get("signed_imm")
        assert not ISA.lookup("vslidedownm.vi").extra.get("signed_imm")


class TestEncodeDecodeRoundTrips:
    CASES = [
        ("add", dict(rd=1, rs1=2, rs2=3)),
        ("sub", dict(rd=31, rs1=30, rs2=29)),
        ("addi", dict(rd=1, rs1=1, imm=-2048)),
        ("andi", dict(rd=5, rs1=6, imm=2047)),
        ("slli", dict(rd=1, rs1=2, shamt=31)),
        ("srai", dict(rd=1, rs1=2, shamt=0)),
        ("lw", dict(rd=8, rs1=2, imm=-4)),
        ("sw", dict(rs2=8, rs1=2, imm=124)),
        ("beq", dict(rs1=0, rs2=1, offset=-4096)),
        ("bgeu", dict(rs1=30, rs2=31, offset=4094)),
        ("lui", dict(rd=10, imm=0xFFFFF)),
        ("jal", dict(rd=1, offset=-8)),
        ("jalr", dict(rd=1, rs1=2, imm=16)),
        ("mul", dict(rd=3, rs1=4, rs2=5)),
        ("divu", dict(rd=3, rs1=4, rs2=5)),
        ("vsetvli", dict(rd=0, rs1=9, vtype=0x5B)),
        ("vadd.vv", dict(vd=1, vs2=2, vs1=3, vm=1)),
        ("vxor.vx", dict(vd=10, vs2=10, rs1=18, vm=1)),
        ("vand.vi", dict(vd=4, vs2=5, imm=-16, vm=0)),
        ("vsll.vi", dict(vd=4, vs2=5, imm=31, vm=1)),
        ("vle64.v", dict(vd=0, rs1=10, vm=1)),
        ("vse32.v", dict(vd=31, rs1=11, vm=0)),
        ("vlse64.v", dict(vd=2, rs1=10, rs2=11, vm=1)),
        ("vluxei32.v", dict(vd=2, rs1=10, vs2=8, vm=1)),
        ("vsuxei64.v", dict(vd=2, rs1=10, vs2=8, vm=0)),
        ("vslidedownm.vi", dict(vd=7, vs2=5, imm=2, vm=1)),
        ("vslideupm.vi", dict(vd=6, vs2=5, imm=1, vm=1)),
        ("vrotup.vi", dict(vd=7, vs2=7, imm=1, vm=1)),
        ("v32lrotup.vv", dict(vd=8, vs2=23, vs1=7, vm=1)),
        ("v32hrotup.vv", dict(vd=23, vs2=23, vs1=7, vm=1)),
        ("v64rho.vi", dict(vd=0, vs2=0, imm=-1, vm=1)),
        ("v32lrho.vv", dict(vd=8, vs2=16, vs1=0, vm=1)),
        ("v32hrho.vv", dict(vd=24, vs2=16, vs1=0, vm=1)),
        ("vpi.vi", dict(vd=5, vs2=0, imm=4, vm=1)),
        ("viota.vx", dict(vd=0, vs2=0, rs1=19, vm=1)),
    ]

    @pytest.mark.parametrize("mnemonic,ops", CASES,
                             ids=[c[0] for c in CASES])
    def test_round_trip(self, mnemonic, ops):
        spec = ISA.lookup(mnemonic)
        word = encode_instruction(spec, ops)
        found = ISA.find(word)
        assert found.mnemonic == mnemonic
        decoded = decode_operands(word, found)
        for key, value in ops.items():
            assert decoded[key] == value, (mnemonic, key)
