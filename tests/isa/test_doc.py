"""Tests for the generated ISA reference."""

from repro.isa import ISA, build_isa
from repro.isa.doc import render_isa_reference, syntax_of


class TestSyntax:
    def test_scalar_syntax(self):
        assert syntax_of(ISA.lookup("addi")) == "addi rd, rs1, imm12"
        assert syntax_of(ISA.lookup("lw")) == "lw rd, imm(rs1)"
        assert syntax_of(ISA.lookup("sw")) == "sw rs2, imm(rs1)"
        assert syntax_of(ISA.lookup("blt")) == "blt rs1, rs2, label"

    def test_vector_syntax(self):
        assert syntax_of(ISA.lookup("vxor.vv")) == \
            "vxor.vv vd, vs2, vs1[, v0.t]"
        assert syntax_of(ISA.lookup("viota.vx")) == \
            "viota.vx vd, vs2, rs1[, v0.t]"
        assert syntax_of(ISA.lookup("vsetvli")) == \
            "vsetvli rd, rs1, eSEW, mLMUL, tu|ta, mu|ma"
        assert syntax_of(ISA.lookup("vle64.v")) == \
            "vle64.v vd, (rs1)[, v0.t]"


class TestReference:
    def test_every_mnemonic_documented(self):
        text = render_isa_reference(ISA)
        for mnemonic in ISA.mnemonics():
            assert f"`{mnemonic}`" in text, mnemonic

    def test_sections_present(self):
        text = render_isa_reference(ISA)
        assert "## RV32I" in text
        assert "## RV32M" in text
        assert "## RVV 1.0 subset" in text
        assert "## Custom vector extensions" in text

    def test_match_mask_rendered(self):
        text = render_isa_reference(ISA)
        vpi = ISA.lookup("vpi.vi")
        assert f"`{vpi.match:#010x}`" in text

    def test_arch_notes_for_customs(self):
        text = render_isa_reference(ISA)
        assert "*(archs: rv64)*" in text
        assert "*(archs: rv32)*" in text

    def test_selected_extensions_only(self):
        text = render_isa_reference(ISA, extensions=["rv32m"])
        assert "## RV32M" in text
        assert "## RV32I" not in text

    def test_reference_without_fused(self):
        text = render_isa_reference(build_isa(include_fused=False))
        assert "vrhopi" not in text
        assert "vpi.vi" in text

    def test_checked_in_copy_is_current(self):
        """docs/isa_reference.md must match the generated output."""
        import pathlib

        path = pathlib.Path(__file__).resolve().parents[2] / "docs" / \
            "isa_reference.md"
        assert path.read_text() == render_isa_reference(ISA)
