"""Tests for the ``python -m repro`` command-line interface."""

import hashlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("tables", "sweep", "hash", "run", "batch", "asm",
                        "dis", "faultcampaign"):
            args = {
                "tables": [],
                "sweep": [],
                "hash": ["sha3_256", "--string", "x"],
                "run": [],
                "batch": [],
                "asm": ["f.s"],
                "dis": ["f.hex"],
                "faultcampaign": [],
            }[command]
            parsed = parser.parse_args([command] + args)
            assert parsed.command == command

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_hash_needs_input(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hash", "sha3_256"])


class TestHashCommand:
    def test_string_digest(self, capsys):
        assert main(["hash", "sha3_256", "--string", "abc"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == hashlib.sha3_256(b"abc").hexdigest()

    def test_file_digest(self, tmp_path, capsys):
        path = tmp_path / "data.bin"
        path.write_bytes(b"file contents")
        assert main(["hash", "sha3_512", "--file", str(path)]) == 0
        out = capsys.readouterr().out.strip()
        assert out == hashlib.sha3_512(b"file contents").hexdigest()

    def test_shake_with_length(self, capsys):
        assert main(["hash", "shake_128", "--string", "s",
                     "--length", "16"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == hashlib.shake_128(b"s").hexdigest(16)

    def test_simulated_digest_matches(self, capsys):
        assert main(["hash", "sha3_256", "--string", "abc",
                     "--simulate"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == hashlib.sha3_256(b"abc").hexdigest()
        assert "simulated cycles" in captured.err

    def test_simulated_32bit(self, capsys):
        assert main(["hash", "sha3_256", "--string", "q", "--simulate",
                     "--elen", "32"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == hashlib.sha3_256(b"q").hexdigest()


class TestRunCommand:
    def test_default_run(self, capsys):
        assert main(["run"]) == 0
        out = capsys.readouterr().out
        assert "functionally exact: True" in out
        assert "cycles/round:       75" in out

    def test_32bit_run(self, capsys):
        assert main(["run", "--elen", "32", "--elenum", "15",
                     "--states", "3"]) == 0
        out = capsys.readouterr().out
        assert "cycles/round:       147" in out


class TestBatchCommand:
    def test_batch_verify_serial(self, capsys):
        assert main(["batch", "--count", "8", "--size", "40",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "8 messages" in out
        assert "match hashlib" in out

    def test_batch_verify_two_workers(self, capsys):
        assert main(["batch", "--count", "12", "--size", "40",
                     "--workers", "2", "--chunk-size", "6",
                     "--verify"]) == 0
        assert "match hashlib" in capsys.readouterr().out

    def test_batch_shm_transport_verifies(self, capsys):
        from repro.parallel_exec import shm as _shm

        if not _shm.HAVE_SHM:
            pytest.skip("no multiprocessing.shared_memory")
        assert main(["batch", "--count", "12", "--size", "40",
                     "--workers", "2", "--engine", "reference",
                     "--transport", "shm", "--verify"]) == 0
        assert "match hashlib" in capsys.readouterr().out

    def test_batch_rejects_unknown_transport(self):
        with pytest.raises(SystemExit):
            main(["batch", "--transport", "carrier-pigeon"])

    def test_batch_prints_first_digest_without_verify(self, capsys):
        import hashlib as _hashlib
        import random

        assert main(["batch", "--count", "2", "--size", "10",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        expected = _hashlib.sha3_256(
            random.Random(7).randbytes(10)).hexdigest()
        assert out[-1] == expected


class TestAsmDisCommands:
    SOURCE = "li t0, 5\nloop:\naddi t0, t0, -1\nbnez t0, loop\necall\n"

    def test_asm_outputs_hex_words(self, tmp_path, capsys):
        src = tmp_path / "prog.s"
        src.write_text(self.SOURCE)
        assert main(["asm", str(src)]) == 0
        words = capsys.readouterr().out.split()
        assert len(words) == 4
        assert all(len(w) == 8 for w in words)

    def test_asm_listing(self, tmp_path, capsys):
        src = tmp_path / "prog.s"
        src.write_text(self.SOURCE)
        assert main(["asm", str(src), "--listing"]) == 0
        assert "bnez t0, loop" in capsys.readouterr().out

    def test_dis_round_trip(self, tmp_path, capsys):
        src = tmp_path / "prog.s"
        src.write_text(self.SOURCE)
        main(["asm", str(src)])
        hex_words = capsys.readouterr().out
        hexfile = tmp_path / "prog.hex"
        hexfile.write_text(hex_words)
        assert main(["dis", str(hexfile)]) == 0
        out = capsys.readouterr().out
        assert "addi t0, zero, 5" in out
        assert "ecall" in out


class TestSweepCommand:
    def test_sweep_runs(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "Design-space sweep" in out
        assert "Pareto frontier" in out

    def test_sweep_no_fused(self, capsys):
        assert main(["sweep", "--no-fused"]) == 0
        assert "fused" not in capsys.readouterr().out


class TestMixCommand:
    def test_all_variants(self, capsys):
        assert main(["mix"]) == 0
        out = capsys.readouterr().out
        for name in ("keccak64_lmul1", "keccak64_lmul8", "keccak64_fused",
                     "keccak64_lmul41", "keccak32_lmul8"):
            assert name in out

    def test_single_variant(self, capsys):
        assert main(["mix", "--variant", "64-fused"]) == 0
        out = capsys.readouterr().out
        assert "keccak64_fused" in out
        assert "keccak64_lmul1" not in out


class TestFaultCampaignCommand:
    def test_small_campaign_exits_zero(self, capsys):
        assert main(["faultcampaign", "--faults", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out
        assert "SILENT:         0" in out

    def test_variant_and_mode_filters(self, capsys):
        assert main(["faultcampaign", "--faults", "4", "--seed", "1",
                     "--variants", "64-lmul8", "--modes", "fused",
                     "--no-crosscheck"]) == 0
        assert "4 fault(s)" in capsys.readouterr().out


class TestErrorHandling:
    """Bad input must produce a one-line diagnostic and exit code 2."""

    def test_missing_input_file_exits_2(self, capsys):
        assert main(["hash", "sha3_256", "--file", "/nonexistent/x"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1

    def test_malformed_hex_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.hex"
        bad.write_text("nothex\n")
        assert main(["dis", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("repro: error:")

    def test_unreadable_asm_source_exits_2(self, capsys):
        assert main(["asm", "/nonexistent/prog.s"]) == 2
        assert capsys.readouterr().err.startswith("repro: error:")

    def test_unknown_campaign_variant_exits_2(self, capsys):
        assert main(["faultcampaign", "--faults", "1",
                     "--variants", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown variant" in err
        assert len(err.strip().splitlines()) == 1

    def test_bad_chunk_size_exits_2(self, capsys):
        assert main(["batch", "--count", "4", "--size", "10",
                     "--chunk-size", "0"]) == 2
        assert "chunk size" in capsys.readouterr().err


class TestIsaDocCommand:
    def test_stdout(self, capsys):
        assert main(["isa-doc"]) == 0
        out = capsys.readouterr().out
        assert "# Instruction set reference" in out
        assert "vpi.vi" in out

    def test_output_file(self, tmp_path):
        target = tmp_path / "isa.md"
        assert main(["isa-doc", "--output", str(target)]) == 0
        assert "vslidedownm.vi" in target.read_text()


class TestQuarantineReport:
    def test_clean_run_prints_pool_summary(self, capsys):
        assert main(["batch", "--count", "8", "--size", "32",
                     "--workers", "1", "--chunk-size", "4",
                     "--quarantine-report", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "no chunks quarantined" in out
        assert "all 8 digest(s) match hashlib (sha3_256)" in out

    def test_report_includes_pool_stats_line(self, capsys):
        assert main(["batch", "--count", "6", "--size", "24",
                     "--workers", "2", "--chunk-size", "2",
                     "--quarantine-report"]) == 0
        out = capsys.readouterr().out
        # The PoolStats summary rides along with the quarantine verdict.
        assert "3/3 chunk(s) completed" in out
        assert "no chunks quarantined" in out


class TestManifestVersionCli:
    def test_resume_with_alien_manifest_exits_2(self, tmp_path, capsys):
        import json
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps(
            {"version": 99, "kind": "repro.batch_hash"}))
        assert main(["batch", "--count", "4", "--size", "16",
                     "--resume", str(manifest)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "version 99" in err
        assert len(err.strip().splitlines()) == 1  # no traceback


class TestServeLoadgenCli:
    def test_commands_registered(self):
        parser = build_parser()
        serve = parser.parse_args(["serve", "--socket", "/tmp/x.sock"])
        assert serve.command == "serve"
        assert serve.workers == 0
        load = parser.parse_args(["loadgen", "--socket", "/tmp/x.sock",
                                  "--requests", "5"])
        assert load.command == "loadgen"
        assert load.requests == 5

    def test_serve_requires_an_endpoint(self, capsys):
        assert main(["serve"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "--socket" in err

    def test_loadgen_requires_an_endpoint(self, capsys):
        assert main(["loadgen"]) == 2
        assert "--socket" in capsys.readouterr().err

    def test_loadgen_against_nothing_fails_min_ok(self, capsys):
        assert main(["loadgen", "--socket", "/tmp/no-such-daemon.sock",
                     "--requests", "3", "--min-ok", "1"]) == 1
        captured = capsys.readouterr()
        assert "connection_error=3" in captured.out
        assert "expected at least 1" in captured.err
