"""Hardened-pool semantics: backoff, circuit breaker, quarantine,
heartbeats.

Like the base pool tests these pin behaviour, not wall-clock: the policy
math is tested directly, and the scheduler scenarios use deterministic
failing task kinds so every assertion is about *what happened* (stats,
quarantine records, result alignment) rather than how fast.
"""

import json
import os
import random
import time

import pytest

from repro.parallel_exec import (
    ChunkQuarantinedError,
    RetryPolicy,
    register_task_kind,
    run_chunks,
    run_chunks_report,
)
from repro.parallel_exec.hardening import (
    PoolStats,
    QuarantineLog,
    WorkerLedger,
)
from repro.parallel_exec.results import ResultAssembler
from repro.programs import run_many_report


def _poison(payload):
    raise ValueError(f"poisoned payload {payload!r}")


def _ok(payload):
    return [2 * item for item in payload]


def _flaky(payload):
    flag, items = payload
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        raise RuntimeError("transient failure")
    return list(items)


def _mixed(payload):
    if payload and payload[0] == "bad":
        raise ValueError("bad chunk")
    return list(payload)


def _sleep_chunk(payload):
    time.sleep(payload[0])
    return list(payload)


register_task_kind("test.h_poison", _poison)
register_task_kind("test.h_ok", _ok)
register_task_kind("test.h_flaky", _flaky)
register_task_kind("test.h_mixed", _mixed)
register_task_kind("test.h_sleep", _sleep_chunk)


class TestRetryPolicy:
    def test_defaults_match_legacy(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert not policy.retry_task_errors
        assert not policy.quarantine
        assert policy.heartbeat_interval is None
        assert policy.delay(2, random.Random(0)) == 0.0  # no backoff

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="quarantine_threshold"):
            RetryPolicy(quarantine_threshold=0)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            RetryPolicy(heartbeat_interval=0.0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(attempt, rng) for attempt in (2, 3, 4, 5, 9)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=42)
        delays = [policy.delay(2, policy.make_rng()) for _ in range(5)]
        assert all(0.1 <= d <= 0.15 for d in delays)
        assert len(set(delays)) == 1  # same seed, same jitter

    def test_hardened_preset(self):
        policy = RetryPolicy.hardened()
        assert policy.retry_task_errors
        assert policy.quarantine
        assert policy.backoff_base > 0
        assert policy.heartbeat_interval is not None
        tightened = RetryPolicy.hardened(max_retries=1)
        assert tightened.max_retries == 1


class TestLedgersAndLogs:
    def test_breaker_trips_on_consecutive_failures(self):
        ledger = WorkerLedger(threshold=3)
        assert not ledger.record_failure(7)
        assert not ledger.record_failure(7)
        ledger.record_success(7)  # success resets the streak
        assert not ledger.record_failure(7)
        assert not ledger.record_failure(7)
        assert ledger.record_failure(7)

    def test_quarantine_counts_distinct_workers(self):
        log = QuarantineLog(threshold=2)
        assert not log.record(5, worker_id=1, reason="crash")
        assert not log.record(5, worker_id=1, reason="crash")  # same worker
        assert log.record(5, worker_id=2, reason="timeout")
        [chunk] = log.quarantined()
        assert chunk.chunk_index == 5
        assert chunk.workers == (1, 1, 2)
        assert "timeout" in str(chunk)

    def test_assembler_failed_slots(self):
        assembler = ResultAssembler(2)
        assembler.add(0, ["a"])
        assembler.add_failed(1)
        assert assembler.complete
        assert assembler.partial() == [["a"], None]
        with pytest.raises(ChunkQuarantinedError, match=r"\[1\]"):
            assembler.assemble()

    def test_stats_summary_mentions_everything(self):
        stats = PoolStats(chunks=4, completed=3, retries=2, crashes=1,
                          checkpoint_hits=1)
        text = stats.summary()
        assert "3/4 chunk(s)" in text
        assert "1 crash(es)" in text
        assert "1 from checkpoint" in text


class TestQuarantineScheduling:
    POLICY = RetryPolicy(max_retries=10, retry_task_errors=True,
                         quarantine=True, quarantine_threshold=2,
                         backoff_base=0.0)

    def test_poisoned_chunk_quarantined_not_retried_forever(self):
        chunks = [["bad"], [1, 2], [3, 4]]
        report = run_chunks_report("test.h_mixed", chunks, workers=2,
                                   policy=self.POLICY)
        assert report.chunk_results == [None, [1, 2], [3, 4]]
        [chunk] = report.quarantined
        assert chunk.chunk_index == 0
        assert len(set(chunk.workers)) >= self.POLICY.quarantine_threshold
        assert all("bad chunk" in reason for reason in chunk.reasons)
        with pytest.raises(ChunkQuarantinedError):
            report.flat()

    def test_run_chunks_raises_on_quarantine(self):
        with pytest.raises(ChunkQuarantinedError, match=r"\[0\]"):
            run_chunks("test.h_mixed", [["bad"], [1]], workers=2,
                       policy=self.POLICY)

    def test_serial_quarantine_completes_batch(self):
        report = run_chunks_report("test.h_mixed", [[1], ["bad"], [2]],
                                   workers=1, policy=self.POLICY)
        assert report.chunk_results == [[1], None, [2]]
        assert [q.chunk_index for q in report.quarantined] == [1]
        assert report.stats.task_failures == 1

    def test_breaker_retires_repeat_offenders(self):
        policy = RetryPolicy(max_retries=10, retry_task_errors=True,
                             quarantine=True, quarantine_threshold=2,
                             breaker_threshold=2, backoff_base=0.0)
        chunks = [["bad"], ["bad"], ["bad"], ["bad"]]
        report = run_chunks_report("test.h_poison", chunks, workers=2,
                                   policy=policy)
        assert len(report.quarantined) == 4
        # Every result was a failure, so some worker must have hit two
        # consecutive failures and tripped its breaker.
        assert report.stats.workers_retired >= 1
        assert report.stats.task_failures >= 4

    def test_transient_task_error_retried_to_success(self, tmp_path):
        flag = str(tmp_path / "flaky")
        policy = RetryPolicy(max_retries=3, retry_task_errors=True,
                             backoff_base=0.0)
        report = run_chunks_report("test.h_flaky", [(flag, [1, 2])],
                                   workers=2, policy=policy)
        assert report.chunk_results == [[1, 2]]
        assert report.ok
        assert report.stats.task_failures == 1
        assert report.stats.retries == 1

    def test_backoff_recorded_on_retry(self, tmp_path):
        flag = str(tmp_path / "flaky_backoff")
        policy = RetryPolicy(max_retries=3, retry_task_errors=True,
                             backoff_base=0.05, jitter=0.5, seed=1)
        start = time.monotonic()
        report = run_chunks_report("test.h_flaky", [(flag, [7])],
                                   workers=2, policy=policy)
        elapsed = time.monotonic() - start
        assert report.chunk_results == [[7]]
        assert report.stats.backoff_seconds > 0
        assert elapsed >= report.stats.backoff_seconds

    def test_seeded_jitter_is_deterministic_across_runs(self, tmp_path):
        # Two runs with the same RetryPolicy seed draw the identical
        # jittered backoff sequence — total backoff matches to the bit —
        # while a different seed draws a different one.  This is what
        # makes a flaky-retry incident replayable.
        def run_once(seed, tag):
            flags = [str(tmp_path / f"flaky_{tag}_{i}") for i in range(3)]
            policy = RetryPolicy(max_retries=3, retry_task_errors=True,
                                 backoff_base=0.02, jitter=0.9, seed=seed)
            chunks = [(flag, [i]) for i, flag in enumerate(flags)]
            # Two workers may interleave the failures, but the three
            # jitter draws come off one seeded rng and all retries are
            # attempt #1, so the backoff *sum* is order-independent.
            report = run_chunks_report("test.h_flaky", chunks,
                                       workers=2, policy=policy)
            assert report.ok
            assert report.stats.retries == 3  # one retry per chunk
            return report.stats.backoff_seconds

        first = run_once(42, "a")
        second = run_once(42, "b")
        other = run_once(7, "c")
        assert first > 0
        assert first == second
        assert other != first

    def test_exhausted_retries_quarantine_instead_of_raise(self, tmp_path):
        # One worker, so the distinct-worker threshold (2) can never be
        # met: the chunk must still resolve via the attempts budget.
        policy = RetryPolicy(max_retries=1, retry_task_errors=True,
                             quarantine=True, quarantine_threshold=2,
                             backoff_base=0.0)
        report = run_chunks_report("test.h_poison", [["x"], None],
                                   workers=2, policy=policy)
        assert report.chunk_results == [None, None]
        assert {q.chunk_index for q in report.quarantined} == {0, 1}


class TestHeartbeat:
    def test_idle_workers_answer_pings(self):
        policy = RetryPolicy(heartbeat_interval=0.05,
                             heartbeat_timeout=10.0)
        # Two workers, two chunks: one sleeps while the other's worker
        # sits idle long enough to be pinged.
        chunks = [[0.6], [0.0]]
        report = run_chunks_report("test.h_sleep", chunks, workers=2,
                                   policy=policy)
        assert report.chunk_results == [[0.6], [0.0]]
        assert report.stats.pings_sent >= 1
        assert report.stats.pongs_received >= 1

    def test_healthy_run_retires_no_workers(self):
        policy = RetryPolicy(heartbeat_interval=0.05,
                             heartbeat_timeout=10.0)
        report = run_chunks_report("test.h_ok", [[1], [2], [3]], workers=2,
                                   policy=policy)
        assert report.flat() == [2, 4, 6]
        assert report.stats.workers_retired == 0


class TestBatchFrontEnd:
    def test_run_many_report_clean(self):
        messages = [bytes([i]) * 20 for i in range(12)]
        outcome = run_many_report(messages, workers=2, chunk_size=4)
        import hashlib
        assert outcome.ok
        assert outcome.digests == [hashlib.sha3_256(m).digest()
                                   for m in messages]
        assert "no chunks quarantined" in outcome.summary()

    def test_quarantined_chunks_leave_aligned_holes(self, monkeypatch):
        # Poison the hash task for one chunk's messages via a length no
        # real message uses, exercising the None-alignment contract.
        from repro.programs import batch_driver

        original = batch_driver._hash_chunk

        def sabotaged(payload):
            if any(len(m) == 99 for m in payload[3]):
                raise ValueError("sabotaged")
            return original(payload)

        register_task_kind("test.h_sabotaged_hash", sabotaged)
        monkeypatch.setattr(batch_driver, "_HASH_TASK_KIND",
                            "test.h_sabotaged_hash")
        messages = [b"a" * 10] * 4 + [b"b" * 99] * 4 + [b"c" * 10] * 4
        policy = RetryPolicy(max_retries=2, retry_task_errors=True,
                             quarantine=True, quarantine_threshold=2,
                             backoff_base=0.0)
        outcome = run_many_report(messages, workers=2, chunk_size=4,
                                  policy=policy)
        import hashlib
        assert not outcome.ok
        assert outcome.digests[4:8] == [None] * 4
        assert outcome.digests[:4] == [hashlib.sha3_256(b"a" * 10).digest()] * 4
        assert outcome.digests[8:] == [hashlib.sha3_256(b"c" * 10).digest()] * 4
        assert "quarantined" in outcome.summary()
