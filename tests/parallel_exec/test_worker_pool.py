"""Worker-pool engine tests: ordering, retry policy, digest correctness.

The pool's scaling claims only hold on multicore machines, so nothing
here asserts wall-clock speedups — these tests pin the *semantics*: the
parallel path returns exactly what the serial path returns (in order),
task exceptions fail fast, and crashed/hung workers are replaced with
their chunks retried.

Crash/timeout tasks signal attempt state through flag files because the
task runs in a child process; ``fork`` inherits the registry, so kinds
registered at this module's import are visible in workers.
"""

import hashlib
import os
import time

import pytest

from repro.parallel_exec import (
    ChunkTimeoutError,
    TaskError,
    WorkerCrashError,
    chunked,
    register_task_kind,
    run_chunked,
    run_chunks,
)
from repro.parallel_exec.results import ParallelExecError, ResultAssembler
from repro.programs import batch_sha3_256, run_many


def _echo(payload):
    return [(os.getpid(), item) for item in payload]


def _double(payload):
    return [2 * item for item in payload]


def _fail_on_13(payload):
    if 13 in payload:
        raise ValueError("unlucky chunk")
    return list(payload)


def _crash_once(payload):
    flag, items = payload
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os._exit(17)  # hard crash: no result, no exception report
    return list(items)


def _hang_forever(payload):
    time.sleep(600)
    return list(payload)  # pragma: no cover - always killed first


def _big_result(payload):
    return b"x" * payload


register_task_kind("test.echo", _echo)
register_task_kind("test.double", _double)
register_task_kind("test.fail13", _fail_on_13)
register_task_kind("test.crash_once", _crash_once)
register_task_kind("test.hang", _hang_forever)
register_task_kind("test.big_result", _big_result)


class TestChunking:
    def test_chunked_splits_and_preserves_order(self):
        assert chunked(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert chunked([], 3) == []

    def test_chunked_rejects_bad_size(self):
        with pytest.raises(ValueError):
            chunked([1], 0)

    def test_assembler_requires_all_chunks(self):
        assembler = ResultAssembler(2)
        assembler.add(1, ["b"])
        with pytest.raises(ParallelExecError):
            assembler.assemble()
        assembler.add(0, ["a"])
        assert assembler.assemble() == ["a", "b"]

    def test_assembler_ignores_duplicate_delivery(self):
        assembler = ResultAssembler(1)
        assembler.add(0, ["first"])
        assembler.add(0, ["late duplicate"])
        assert assembler.assemble() == ["first"]


class TestScheduler:
    def test_serial_and_parallel_agree(self):
        items = list(range(40))
        serial = run_chunked("test.double", items, workers=1, chunk_size=7)
        parallel = run_chunked("test.double", items, workers=3, chunk_size=7)
        assert serial == [2 * i for i in items]
        assert parallel == serial

    def test_parallel_uses_multiple_processes(self):
        results = run_chunked("test.echo", list(range(12)), workers=3,
                              chunk_size=2)
        assert [item for _, item in results] == list(range(12))
        assert all(pid != os.getpid() for pid, _ in results)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            run_chunks("test.no_such_kind", [[1]], workers=1)

    def test_task_error_fails_fast_serial(self):
        with pytest.raises(TaskError, match="chunk 1"):
            run_chunked("test.fail13", [1, 2, 13, 4], workers=1,
                        chunk_size=2)

    def test_task_error_fails_fast_parallel(self):
        with pytest.raises(TaskError, match="unlucky"):
            run_chunked("test.fail13", [1, 2, 13, 4], workers=2,
                        chunk_size=2)

    def test_worker_crash_retried_then_succeeds(self, tmp_path):
        flag = str(tmp_path / "crashed")
        chunks = [(flag, [1, 2, 3])]
        assert run_chunks("test.crash_once", chunks, workers=2) == [1, 2, 3]
        assert os.path.exists(flag)  # first attempt really did crash

    def test_worker_crash_exhausts_retries(self, tmp_path):
        def crash_always(payload):
            os._exit(23)

        register_task_kind("test.crash_always", crash_always)
        with pytest.raises(WorkerCrashError, match="chunk 0"):
            run_chunks("test.crash_always", [[1]], workers=2, max_retries=1)

    def test_timeout_kills_and_exhausts_retries(self):
        start = time.monotonic()
        with pytest.raises(ChunkTimeoutError, match="chunk 0"):
            run_chunks("test.hang", [[1]], workers=2, timeout=0.3,
                       max_retries=1)
        assert time.monotonic() - start < 60  # killed, not waited out


class TestHashingFrontEnd:
    MESSAGES = [bytes([i]) * (7 * i % 90) for i in range(30)]

    def test_run_many_matches_hashlib_serial(self):
        digests = run_many(self.MESSAGES, workers=1)
        assert digests == [hashlib.sha3_256(m).digest()
                           for m in self.MESSAGES]

    def test_run_many_matches_hashlib_parallel(self):
        digests = run_many(self.MESSAGES, workers=2, chunk_size=8)
        assert digests == [hashlib.sha3_256(m).digest()
                           for m in self.MESSAGES]

    def test_run_many_shake(self):
        digests = run_many(self.MESSAGES[:8], algorithm="shake128",
                           length=48, workers=2, chunk_size=3)
        assert digests == [hashlib.shake_128(m).digest(48)
                           for m in self.MESSAGES[:8]]

    def test_run_many_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            run_many([b"x"], algorithm="md5")

    def test_batch_sha3_256_workers_parameter(self):
        digests = batch_sha3_256(self.MESSAGES, workers=2)
        assert digests == [hashlib.sha3_256(m).digest()
                           for m in self.MESSAGES]

    def test_batch_sha3_256_without_workers_keeps_sn_limit(self):
        too_many = [b"m"] * 100
        with pytest.raises(ValueError):
            batch_sha3_256(too_many)  # legacy path: bounded by SN
        assert len(batch_sha3_256(too_many, workers=1)) == 100

    def test_empty_batch(self):
        assert run_many([], workers=2) == []


class TestShutdownDrain:
    """Shutdown must drain-then-close, not stall behind blocked feeders.

    A worker whose result is still sitting in its queue feeder thread
    cannot exit until the parent reads the result queue; the old
    serial ``stop()`` loop burned its join timeout per worker and then
    SIGKILLed them mid-write.  The drained shutdown lets every worker
    flush and exit cleanly within one bounded deadline.
    """

    def test_shutdown_with_undrained_results_is_bounded_and_clean(self):
        from repro.parallel_exec.pool import WorkerPool

        pool = WorkerPool(2)
        procs = [w.process for w in pool.workers.values()]
        # Park one multi-MB undrained result in each worker's feeder —
        # far beyond the pipe buffer, so the feeders block mid-put.
        for worker in pool.workers.values():
            worker.dispatch(0, "test.big_result", 4 << 20, 1, None)
        deadline = time.monotonic() + 30
        while any(w.task_queue.qsize() for w in pool.workers.values()) \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        time.sleep(0.5)  # let the workers reach the blocking put
        start = time.monotonic()
        pool.shutdown(deadline=10.0)
        elapsed = time.monotonic() - start
        assert elapsed < 10.0, f"shutdown hit the deadline ({elapsed:.1f}s)"
        for proc in procs:
            assert not proc.is_alive()
            assert proc.exitcode == 0, (
                f"worker force-killed instead of drained: {proc.exitcode}")
