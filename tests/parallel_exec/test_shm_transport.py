"""Zero-copy shm transport: arena lifecycle, stealing, fault recovery.

The transport's two safety claims are pinned here rather than in the
benchmark: (1) digests that travel through a shared-memory arena are
bit-identical to the serial pickle path and to ``hashlib``, under
crashes and resume included; (2) segments never leak — not on clean
shutdown, not when a worker holding an attachment is SIGKILLed
mid-chunk, and never as ``resource_tracker`` warnings (the worker-side
attach is untracked by design, see ``shm._attach_untracked``).

Crash tasks signal attempt state through flag files because they run in
child processes; ``fork`` inherits the registry, so kinds registered at
this module's import are visible in workers.
"""

import glob
import hashlib
import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.parallel_exec import (
    ChunkView,
    SpanAssembler,
    SpanDeque,
    chunked,
    plan_spans,
    register_task_kind,
    run_spans_report,
)
from repro.parallel_exec import shm
from repro.parallel_exec.results import ParallelExecError
from repro.programs import run_many
from repro.programs.batch_driver import run_many_report

needs_shm = pytest.mark.skipif(not shm.HAVE_SHM,
                               reason="no multiprocessing.shared_memory")

MESSAGES = [bytes([n % 251]) * (13 + n % 89) for n in range(96)]
EXPECTED = [hashlib.sha3_256(m).digest() for m in MESSAGES]


def _shm_hash_crash_once(payload):
    """Hash a span via the arena — SIGKILL ourselves on first attempt."""
    flag, segment, start, stop = payload
    arena = shm.attach_arena(segment)  # hold the segment before dying
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    digests = [hashlib.sha3_256(m).digest()
               for m in arena.read_messages(start, stop)]
    arena.write_digests(start, digests)
    return (start, stop)


register_task_kind("test.shm_crash_once", _shm_hash_crash_once)


@needs_shm
class TestArena:
    def test_pack_read_write_round_trip(self):
        pool = shm.ArenaPool(prefix="repro_shm_test")
        try:
            sizes = [len(m) for m in MESSAGES]
            arena = pool.acquire(shm.required_size(sizes, 32))
            arena.pack(MESSAGES, 32)
            assert arena.message_count == len(MESSAGES)
            assert arena.read_messages(0, len(MESSAGES)) == MESSAGES
            assert arena.read_messages(10, 13) == MESSAGES[10:13]
            arena.write_digests(0, EXPECTED)
            assert arena.read_digests(0, len(MESSAGES)) == EXPECTED
            assert arena.read_digests(5, 7) == EXPECTED[5:7]
        finally:
            pool.close_all()
        assert pool.live_segments == 0

    def test_pack_overflow_and_bad_ranges_rejected(self):
        pool = shm.ArenaPool(prefix="repro_shm_test")
        try:
            arena = pool.acquire(1)  # one size quantum
            with pytest.raises(ValueError, match="needs"):
                arena.pack([b"x" * arena.capacity], 32)
            arena.pack([b"abc"], 32)
            with pytest.raises(IndexError):
                arena.read_messages(0, 2)
            with pytest.raises(IndexError):
                arena.read_digests(-1, 1)
            with pytest.raises(ValueError, match="slot"):
                arena.write_digests(0, [b"short"])
        finally:
            pool.close_all()

    def test_segments_are_reused_across_leases(self):
        pool = shm.ArenaPool(prefix="repro_shm_test")
        try:
            first = pool.acquire(1024)
            name = first.name
            pool.release(first)
            second = pool.acquire(1024)
            assert second.name == name  # free-list hit, no new segment
            assert pool.live_segments == 1
        finally:
            pool.close_all()

    def test_retain_keeps_the_lease_alive(self):
        pool = shm.ArenaPool(prefix="repro_shm_test")
        try:
            arena = pool.acquire(1024)
            pool.retain(arena)
            pool.release(arena)  # one of two references dropped
            other = pool.acquire(1024)
            assert other.name != arena.name  # still leased: not reusable
            pool.release(arena)
            pool.release(other)
        finally:
            pool.close_all()


class TestTransportSelection:
    def test_explicit_pickle_always_wins(self):
        assert shm.choose_transport("pickle", 1 << 30, 8) == "pickle"

    def test_auto_falls_back_for_small_or_serial_batches(self):
        assert shm.choose_transport("auto", shm.MIN_SHM_BYTES - 1, 4) \
            == "pickle"
        assert shm.choose_transport("auto", 1 << 30, 1) == "pickle"

    @needs_shm
    def test_auto_picks_shm_for_large_parallel_batches(self):
        assert shm.choose_transport("auto", shm.MIN_SHM_BYTES, 2) == "shm"
        assert shm.choose_transport("shm", 1, 1) == "shm"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            shm.choose_transport("carrier-pigeon", 0, 1)


class TestChunkViews:
    """Satellite: ``chunked()`` must not copy payload slices."""

    def test_views_share_the_backing_list(self):
        items = [b"a", b"b", b"c", b"d"]
        views = chunked(items, 3)
        assert all(isinstance(v, ChunkView) for v in views)
        items[0] = b"mutated"
        assert views[0][0] == b"mutated"  # a view, not a copy

    def test_pickling_a_view_carries_only_its_slice(self):
        big = [os.urandom(512) for _ in range(200)]
        view = chunked(big, 4)[0]
        wire = pickle.dumps(view)
        assert len(wire) < len(pickle.dumps(big)) / 10
        assert pickle.loads(wire) == big[:4]  # lands as a plain list

    def test_views_compare_like_lists(self):
        view = chunked([1, 2, 3, 4, 5], 2)[1]
        assert view == [3, 4]
        assert view == (3, 4)
        assert list(view) == [3, 4]
        assert repr(view) == repr([3, 4])


class TestSpanPlanning:
    def test_plan_covers_contiguously_on_lane_boundaries(self):
        sizes = [11 + n % 67 for n in range(1000)]
        spans = plan_spans(sizes, workers=4, lane_width=64)
        assert spans[0][0] == 0 and spans[-1][1] == len(sizes)
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
        for start, stop in spans[:-1]:
            assert stop % 64 == 0

    def test_degenerate_inputs(self):
        assert plan_spans([], workers=4) == []
        with pytest.raises(ValueError):
            plan_spans([1], workers=1, lane_width=0)

    def test_deque_pops_leftmost_when_spans_are_plentiful(self):
        dq = SpanDeque([(0, 4), (4, 8)], lane_width=1)
        assert dq.take(idle_workers=2) == (0, 4)
        assert dq.steals == 0

    def test_deque_steals_half_the_largest_span_under_scarcity(self):
        dq = SpanDeque([(0, 640)], lane_width=64)
        assert dq.take(idle_workers=2) == (0, 320)  # 10 lanes -> 5 + 5
        assert dq.take(idle_workers=2) == (320, 448)  # 5 lanes -> 2 + 3
        assert dq.steals == 2
        assert dq.take(idle_workers=1) == (448, 640)  # enough spans again
        assert dq.take() is None

    def test_single_lane_group_cannot_split(self):
        dq = SpanDeque([(0, 64)], lane_width=64)
        assert dq.take(idle_workers=3) == (0, 64)
        assert dq.steals == 0


class TestSpanAssembler:
    def test_arbitrary_disjoint_ranges_complete_the_run(self):
        assembler = SpanAssembler(6)
        assert assembler.add(4, 6, ["e", "f"])
        assert assembler.add(0, 1, ["a"])
        assert assembler.uncovered_runs() == [(1, 4)]
        assert not assembler.complete
        assert assembler.add(1, 4, ["b", "c", "d"])
        assert assembler.values() == ["a", "b", "c", "d", "e", "f"]

    def test_duplicate_delivery_refused_whole(self):
        assembler = SpanAssembler(4)
        assembler.add(0, 2, ["a", "b"])
        assert not assembler.add(1, 3, ["B", "C"])  # overlaps a slot
        assembler.add(2, 4, ["c", "d"])
        assert assembler.values() == ["a", "b", "c", "d"]

    def test_failed_span_resolves_to_none(self):
        assembler = SpanAssembler(3)
        assembler.add(0, 1, ["a"])
        assembler.add_failed(1, 3)
        assert assembler.failed_spans == [(1, 3)]
        assert assembler.values() == ["a", None, None]

    def test_incomplete_values_raise(self):
        assembler = SpanAssembler(2)
        assembler.add(0, 1, ["a"])
        with pytest.raises(ParallelExecError):
            assembler.values()
        with pytest.raises(ValueError):
            assembler.add(1, 2, ["too", "many"])
        with pytest.raises(IndexError):
            assembler.add(1, 3, ["a", "b"])


@needs_shm
class TestShmRunMany:
    def test_shm_digests_match_serial_and_hashlib(self):
        via_shm = run_many(MESSAGES, workers=2, engine="reference",
                           transport="shm")
        serial = run_many(MESSAGES, workers=1, engine="reference",
                          transport="pickle")
        assert via_shm == serial == EXPECTED

    def test_shm_shake128_round_trip(self):
        digests = run_many(MESSAGES[:24], algorithm="shake128", length=48,
                           workers=2, engine="reference", transport="shm")
        assert digests == [hashlib.shake_128(m).digest(48)
                           for m in MESSAGES[:24]]

    def test_empty_batch_over_shm(self):
        assert run_many([], workers=2, transport="shm") == []

    def test_checkpoint_resume_over_shm(self, tmp_path):
        manifest = str(tmp_path / "shm-manifest.json")
        first = run_many_report(MESSAGES, workers=2, engine="reference",
                                transport="shm", checkpoint=manifest)
        assert first.digests == EXPECTED
        second = run_many_report(MESSAGES, workers=2, engine="reference",
                                 transport="shm", checkpoint=manifest)
        assert second.digests == EXPECTED
        assert second.stats.checkpoint_hits > 0

    def test_run_leaves_no_leased_segments(self):
        run_many(MESSAGES, workers=2, engine="reference", transport="shm")
        pool = shm.arena_pool()
        # The lease was released back to the free list: acquiring the
        # same size class must not create a new segment.
        before = pool.live_segments
        arena = pool.acquire(1024)
        assert pool.live_segments == before
        pool.release(arena)


@needs_shm
class TestCrashLifecycle:
    def test_sigkill_mid_chunk_retries_on_same_arena(self, tmp_path):
        """A worker dies holding an attachment; the span is retried on a
        fresh worker against the *same* segment and completes exactly."""
        flag = str(tmp_path / "crashed")
        pool = shm.arena_pool()
        sizes = [len(m) for m in MESSAGES]
        arena = pool.acquire(shm.required_size(sizes, 32))
        try:
            arena.pack(MESSAGES, 32)
            segment = arena.name

            def payload(start, stop):
                return (flag, segment, start, stop)

            def collect(start, stop, _ack):
                return arena.read_digests(start, stop)

            report = run_spans_report(
                "test.shm_crash_once", len(MESSAGES), workers=2,
                payload=payload, collect=collect,
                spans=[(0, 48), (48, 96)])
        finally:
            pool.release(arena)
        assert os.path.exists(flag)  # the first attempt really died
        assert report.ok
        assert report.stats.crashes >= 1
        assert report.results == EXPECTED

    def test_no_segment_or_tracker_leaks_after_sigkill(self, tmp_path):
        """End-to-end leak check in a fresh interpreter: SIGKILL a worker
        mid-chunk, finish the batch, shut down — the child must exit
        clean with zero resource_tracker warnings and zero segments
        left in /dev/shm."""
        flag = tmp_path / "crashed"
        script = textwrap.dedent(f"""
            import hashlib, os, signal
            from repro.parallel_exec import (register_task_kind,
                                             run_spans_report)
            from repro.parallel_exec import shm

            def crash_once(payload):
                flag, segment, start, stop = payload
                arena = shm.attach_arena(segment)
                if not os.path.exists(flag):
                    with open(flag, "w"):
                        pass
                    os.kill(os.getpid(), signal.SIGKILL)
                digests = [hashlib.sha3_256(m).digest()
                           for m in arena.read_messages(start, stop)]
                arena.write_digests(start, digests)
                return (start, stop)

            register_task_kind("leaktest.crash", crash_once)
            messages = [bytes([n % 251]) * (50 + n % 100)
                        for n in range(64)]
            pool = shm.arena_pool()
            arena = pool.acquire(
                shm.required_size([len(m) for m in messages], 32))
            arena.pack(messages, 32)
            name = arena.name
            report = run_spans_report(
                "leaktest.crash", len(messages), workers=2,
                payload=lambda s, e: ({str(flag)!r}, name, s, e),
                collect=lambda s, e, ack: arena.read_digests(s, e),
                spans=[(0, 32), (32, 64)])
            assert report.ok and report.stats.crashes >= 1
            assert report.results == [hashlib.sha3_256(m).digest()
                                      for m in messages]
            pool.release(arena)
            shm.close_all()
            assert pool.live_segments == 0
            print("LEAKTEST-OK")
        """)
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(shm.__file__))))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        before = set(glob.glob("/dev/shm/repro_shm_*"))
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "LEAKTEST-OK" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
        leaked = set(glob.glob("/dev/shm/repro_shm_*")) - before
        assert not leaked, f"segments left behind: {sorted(leaked)}"
