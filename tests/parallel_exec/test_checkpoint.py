"""Checkpoint/resume: manifest round-trips, fingerprint guards, and a
real kill-and-resume of a batch run.

The kill test launches ``repro batch --resume`` in its own process
group, SIGKILLs the whole group once the manifest shows progress, and
then resumes in-process — the resumed digests must be byte-identical to
``hashlib`` in the original message order, with at least one chunk
served from the manifest instead of recomputed.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.parallel_exec import (
    BatchCheckpoint,
    ManifestVersionError,
    chunk_fingerprint,
    register_task_kind,
    run_chunks,
    run_chunks_report,
)
from repro.parallel_exec.checkpoint import SpanCheckpoint
from repro.programs import run_many, run_many_report


def _triple(payload):
    return [3 * item for item in payload]


register_task_kind("test.cp_triple", _triple)


class TestManifest:
    def test_begin_creates_and_resume_returns_completed(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        chunks = [[1, 2], [3]]
        manifest = BatchCheckpoint(path)
        assert manifest.begin("test.cp_triple", chunks) == {}
        manifest.record(1, [b"\x00\xff", 9])

        resumed = BatchCheckpoint(path)
        completed = resumed.begin("test.cp_triple", chunks)
        assert completed == {1: [b"\x00\xff", 9]}  # bytes survive exactly

    def test_fingerprint_mismatch_starts_fresh(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = BatchCheckpoint(path)
        manifest.begin("test.cp_triple", [[1, 2]])
        manifest.record(0, [3, 6])

        other = BatchCheckpoint(path)
        assert other.begin("test.cp_triple", [[9, 9]]) == {}
        # ... and the stale completion was dropped from disk.
        fresh = BatchCheckpoint(path)
        assert fresh.begin("test.cp_triple", [[9, 9]]) == {}

    def test_kind_mismatch_starts_fresh(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = BatchCheckpoint(path)
        manifest.begin("test.cp_triple", [[1]])
        manifest.record(0, [3])
        assert BatchCheckpoint(path).begin("other.kind", [[1]]) == {}

    def test_corrupt_manifest_starts_fresh(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        with open(path, "w") as handle:
            handle.write("{ torn write")
        assert BatchCheckpoint(path).begin("test.cp_triple", [[1]]) == {}

    def test_record_before_begin_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="begin"):
            BatchCheckpoint(str(tmp_path / "m.json")).record(0, [])

    def test_fingerprint_is_content_sensitive(self):
        assert chunk_fingerprint([1, 2]) != chunk_fingerprint([2, 1])
        assert chunk_fingerprint([1, 2]) == chunk_fingerprint([1, 2])


class TestManifestVersion:
    """Version mismatches refuse to run rather than discard real work."""

    def test_span_manifest_rejected_by_chunk_run(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        spans = SpanCheckpoint(path)
        spans.begin("test.cp_triple", "fp", 4)
        spans.record(0, 2, [3, 6])

        with pytest.raises(ManifestVersionError) as excinfo:
            BatchCheckpoint(path).begin("test.cp_triple", [[1, 2]])
        message = str(excinfo.value)
        assert "span-keyed" in message
        assert "\n" not in message  # one-line CLI diagnostic

    def test_chunk_manifest_rejected_by_span_run(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        BatchCheckpoint(path).begin("test.cp_triple", [[1, 2]])
        with pytest.raises(ManifestVersionError, match="chunk-keyed"):
            SpanCheckpoint(path).begin("test.cp_triple", "fp", 4)

    def test_unknown_future_version_rejected(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        with open(path, "w") as handle:
            json.dump({"version": 99, "kind": "test.cp_triple"}, handle)
        with pytest.raises(ManifestVersionError, match="version 99"):
            BatchCheckpoint(path).begin("test.cp_triple", [[1]])

    def test_mismatch_leaves_manifest_untouched(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        spans = SpanCheckpoint(path)
        spans.begin("test.cp_triple", "fp", 4)
        spans.record(0, 2, [3, 6])
        with open(path) as handle:
            before = handle.read()

        with pytest.raises(ManifestVersionError):
            BatchCheckpoint(path).begin("test.cp_triple", [[1]])
        with open(path) as handle:
            assert handle.read() == before  # completed work preserved

    def test_versionless_manifest_still_starts_fresh(self, tmp_path):
        # Pre-versioning garbage has no int version field: keep the old
        # lenient behavior instead of inventing an incompatibility.
        path = str(tmp_path / "manifest.json")
        with open(path, "w") as handle:
            json.dump({"kind": "test.cp_triple"}, handle)
        assert BatchCheckpoint(path).begin("test.cp_triple", [[1]]) == {}


class TestSchedulerCheckpointing:
    def test_serial_run_records_and_resumes(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        chunks = [[1], [2], [3]]
        assert run_chunks("test.cp_triple", chunks, workers=1,
                          checkpoint=path) == [3, 6, 9]
        with open(path) as handle:
            saved = json.load(handle)
        assert len(saved["completed"]) == 3

        report = run_chunks_report("test.cp_triple", chunks, workers=1,
                                   checkpoint=path)
        assert report.flat() == [3, 6, 9]
        assert report.stats.checkpoint_hits == 3  # nothing recomputed

    def test_parallel_resume_skips_completed_chunks(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        chunks = [[i] for i in range(6)]
        manifest = BatchCheckpoint(path)
        manifest.begin("test.cp_triple", chunks)
        manifest.record(0, [999])  # pretend chunk 0 already finished

        report = run_chunks_report("test.cp_triple", chunks, workers=2,
                                   checkpoint=path)
        # The checkpointed (deliberately wrong) value is trusted, which
        # proves chunk 0 was not re-executed.
        assert report.flat() == [999, 3, 6, 9, 12, 15]
        assert report.stats.checkpoint_hits == 1

    def test_run_many_checkpoint_round_trip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        messages = [bytes([i]) * 25 for i in range(10)]
        expected = [hashlib.sha3_256(m).digest() for m in messages]
        assert run_many(messages, workers=1, chunk_size=3,
                        checkpoint=path) == expected
        outcome = run_many_report(messages, workers=1, chunk_size=3,
                                  checkpoint=path)
        assert outcome.digests == expected
        assert outcome.stats.checkpoint_hits == 4


class TestKillAndResume:
    COUNT, SIZE, SEED, CHUNK = 96, 48, 11, 8

    def _batch_argv(self, manifest):
        return [sys.executable, "-m", "repro", "batch",
                "--count", str(self.COUNT), "--size", str(self.SIZE),
                "--seed", str(self.SEED), "--chunk-size", str(self.CHUNK),
                "--workers", "2", "--verify", "--resume", manifest]

    def test_killed_batch_resumes_byte_identical(self, tmp_path):
        manifest = str(tmp_path / "batch.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.path.dirname(__file__),
                                       "..", "..", "src"),
                          env.get("PYTHONPATH", "")]))
        child = subprocess.Popen(self._batch_argv(manifest), env=env,
                                 stdout=subprocess.DEVNULL,
                                 stderr=subprocess.DEVNULL,
                                 start_new_session=True)
        try:
            deadline = time.monotonic() + 60
            progressed = False
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break  # finished before we could kill it
                try:
                    with open(manifest) as handle:
                        saved = json.load(handle)
                    if len(saved.get("completed", {})) >= 2:
                        progressed = True
                        break
                except (OSError, json.JSONDecodeError):
                    pass  # not written yet / mid-replace
                time.sleep(0.01)
            if progressed:
                os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup path
                os.killpg(child.pid, signal.SIGKILL)
                child.wait(timeout=30)

        with open(manifest) as handle:
            saved = json.load(handle)
        completed_before_resume = len(saved["completed"])
        assert completed_before_resume >= 1

        # Resume in-process with the identical batch (same seed/shape →
        # same chunk fingerprints as the CLI run).
        import random
        rng = random.Random(self.SEED)
        messages = [rng.randbytes(self.SIZE) for _ in range(self.COUNT)]
        outcome = run_many_report(messages, workers=2,
                                  chunk_size=self.CHUNK,
                                  checkpoint=manifest)
        assert outcome.ok
        assert outcome.stats.checkpoint_hits == completed_before_resume
        assert outcome.digests == [hashlib.sha3_256(m).digest()
                                   for m in messages]

    def test_sigterm_exits_130_and_leaves_resumable_manifest(
            self, tmp_path):
        # SIGTERM (systemd stop, ^C via the terminal) must not leave a
        # torn manifest or a traceback: exit 130, a one-line pointer at
        # --resume, and a manifest the next run can pick up.
        manifest = str(tmp_path / "batch.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.path.dirname(__file__),
                                       "..", "..", "src"),
                          env.get("PYTHONPATH", "")]))
        child = subprocess.Popen(self._batch_argv(manifest), env=env,
                                 stdout=subprocess.DEVNULL,
                                 stderr=subprocess.PIPE, text=True,
                                 start_new_session=True)
        interrupted = False
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break  # finished before the signal could land
                try:
                    with open(manifest) as handle:
                        saved = json.load(handle)
                    if len(saved.get("completed", {})) >= 2:
                        os.kill(child.pid, signal.SIGTERM)
                        interrupted = True
                        break
                except (OSError, json.JSONDecodeError):
                    pass
                time.sleep(0.01)
            _, stderr = child.communicate(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup path
                os.killpg(child.pid, signal.SIGKILL)
                child.wait(timeout=30)
        if not interrupted:  # pragma: no cover - tiny-machine fallback
            pytest.skip("batch finished before SIGTERM could land")

        assert child.returncode == 130
        assert "interrupted" in stderr
        assert "--resume" in stderr
        assert "Traceback" not in stderr

        with open(manifest) as handle:
            saved = json.load(handle)  # consistent, not torn
        completed_before_resume = len(saved["completed"])
        assert completed_before_resume >= 2

        import random
        rng = random.Random(self.SEED)
        messages = [rng.randbytes(self.SIZE) for _ in range(self.COUNT)]
        outcome = run_many_report(messages, workers=2,
                                  chunk_size=self.CHUNK,
                                  checkpoint=manifest)
        assert outcome.ok
        assert outcome.stats.checkpoint_hits >= completed_before_resume
        assert outcome.digests == [hashlib.sha3_256(m).digest()
                                   for m in messages]
