"""Differential oracle tests: clean programs pass, planted faults are
localized down to (pc, register, lane)."""

import pytest

from repro.programs.factory import build_program
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    crosscheck_digest,
    lockstep_verify,
    run_campaign,
    selfcheck_run,
)
from repro.resilience.selfcheck import _place_states
from repro.sim import SIMDProcessor

VARIANTS = [(64, 1), (64, 8), (32, 8)]


class TestCleanPrograms:
    @pytest.mark.parametrize("elen,lmul", VARIANTS)
    def test_lockstep_clean(self, elen, lmul, random_states):
        program = build_program(elen, lmul, elenum=5)
        report = lockstep_verify(program, random_states(1))
        assert report.ok, report.summary()
        assert report.checked_instructions > 100

    @pytest.mark.parametrize("elen,lmul", VARIANTS)
    def test_selfcheck_run_clean(self, elen, lmul, random_states):
        program = build_program(elen, lmul, elenum=5)
        report = selfcheck_run(program, random_states(1))
        assert report.ok, report.summary()

    def test_digest_crosscheck(self):
        report = crosscheck_digest(b"differential oracle")
        assert report.ok


class TestDivergenceLocalization:
    def test_vreg_divergence_localized_to_register_and_lane(self):
        # A single flipped bit between two otherwise-identical register
        # files must be named down to (register, lane).
        from repro.resilience.selfcheck import _first_vreg_divergence

        a = SIMDProcessor(elen=64, elenum=5)
        b = SIMDProcessor(elen=64, elenum=5)
        b.vector.regfile.write_raw(3, a.vector.regfile.read_raw(3) ^ (1 << 70))
        divergence = _first_vreg_divergence(12, 0x40, a, b)
        assert divergence is not None
        assert divergence.register == 3
        assert divergence.lane == 70 // 64  # bit 70 sits in lane 1
        assert "lane 1" in str(divergence)

    def test_planted_fault_caught_by_whole_run_oracle(self, random_states):
        # An injected flip must surface as a fused-vs-clean divergence
        # when the faulted output is compared against the golden model.
        program = build_program(64, 8, elenum=5)
        states = random_states(1)
        faulted = SIMDProcessor(elen=64, elenum=5)
        _place_states(faulted, program, states)
        pc = program.assemble().symbols["round_body"]
        with FaultInjector(faulted) as injector:
            injector.arm(FaultSpec("vreg-flip", pc=pc, reg=3, bit=70))
            faulted.run()
        from repro.keccak import keccak_f1600
        from repro.programs import layout
        out = layout.read_states_regfile64(faulted.vector.regfile, 1)[0]
        assert out != keccak_f1600(states[0])

    def test_report_summary_mentions_divergence(self, random_states):
        from repro.resilience.selfcheck import Divergence, SelfCheckReport

        report = SelfCheckReport(ok=False, divergences=[
            Divergence(12, 0x40, "vreg", register=5, lane=2, detail="x"),
        ])
        assert "v5 lane 2" in report.summary()
        assert "FAILED" in report.summary()


class TestCampaign:
    def test_small_campaign_zero_silent(self):
        report = run_campaign(num_faults=45, seed=7)
        assert len(report.results) == 45
        assert report.zero_silent, report.summary()
        # The campaign must actually exercise all three outcome classes.
        assert report.counts["detected"] > 0
        assert report.counts["masked"] > 0

    def test_campaign_is_reproducible(self):
        a = run_campaign(num_faults=12, seed=99)
        b = run_campaign(num_faults=12, seed=99)
        assert [r.classification for r in a.results] == \
            [r.classification for r in b.results]
        assert [r.trial.spec for r in a.results] == \
            [r.trial.spec for r in b.results]

    def test_campaign_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            run_campaign(num_faults=1, modes=("warp-speed",))

    def test_summary_format(self):
        report = run_campaign(num_faults=9, seed=3)
        text = report.summary()
        assert "9 fault(s)" in text
        assert "SILENT" in text
