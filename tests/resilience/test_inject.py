"""Fault injector semantics: triggers, payloads, restore-on-disarm."""

import pytest

from repro.keccak import keccak_f1600
from repro.programs import keccak64_lmul8, layout
from repro.resilience import FaultInjector, FaultSpec, program_pcs
from repro.sim import SIMDProcessor
from repro.sim.exceptions import (
    IllegalInstructionError,
    InjectedFaultError,
    MemoryAccessError,
    SimulationError,
)

PROGRAM = keccak64_lmul8.build(5)


def _prepared(random_state, **kwargs):
    proc = SIMDProcessor(elen=64, elenum=5, **kwargs)
    proc.load_program(PROGRAM.assemble())
    layout.load_states_regfile64(proc.vector.regfile, [random_state])
    return proc


def _round_body_pcs():
    assembled = PROGRAM.assemble()
    lo = assembled.symbols["round_body"]
    hi = assembled.symbols["round_end"]
    return [i.address for i in assembled.instructions if lo <= i.address < hi]


MODES = {
    "stepped": dict(predecode=False),
    "predecoded": dict(predecode=True, fuse=False),
    "fused": dict(predecode=True, fuse=True),
}


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("flip-everything", pc=0)

    def test_rejects_bad_occurrence(self):
        with pytest.raises(ValueError, match="occurrence"):
            FaultSpec("raise", pc=0, occurrence=0)

    def test_describe_mentions_target(self):
        spec = FaultSpec("vreg-flip", pc=0x40, reg=7, bit=3)
        assert "v7" in spec.describe()
        assert "0x40" in spec.describe()


class TestTriggering:
    @pytest.mark.parametrize("mode", MODES)
    def test_raise_fires_at_trigger_pc(self, mode, random_state):
        proc = _prepared(random_state, **MODES[mode])
        pc = _round_body_pcs()[4]
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("raise", pc=pc))
            with pytest.raises(InjectedFaultError) as excinfo:
                proc.run()
            assert injector.fired
        assert excinfo.value.pc == pc
        assert excinfo.value.cycle is not None
        assert excinfo.value.instruction is not None

    @pytest.mark.parametrize("mode", MODES)
    def test_occurrence_counts_loop_iterations(self, mode, random_state):
        # The round body executes 24 times; occurrence 24 must still fire
        # while occurrence 25 never does.
        pc = _round_body_pcs()[0]
        proc = _prepared(random_state, **MODES[mode])
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("raise", pc=pc, occurrence=24))
            with pytest.raises(InjectedFaultError):
                proc.run()

        proc = _prepared(random_state, **MODES[mode])
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("raise", pc=pc, occurrence=25))
            proc.run()
            assert not injector.fired

    def test_custom_exception_type(self, random_state):
        proc = _prepared(random_state)
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("raise", pc=_round_body_pcs()[0],
                                   exception=MemoryAccessError))
            with pytest.raises(MemoryAccessError):
                proc.run()

    def test_arm_outside_program_rejected(self, random_state):
        proc = _prepared(random_state)
        with FaultInjector(proc) as injector:
            with pytest.raises(ValueError, match="outside"):
                injector.arm(FaultSpec("raise", pc=0xDEAD00))

    def test_duplicate_pc_rejected(self, random_state):
        proc = _prepared(random_state)
        pc = _round_body_pcs()[0]
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("raise", pc=pc))
            with pytest.raises(ValueError, match="already armed"):
                injector.arm(FaultSpec("vreg-flip", pc=pc))


class TestPayloads:
    @pytest.mark.parametrize("mode", MODES)
    def test_vreg_flip_corrupts_output(self, mode, random_state):
        # Flipping a state lane bit right at the start of the permutation
        # must change the result — and behave identically in every mode.
        proc = _prepared(random_state, **MODES[mode])
        pc = _round_body_pcs()[0]
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("vreg-flip", pc=pc, reg=1, bit=0))
            proc.run()
        out = layout.read_states_regfile64(proc.vector.regfile, 1)[0]
        assert out != keccak_f1600(random_state)

    def test_sreg_flip_to_x0_is_masked(self, random_state):
        proc = _prepared(random_state)
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("sreg-flip", pc=_round_body_pcs()[0],
                                   reg=0, bit=5))
            proc.run()
            assert injector.fired
        out = layout.read_states_regfile64(proc.vector.regfile, 1)[0]
        assert out == keccak_f1600(random_state)

    def test_mem_flip_unread_address_is_masked(self, random_state):
        # This program keeps its state in the register file; most of data
        # memory is never loaded, so the flip cannot propagate.
        proc = _prepared(random_state)
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("mem-flip", pc=_round_body_pcs()[0],
                                   address=0x8000, bit=3))
            proc.run()
            assert injector.fired
        assert proc.memory.load(0x8000, 8) == 1 << 3
        out = layout.read_states_regfile64(proc.vector.regfile, 1)[0]
        assert out == keccak_f1600(random_state)

    @pytest.mark.parametrize("mode", MODES)
    def test_word_corrupt_opcode_goes_illegal(self, mode, random_state):
        # Find a round-body word where flipping bit 2 stops it decoding;
        # the injected corruption must then raise IllegalInstructionError.
        assembled = PROGRAM.assemble()
        from repro.isa import ISA
        target = None
        for pc in _round_body_pcs():
            word = next(i.word for i in assembled.instructions
                        if i.address == pc)
            try:
                ISA.find(word ^ 4)
            except LookupError:
                target = pc
                break
        assert target is not None
        proc = _prepared(random_state, **MODES[mode])
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("word-corrupt", pc=target, bit=2))
            with pytest.raises(IllegalInstructionError) as excinfo:
                proc.run()
        assert excinfo.value.pc == target


class TestDisarm:
    def test_disarm_restores_clean_execution(self, random_state):
        proc = _prepared(random_state)
        pc = _round_body_pcs()[0]
        injector = FaultInjector(proc)
        injector.arm(FaultSpec("raise", pc=pc))
        with pytest.raises(InjectedFaultError):
            proc.run()
        injector.disarm()

        proc.reset()
        layout.load_states_regfile64(proc.vector.regfile, [random_state])
        proc.run()
        out = layout.read_states_regfile64(proc.vector.regfile, 1)[0]
        assert out == keccak_f1600(random_state)

    def test_disarm_restores_corrupted_decode(self, random_state):
        proc = _prepared(random_state)
        pc = _round_body_pcs()[0]
        pre = proc._predecoded
        entry = pre.entry_at(pc)
        original = (entry.word, entry.mnemonic, entry.execute)
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("word-corrupt", pc=pc, bit=2))
            assert entry.word != original[0]
        assert (entry.word, entry.mnemonic, entry.execute) == original

    def test_stepped_disarm_restores_program_word(self, random_state):
        proc = _prepared(random_state, predecode=False)
        pc = _round_body_pcs()[0]
        original = proc._program_words[pc]
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("word-corrupt", pc=pc, bit=2))
            try:
                proc.run()
            except SimulationError:
                pass
        assert proc._program_words[pc] == original
        assert proc.fault_hook is None


class TestProgramPcs:
    def test_clipping(self, random_state):
        proc = _prepared(random_state)
        assembled = PROGRAM.assemble()
        lo = assembled.symbols["round_body"]
        hi = assembled.symbols["round_end"]
        pcs = program_pcs(proc, lo, hi)
        assert pcs == _round_body_pcs()

    def test_requires_program(self):
        with pytest.raises(ValueError, match="no program"):
            program_pcs(SIMDProcessor(elen=64, elenum=5))
