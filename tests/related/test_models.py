"""Tests for the related-work comparison data (paper Section 2.3)."""

import pytest

from repro.related import (
    ALL_RELATED,
    DASIP,
    IBEX_C_CODE,
    LEON3_ISE,
    MIPS_COPROCESSOR_ISE,
    MIPS_NATIVE_ISE,
    OASIP,
    RAWAT_VECTOR_EXTENSIONS,
    TABLE7_RELATED,
    TABLE8_RELATED,
)


class TestPublishedNumbers:
    """The exact figures from the paper's Tables 7 and 8."""

    def test_leon3(self):
        assert LEON3_ISE.cycles_per_byte == 369.0
        assert LEON3_ISE.throughput_e3 == 21.68
        assert LEON3_ISE.area_slices == 8648

    def test_mips_native(self):
        assert MIPS_NATIVE_ISE.cycles_per_byte == 178.1
        assert MIPS_NATIVE_ISE.throughput_e3 == 44.92
        assert MIPS_NATIVE_ISE.area_slices == 6595

    def test_mips_coprocessor(self):
        assert MIPS_COPROCESSOR_ISE.cycles_per_byte == 137.9
        assert MIPS_COPROCESSOR_ISE.throughput_e3 == 58.01
        assert MIPS_COPROCESSOR_ISE.area_slices == 7643
        assert MIPS_COPROCESSOR_ISE.supports_parallelism

    def test_oasip_and_dasip(self):
        assert OASIP.cycles_per_byte == 291.5
        assert OASIP.area_slices == 981
        assert not OASIP.supports_parallelism
        assert DASIP.cycles_per_byte == 130.4
        assert DASIP.throughput_e3 == 61.35
        assert DASIP.area_slices == 1522
        assert DASIP.supports_parallelism

    def test_rawat(self):
        assert RAWAT_VECTOR_EXTENSIONS.cycles_per_round == 66.0
        assert RAWAT_VECTOR_EXTENSIONS.throughput_e3 == 1010.1
        assert RAWAT_VECTOR_EXTENSIONS.area_slices is None  # simulation only

    def test_ibex_baseline(self):
        assert IBEX_C_CODE.cycles_per_round == 2908.0
        assert IBEX_C_CODE.cycles_per_byte == 355.69
        assert IBEX_C_CODE.throughput_e3 == 22.45
        assert IBEX_C_CODE.area_slices == 432


class TestConsistency:
    def test_throughput_consistent_with_cycles_per_byte(self):
        """tput (b/c x10^3) = 8 / (c/b) x10^3 for single-state designs."""
        for design in (LEON3_ISE, MIPS_NATIVE_ISE, MIPS_COPROCESSOR_ISE,
                       OASIP, DASIP, IBEX_C_CODE):
            derived = 8000.0 / design.cycles_per_byte
            assert derived == pytest.approx(design.throughput_e3, rel=0.01), \
                design.name

    def test_table_membership(self):
        assert RAWAT_VECTOR_EXTENSIONS in TABLE7_RELATED
        assert len(TABLE8_RELATED) == 6
        assert len(ALL_RELATED) == 7

    def test_all_designs_cited(self):
        for design in ALL_RELATED:
            assert design.citation
            assert design.year >= 2015

    def test_architecture_labels(self):
        assert RAWAT_VECTOR_EXTENSIONS.architecture == "64-bit"
        assert all(d.architecture == "32-bit" for d in TABLE8_RELATED)
