"""The AOT code-generation engine: bit-exactness, caching, fallback.

The compiled engine must be *indistinguishable* from the fused/stepped
reference engines on everything architectural — final states, cycle and
instruction counters, per-mnemonic statistics — while being allowed to
skip only what nobody can observe (per-step dispatch).  These tests pin
that equivalence across the three paper programs, exercise both cache
layers (including deliberately corrupted/stale disk entries), and verify
the fallback rule: tracing, fault injection and instruction limits all
push execution back onto the reference engines transparently.
"""

import os

import pytest

from repro.keccak import keccak_f1600
from repro.programs import build_program, layout
from repro.programs.session import Session
from repro.resilience import FaultInjector, FaultSpec
from repro.sim import SIMDProcessor, codegen
from repro.sim.exceptions import ExecutionLimitExceeded, InjectedFaultError

#: The three paper programs: (ELEN, LMUL).
ARCHS = [(64, 1), (64, 8), (32, 8)]

PAPER_PINS = [
    (64, 1, 2564, 103),
    (64, 8, 1892, 75),
    (32, 8, 3620, 147),
]


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Every test gets an empty disk cache and an empty memory cache."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen"))
    codegen.clear_memory_cache()
    yield
    codegen.clear_memory_cache()


def _engine_run(program, states, engine, trace=False):
    return Session(engine=engine).run(program, states, trace=trace)


def _assert_stats_identical(a, b):
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.mnemonic_counts == b.mnemonic_counts
    assert a.mnemonic_cycles == b.mnemonic_cycles


class TestDifferentialMatrix:
    """compiled vs fused vs stepped on all programs and batch sizes."""

    @pytest.mark.parametrize("elen,lmul", ARCHS)
    @pytest.mark.parametrize("sn", (1, 3, 6))
    def test_engines_agree(self, elen, lmul, sn, random_states):
        program = build_program(elen, lmul, 30)
        states = random_states(sn)
        reference = [keccak_f1600(s) for s in states]
        compiled = _engine_run(program, states, "compiled")
        assert compiled.states == reference
        for engine in ("fused", "stepped"):
            other = _engine_run(program, states, engine)
            assert other.states == compiled.states
            _assert_stats_identical(compiled.stats, other.stats)

    @pytest.mark.parametrize("elen,lmul", ARCHS)
    def test_memory_io_variants_agree(self, elen, lmul, random_states):
        program = build_program(elen, lmul, 30, include_memory_io=True)
        states = random_states(3)
        compiled = _engine_run(program, states, "compiled")
        fused = _engine_run(program, states, "fused")
        assert compiled.states == fused.states
        assert compiled.states == [keccak_f1600(s) for s in states]
        _assert_stats_identical(compiled.stats, fused.stats)

    def test_compiled_engine_actually_compiles(self, random_states):
        # Guard against the matrix silently passing because every run
        # fell back to fused: the kernel cache must fill.
        program = build_program(64, 8, 30)
        before = codegen.COMPILE_STATS["compiles"]
        _engine_run(program, random_states(2), "compiled")
        assert codegen.COMPILE_STATS["compiles"] == before + 1


class TestPaperPins:
    """Paper cycle totals survive the compiled engine bit-for-bit."""

    @pytest.mark.parametrize("elen,lmul,total,per_round", PAPER_PINS)
    def test_compiled_cycles_match_fused(self, elen, lmul, total,
                                         per_round, random_states):
        program = build_program(elen, lmul, 5)
        states = random_states(1)
        session = Session(engine="compiled")
        compiled = session.run(program, states)
        fused = _engine_run(program, states, "fused")
        _assert_stats_identical(compiled.stats, fused.stats)
        # Tracing falls back to the reference engines transparently and
        # still reports the paper's permutation pins.
        traced = session.run(program, states, trace=True)
        assert traced.permutation_cycles == total
        assert traced.cycles_per_round == pytest.approx(per_round)
        assert traced.states == compiled.states


class TestDiskCache:
    def _program(self):
        return build_program(64, 8, 5)

    def _cache_files(self):
        directory = codegen.cache_dir()
        if not os.path.isdir(directory):
            return []
        return sorted(os.listdir(directory))

    def test_kernel_persisted_and_reloaded(self, random_states):
        program = self._program()
        states = random_states(1)
        first = _engine_run(program, states, "compiled")
        files = self._cache_files()
        assert len(files) == 1 and files[0].endswith(".py")
        compiles = codegen.COMPILE_STATS["compiles"]
        disk_hits = codegen.COMPILE_STATS["disk_hits"]
        # A fresh process is simulated by dropping the in-memory cache:
        # the kernel must come back from disk, not a recompile.
        codegen.clear_memory_cache()
        second = _engine_run(program, states, "compiled")
        assert second.states == first.states
        assert codegen.COMPILE_STATS["compiles"] == compiles
        assert codegen.COMPILE_STATS["disk_hits"] == disk_hits + 1

    def test_corrupted_entry_recompiles_never_wrong(self, random_states):
        program = self._program()
        states = random_states(1)
        expected = _engine_run(program, states, "fused")
        _engine_run(program, states, "compiled")
        [name] = self._cache_files()
        path = os.path.join(codegen.cache_dir(), name)
        with open(path, "w") as handle:
            handle.write("this is not a kernel {{{\x00")
        codegen.clear_memory_cache()
        compiles = codegen.COMPILE_STATS["compiles"]
        result = _engine_run(program, states, "compiled")
        assert result.states == expected.states
        _assert_stats_identical(result.stats, expected.stats)
        assert codegen.COMPILE_STATS["compiles"] == compiles + 1
        # The corrupt entry was overwritten with a valid one.
        with open(path) as handle:
            assert handle.readline().startswith("# repro-codegen")

    def test_stale_fingerprint_recompiles(self, random_states):
        # An entry whose embedded fingerprint disagrees with its key is
        # stale (e.g. a truncated rename or a hand-copied cache): it
        # must be ignored, not executed.
        program = self._program()
        states = random_states(1)
        _engine_run(program, states, "compiled")
        [name] = self._cache_files()
        path = os.path.join(codegen.cache_dir(), name)
        with open(path) as handle:
            source = handle.read()
        lines = source.split("\n")
        lines[0] = lines[0][:-4] + "dead"  # corrupt the header fingerprint
        with open(path, "w") as handle:
            handle.write("\n".join(lines))
        codegen.clear_memory_cache()
        compiles = codegen.COMPILE_STATS["compiles"]
        result = _engine_run(program, states, "compiled")
        assert result.states == [keccak_f1600(s) for s in states]
        assert codegen.COMPILE_STATS["compiles"] == compiles + 1

    def test_empty_env_var_disables_disk_cache(self, monkeypatch,
                                               random_states):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", "")
        assert codegen.cache_dir() is None
        program = self._program()
        result = _engine_run(program, random_states(1), "compiled")
        assert result.states  # ran fine, purely in-memory


class TestColdVsWarm:
    def test_warm_start_skips_the_compile(self):
        import time

        program = build_program(64, 8, 30)
        proc = SIMDProcessor(elen=64, elenum=30, engine="compiled")
        proc.load_program(program.assemble())

        compiles = codegen.COMPILE_STATS["compiles"]
        start = time.perf_counter()
        kernel = codegen.warm(proc)
        cold = time.perf_counter() - start
        assert kernel is not None
        assert codegen.COMPILE_STATS["compiles"] == compiles + 1

        # Fresh process, warm disk cache: load by fingerprint only.
        codegen.clear_memory_cache()
        disk_hits = codegen.COMPILE_STATS["disk_hits"]
        start = time.perf_counter()
        warm_kernel = codegen.warm(proc)
        warm = time.perf_counter() - start
        assert warm_kernel is not None
        assert codegen.COMPILE_STATS["compiles"] == compiles + 1
        assert codegen.COMPILE_STATS["disk_hits"] == disk_hits + 1
        # Loading generated source is strictly cheaper than symbolic
        # execution + generation + write-back.
        assert warm < cold

    def test_session_warm_precompiles(self):
        program = build_program(64, 8, 30, include_memory_io=True)
        session = Session(engine="compiled")
        assert session.warm(program) is True
        compiles = codegen.COMPILE_STATS["compiles"]
        session.run(program, ())
        assert codegen.COMPILE_STATS["compiles"] == compiles  # reused


class TestFallback:
    """Tracing, fault injection and limits push runs off the kernel."""

    def _prepared(self, random_state, engine="compiled"):
        program = build_program(64, 8, 5)
        assembled = program.assemble()
        proc = SIMDProcessor(elen=64, elenum=5, engine=engine)
        proc.load_program(assembled)
        layout.load_states_regfile64(proc.vector.regfile, [random_state])
        return proc, assembled

    def test_traced_run_matches_fused_records(self, random_states):
        program = build_program(64, 8, 5)
        states = random_states(1)
        compiled = Session(engine="compiled").run(program, states,
                                                  trace=True)
        fused = Session(engine="fused").run(program, states, trace=True)
        assert compiled.stats.records  # the fallback actually recorded
        assert len(compiled.stats.records) == len(fused.stats.records)
        for ra, rb in zip(compiled.stats.records, fused.stats.records):
            assert (ra.pc, ra.word, ra.mnemonic, ra.cycles) == \
                   (rb.pc, rb.word, rb.mnemonic, rb.cycles)

    def test_armed_injector_fires_at_exact_pc(self, random_state):
        proc, assembled = self._prepared(random_state)
        proc.run()  # warm: the kernel is compiled and would be used
        proc.reset()
        layout.load_states_regfile64(proc.vector.regfile, [random_state])
        pc = assembled.symbols["round_body"] + 8
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("raise", pc=pc, occurrence=5))
            assert proc.instrumented == 1
            with pytest.raises(InjectedFaultError) as excinfo:
                proc.run()
            assert injector.fired
        assert proc.instrumented == 0
        assert excinfo.value.pc == pc

    def test_vreg_flip_corrupts_identically_to_stepped(self, random_state):
        # The compiled-engine session must fall back and apply the
        # fault at the same (pc, register, lane/bit) as the stepped
        # reference — identical corrupted output states.
        program = build_program(64, 8, 5)
        assembled = program.assemble()
        spec = FaultSpec("vreg-flip", pc=assembled.symbols["round_body"],
                         occurrence=7, reg=3, bit=17)
        outputs = []
        for kwargs in (dict(engine="compiled"),
                       dict(predecode=False, engine="stepped")):
            proc = SIMDProcessor(elen=64, elenum=5, **kwargs)
            proc.load_program(assembled)
            layout.load_states_regfile64(proc.vector.regfile,
                                         [random_state])
            with FaultInjector(proc) as injector:
                injector.arm(spec)
                proc.run()
                assert injector.fired
            outputs.append(
                (layout.read_states_regfile64(proc.vector.regfile, 1),
                 proc.stats.cycles, proc.stats.instructions)
            )
        assert outputs[0] == outputs[1]
        # And the corruption is real: the digest differs from fault-free.
        clean = keccak_f1600(random_state)
        assert outputs[0][0][0] != clean

    def test_disarmed_processor_compiles_again(self, random_state):
        proc, assembled = self._prepared(random_state)
        with FaultInjector(proc) as injector:
            injector.arm(FaultSpec("raise", pc=assembled.base_address,
                                   occurrence=10**9))
        # After disarm the armed-entry wrappers are gone; the next run
        # is eligible for the kernel again and must still be exact.
        proc.reset()
        layout.load_states_regfile64(proc.vector.regfile, [random_state])
        proc.run()
        out = layout.read_states_regfile64(proc.vector.regfile, 1)[0]
        assert out == keccak_f1600(random_state)

    def test_instruction_limit_fires_at_reference_point(self, random_state):
        results = []
        for engine in ("compiled", "fused"):
            proc, _ = self._prepared(random_state, engine=engine)
            with pytest.raises(ExecutionLimitExceeded):
                proc.run(max_instructions=500)
            results.append((proc.stats.instructions, proc.stats.cycles,
                            proc.scalar.pc))
        assert results[0] == results[1]

    def test_generous_limit_still_uses_kernel(self, random_state):
        proc, _ = self._prepared(random_state)
        before = codegen.COMPILE_STATS["compiles"]
        proc.run(max_instructions=10_000_000)
        assert codegen.COMPILE_STATS["compiles"] == before + 1
        out = layout.read_states_regfile64(proc.vector.regfile, 1)[0]
        assert out == keccak_f1600(random_state)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Session(engine="warp-drive")
        with pytest.raises(ValueError, match="unknown engine"):
            SIMDProcessor(engine="turbo")
        program = build_program(64, 8, 5)
        with pytest.raises(ValueError, match="unknown engine"):
            Session().run(program, (), engine="nope")

    def test_per_run_engine_overrides_session_default(self, random_states):
        program = build_program(64, 8, 5)
        states = random_states(1)
        session = Session(engine="fused")
        before = codegen.COMPILE_STATS["compiles"]
        session.run(program, states)
        assert codegen.COMPILE_STATS["compiles"] == before  # fused run
        session.run(program, states, engine="compiled")
        assert codegen.COMPILE_STATS["compiles"] == before + 1

    def test_auto_prefers_compiled(self, random_states):
        program = build_program(64, 8, 5)
        before = codegen.COMPILE_STATS["compiles"]
        Session(engine="auto").run(program, random_states(1))
        assert codegen.COMPILE_STATS["compiles"] == before + 1

    def test_stepped_engine_skips_predecode_dispatch(self, random_states):
        program = build_program(64, 8, 5)
        states = random_states(1)
        stepped = Session(engine="stepped").run(program, states)
        fused = Session(engine="fused").run(program, states)
        assert stepped.states == fused.states
        _assert_stats_identical(stepped.stats, fused.stats)
