"""Tests for the top-level SIMD processor (fetch/decode/dispatch loop)."""

import pytest

from repro.assembler import assemble
from repro.sim import (
    DEFAULT_CYCLE_MODEL,
    CycleModel,
    ExecutionLimitExceeded,
    IllegalInstructionError,
    ProcessorHalted,
    SIMDProcessor,
)


def run_source(source, proc=None, **kwargs):
    proc = proc or SIMDProcessor(**kwargs)
    proc.load_program(assemble(source))
    stats = proc.run()
    return proc, stats


class TestBasicExecution:
    def test_simple_program(self):
        proc, stats = run_source("""
            li t0, 5
            li t1, 7
            add t2, t0, t1
            ecall
        """)
        assert proc.read_scalar("t2") == 12
        assert proc.halted
        assert stats.instructions == 4

    def test_loop(self):
        proc, _ = run_source("""
            li t0, 0
            li t1, 10
        loop:
            addi t0, t0, 1
            blt t0, t1, loop
            ecall
        """)
        assert proc.read_scalar("t0") == 10

    def test_memory_program(self):
        proc, _ = run_source("""
            li t0, 0x100
            li t1, 42
            sw t1, 0(t0)
            lw t2, 4(t0)
            lw t3, 0(t0)
            ecall
        """)
        assert proc.read_scalar("t3") == 42
        assert proc.read_scalar("t2") == 0

    def test_function_call_and_return(self):
        proc, _ = run_source("""
            li a0, 3
            call double
            mv s0, a0
            ecall
        double:
            add a0, a0, a0
            ret
        """)
        assert proc.read_scalar("s0") == 6

    def test_fetch_outside_program(self):
        proc = SIMDProcessor()
        proc.load_program(assemble("nop"))  # runs off the end
        with pytest.raises(IllegalInstructionError, match="fetch"):
            proc.run()

    def test_instruction_limit(self):
        proc = SIMDProcessor()
        proc.load_program(assemble("spin:\nj spin"))
        with pytest.raises(ExecutionLimitExceeded):
            proc.run(max_instructions=100)

    def test_cycle_limit(self):
        proc = SIMDProcessor()
        proc.load_program(assemble("spin:\nj spin"))
        with pytest.raises(ExecutionLimitExceeded):
            proc.run(max_cycles=50)

    def test_step_after_halt_rejected(self):
        proc, _ = run_source("ecall")
        with pytest.raises(ProcessorHalted):
            proc.step()

    def test_symbol_lookup(self):
        proc = SIMDProcessor()
        proc.load_program(assemble("nop\nhere:\necall"))
        assert proc.symbol("here") == 4

    def test_symbol_without_program(self):
        with pytest.raises(ValueError):
            SIMDProcessor().symbol("x")


class TestVsetvli:
    def test_sets_vl_from_register(self):
        proc, _ = run_source("""
            li s1, 5
            vsetvli t0, s1, e64, m1, tu, mu
            ecall
        """, elen=64, elenum=16)
        assert proc.read_scalar("t0") == 5
        assert proc.vector.vl == 5
        assert proc.vector.sew == 64
        assert proc.vector.lmul == 1

    def test_vl_clamped_to_vlmax(self):
        proc, _ = run_source("""
            li s1, 99
            vsetvli t0, s1, e64, m1, tu, mu
            ecall
        """, elen=64, elenum=16)
        assert proc.read_scalar("t0") == 16

    def test_rs1_x0_rd_nonzero_requests_vlmax(self):
        proc, _ = run_source("""
            vsetvli t0, x0, e64, m8, tu, mu
            ecall
        """, elen=64, elenum=16)
        assert proc.read_scalar("t0") == 128

    def test_rs1_x0_rd_x0_keeps_vl(self):
        proc, _ = run_source("""
            li s1, 5
            vsetvli x0, s1, e64, m1, tu, mu
            vsetvli x0, x0, e64, m8, tu, mu
            ecall
        """, elen=64, elenum=16)
        assert proc.vector.vl == 5
        assert proc.vector.lmul == 8

    def test_vsetvli_costs_2_cycles(self):
        proc = SIMDProcessor(elen=64, elenum=16)
        proc.load_program(assemble("vsetvli x0, x0, e64, m1, tu, mu\necall"))
        cycles = proc.step()
        assert cycles == 2


class TestVectorDispatch:
    def test_vector_program_end_to_end(self):
        proc, _ = run_source("""
            li s1, 4
            vsetvli x0, s1, e64, m1, tu, mu
            li a0, 0x100
            li a1, 0x200
            vle64.v v1, (a0)
            vxor.vv v2, v1, v1
            vse64.v v2, (a1)
            ecall
        """, elen=64, elenum=4)
        assert proc.memory.load_bytes(0x200, 32) == b"\x00" * 32

    def test_scalar_value_feeds_vector_unit(self):
        proc = SIMDProcessor(elen=64, elenum=5)
        proc.load_program(assemble("""
            li s1, 5
            vsetvli x0, s1, e64, m1, tu, mu
            li s2, -1
            vxor.vx v2, v1, s2
            ecall
        """))
        proc.run()
        assert proc.vector.regfile.read_elements(2, 64) == \
            [(1 << 64) - 1] * 5


class TestStatistics:
    def test_mnemonic_histogram(self):
        _, stats = run_source("""
            li t0, 1
            li t1, 2
            add t2, t0, t1
            ecall
        """)
        assert stats.mnemonic_counts["addi"] == 2
        assert stats.mnemonic_counts["add"] == 1
        assert stats.mnemonic_counts["ecall"] == 1

    def test_cycle_accounting(self):
        _, stats = run_source("""
            li t0, 0x100
            lw t1, 0(t0)
            ecall
        """)
        # addi(1) + lw(2) + ecall(1)
        assert stats.cycles == 4

    def test_trace_records(self):
        proc = SIMDProcessor(trace=True)
        proc.load_program(assemble("nop\nnop\necall"))
        stats = proc.run()
        assert len(stats.records) == 3
        assert [r.pc for r in stats.records] == [0, 4, 8]

    def test_pc_range_queries(self):
        proc = SIMDProcessor(trace=True)
        proc.load_program(assemble("nop\nnop\nnop\necall"))
        stats = proc.run()
        assert stats.cycles_in_pc_range(4, 12) == 2
        assert stats.instructions_in_pc_range(0, 8) == 2

    def test_pc_range_requires_trace(self):
        proc = SIMDProcessor(trace=False)
        proc.load_program(assemble("ecall"))
        stats = proc.run()
        with pytest.raises(ValueError, match="trace"):
            stats.cycles_in_pc_range(0, 4)

    def test_reset_stats(self):
        proc, stats = run_source("nop\necall")
        assert stats.instructions == 2
        proc.reset_stats()
        assert proc.stats.instructions == 0

    def test_summary_renders(self):
        _, stats = run_source("nop\necall")
        text = stats.summary()
        assert "instructions retired: 2" in text
        assert "addi" in text


class TestConfiguration:
    def test_elen_validation(self):
        with pytest.raises(ValueError):
            SIMDProcessor(elen=16)

    def test_elenum_validation(self):
        with pytest.raises(ValueError):
            SIMDProcessor(elenum=0)

    def test_vlen_derived(self):
        proc = SIMDProcessor(elen=64, elenum=30)
        assert proc.vlen_bits == 1920

    def test_custom_cycle_model(self):
        model = CycleModel(scalar_alu=5)
        proc = SIMDProcessor(cycle_model=model)
        proc.load_program(assemble("nop\necall"))
        assert proc.step() == 5

    def test_default_cycle_model_values(self):
        assert DEFAULT_CYCLE_MODEL.vsetvli == 2
        assert DEFAULT_CYCLE_MODEL.vector_dispatch == 1
        assert DEFAULT_CYCLE_MODEL.vpi_extra == 1
        assert DEFAULT_CYCLE_MODEL.branch_taken == 3


class TestReservedVtype:
    def test_reserved_vtype_is_illegal_instruction(self):
        """Regression: a reserved vtype encoding (e.g. fractional LMUL)
        must fault as an illegal instruction, not leak a ValueError —
        found by the fault-injection campaign."""
        from repro.isa import ISA, encode_instruction

        proc = SIMDProcessor(elen=64, elenum=5)
        spec = ISA.lookup("vsetvli")
        word = encode_instruction(spec, {"rd": 0, "rs1": 9,
                                         "vtype": 0b111})  # vlmul=7
        program = assemble("nop")
        program.instructions[0].word = word
        proc.load_program(program)
        with pytest.raises(IllegalInstructionError, match="vtype"):
            proc.step()
