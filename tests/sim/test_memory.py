"""Tests for the data memory."""

import pytest

from repro.sim import DataMemory, MemoryAccessError


class TestTypedAccess:
    def test_store_load_widths(self):
        mem = DataMemory(1024)
        mem.store(0, 8, 0xAB)
        mem.store(2, 16, 0xCDEF)
        mem.store(4, 32, 0x01234567)
        mem.store(8, 64, 0x0123456789ABCDEF)
        assert mem.load(0, 8) == 0xAB
        assert mem.load(2, 16) == 0xCDEF
        assert mem.load(4, 32) == 0x01234567
        assert mem.load(8, 64) == 0x0123456789ABCDEF

    def test_little_endian_layout(self):
        mem = DataMemory(16)
        mem.store(0, 32, 0x01020304)
        assert mem.load(0, 8) == 0x04
        assert mem.load(3, 8) == 0x01

    def test_signed_load(self):
        mem = DataMemory(16)
        mem.store(0, 8, 0xFF)
        assert mem.load(0, 8, signed=True) == -1
        assert mem.load(0, 8, signed=False) == 255
        mem.store(4, 16, 0x8000)
        assert mem.load(4, 16, signed=True) == -32768

    def test_store_truncates_to_width(self):
        mem = DataMemory(16)
        mem.store(0, 8, 0x1FF)
        assert mem.load(0, 8) == 0xFF
        assert mem.load(1, 8) == 0

    def test_unsupported_width(self):
        mem = DataMemory(16)
        with pytest.raises(ValueError):
            mem.load(0, 24)
        with pytest.raises(ValueError):
            mem.store(0, 48, 0)


class TestBounds:
    def test_out_of_range_load(self):
        mem = DataMemory(16)
        with pytest.raises(MemoryAccessError):
            mem.load(16, 8)
        with pytest.raises(MemoryAccessError):
            mem.load(13, 32)

    def test_negative_address(self):
        with pytest.raises(MemoryAccessError):
            DataMemory(16).load(-1, 8)

    def test_boundary_access_ok(self):
        mem = DataMemory(16)
        mem.store(8, 64, 0)  # last valid 8-byte slot
        assert mem.load(8, 64) == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DataMemory(0)


class TestBulkAccess:
    def test_bytes_round_trip(self):
        mem = DataMemory(64)
        mem.store_bytes(10, b"hello")
        assert mem.load_bytes(10, 5) == b"hello"

    def test_bulk_bounds(self):
        mem = DataMemory(16)
        with pytest.raises(MemoryAccessError):
            mem.store_bytes(12, b"too long!")

    def test_clear(self):
        mem = DataMemory(16)
        mem.store(0, 32, 0xFFFFFFFF)
        mem.clear()
        assert mem.load(0, 32) == 0
        assert mem.size == 16
