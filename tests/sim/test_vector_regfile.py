"""Tests for the vector register file (paper Fig. 4)."""

import pytest

from repro.sim import NUM_VECTOR_REGISTERS, VectorRegfile
from repro.sim.exceptions import IllegalInstructionError


@pytest.fixture
def regfile():
    return VectorRegfile(vlen_bits=320)  # EleNum=5 at SEW=64


class TestElementAccess:
    def test_round_trip(self, regfile):
        regfile.set_element(3, 2, 64, 0xDEADBEEFCAFEBABE)
        assert regfile.get_element(3, 2, 64) == 0xDEADBEEFCAFEBABE

    def test_elements_per_register(self, regfile):
        assert regfile.elements_per_register(64) == 5
        assert regfile.elements_per_register(32) == 10

    def test_sew_must_divide_vlen(self, regfile):
        with pytest.raises(IllegalInstructionError):
            regfile.elements_per_register(48)

    def test_element_independence(self, regfile):
        regfile.set_element(0, 0, 64, 0xAAAA)
        regfile.set_element(0, 1, 64, 0xBBBB)
        assert regfile.get_element(0, 0, 64) == 0xAAAA
        assert regfile.get_element(0, 1, 64) == 0xBBBB

    def test_value_truncated_to_sew(self, regfile):
        regfile.set_element(0, 0, 32, 0x1FFFFFFFF)
        assert regfile.get_element(0, 0, 32) == 0xFFFFFFFF
        assert regfile.get_element(0, 1, 32) == 0

    def test_index_bounds(self, regfile):
        with pytest.raises(IllegalInstructionError):
            regfile.get_element(0, 5, 64)
        with pytest.raises(IllegalInstructionError):
            regfile.set_element(0, -1, 64, 0)

    def test_register_bounds(self, regfile):
        with pytest.raises(IllegalInstructionError):
            regfile.get_element(32, 0, 64)


class TestSewReinterpretation:
    """The same bits viewed at 32-bit and 64-bit granularity (hi/lo split)."""

    def test_64_bit_element_is_two_32_bit_elements(self, regfile):
        regfile.set_element(1, 0, 64, 0x0123456789ABCDEF)
        assert regfile.get_element(1, 0, 32) == 0x89ABCDEF  # low half first
        assert regfile.get_element(1, 1, 32) == 0x01234567

    def test_32_bit_writes_compose_64_bit_element(self, regfile):
        regfile.set_element(2, 0, 32, 0xCDEF)
        regfile.set_element(2, 1, 32, 0xAB)
        assert regfile.get_element(2, 0, 64) == 0xAB_0000CDEF


class TestGroupAccess:
    def test_group_element_spans_registers(self, regfile):
        # Element 7 of the group at base 8 lives in register 9, slot 2.
        regfile.set_group_element(8, 7, 64, 0x77)
        assert regfile.get_element(9, 2, 64) == 0x77
        assert regfile.get_group_element(8, 7, 64) == 0x77

    def test_group_wraps_at_register_boundary(self, regfile):
        regfile.set_group_element(0, 4, 64, 1)
        regfile.set_group_element(0, 5, 64, 2)
        assert regfile.get_element(0, 4, 64) == 1
        assert regfile.get_element(1, 0, 64) == 2


class TestBulkAccess:
    def test_read_write_elements(self, regfile):
        values = [10, 20, 30, 40, 50]
        regfile.write_elements(4, 64, values)
        assert regfile.read_elements(4, 64) == values

    def test_write_elements_length_checked(self, regfile):
        with pytest.raises(ValueError):
            regfile.write_elements(0, 64, [1, 2, 3])

    def test_raw_round_trip(self, regfile):
        regfile.write_raw(7, (1 << 320) - 1)
        assert regfile.read_raw(7) == (1 << 320) - 1

    def test_raw_write_masks_to_vlen(self, regfile):
        regfile.write_raw(7, 1 << 320)
        assert regfile.read_raw(7) == 0

    def test_clear(self, regfile):
        regfile.write_raw(5, 123)
        regfile.clear()
        assert all(regfile.read_raw(r) == 0
                   for r in range(NUM_VECTOR_REGISTERS))


class TestMaskBits:
    def test_mask_bit_reads_v0(self, regfile):
        regfile.write_raw(0, 0b1011)
        assert regfile.mask_bit(0) == 1
        assert regfile.mask_bit(1) == 1
        assert regfile.mask_bit(2) == 0
        assert regfile.mask_bit(3) == 1


class TestConstruction:
    def test_vlen_validation(self):
        with pytest.raises(ValueError):
            VectorRegfile(4)

    def test_non_power_of_two_vlen_supported(self):
        # The paper's EleNum=5/15/30 give non-power-of-2 VLEN; the
        # simulator deliberately allows this (documented deviation).
        regfile = VectorRegfile(1920)  # EleNum=30 at SEW=64
        assert regfile.elements_per_register(64) == 30
