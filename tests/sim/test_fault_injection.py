"""Fault-injection campaign: single-bit flips in the Keccak program.

For each injected fault (one flipped bit in one instruction word of the
round body), the run must end in one of three observable outcomes:

* ``illegal`` — the corrupted word no longer decodes (or decodes to an
  instruction that is illegal in the configuration);
* ``wrong`` — the program completes but the permuted state differs from
  the reference (the corruption is caught by verification);
* ``benign`` — the output is still correct (the flip hit a bit that does
  not affect this program's semantics, e.g. turning an unmasked op into a
  masked one with an all-ones mask).

What must NEVER happen is a fourth category: a crash of the *simulator
itself* (Python-level error other than the defined simulation errors).
"""

import random

import pytest

from repro.assembler.program import AssembledInstruction, Program
from repro.keccak import KeccakState, keccak_f1600
from repro.programs import keccak64_lmul8, layout
from repro.programs.runner import make_processor
from repro.sim.exceptions import SimulationError


def classify(program_words, flip_index, flip_bit, state):
    """Run the program with one bit flipped; classify the outcome."""
    base = keccak64_lmul8.build(5)
    assembled = base.assemble()
    mutated = Program(
        base_address=assembled.base_address,
        symbols=dict(assembled.symbols),
        instructions=[
            AssembledInstruction(
                inst.address,
                inst.word ^ ((1 << flip_bit) if i == flip_index else 0),
                inst.mnemonic, inst.source_line, inst.source_text,
            )
            for i, inst in enumerate(assembled.instructions)
        ],
    )
    processor = make_processor(base, trace=False)
    processor.load_program(mutated)
    layout.load_states_regfile64(processor.vector.regfile, [state])
    try:
        processor.run(max_instructions=100_000)
    except SimulationError:
        return "illegal"
    out = layout.read_states_regfile64(processor.vector.regfile, 1)[0]
    return "benign" if out == keccak_f1600(state) else "wrong"


@pytest.fixture(scope="module")
def campaign_results():
    rng = random.Random(1234)
    state = KeccakState([rng.getrandbits(64) for _ in range(25)])
    assembled = keccak64_lmul8.build(5).assemble()
    body_start = assembled.symbols["round_body"]
    body_end = assembled.symbols["round_end"]
    body_indices = [i for i, inst in enumerate(assembled.instructions)
                    if body_start <= inst.address < body_end]
    results = {}
    # Exhaustive over the round body's instructions, sampled over bits.
    for index in body_indices:
        for bit in rng.sample(range(32), 8):
            results[(index, bit)] = classify(None, index, bit, state)
    return results


class TestFaultInjection:
    def test_no_simulator_crashes(self, campaign_results):
        """Every outcome is one of the three defined categories (the
        classify helper would have raised otherwise)."""
        assert set(campaign_results.values()) <= \
            {"illegal", "wrong", "benign"}

    def test_most_faults_are_detected_or_corrupting(self, campaign_results):
        outcomes = list(campaign_results.values())
        harmful = sum(1 for o in outcomes if o != "benign")
        assert harmful / len(outcomes) > 0.7

    def test_some_faults_decode_illegal(self, campaign_results):
        assert "illegal" in campaign_results.values()

    def test_some_faults_corrupt_silently_at_isa_level(self, campaign_results):
        """Some flips stay decodable but corrupt the state — exactly why
        the harness verifies every run against the reference."""
        assert "wrong" in campaign_results.values()

    def test_opcode_bit_flips_usually_illegal_or_wrong(self):
        rng = random.Random(7)
        state = KeccakState([rng.getrandbits(64) for _ in range(25)])
        outcomes = [classify(None, 10, bit, state) for bit in range(7)]
        assert all(o in ("illegal", "wrong", "benign") for o in outcomes)
        assert outcomes.count("benign") <= 2
