"""Differential tests: predecoded execution vs the naive per-step decoder.

The predecode engine must be an optimization only — every observable of a
run (permuted states, retired instruction count, total cycles, and the
per-record trace) must be bit-identical to the seed's decode-every-step
interpreter.  This is checked across all five generated program variants,
the scalar baseline, and both trace modes, plus the paper's headline
cycle counts as absolute pins.
"""

import pytest

from repro.keccak import KeccakState, keccak_f1600
from repro.programs import (
    build_program,
    keccak32_lmul8,
    keccak64_fused,
    keccak64_lmul1,
    keccak64_lmul41,
    keccak64_lmul8,
    scalar_keccak,
)
from repro.programs.runner import run_keccak_program
from repro.programs.session import Session, run
from repro.sim.predecode import predecode
from repro.sim.processor import SIMDProcessor

VARIANTS = [
    ("lmul1", keccak64_lmul1),
    ("lmul8", keccak64_lmul8),
    ("lmul41", keccak64_lmul41),
    ("fused", keccak64_fused),
    ("32bit", keccak32_lmul8),
]


def _states(count, seed=0xC0FFEE):
    import random

    rng = random.Random(seed)
    return [KeccakState([rng.getrandbits(64) for _ in range(25)])
            for _ in range(count)]


def _run_pair(program, states, trace):
    """Run once predecoded and once with the naive decoder."""
    fast = SIMDProcessor(elen=program.elen, elenum=program.elenum,
                         trace=trace)
    slow = SIMDProcessor(elen=program.elen, elenum=program.elenum,
                         trace=trace, predecode=False)
    return (run_keccak_program(program, states, processor=fast),
            run_keccak_program(program, states, processor=slow))


class TestDifferential:
    @pytest.mark.parametrize("trace", [True, False],
                             ids=["traced", "untraced"])
    @pytest.mark.parametrize("name,module", VARIANTS)
    def test_variants_bit_identical(self, name, module, trace):
        program = module.build(5)
        states = _states(1)
        fast, slow = _run_pair(program, states, trace)
        assert fast.states == slow.states
        assert fast.states == [keccak_f1600(s) for s in states]
        assert fast.stats.instructions == slow.stats.instructions
        assert fast.stats.cycles == slow.stats.cycles
        assert fast.permutation_cycles == slow.permutation_cycles
        assert fast.cycles_per_round == slow.cycles_per_round
        if trace:
            assert len(fast.stats.records) == len(slow.stats.records)
            for a, b in zip(fast.stats.records, slow.stats.records):
                assert (a.pc, a.word, a.mnemonic, a.cycles) == \
                       (b.pc, b.word, b.mnemonic, b.cycles)

    @pytest.mark.parametrize("trace", [True, False],
                             ids=["traced", "untraced"])
    def test_scalar_program_bit_identical(self, trace):
        program = scalar_keccak.build()
        state = _states(1)[0]
        results = []
        for use_predecode in (True, False):
            proc = SIMDProcessor(elen=32, elenum=5, trace=trace,
                                 predecode=use_predecode)
            proc.load_program(program.assemble())
            scalar_keccak.setup_data(proc.memory, state)
            stats = proc.run()
            results.append((scalar_keccak.read_state(proc.memory),
                            stats.instructions, stats.cycles))
        assert results[0] == results[1]
        assert results[0][0] == keccak_f1600(state)


class TestSuperblocks:
    """Fused-superblock execution vs per-instruction predecoded execution.

    Superblock fusion batches the cycle/instruction accounting per
    straight-line block; every observable — states, totals, per-mnemonic
    counts and cycles, and the full trace — must stay bit-identical to
    stepping the same predecoded entries one at a time.
    """

    @pytest.mark.parametrize("trace", [True, False],
                             ids=["traced", "untraced"])
    @pytest.mark.parametrize("name,module", VARIANTS)
    def test_fused_vs_per_instruction(self, name, module, trace):
        program = module.build(5)
        states = _states(1)
        fused = SIMDProcessor(elen=program.elen, elenum=program.elenum,
                              trace=trace)
        stepped = SIMDProcessor(elen=program.elen, elenum=program.elenum,
                                trace=trace, fuse=False)
        a = run_keccak_program(program, states, processor=fused)
        b = run_keccak_program(program, states, processor=stepped)
        assert a.states == b.states
        assert a.states == [keccak_f1600(s) for s in states]
        assert a.stats.instructions == b.stats.instructions
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.mnemonic_counts == b.stats.mnemonic_counts
        assert a.stats.mnemonic_cycles == b.stats.mnemonic_cycles
        if trace:
            assert len(a.stats.records) == len(b.stats.records)
            for ra, rb in zip(a.stats.records, b.stats.records):
                assert (ra.pc, ra.word, ra.mnemonic, ra.cycles) == \
                       (rb.pc, rb.word, rb.mnemonic, rb.cycles)

    def test_superblocks_built_lazily_and_cached(self):
        program = keccak64_lmul8.build(5)
        assembled = program.assemble()
        # Pin the fused engine: under "auto" the compiled kernel would
        # run instead and superblocks would (correctly) never be built.
        proc = SIMDProcessor(elen=64, elenum=5, trace=False,
                             engine="fused")
        proc.load_program(assembled)
        pre = proc._predecoded
        assert pre.superblocks is None  # not built until the first run
        proc.run()
        blocks = pre.superblocks
        assert blocks is not None
        proc.reset()
        proc.load_program(assembled)
        proc.run()
        assert proc._predecoded.superblocks is blocks  # reused, not rebuilt

    def test_mutated_word_drops_superblocks(self):
        # The word-snapshot cache check must invalidate fused blocks too:
        # a re-decode produces a fresh PredecodedProgram with no blocks.
        program = keccak64_lmul8.build(5)
        assembled = program.assemble()
        proc = SIMDProcessor(elen=64, elenum=5, trace=False,
                             engine="fused")
        proc.load_program(assembled)
        proc.run()
        old = proc._predecoded
        assert old.superblocks is not None
        original = assembled.instructions[10].word
        assembled.instructions[10].word = original ^ 1
        try:
            proc.reset()
            proc.load_program(assembled)
            assert proc._predecoded is not old
            assert proc._predecoded.superblocks is None
        finally:
            assembled.instructions[10].word = original

    def test_max_instructions_limit_identical(self):
        # The limit must fire at the exact same instruction whether or
        # not blocks are fused (the fused loop falls back to stepping
        # when a block could overrun the limit).
        from repro.sim.exceptions import ExecutionLimitExceeded

        program = keccak64_lmul8.build(5)
        assembled = program.assemble()
        results = []
        for fuse in (True, False):
            proc = SIMDProcessor(elen=64, elenum=5, trace=False, fuse=fuse)
            proc.load_program(assembled)
            with pytest.raises(ExecutionLimitExceeded):
                proc.run(max_instructions=500)
            results.append((proc.stats.instructions, proc.stats.cycles,
                            proc.scalar.pc))
        assert results[0] == results[1]


class TestSessionReuseIsolation:
    """Two back-to-back runs on one Session == two fresh processors.

    The worker pool keeps one warm Session per process, so the in-place
    reset must leave *no* residue between runs — same states, same
    cycles, bit for bit.
    """

    @pytest.mark.parametrize("name,module", VARIANTS)
    def test_back_to_back_runs_match_fresh(self, name, module):
        program = module.build(5)
        first_states = _states(1, seed=0xAAAA)
        second_states = _states(1, seed=0xBBBB)
        session = Session()
        warm1 = session.run(program, first_states)
        warm2 = session.run(program, second_states)
        fresh1 = run_keccak_program(
            program, first_states,
            processor=SIMDProcessor(elen=program.elen,
                                    elenum=program.elenum, trace=False))
        fresh2 = run_keccak_program(
            program, second_states,
            processor=SIMDProcessor(elen=program.elen,
                                    elenum=program.elenum, trace=False))
        assert warm1.states == fresh1.states
        assert warm2.states == fresh2.states
        assert warm1.stats.cycles == fresh1.stats.cycles
        assert warm2.stats.cycles == fresh2.stats.cycles
        assert warm1.stats.instructions == fresh1.stats.instructions
        assert warm2.stats.instructions == fresh2.stats.instructions


class TestCyclePins:
    """The paper's Table 7/8 numbers must survive the predecode engine."""

    @pytest.mark.parametrize("elen,lmul,cycles,per_round", [
        (64, 1, 2564, 103),
        (64, 8, 1892, 75),
        (32, 8, 3620, 147),
    ])
    def test_permutation_cycles(self, elen, lmul, cycles, per_round):
        result = run(build_program(elen, lmul, 5), _states(1), trace=True)
        assert result.permutation_cycles == cycles
        assert result.cycles_per_round == pytest.approx(per_round)


class TestPredecodeCache:
    def test_reload_same_program_reuses_predecode(self):
        program = keccak64_lmul8.build(5)
        assembled = program.assemble()
        proc = SIMDProcessor(elen=64, elenum=5, trace=False)
        proc.load_program(assembled)
        first = proc._predecoded
        assert first is not None
        proc.load_program(assembled)
        assert proc._predecoded is first

    def test_mutated_word_invalidates_cache(self):
        program = keccak64_lmul8.build(5)
        assembled = program.assemble()
        proc = SIMDProcessor(elen=64, elenum=5, trace=False)
        proc.load_program(assembled)
        first = proc._predecoded
        original = assembled.instructions[10].word
        assembled.instructions[10].word = original ^ 1
        try:
            proc.load_program(assembled)
            assert proc._predecoded is not first
        finally:
            assembled.instructions[10].word = original

    def test_predecode_defers_illegal_words(self):
        # An undecodable word must not fault at predecode time, only when
        # (and if) the pc reaches it — matching the per-step decoder.
        program = keccak64_lmul8.build(5)
        assembled = program.assemble()
        proc = SIMDProcessor(elen=64, elenum=5, trace=False)
        pre = predecode(proc, assembled)
        assert all(e.execute is not None for e in pre.entries)


class TestSessionEquivalence:
    def test_session_matches_fresh_processor(self):
        program = build_program(64, 8, 30)
        states = _states(6)
        session = Session()
        warm = None
        for _ in range(3):  # repeated runs must not drift
            result = session.run(program, states, trace=True)
            if warm is None:
                warm = result
            assert result.states == warm.states
            assert result.permutation_cycles == warm.permutation_cycles
        fresh = run_keccak_program(program, states)
        assert warm.states == fresh.states
        assert warm.permutation_cycles == fresh.permutation_cycles
        assert warm.stats.cycles == fresh.stats.cycles

    def test_session_trace_toggle(self):
        program = build_program(64, 8, 5)
        session = Session()
        traced = session.run(program, _states(1), trace=True)
        untraced = session.run(program, _states(1), trace=False)
        assert traced.stats.records is not None
        assert untraced.stats.records is None
        assert traced.stats.cycles == untraced.stats.cycles
        assert traced.states == untraced.states
