"""The shared LRU and the memo tables it bounds.

Satellite requirement: the per-processor predecode cache and the
per-instruction geometry-specializer memo must be bounded, and eviction
must never change results — an evicted entry is rebuilt on demand, so
residency is purely a performance property.
"""

import pytest

from repro.isa import ISA, encode_vtype
from repro.keccak.permutation import keccak_p1600
from repro.programs import keccak64_lmul8, layout
from repro.sim import SIMDProcessor
from repro.sim.lru import LRU
from repro.sim.processor import _PREDECODE_CACHE_SIZE


class TestLRU:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRU(0)

    def test_evicts_least_recently_used(self):
        lru = LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)  # evicts "a"
        assert "a" not in lru
        assert lru.get("b") == 2 and lru.get("c") == 3
        assert len(lru) == 2

    def test_get_refreshes_recency(self):
        lru = LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")     # "b" is now the LRU entry
        lru.put("c", 3)  # evicts "b", not "a"
        assert "a" in lru and "b" not in lru and "c" in lru

    def test_put_existing_key_replaces_without_evicting(self):
        lru = LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)
        assert len(lru) == 2
        assert lru.get("a") == 10 and lru.get("b") == 2

    def test_get_miss_returns_default(self):
        lru = LRU(1)
        assert lru.get("missing") is None
        assert lru.get("missing", 42) == 42

    def test_pop_and_clear(self):
        lru = LRU(2)
        lru.put("a", 1)
        assert lru.pop("a") == 1
        assert lru.pop("a", "gone") == "gone"
        lru.put("b", 2)
        lru.clear()
        assert len(lru) == 0

    def test_concurrent_access_stays_consistent(self):
        # Regression (thread-safety satellite): get() is a pop +
        # re-insert and put() a check-then-delete; unlocked, two threads
        # interleaving them can drop entries, KeyError on the double
        # delete, or grow the table past capacity.  Hammer one small
        # cache from several threads and check every invariant held.
        import threading

        lru = LRU(8)
        errors = []
        barrier = threading.Barrier(4)

        def worker(worker_id):
            try:
                barrier.wait()
                for i in range(3000):
                    key = (worker_id * 7 + i) % 12  # keys overlap workers
                    lru.put(key, (key, worker_id))
                    got = lru.get(key)
                    # Another thread may have evicted or replaced the
                    # key, but a hit must return a value put for it.
                    if got is not None and got[0] != key:
                        errors.append(f"key {key} returned {got}")
                    lru.get((key + 5) % 12)
                    if i % 97 == 0:
                        lru.pop(key)
                    if len(lru) > lru.capacity:
                        errors.append(f"overflow: {len(lru)}")
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:5]
        assert len(lru) <= lru.capacity


class TestPredecodeCacheEviction:
    def test_eviction_preserves_correctness(self, random_state):
        # More distinct programs than the cache holds: the first is
        # evicted, re-loading it re-predecodes, and the run is still
        # bit-exact against the reference permutation.
        proc = SIMDProcessor(elen=64, elenum=5, engine="fused")
        programs = [
            keccak64_lmul8.build(5, num_rounds=r).assemble()
            for r in range(1, _PREDECODE_CACHE_SIZE + 3)
        ]
        for assembled in programs:
            proc.load_program(assembled)
        assert len(proc._predecode_cache) == _PREDECODE_CACHE_SIZE
        assert id(programs[0]) not in proc._predecode_cache

        proc.reset()
        proc.load_program(programs[0])  # evicted: re-predecodes
        layout.load_states_regfile64(proc.vector.regfile, [random_state])
        proc.run()
        out = layout.read_states_regfile64(proc.vector.regfile, 1)[0]
        assert out == keccak_p1600(random_state, 1)

    def test_cache_stays_bounded(self):
        proc = SIMDProcessor(elen=64, elenum=5)
        for r in range(1, 24):
            proc.load_program(keccak64_lmul8.build(5, num_rounds=r)
                              .assemble())
        assert len(proc._predecode_cache) <= _PREDECODE_CACHE_SIZE


class TestSpecializerMemoEviction:
    def test_eviction_preserves_correctness(self):
        # One predecoded vxor.vv executor driven through more distinct
        # geometries than its memo holds, twice over: every pass through
        # an evicted geometry rebuilds the fast executor, and results
        # must stay exact throughout.
        proc = SIMDProcessor(elen=64, elenum=8)  # VLEN = 512
        vector = proc.vector
        spec = ISA.lookup("vxor.vv")
        ops = {"vd": 2, "vs2": 1, "vs1": 0, "vm": 1}
        executor = vector.compile_executor(
            spec, ops, proc.scalar.read_register)

        full = (1 << 512) - 1
        pattern_a = 0x0123456789ABCDEF0123456789ABCDEF
        pattern_b = 0xFEDCBA9876543210FEDCBA9876543210

        geometries = [(64, avl) for avl in (1, 2, 3, 4, 5, 6)] + \
                     [(32, avl) for avl in (4, 8)]
        for _ in range(2):  # second sweep re-enters evicted geometries
            for sew, avl in geometries:
                vl = vector.configure(avl, encode_vtype(sew, 1))
                assert vl == avl
                regs = vector.regfile._regs
                regs[0] = (pattern_a * ((full // ((1 << 128) - 1)))) & full
                regs[1] = (pattern_b * ((full // ((1 << 128) - 1)))) & full
                regs[2] = full  # sentinel: untouched elements must survive
                executor()
                emask = (1 << sew) - 1
                for i in range(512 // sew):
                    expected = ((regs[0] >> (i * sew)) ^
                                (regs[1] >> (i * sew))) & emask \
                        if i < vl else emask
                    got = (regs[2] >> (i * sew)) & emask
                    assert got == expected, (sew, avl, i)
