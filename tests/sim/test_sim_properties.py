"""Property-based tests (hypothesis) for the simulator's vector unit.

The oracle for every property is either the NIST-checked reference step
mapping or a direct Python model of the element-wise semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembler import assemble
from repro.isa import ISA, decode_operands
from repro.isa.vector import encode_vtype
from repro.keccak import KeccakState, chi, keccak_round, pi, rho, theta
from repro.keccak.constants import rotl64
from repro.programs import layout
from repro.sim import DataMemory, VectorUnit

lane64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
lanes25 = st.lists(lane64, min_size=25, max_size=25)
elements5 = st.lists(lane64, min_size=5, max_size=5)


def make_unit(elen=64, elenum=5):
    unit = VectorUnit(elen * elenum, DataMemory(1 << 12))
    unit.configure(elenum, encode_vtype(elen, 1))
    return unit


def execute(unit, text, scalars=None):
    word = assemble(text).words[0]
    spec = ISA.find(word)
    ops = decode_operands(word, spec)
    values = scalars or {}
    return unit.execute(spec, ops, lambda n: values.get(n, 0))


@given(values=elements5,
       offset=st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_slide_down_then_up_is_identity(values, offset):
    unit = make_unit()
    unit.regfile.write_elements(5, 64, values)
    execute(unit, f"vslidedownm.vi v6, v5, {offset}")
    execute(unit, f"vslideupm.vi v7, v6, {offset}")
    assert unit.regfile.read_elements(7, 64) == values


@given(values=elements5,
       a=st.integers(min_value=0, max_value=4),
       b=st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_slides_compose_modulo_five(values, a, b):
    unit = make_unit()
    unit.regfile.write_elements(5, 64, values)
    execute(unit, f"vslidedownm.vi v6, v5, {a}")
    execute(unit, f"vslidedownm.vi v7, v6, {b}")
    execute(unit, f"vslidedownm.vi v8, v5, {(a + b) % 5}")
    assert unit.regfile.read_elements(7, 64) == \
        unit.regfile.read_elements(8, 64)


@given(values=elements5,
       amount=st.integers(min_value=0, max_value=31))
@settings(max_examples=40, deadline=None)
def test_vrotup_matches_rotl64(values, amount):
    unit = make_unit()
    unit.regfile.write_elements(5, 64, values)
    execute(unit, f"vrotup.vi v6, v5, {amount}")
    assert unit.regfile.read_elements(6, 64) == \
        [rotl64(v, amount) for v in values]


@given(lanes=lanes25)
@settings(max_examples=20, deadline=None)
def test_v64rho_vpi_match_reference_composition(lanes):
    state = KeccakState(lanes)
    unit = make_unit(elenum=5)
    layout.load_states_regfile64(unit.regfile, [state])
    unit.configure(25, encode_vtype(64, 8))
    execute(unit, "v64rho.vi v0, v0, -1")
    execute(unit, "vpi.vi v8, v0, -1")
    unit.configure(5, encode_vtype(64, 1))
    out = layout.read_states_regfile64(unit.regfile, 1, base_reg=8)[0]
    assert out == pi(rho(state))


@given(lanes=lanes25)
@settings(max_examples=20, deadline=None)
def test_fused_vrhopi_equals_separate_instructions(lanes):
    state = KeccakState(lanes)
    unit = make_unit(elenum=5)
    layout.load_states_regfile64(unit.regfile, [state])
    unit.configure(25, encode_vtype(64, 8))
    execute(unit, "vrhopi.vi v8, v0, -1")
    unit.configure(5, encode_vtype(64, 1))
    out = layout.read_states_regfile64(unit.regfile, 1, base_reg=8)[0]
    assert out == pi(rho(state))


@given(lanes=lanes25)
@settings(max_examples=20, deadline=None)
def test_vchi_matches_reference_chi(lanes):
    state = KeccakState(lanes)
    unit = make_unit(elenum=5)
    layout.load_states_regfile64(unit.regfile, [state])
    unit.configure(25, encode_vtype(64, 8))
    execute(unit, "vchi.vi v8, v0, 0")
    unit.configure(5, encode_vtype(64, 1))
    out = layout.read_states_regfile64(unit.regfile, 1, base_reg=8)[0]
    assert out == chi(state)


@given(lanes=lanes25, round_index=st.integers(min_value=0, max_value=23))
@settings(max_examples=10, deadline=None)
def test_single_round_sequence_matches_reference(lanes, round_index):
    """theta (via xors/slides/rot) + rho + pi + chi + iota, one round."""
    state = KeccakState(lanes)
    unit = make_unit(elenum=5)
    layout.load_states_regfile64(unit.regfile, [state])

    # theta, exactly as Algorithm 2.
    for line in (
        "vxor.vv v5, v3, v4", "vxor.vv v6, v1, v2", "vxor.vv v7, v0, v6",
        "vxor.vv v5, v5, v7", "vslideupm.vi v6, v5, 1",
        "vslidedownm.vi v7, v5, 1", "vrotup.vi v7, v7, 1",
        "vxor.vv v5, v6, v7", "vxor.vv v0, v0, v5", "vxor.vv v1, v1, v5",
        "vxor.vv v2, v2, v5", "vxor.vv v3, v3, v5", "vxor.vv v4, v4, v5",
    ):
        execute(unit, line)
    after_theta = layout.read_states_regfile64(unit.regfile, 1)[0]
    assert after_theta == theta(state)

    unit.configure(25, encode_vtype(64, 8))
    execute(unit, "v64rho.vi v0, v0, -1")
    execute(unit, "vpi.vi v8, v0, -1")
    execute(unit, "vchi.vi v0, v8, 0")
    unit.configure(5, encode_vtype(64, 1))
    execute(unit, "viota.vx v0, v0, s3", scalars={19: round_index})
    out = layout.read_states_regfile64(unit.regfile, 1)[0]
    assert out == keccak_round(state, round_index)


@given(a=elements5, b=elements5)
@settings(max_examples=40, deadline=None)
def test_vector_xor_is_involution(a, b):
    unit = make_unit()
    unit.regfile.write_elements(1, 64, a)
    unit.regfile.write_elements(2, 64, b)
    execute(unit, "vxor.vv v3, v1, v2")
    execute(unit, "vxor.vv v4, v3, v2")
    assert unit.regfile.read_elements(4, 64) == a


@given(values=elements5, mask=st.integers(min_value=0, max_value=31))
@settings(max_examples=40, deadline=None)
def test_masking_touches_exactly_the_masked_elements(values, mask):
    unit = make_unit()
    unit.regfile.write_raw(0, mask)
    unit.regfile.write_elements(1, 64, values)
    unit.regfile.write_elements(2, 64, [0xAA] * 5)
    unit.regfile.write_elements(3, 64, [7] * 5)
    execute(unit, "vxor.vv v3, v1, v2, v0.t")
    out = unit.regfile.read_elements(3, 64)
    for i in range(5):
        if (mask >> i) & 1:
            assert out[i] == values[i] ^ 0xAA
        else:
            assert out[i] == 7


@given(lanes=lanes25)
@settings(max_examples=15, deadline=None)
def test_32bit_halves_roundtrip_through_regfile(lanes):
    state = KeccakState(lanes)
    unit = make_unit(elen=32, elenum=5)
    layout.load_states_regfile32(unit.regfile, [state])
    assert layout.read_states_regfile32(unit.regfile, 1)[0] == state


@given(lanes=lanes25)
@settings(max_examples=15, deadline=None)
def test_32bit_rho_pair_matches_reference(lanes):
    state = KeccakState(lanes)
    unit = make_unit(elen=32, elenum=5)
    layout.load_states_regfile32(unit.regfile, [state])
    unit.configure(25, encode_vtype(32, 8))
    execute(unit, "v32lrho.vv v8, v16, v0")
    execute(unit, "v32hrho.vv v24, v16, v0")
    unit.configure(5, encode_vtype(32, 1))
    out = layout.read_states_regfile32(unit.regfile, 1,
                                       lo_base=8, hi_base=24)[0]
    assert out == rho(state)
