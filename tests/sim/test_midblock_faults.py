"""Mid-block faults: fused execution must fail exactly like stepped.

The fused dispatch contract says that when an interior executor raises,
the retired prefix is flushed (instructions, cycles, per-mnemonic
counters) and the scalar pc is repaired to the faulting instruction
before the exception propagates.  These tests force a fault at *every*
instruction offset of a real fused superblock — the 25-instruction
straight-line run of the Keccak round body — and assert that the
architecturally visible failure state is identical to per-instruction
(``predecode=False``) execution: same retired count, same cycle count,
same pc, same exception context.
"""

import pytest

from repro.programs import keccak64_lmul8, layout
from repro.resilience import FaultInjector, FaultSpec
from repro.sim import SIMDProcessor
from repro.sim.exceptions import (
    IllegalInstructionError,
    MemoryAccessError,
    SimulationError,
)
from repro.sim.predecode import build_superblocks

PROGRAM = keccak64_lmul8.build(5)
ASSEMBLED = PROGRAM.assemble()


def _longest_block():
    probe = SIMDProcessor(elen=64, elenum=5)
    probe.load_program(ASSEMBLED)
    blocks = build_superblocks(probe, probe._predecoded).blocks
    best = max((b for b in blocks if b is not None),
               key=lambda b: b.length)
    return best.start_pc, best.length


BLOCK_START, BLOCK_LEN = _longest_block()
OFFSETS = range(BLOCK_LEN)
EXCEPTIONS = (MemoryAccessError, IllegalInstructionError)


def _fresh(random_state, **kwargs):
    proc = SIMDProcessor(elen=64, elenum=5, **kwargs)
    proc.load_program(ASSEMBLED)
    layout.load_states_regfile64(proc.vector.regfile, [random_state])
    return proc


def _fail_state(proc, spec):
    """Run to the injected fault; capture everything a handler can see."""
    with FaultInjector(proc) as injector:
        injector.arm(spec)
        with pytest.raises(SimulationError) as excinfo:
            proc.run()
        assert injector.fire_count == 1
    exc = excinfo.value
    return {
        "type": type(exc),
        "exc_pc": exc.pc,
        "exc_cycle": exc.cycle,
        "exc_instruction": exc.instruction,
        "scalar_pc": proc.scalar.pc,
        "instructions": proc.stats.instructions,
        "cycles": proc.stats.cycles,
        "mnemonic_counts": dict(proc.stats.mnemonic_counts),
    }


class TestMidblockFaultParity:
    def test_block_is_genuinely_fused(self):
        """The target block must be long enough to make interior faults
        meaningful (not a degenerate one-instruction block)."""
        assert BLOCK_LEN >= 8
        lo = ASSEMBLED.symbols["round_body"]
        hi = ASSEMBLED.symbols["round_end"]
        assert lo <= BLOCK_START < hi

    @pytest.mark.parametrize("exception", EXCEPTIONS,
                             ids=lambda e: e.__name__)
    @pytest.mark.parametrize("offset", OFFSETS)
    def test_fused_matches_stepped_at_every_offset(self, offset, exception,
                                                   random_state):
        pc = BLOCK_START + 4 * offset
        spec = FaultSpec("raise", pc=pc, exception=exception)
        fused = _fail_state(_fresh(random_state), spec)
        stepped = _fail_state(_fresh(random_state, predecode=False), spec)
        assert fused["type"] is exception
        assert fused["exc_pc"] == pc
        assert fused == stepped

    @pytest.mark.parametrize("offset", [0, BLOCK_LEN // 2, BLOCK_LEN - 1])
    def test_parity_holds_across_loop_iterations(self, offset, random_state):
        """Occurrence 3 faults on the third round: the flushed counters
        must include two complete rounds plus the partial block."""
        pc = BLOCK_START + 4 * offset
        spec = FaultSpec("raise", pc=pc, occurrence=3,
                         exception=MemoryAccessError)
        fused = _fail_state(_fresh(random_state), spec)
        stepped = _fail_state(_fresh(random_state, predecode=False), spec)
        assert fused == stepped

    @pytest.mark.parametrize("offset", [1, BLOCK_LEN - 1])
    def test_predecoded_unfused_matches_stepped(self, offset, random_state):
        """The middle engine (predecoded, fuse=False) obeys the same
        contract — it retires per-instruction, so this pins the baseline
        the fused flush is compared against."""
        pc = BLOCK_START + 4 * offset
        spec = FaultSpec("raise", pc=pc, exception=IllegalInstructionError)
        predecoded = _fail_state(_fresh(random_state, fuse=False), spec)
        stepped = _fail_state(_fresh(random_state, predecode=False), spec)
        assert predecoded == stepped
