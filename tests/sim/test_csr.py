"""Tests for the Zicsr instructions and the vector/counter CSRs."""

import pytest

from repro.assembler import assemble
from repro.isa import CSR_ADDRESSES, parse_csr
from repro.isa.csr import csr_name
from repro.sim import IllegalInstructionError, SIMDProcessor


def run(source, **kwargs):
    processor = SIMDProcessor(**kwargs)
    processor.load_program(assemble(source))
    processor.run()
    return processor


class TestCsrAddresses:
    def test_standard_addresses(self):
        assert CSR_ADDRESSES["vl"] == 0xC20
        assert CSR_ADDRESSES["vtype"] == 0xC21
        assert CSR_ADDRESSES["vlenb"] == 0xC22
        assert CSR_ADDRESSES["cycle"] == 0xC00
        assert CSR_ADDRESSES["instret"] == 0xC02

    def test_parse_symbolic_and_numeric(self):
        assert parse_csr("vl") == 0xC20
        assert parse_csr("0xC20") == 0xC20
        assert parse_csr("3104") == 0xC20

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_csr("bogus")
        with pytest.raises(ValueError):
            parse_csr("0x10000")

    def test_name_round_trip(self):
        assert csr_name(0xC20) == "vl"
        assert csr_name(0x123) == "0x123"


class TestVectorCsrs:
    def test_vl_reflects_vsetvli(self):
        processor = run("""
            li s1, 7
            vsetvli x0, s1, e64, m1, tu, mu
            csrr t0, vl
            ecall
        """, elen=64, elenum=16)
        assert processor.read_scalar("t0") == 7

    def test_vlenb_is_vlen_bytes(self):
        processor = run("csrr t0, vlenb\necall", elen=64, elenum=30)
        assert processor.read_scalar("t0") == 30 * 64 // 8

    def test_vtype_readback(self):
        from repro.isa.vector import encode_vtype

        processor = run("""
            li s1, 5
            vsetvli x0, s1, e32, m8, tu, mu
            csrr t0, vtype
            ecall
        """, elen=32, elenum=5)
        assert processor.read_scalar("t0") == encode_vtype(32, 8)

    def test_vstart_reads_zero(self):
        processor = run("csrr t0, vstart\necall")
        assert processor.read_scalar("t0") == 0

    def test_write_to_read_only_csr_rejected(self):
        processor = SIMDProcessor()
        processor.load_program(assemble("li t0, 1\ncsrw vl, t0\necall"))
        with pytest.raises(IllegalInstructionError, match="read-only"):
            processor.run()

    def test_csrrs_with_x0_is_pure_read(self):
        # csrr expands to csrrs rd, csr, x0 — must not count as a write.
        processor = run("csrr t0, cycle\necall")
        assert processor.halted


class TestCounters:
    def test_instret_counts_instructions(self):
        processor = run("""
            nop
            nop
            rdinstret t0
            ecall
        """)
        # Two nops retired before the read (the read itself not yet).
        assert processor.read_scalar("t0") == 2

    def test_cycle_counts_cycles(self):
        processor = run("""
            li t1, 0x100
            lw t2, 0(t1)
            rdcycle t0
            ecall
        """)
        # li (1) + lw (2) retired before the read.
        assert processor.read_scalar("t0") == 3

    def test_self_measured_vector_cost(self):
        """A program can measure a vector instruction with rdcycle —
        the delta equals rdcycle (1) + the instruction's cost."""
        processor = run("""
            li s1, 5
            vsetvli x0, s1, e64, m8, tu, mu
            rdcycle t0
            vxor.vv v8, v8, v8
            rdcycle t1
            sub t2, t1, t0
            ecall
        """, elen=64, elenum=5)
        # vl=5 at m8 -> 1 pass + dispatch = 2 cycles, +1 for the rdcycle.
        assert processor.read_scalar("t2") == 3

    def test_high_words_zero_for_short_runs(self):
        processor = run("csrr t0, cycleh\ncsrr t1, instreth\necall")
        assert processor.read_scalar("t0") == 0
        assert processor.read_scalar("t1") == 0

    def test_time_aliases_cycle(self):
        processor = run("""
            nop
            csrr t0, time
            csrr t1, cycle
            sub t2, t1, t0
            ecall
        """)
        assert processor.read_scalar("t2") == 1  # one csrr in between


class TestEncodings:
    def test_round_trip(self):
        from repro.isa import ISA, decode_operands, encode_instruction

        spec = ISA.lookup("csrrw")
        word = encode_instruction(spec, {"rd": 5, "csr": 0xC00, "rs1": 6})
        assert ISA.find(word).mnemonic == "csrrw"
        assert decode_operands(word, spec) == \
            {"rd": 5, "csr": 0xC00, "rs1": 6}

    def test_disassembly_uses_symbolic_names(self):
        from repro.assembler import disassemble_word

        program = assemble("csrr t0, vl")
        assert disassemble_word(program.words[0]) == "csrrs t0, vl, zero"

    def test_unimplemented_csr_raises(self):
        processor = SIMDProcessor()
        processor.load_program(assemble("csrr t0, 0x555\necall"))
        with pytest.raises(IllegalInstructionError, match="unimplemented"):
            processor.run()


class TestSelfMeasuredKeccak:
    def test_program_measures_its_own_permutation(self, random_states):
        """Wrap the Keccak permutation loop in rdcycle reads: the
        self-measured cycle count must equal the harness's external
        accounting (loop cycles + the first rdcycle's own cost)."""
        from repro.keccak import keccak_f1600
        from repro.programs import keccak64_lmul8, layout
        from repro.programs.runner import make_processor

        base = keccak64_lmul8.build(5)
        source = base.source.replace(
            "permutation:", "rdcycle s8\npermutation:"
        ).replace(
            "    blt s3, s4, permutation\n",
            "    blt s3, s4, permutation\n"
            "    rdcycle s9\n    sub s10, s9, s8\n",
        )
        from repro.assembler import assemble

        program = assemble(source)
        processor = make_processor(base, trace=True)
        processor.load_program(program)
        states = random_states(1)
        layout.load_states_regfile64(processor.vector.regfile, states)
        stats = processor.run()
        out = layout.read_states_regfile64(processor.vector.regfile, 1)
        assert out[0] == keccak_f1600(states[0])

        self_measured = processor.read_scalar("s10")
        loop_start = program.symbols["permutation"]
        body_end = program.symbols["round_end"]
        external = stats.cycles_in_pc_range(loop_start, body_end + 8)
        # The delta is the first rdcycle's own cost (1 cycle), retired
        # between the two reads.
        assert self_measured == external + 1

    def test_self_measured_round_against_paper(self, random_states):
        """Self-measure a single LMUL=8 round from inside the machine:
        the 75-cycle figure is observable by software, not only by the
        harness."""
        from repro.assembler import assemble
        from repro.programs import keccak64_lmul8, layout
        from repro.programs.runner import make_processor

        base = keccak64_lmul8.build(5)
        source = base.source.replace(
            "round_body:", "rdcycle s8\nround_body:"
        ).replace(
            "round_end:", "rdcycle s9\nround_end:\n    sub s10, s9, s8"
        ).replace("    li s4, 24", "    li s4, 1")  # one round only
        program = assemble(source)
        processor = make_processor(base, trace=False)
        processor.load_program(program)
        layout.load_states_regfile64(processor.vector.regfile,
                                     random_states(1))
        processor.run()
        # 75-cycle round + 1 cycle for the opening rdcycle itself.
        assert processor.read_scalar("s10") == 76
