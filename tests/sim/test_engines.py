"""The engine registry: capability negotiation, fallback, extension.

The acceptance bar for the registry (ROADMAP item 5): adding a backend
must require *zero edits* to ``sim/processor.py`` — registration alone
makes it selectable, plannable, metered and visible in ``ENGINES``.  The
``auto`` policy and the fallback cascade must derive from the declared
capabilities, not from hard-coded engine names.
"""

import pytest

import repro.sim as sim
from repro.keccak import keccak_f1600
from repro.observability import metrics
from repro.programs import build_program
from repro.programs.session import Session
from repro.sim import engines
from repro.sim import processor as processor_module
from repro.sim.processor import SIMDProcessor, validate_engine


@pytest.fixture(autouse=True)
def clean_metrics():
    metrics.disarm()
    metrics.registry().reset()
    yield
    metrics.disarm()
    metrics.registry().reset()


@pytest.fixture
def armed():
    metrics.arm()
    yield metrics.registry()
    metrics.disarm()


def _spec(name, **overrides):
    """A minimal processor-engine spec delegating to the predecoded loop."""
    defaults = dict(
        name=name,
        caps=engines.EngineCaps(),
        runner=lambda proc, pre, mi, mc: proc._run_predecoded(pre, mi, mc),
        requires_predecode=True,
        priority=5,
    )
    defaults.update(overrides)
    return engines.EngineSpec(**defaults)


class TestRegistry:
    def test_builtin_names_and_shims(self):
        assert engines.names() == (
            "auto", "stepped", "predecoded", "fused", "compiled", "soa",
            "reference")
        assert processor_module.ENGINES == engines.names()
        assert sim.ENGINES == engines.names()
        assert validate_engine("soa") == "soa"
        with pytest.raises(ValueError) as excinfo:
            validate_engine("warp")
        assert "soa" in str(excinfo.value)  # error lists live names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            engines.register(_spec("compiled"))

    def test_spec_needs_an_entry_point(self):
        with pytest.raises(ValueError):
            engines.register(engines.EngineSpec(
                name="inert", caps=engines.EngineCaps()))
        with pytest.raises(ValueError):
            engines.register(_spec("auto"))

    def test_capability_table_of_builtins(self):
        compiled = engines.get("compiled")
        assert not compiled.caps.tracing
        assert not compiled.caps.instrumentation
        assert not compiled.caps.max_cycles
        assert compiled.caps.owns_pins
        soa = engines.get("soa")
        assert soa.caps.functional and soa.caps.batching
        assert not soa.caps.owns_pins
        reference = engines.get("reference")
        assert reference.caps.functional
        assert reference.digest_batch is not None
        assert not reference.caps.owns_pins
        for name in ("stepped", "predecoded", "fused"):
            assert engines.get(name).caps.owns_pins
            assert engines.get(name).caps.tracing


class TestPlanning:
    def test_auto_prefers_compiled_when_unconstrained(self):
        ctx = engines.RunContext(has_predecode=True, fuse_enabled=True)
        steps = engines.plan("auto", ctx)
        assert [s.spec.name for s in steps] == [
            "compiled", "fused", "predecoded", "stepped"]
        assert all(s.blocked is None for s in steps)

    def test_tracing_blocks_compiled_with_a_reason(self):
        ctx = engines.RunContext(traced=True, has_predecode=True,
                                 fuse_enabled=True)
        steps = engines.plan("auto", ctx)
        blocked = {s.spec.name: s.blocked for s in steps}
        assert blocked["compiled"] == "traced"
        assert blocked["fused"] is None

    def test_max_cycles_blocks_fused_and_compiled(self):
        ctx = engines.RunContext(wants_max_cycles=True,
                                 has_predecode=True, fuse_enabled=True)
        blocked = {s.spec.name: s.blocked
                   for s in engines.plan("auto", ctx)}
        assert blocked["compiled"] == "max_cycles"
        assert blocked["fused"] == "max_cycles"
        assert blocked["predecoded"] is None

    def test_structural_gaps_drop_silently(self):
        # No predecoded program: only the stepped engine is available.
        ctx = engines.RunContext()
        assert [s.spec.name for s in engines.plan("auto", ctx)] \
            == ["stepped"]
        # Fusion off: the fused engine vanishes from the cascade.
        ctx = engines.RunContext(has_predecode=True, fuse_enabled=False)
        assert [s.spec.name for s in engines.plan("compiled", ctx)] \
            == ["compiled", "predecoded", "stepped"]

    def test_explicit_engine_follows_fallback_chain(self):
        ctx = engines.RunContext(has_predecode=True, fuse_enabled=True)
        assert [s.spec.name for s in engines.plan("soa", ctx)] == [
            "compiled", "fused", "predecoded", "stepped"]  # soa: functional

    def test_fault_hook_and_instrumentation_reasons(self):
        ctx = engines.RunContext(has_fault_hook=True, has_predecode=True,
                                 fuse_enabled=True)
        blocked = {s.spec.name: s.blocked
                   for s in engines.plan("compiled", ctx)}
        assert blocked["compiled"] == "fault_hook"
        ctx = engines.RunContext(instrumented=True, has_predecode=True,
                                 fuse_enabled=True)
        blocked = {s.spec.name: s.blocked
                   for s in engines.plan("compiled", ctx)}
        assert blocked["compiled"] == "instrumented"


class TestRunMetering:
    def test_runs_counted_by_resolved_name_after_success(self, armed,
                                                         random_state):
        # auto resolves to compiled here; the counter must carry the
        # *resolved* name, and only after the kernel actually ran.
        program = build_program(64, 8, 30)
        Session().run(program, [random_state])
        runs = armed.get("sim_runs_total")
        assert runs.value(engine="compiled") == 1
        assert runs.value(engine="auto") == 0

    def test_declined_engine_is_never_counted_as_run(self, armed,
                                                     random_state):
        # Tracing pushes a compiled request onto fused: exactly one run,
        # labeled fused, plus one metered fallback reason.
        program = build_program(64, 8, 5)
        Session(engine="compiled").run(program, [random_state],
                                       trace=True)
        runs = armed.get("sim_runs_total")
        assert runs.value(engine="compiled") == 0
        assert runs.value(engine="fused") == 1
        fallbacks = armed.get("sim_compiled_fallbacks_total")
        assert fallbacks.value(reason="traced") == 1

    def test_max_cycles_lands_on_predecoded(self, armed, random_state):
        program = build_program(64, 8, 5)
        session = Session()
        proc = session.processor(64, 5)
        session.run(program, [random_state])  # prime the predecode cache
        proc.reset()
        proc.load_program(program.assemble())
        proc.run(max_cycles=10_000_000)
        runs = armed.get("sim_runs_total")
        assert runs.value(engine="predecoded") == 1


class TestThirdPartyBackends:
    """Registering a new engine must not touch sim/processor.py."""

    def test_processor_backend_registers_and_runs(self, armed,
                                                  random_state):
        engines.register(_spec("thirdparty"))
        try:
            # The module-level ENGINES views are live: the new backend
            # appears without re-importing anything.
            assert "thirdparty" in processor_module.ENGINES
            assert "thirdparty" in sim.ENGINES
            program = build_program(64, 8, 5)
            result = Session(engine="thirdparty").run(program,
                                                      [random_state])
            assert result.states == [keccak_f1600(random_state)]
            runs = armed.get("sim_runs_total")
            assert runs.value(engine="thirdparty") == 1
        finally:
            engines.unregister("thirdparty")
        assert "thirdparty" not in processor_module.ENGINES
        with pytest.raises(ValueError):
            Session(engine="thirdparty")

    def test_processor_accepts_registered_engine_at_construction(self):
        engines.register(_spec("thirdparty"))
        try:
            proc = SIMDProcessor(engine="thirdparty")
            assert proc.engine == "thirdparty"
        finally:
            engines.unregister("thirdparty")

    def test_runtime_decline_cascades_to_fallback(self, armed,
                                                  random_state):
        # A runner returning None (declining at run time) hands the run
        # to its declared fallback, like the compiled engine's bailouts.
        engines.register(_spec(
            "flaky",
            runner=lambda proc, pre, mi, mc: None,
            fallback="predecoded",
        ))
        try:
            program = build_program(64, 8, 5)
            result = Session(engine="flaky").run(program, [random_state])
            assert result.states == [keccak_f1600(random_state)]
            runs = armed.get("sim_runs_total")
            assert runs.value(engine="flaky") == 0
            assert runs.value(engine="predecoded") == 1
        finally:
            engines.unregister("flaky")

    def test_functional_backend_bypasses_the_processor(self,
                                                       random_states):
        # A functional engine transforms states directly; Session must
        # return its output verbatim without running any program.
        engines.register(engines.EngineSpec(
            name="identity",
            caps=engines.EngineCaps(tracing=False, instrumentation=False,
                                    max_cycles=False, functional=True),
            run_states=lambda program, states: list(states),
            fallback="auto",
        ))
        try:
            program = build_program(64, 8, 5)
            states = random_states(2)
            result = Session(engine="identity").run(program, states)
            assert result.states == states  # unpermuted: never executed
            assert result.permutation_cycles == 0
        finally:
            engines.unregister("identity")
