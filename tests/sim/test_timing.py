"""TimingModel: identity with the calibrated model, knob semantics,
cache keying, and pin identity across engines x timing models."""

import pytest

from repro.keccak.permutation import keccak_f1600
from repro.keccak.state import KeccakState
from repro.programs.factory import build_program
from repro.programs.session import Session
from repro.sim import codegen
from repro.sim.cycles import CycleModel, DEFAULT_CYCLE_MODEL
from repro.sim.processor import SIMDProcessor
from repro.sim.timing import DEFAULT_TIMING_MODEL, TimingModel

_SCALAR_FIELDS = (
    "scalar_alu", "scalar_load", "scalar_store", "scalar_mul",
    "scalar_div", "branch_taken", "branch_not_taken", "jump", "vsetvli",
)

#: The paper's published cycle pins per (elen, lmul) variant.
PINS = {(64, 1): (2564, 103.0), (64, 8): (1892, 75.0),
        (32, 8): (3620, 147.0)}


def _states(count=1, seed=7):
    import random

    rng = random.Random(seed)
    return [KeccakState([rng.getrandbits(64) for _ in range(25)])
            for _ in range(count)]


class TestDefaultIdentity:
    """The default TimingModel is bit-identical to the CycleModel."""

    def test_scalar_costs_match(self):
        for name in _SCALAR_FIELDS:
            assert getattr(DEFAULT_TIMING_MODEL, name) \
                == getattr(DEFAULT_CYCLE_MODEL, name)

    def test_vector_costs_match(self):
        for passes in (1, 2, 5, 8, 40):
            assert DEFAULT_TIMING_MODEL.vector_arith(passes) \
                == DEFAULT_CYCLE_MODEL.vector_arith(passes)
            assert DEFAULT_TIMING_MODEL.vector_pi(passes) \
                == DEFAULT_CYCLE_MODEL.vector_pi(passes)
            assert DEFAULT_TIMING_MODEL.vector_memory(passes) \
                == DEFAULT_CYCLE_MODEL.vector_memory(passes)

    def test_invalid_pass_count_still_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING_MODEL.vector_arith(0)

    def test_is_default(self):
        assert DEFAULT_TIMING_MODEL.is_default
        assert not TimingModel(register_banks=2).is_default


class TestNormalization:
    def test_of_passthrough(self):
        model = TimingModel(issue_width=2)
        assert TimingModel.of(model) is model

    def test_of_wraps_cycle_model(self):
        custom = CycleModel(scalar_div=10)
        wrapped = TimingModel.of(custom)
        assert wrapped.base is custom
        assert wrapped.scalar_div == 10

    def test_of_default_spellings_share_one_model(self):
        assert TimingModel.of(None) is DEFAULT_TIMING_MODEL
        assert TimingModel.of(CycleModel()) is DEFAULT_TIMING_MODEL
        assert TimingModel.of(DEFAULT_CYCLE_MODEL) is DEFAULT_TIMING_MODEL

    def test_of_rejects_junk(self):
        with pytest.raises(TypeError):
            TimingModel.of("fast please")

    def test_hashable_and_equal_by_value(self):
        assert TimingModel() == DEFAULT_TIMING_MODEL
        assert hash(TimingModel()) == hash(DEFAULT_TIMING_MODEL)
        assert TimingModel(chaining=True) != DEFAULT_TIMING_MODEL

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingModel(issue_width=0)
        with pytest.raises(ValueError):
            TimingModel(register_banks=0)
        with pytest.raises(ValueError):
            TimingModel(dispatch_overhead=-1)


class TestKnobs:
    def test_register_banks_divide_passes(self):
        model = TimingModel(register_banks=5)
        # ceil(5/5)=1 pass + 1 dispatch
        assert model.vector_arith(5) == 2
        assert model.vector_arith(6) == 3  # ceil(6/5)=2 + dispatch

    def test_banks_do_not_hide_memory_roundtrips(self):
        model = TimingModel(register_banks=5)
        # regfile passes banked (1), memory round-trips not (5), + dispatch
        assert model.vector_memory(5) == 1 + 5 + 1

    def test_chaining_hides_arith_dispatch_only(self):
        model = TimingModel(chaining=True)
        assert model.vector_arith(5) == 5
        assert model.vector_pi(5) == 6
        assert model.vector_memory(5) == DEFAULT_CYCLE_MODEL.vector_memory(5)

    def test_issue_width_scales_scalar_costs(self):
        model = TimingModel(issue_width=2)
        assert model.scalar_alu == 1  # never free
        assert model.scalar_load == 1  # ceil(2/2)
        assert model.scalar_div == 19  # ceil(37/2)
        assert model.branch_taken == 2  # ceil(3/2)
        # vector costs untouched by the scalar front end
        assert model.vector_arith(5) == 6

    def test_dispatch_override(self):
        model = TimingModel(dispatch_overhead=4)
        assert model.vector_arith(5) == 9
        assert model.vector_memory(5) == 5 + 5 + 4
        assert TimingModel(dispatch_overhead=0).vector_arith(5) == 5


class TestFingerprint:
    def test_equal_models_equal_fingerprints(self):
        assert TimingModel().fingerprint() \
            == DEFAULT_TIMING_MODEL.fingerprint()

    def test_each_knob_changes_the_fingerprint(self):
        prints = {
            TimingModel().fingerprint(),
            TimingModel(issue_width=2).fingerprint(),
            TimingModel(register_banks=2).fingerprint(),
            TimingModel(chaining=True).fingerprint(),
            TimingModel(dispatch_overhead=1).fingerprint(),
            TimingModel(base=CycleModel(scalar_alu=2)).fingerprint(),
        }
        assert len(prints) == 6

    def test_dispatch_override_vs_equal_base_distinct(self):
        # dispatch_overhead=1 produces the *same costs* as the default
        # (vector_dispatch=1) but is a distinct configuration; equal
        # fingerprints are only promised for equal models.
        a = TimingModel(dispatch_overhead=1)
        assert a.vector_arith(5) == DEFAULT_TIMING_MODEL.vector_arith(5)


class TestCacheKeying:
    """A kernel compiled under one timing model is never served under
    another — the ISSUE's regression test."""

    def test_program_fingerprint_includes_timing_model(self):
        program = build_program(64, 8, 5).assemble()
        default_proc = SIMDProcessor(elen=64, elenum=5)
        slow_proc = SIMDProcessor(
            elen=64, elenum=5,
            cycle_model=TimingModel(dispatch_overhead=3))
        assert codegen.program_fingerprint(default_proc, program) \
            != codegen.program_fingerprint(slow_proc, program)

    def test_equal_costs_different_model_different_key(self):
        # dispatch_overhead=1 equals the default's costs, but the cache
        # key must still differ: keying is by model fingerprint, not by
        # sampled costs.
        program = build_program(64, 8, 5).assemble()
        a = SIMDProcessor(elen=64, elenum=5)
        b = SIMDProcessor(elen=64, elenum=5,
                          cycle_model=TimingModel(dispatch_overhead=1))
        assert codegen.program_fingerprint(a, program) \
            != codegen.program_fingerprint(b, program)

    def test_disk_cache_version_bumped(self):
        assert codegen.CODEGEN_VERSION >= 2
        directory = codegen.cache_dir()
        if directory is not None:
            assert f"v{codegen.CODEGEN_VERSION}" in directory

    def test_compiled_cycles_follow_the_model(self):
        """Run compiled under two models: each must report its own
        model's cycles (== that model's fused cycles), not the cycles
        baked in by whichever model compiled first."""
        program = build_program(64, 8, 5)
        slow = TimingModel(dispatch_overhead=5)
        cycles = {}
        for name, model in (("default", DEFAULT_TIMING_MODEL),
                            ("slow", slow)):
            per_engine = {}
            for engine in ("fused", "compiled"):
                session = Session(model, engine=engine)
                states = _states()
                result = session.run(program, states)
                assert result.states == [keccak_f1600(s) for s in states]
                per_engine[engine] = result.stats.cycles
            assert per_engine["fused"] == per_engine["compiled"], (
                f"{name}: compiled kernel reported stale cycles")
            cycles[name] = per_engine["compiled"]
        assert cycles["slow"] > cycles["default"]


class TestPinIdentityMatrix:
    """Default model reproduces the paper pins on every cycle-accurate
    engine; a non-default model changes cycles but never digests."""

    @pytest.mark.parametrize("elen,lmul", sorted(PINS))
    @pytest.mark.parametrize("engine", ("stepped", "fused"))
    def test_default_model_pins(self, elen, lmul, engine):
        program = build_program(elen, lmul, 5)
        session = Session(engine=engine)
        result = session.run(program, [], trace=True)
        pin_cycles, pin_cpr = PINS[(elen, lmul)]
        assert result.permutation_cycles == pin_cycles
        assert result.cycles_per_round == pin_cpr

    @pytest.mark.parametrize("elen,lmul", sorted(PINS))
    def test_compiled_total_matches_fused_total(self, elen, lmul):
        # The compiled engine declines traced runs, so its pin identity
        # is checked on whole-run totals against fused.
        program = build_program(elen, lmul, 5)
        states = _states()
        fused = Session(engine="fused").run(program, states)
        compiled = Session(engine="compiled").run(program, states)
        assert compiled.stats.cycles == fused.stats.cycles
        assert compiled.states == fused.states

    @pytest.mark.parametrize("elen,lmul", sorted(PINS))
    def test_non_default_model_changes_cycles_not_digests(self, elen, lmul):
        # dispatch_overhead touches every vector op in every variant
        # (register banks would be a no-op for single-pass LMUL1 ops).
        program = build_program(elen, lmul, 5)
        states = _states()
        expected = [keccak_f1600(s) for s in states]
        slow = Session(TimingModel(dispatch_overhead=5))
        result = slow.run(program, states, trace=True)
        pin_cycles, _ = PINS[(elen, lmul)]
        assert result.permutation_cycles > pin_cycles
        assert result.states == expected
