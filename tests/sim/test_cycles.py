"""Tests for the calibrated cycle model in isolation."""

import pytest

from repro.sim.cycles import DEFAULT_CYCLE_MODEL, CycleModel


class TestCalibration:
    """The model must reproduce every annotation in Algorithms 2 and 3."""

    def test_lmul1_vector_arith_is_2cc(self):
        assert DEFAULT_CYCLE_MODEL.vector_arith(1) == 2

    def test_lmul8_five_registers_is_6cc(self):
        assert DEFAULT_CYCLE_MODEL.vector_arith(5) == 6

    def test_vpi_lmul1_is_3cc(self):
        assert DEFAULT_CYCLE_MODEL.vector_pi(1) == 3

    def test_vpi_lmul8_is_7cc(self):
        assert DEFAULT_CYCLE_MODEL.vector_pi(5) == 7

    def test_vsetvli_is_2cc(self):
        assert DEFAULT_CYCLE_MODEL.vsetvli == 2

    def test_vector_memory_cost(self):
        assert DEFAULT_CYCLE_MODEL.vector_memory(1) == 3
        assert DEFAULT_CYCLE_MODEL.vector_memory(5) == 11

    def test_scalar_costs_ibex_like(self):
        m = DEFAULT_CYCLE_MODEL
        assert m.scalar_alu == 1
        assert m.scalar_load == 2
        assert m.scalar_store == 2
        assert m.branch_taken == 3
        assert m.branch_not_taken == 1
        assert m.jump == 3
        assert m.scalar_div == 37

    def test_invalid_pass_count(self):
        with pytest.raises(ValueError):
            DEFAULT_CYCLE_MODEL.vector_arith(0)


class TestAblationKnobs:
    def test_overridable_dispatch_cost(self):
        model = CycleModel(vector_dispatch=3)
        assert model.vector_arith(1) == 4
        assert model.vector_pi(1) == 5

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CYCLE_MODEL.scalar_alu = 2

    def test_round_cost_formula_lmul1(self):
        """Algorithm 2 round: 13 theta + 5 rho + 5 pi + 25 chi + 1 iota."""
        m = DEFAULT_CYCLE_MODEL
        theta = 13 * m.vector_arith(1)
        rho = 5 * m.vector_arith(1)
        pi = 5 * m.vector_pi(1)
        chi = 25 * m.vector_arith(1)
        iota = m.vector_arith(1)
        assert theta + rho + pi + chi + iota == 103

    def test_round_cost_formula_lmul8(self):
        """Algorithm 3 round: theta at LMUL=1 + grouped rho/pi/chi + iota."""
        m = DEFAULT_CYCLE_MODEL
        theta = 13 * m.vector_arith(1)
        rho = m.vsetvli + m.vector_arith(5)
        pi = m.vector_pi(5)
        chi = 5 * m.vector_arith(5)
        iota = m.vsetvli + m.vector_arith(1)
        assert theta + rho + pi + chi + iota == 75

    def test_round_cost_formula_32bit(self):
        """32-bit round: doubled halves + pair rotations + split iota."""
        m = DEFAULT_CYCLE_MODEL
        theta = 26 * m.vector_arith(1)
        rho = m.vsetvli + 2 * m.vector_arith(5)
        pi = 2 * m.vector_pi(5)
        chi = 10 * m.vector_arith(5)
        iota = m.vsetvli + 2 * m.vector_arith(1) + m.scalar_alu
        assert theta + rho + pi + chi + iota == 147
