"""The SoA mega-batch engine: bit-exact digests, caching, observability.

The ``soa`` engine is a *functional* fast path: N messages per generated
kernel call with the 25-lane Keccak state interleaved across packed
giant-int columns.  Its contract is digest equality — bit-identical to
the compiled/fused engines (and hashlib) on every program, batch size
and ragged tail — while all cycle metrics stay owned by the per-state
engines (an SoA result reports zero cycles, never a wrong pin).
"""

import hashlib

import pytest

from repro.keccak import KeccakState, keccak_f1600
from repro.keccak.permutation import keccak_p1600
from repro.observability import metrics
from repro.programs import build_program
from repro.programs.batch_driver import (
    BatchPermutation,
    batch_sha3_256,
    batch_shake128,
    run_many,
)
from repro.programs.session import Session
from repro.sim import codegen

#: The three paper programs: (ELEN, LMUL).
ARCHS = [(64, 1), (64, 8), (32, 8)]


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Every test gets an empty disk cache and an empty memory cache."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen"))
    codegen.clear_memory_cache()
    yield
    codegen.clear_memory_cache()


@pytest.fixture
def clean_metrics():
    metrics.disarm()
    metrics.registry().reset()
    yield metrics.registry()
    metrics.disarm()
    metrics.registry().reset()


class TestDifferentialMatrix:
    """SoA vs compiled vs fused digests across the full matrix."""

    @pytest.mark.parametrize("elen,lmul", ARCHS)
    @pytest.mark.parametrize("sn", (1, 3, 6))
    def test_soa_matches_compiled_and_fused(self, elen, lmul, sn,
                                            random_states):
        program = build_program(elen, lmul, 5 * sn,
                                include_memory_io=True)
        states = random_states(sn)
        soa = Session(engine="soa").run(program, states)
        compiled = Session(engine="compiled").run(program, states)
        fused = Session(engine="fused").run(program, states)
        assert soa.states == compiled.states == fused.states
        assert soa.states == [keccak_f1600(s) for s in states]

    @pytest.mark.parametrize("elen,lmul", ARCHS)
    def test_memory_io_and_regfile_variants_agree(self, elen, lmul,
                                                  random_states):
        states = random_states(3)
        results = []
        for memory_io in (False, True):
            program = build_program(elen, lmul, 30,
                                    include_memory_io=memory_io)
            results.append(Session(engine="soa").run(program, states))
        assert results[0].states == results[1].states
        assert results[0].states == [keccak_f1600(s) for s in states]

    @pytest.mark.parametrize("batch", (1, 7, 64, 1000))
    def test_batch_sizes_match_compiled_and_hashlib(self, batch):
        messages = [bytes([n % 256]) * (11 + n % 67) for n in range(batch)]
        soa = run_many(messages, engine="soa")
        compiled = run_many(messages, engine="compiled")
        assert soa == compiled
        assert soa == [hashlib.sha3_256(m).digest() for m in messages]

    def test_ragged_final_lanes(self, random_states):
        # 45 states on 64-lane kernels: one full-width call would waste
        # 19 lanes, so the tail buckets down to a smaller size class —
        # and padded lanes must never leak into real results.
        program = build_program(64, 8, 30, include_memory_io=True)
        for count in (5, 45, 100):
            states = random_states(count)
            result = Session(engine="soa").run(program, states)
            assert result.states == [keccak_f1600(s) for s in states]

    @pytest.mark.parametrize("num_rounds", (1, 12))
    def test_reduced_round_programs(self, num_rounds, random_states):
        # Keccak-p[1600, nr] runs the LAST nr rounds; the SoA kernel is
        # keyed on (lanes, rounds) and must pick the same constants.
        program = build_program(64, 8, 30, include_memory_io=True,
                                num_rounds=num_rounds)
        states = random_states(4)
        soa = Session(engine="soa").run(program, states)
        compiled = Session(engine="compiled").run(program, states)
        assert soa.states == compiled.states
        assert soa.states == [keccak_p1600(s, num_rounds) for s in states]

    def test_shake_and_sha3_batch_api(self):
        messages = [bytes([n]) * (n + 1) for n in range(40)]
        assert batch_sha3_256(messages, engine="soa") == [
            hashlib.sha3_256(m).digest() for m in messages]
        assert batch_shake128(messages, 48, engine="soa") == [
            hashlib.shake_128(m).digest(48) for m in messages]

    def test_pool_workers_round_trip(self):
        messages = [bytes([n]) * 21 for n in range(48)]
        digests = run_many(messages, engine="soa", workers=2,
                           chunk_size=16)
        assert digests == [hashlib.sha3_256(m).digest() for m in messages]


class TestFunctionalSemantics:
    """What a functional engine does and does not promise."""

    def test_capacity_is_negotiated_by_the_engine(self, random_states):
        # program.max_states (6 here) does not bound a batching engine.
        program = build_program(64, 8, 30, include_memory_io=True)
        states = random_states(50)
        result = Session(engine="soa").run(program, states)
        assert result.states == [keccak_f1600(s) for s in states]

    def test_cycle_metrics_are_zero_not_wrong(self, random_state):
        program = build_program(64, 8, 5)
        result = Session(engine="soa").run(program, [random_state])
        assert result.permutation_cycles == 0
        assert result.cycles_per_round == 0.0
        assert result.stats.cycles == 0
        assert result.throughput_bits_per_cycle == 0.0  # no ZeroDivision

    def test_traced_run_cascades_to_cycle_accurate_engines(self,
                                                           random_state):
        # trace=True needs per-instruction records, which the SoA path
        # cannot produce: the run cascades down the fallback chain and
        # still lands on the paper's pinned cycle counts.
        program = build_program(64, 8, 5)
        result = Session(engine="soa").run(program, [random_state],
                                           trace=True)
        assert result.states == [keccak_f1600(random_state)]
        assert result.permutation_cycles == 1892
        assert result.cycles_per_round == 75.0

    def test_batch_permutation_width_is_the_engine_budget(self):
        perm = BatchPermutation(engine="soa")
        assert perm.max_states == codegen.soa_width()
        assert BatchPermutation(engine="auto").max_states == 6

    def test_soa_width_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA_LANES", "16")
        assert codegen.soa_width() == 16
        assert BatchPermutation(engine="soa").max_states == 16
        monkeypatch.setenv("REPRO_SOA_LANES", "bogus")
        assert codegen.soa_width() == codegen.SOA_DEFAULT_LANES


class TestPacking:
    def test_pack_unpack_round_trip(self, random_states):
        states = random_states(7)
        cols = codegen.pack_states(states, 8)
        assert codegen.unpack_states(cols, 7) == states

    def test_pack_rejects_overflow(self, random_states):
        with pytest.raises(ValueError):
            codegen.pack_states(random_states(9), 8)

    def test_bucketing_is_power_of_two(self):
        assert [codegen.soa_bucket(n) for n in (0, 1, 2, 3, 7, 8, 9, 64)] \
            == [1, 1, 2, 4, 8, 8, 16, 64]

    def test_kernel_against_reference_permutation(self, random_states):
        states = random_states(3)
        out = codegen.run_soa(states, num_rounds=24)
        assert out == [keccak_f1600(s) for s in states]


class TestCaching:
    def test_compile_then_memory_hit(self):
        before = dict(codegen.SOA_STATS)
        codegen.get_or_compile_soa(8)
        codegen.get_or_compile_soa(8)
        assert codegen.SOA_STATS["compiles"] == before["compiles"] + 1
        assert codegen.SOA_STATS["memory_hits"] \
            == before["memory_hits"] + 1

    def test_disk_warm_start(self):
        # warm_soa in a "parent", clear the in-process cache to emulate
        # a forked worker: the next lookup must load from disk.
        codegen.warm_soa(8)
        before = dict(codegen.SOA_STATS)
        codegen.clear_memory_cache()
        codegen.get_or_compile_soa(8)
        assert codegen.SOA_STATS["disk_hits"] == before["disk_hits"] + 1
        assert codegen.SOA_STATS["compiles"] == before["compiles"]

    def test_corrupted_disk_entry_recompiles(self):
        codegen.warm_soa(4)
        path = codegen._disk_path(codegen.soa_fingerprint(4, 24))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("# garbage\n")
        codegen.clear_memory_cache()
        before = dict(codegen.SOA_STATS)
        kernel = codegen.get_or_compile_soa(4)
        assert kernel is not None
        assert codegen.SOA_STATS["compiles"] == before["compiles"] + 1

    def test_round_count_keys_the_cache(self):
        full = codegen.get_or_compile_soa(4, 24)
        reduced = codegen.get_or_compile_soa(4, 12)
        assert full is not reduced
        assert full.meta["rounds"] == 24
        assert reduced.meta["rounds"] == 12


class TestObservability:
    def test_armed_counters_record(self, clean_metrics, random_states):
        program = build_program(64, 8, 30, include_memory_io=True)
        states = random_states(5)
        metrics.arm()
        try:
            Session(engine="soa").run(program, states)
        finally:
            metrics.disarm()
        registry = clean_metrics
        calls = registry.get("sim_soa_kernel_calls_total")
        assert calls.value(lanes="8") == 1
        [series] = registry.get("sim_soa_lane_occupancy") \
            .snapshot()["series"]
        assert series["value"]["count"] == 1
        events = registry.get("sim_soa_codegen_total")
        assert events.value(event="compile") == 1
        assert registry.get("session_runs_total").value(
            program=program.name, geometry="64x30") == 1

    def test_armed_equals_disarmed_exactly(self, clean_metrics,
                                           random_states):
        program = build_program(64, 8, 30, include_memory_io=True)
        states = random_states(6)
        session = Session(engine="soa")
        disarmed = session.run(program, states)
        metrics.arm()
        try:
            armed = session.run(program, states)
        finally:
            metrics.disarm()
        assert armed.states == disarmed.states

    def test_traced_fallback_is_metered(self, clean_metrics,
                                        random_state):
        program = build_program(64, 8, 5)
        metrics.arm()
        try:
            Session(engine="soa").run(program, [random_state],
                                      trace=True)
        finally:
            metrics.disarm()
        fallbacks = clean_metrics.get("sim_functional_fallbacks_total")
        assert fallbacks.value(engine="soa", reason="traced") == 1

    def test_disarmed_records_nothing(self, clean_metrics,
                                      random_states):
        program = build_program(64, 8, 30, include_memory_io=True)
        Session(engine="soa").run(program, random_states(3))
        snap = clean_metrics.snapshot()
        assert all(not family["series"] for family in snap.values())
