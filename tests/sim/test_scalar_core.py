"""Tests for the scalar (Ibex-like) core's instruction semantics and timing."""

import pytest

from repro.isa import ISA
from repro.sim import DataMemory, ProcessorHalted
from repro.sim.scalar_core import ScalarCore


@pytest.fixture
def core():
    return ScalarCore(DataMemory(4096))


def run(core, mnemonic, **ops):
    return core.execute(ISA.lookup(mnemonic), ops)


class TestRegisters:
    def test_x0_reads_zero(self, core):
        core.write_register(0, 12345)
        assert core.read_register(0) == 0

    def test_writes_masked_to_32_bits(self, core):
        core.write_register(5, 1 << 35 | 7)
        assert core.read_register(5) == 7

    def test_out_of_range(self, core):
        from repro.sim.exceptions import IllegalInstructionError

        with pytest.raises(IllegalInstructionError):
            core.read_register(32)


class TestArithmetic:
    def test_add_wraps(self, core):
        core.write_register(1, 0xFFFFFFFF)
        core.write_register(2, 1)
        run(core, "add", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0

    def test_sub(self, core):
        core.write_register(1, 5)
        core.write_register(2, 7)
        run(core, "sub", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0xFFFFFFFE  # -2

    def test_slt_signed(self, core):
        core.write_register(1, 0xFFFFFFFF)  # -1
        core.write_register(2, 1)
        run(core, "slt", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 1

    def test_sltu_unsigned(self, core):
        core.write_register(1, 0xFFFFFFFF)
        core.write_register(2, 1)
        run(core, "sltu", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0

    def test_logical_ops(self, core):
        core.write_register(1, 0b1100)
        core.write_register(2, 0b1010)
        run(core, "and", rd=3, rs1=1, rs2=2)
        run(core, "or", rd=4, rs1=1, rs2=2)
        run(core, "xor", rd=5, rs1=1, rs2=2)
        assert core.read_register(3) == 0b1000
        assert core.read_register(4) == 0b1110
        assert core.read_register(5) == 0b0110

    def test_shifts_use_low_5_bits(self, core):
        core.write_register(1, 1)
        core.write_register(2, 33)
        run(core, "sll", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 2

    def test_sra_sign_extends(self, core):
        core.write_register(1, 0x80000000)
        core.write_register(2, 4)
        run(core, "sra", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0xF8000000

    def test_srl_zero_extends(self, core):
        core.write_register(1, 0x80000000)
        core.write_register(2, 4)
        run(core, "srl", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0x08000000

    def test_immediates(self, core):
        core.write_register(1, 10)
        run(core, "addi", rd=2, rs1=1, imm=-3)
        assert core.read_register(2) == 7
        run(core, "xori", rd=3, rs1=1, imm=-1)  # NOT
        assert core.read_register(3) == ~10 & 0xFFFFFFFF
        run(core, "srai", rd=4, rs1=1, shamt=1)
        assert core.read_register(4) == 5


class TestMultiplyDivide:
    def test_mul_low(self, core):
        core.write_register(1, 0x10000)
        core.write_register(2, 0x10000)
        run(core, "mul", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0

    def test_mulh_signed(self, core):
        core.write_register(1, 0xFFFFFFFF)  # -1
        core.write_register(2, 0xFFFFFFFF)  # -1
        run(core, "mulh", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0  # (-1)*(-1) = 1, high = 0

    def test_mulhu_unsigned(self, core):
        core.write_register(1, 0xFFFFFFFF)
        core.write_register(2, 0xFFFFFFFF)
        run(core, "mulhu", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0xFFFFFFFE

    def test_div_truncates_toward_zero(self, core):
        core.write_register(1, (-7) & 0xFFFFFFFF)
        core.write_register(2, 2)
        run(core, "div", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == (-3) & 0xFFFFFFFF

    def test_div_by_zero_riscv_semantics(self, core):
        core.write_register(1, 42)
        core.write_register(2, 0)
        run(core, "div", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0xFFFFFFFF
        run(core, "rem", rd=4, rs1=1, rs2=2)
        assert core.read_register(4) == 42

    def test_div_overflow_case(self, core):
        core.write_register(1, 0x80000000)  # INT_MIN
        core.write_register(2, 0xFFFFFFFF)  # -1
        run(core, "div", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == 0x80000000
        run(core, "rem", rd=4, rs1=1, rs2=2)
        assert core.read_register(4) == 0

    def test_rem_sign_follows_dividend(self, core):
        core.write_register(1, (-7) & 0xFFFFFFFF)
        core.write_register(2, 2)
        run(core, "rem", rd=3, rs1=1, rs2=2)
        assert core.read_register(3) == (-1) & 0xFFFFFFFF


class TestMemoryInstructions:
    def test_word_round_trip(self, core):
        core.write_register(1, 100)
        core.write_register(2, 0xDEADBEEF)
        run(core, "sw", rs2=2, rs1=1, imm=4)
        run(core, "lw", rd=3, rs1=1, imm=4)
        assert core.read_register(3) == 0xDEADBEEF

    def test_byte_sign_extension(self, core):
        core.write_register(1, 0)
        core.write_register(2, 0x80)
        run(core, "sb", rs2=2, rs1=1, imm=0)
        run(core, "lb", rd=3, rs1=1, imm=0)
        assert core.read_register(3) == 0xFFFFFF80
        run(core, "lbu", rd=4, rs1=1, imm=0)
        assert core.read_register(4) == 0x80

    def test_half_access(self, core):
        core.write_register(1, 8)
        core.write_register(2, 0xFFFF8001)
        run(core, "sh", rs2=2, rs1=1, imm=0)
        run(core, "lhu", rd=3, rs1=1, imm=0)
        assert core.read_register(3) == 0x8001
        run(core, "lh", rd=4, rs1=1, imm=0)
        assert core.read_register(4) == 0xFFFF8001

    def test_negative_offset(self, core):
        core.write_register(1, 16)
        core.write_register(2, 7)
        run(core, "sw", rs2=2, rs1=1, imm=-8)
        assert core.memory.load(8, 32) == 7

    def test_load_store_cycle_costs(self, core):
        core.write_register(1, 0)
        cycles, _ = run(core, "lw", rd=2, rs1=1, imm=0)
        assert cycles == core.cycle_model.scalar_load == 2
        cycles, _ = run(core, "sw", rs2=2, rs1=1, imm=0)
        assert cycles == core.cycle_model.scalar_store == 2


class TestControlFlow:
    def test_branch_taken_returns_target(self, core):
        core.pc = 0x100
        core.write_register(1, 1)
        core.write_register(2, 2)
        cycles, target = run(core, "blt", rs1=1, rs2=2, offset=-0x20)
        assert target == 0xE0
        assert cycles == core.cycle_model.branch_taken == 3

    def test_branch_not_taken(self, core):
        core.pc = 0x100
        cycles, target = run(core, "bne", rs1=0, rs2=0, offset=8)
        assert target is None
        assert cycles == core.cycle_model.branch_not_taken == 1

    def test_unsigned_branches(self, core):
        core.write_register(1, 0xFFFFFFFF)
        core.write_register(2, 1)
        _, target = run(core, "bltu", rs1=2, rs2=1, offset=8)
        assert target is not None  # 1 < 0xFFFFFFFF unsigned
        _, target = run(core, "bgeu", rs1=1, rs2=2, offset=8)
        assert target is not None

    def test_jal_links_return_address(self, core):
        core.pc = 0x40
        cycles, target = run(core, "jal", rd=1, offset=0x100)
        assert target == 0x140
        assert core.read_register(1) == 0x44
        assert cycles == core.cycle_model.jump

    def test_jalr_clears_low_bit(self, core):
        core.pc = 0
        core.write_register(1, 0x101)
        _, target = run(core, "jalr", rd=2, rs1=1, imm=0)
        assert target == 0x100

    def test_lui_auipc(self, core):
        core.pc = 0x1000
        run(core, "lui", rd=1, imm=0x12345)
        assert core.read_register(1) == 0x12345000
        run(core, "auipc", rd=2, imm=1)
        assert core.read_register(2) == 0x2000

    def test_ecall_halts(self, core):
        with pytest.raises(ProcessorHalted):
            run(core, "ecall")

    def test_fence_is_noop(self, core):
        cycles, target = run(core, "fence")
        assert target is None
        assert cycles == 1

    def test_vector_instruction_rejected(self, core):
        from repro.sim.exceptions import IllegalInstructionError

        with pytest.raises(IllegalInstructionError):
            run(core, "vxor.vv", vd=0, vs2=0, vs1=0, vm=1)
