"""Tests for the vector processing unit: every instruction's semantics.

Each custom instruction is checked against the corresponding reference
step mapping from :mod:`repro.keccak.permutation`, and against the
element-movement semantics of the paper's Tables 1/3/4/5 and Figs. 7/8.
"""

import pytest

from repro.assembler import assemble
from repro.isa import ISA, decode_operands
from repro.isa.vector import encode_vtype
from repro.keccak import KeccakState, pi, rho
from repro.keccak.constants import RHO_BY_ROW, ROUND_CONSTANTS, rotl64
from repro.programs import layout
from repro.sim import DataMemory, VectorUnit
from repro.sim.exceptions import IllegalInstructionError
from repro.sim.vector_unit import RC32_TABLE


def make_unit(elen=64, elenum=5):
    unit = VectorUnit(elen * elenum, DataMemory(1 << 16))
    unit.configure(elenum, encode_vtype(elen, 1))
    return unit


def execute(unit, text, scalars=None):
    """Assemble one instruction line and run it on the unit."""
    word = assemble(text).words[0]
    spec = ISA.find(word)
    ops = decode_operands(word, spec)
    values = scalars or {}
    return unit.execute(spec, ops, lambda n: values.get(n, 0))


class TestConfiguration:
    def test_configure_sets_vl_sew_lmul(self):
        unit = VectorUnit(320, DataMemory(64))
        vl = unit.configure(5, encode_vtype(64, 1))
        assert vl == 5
        assert (unit.vl, unit.sew, unit.lmul) == (5, 64, 1)

    def test_vl_clamped_to_vlmax(self):
        unit = VectorUnit(320, DataMemory(64))
        assert unit.configure(100, encode_vtype(64, 1)) == 5
        assert unit.configure(100, encode_vtype(64, 8)) == 40
        assert unit.configure(100, encode_vtype(32, 1)) == 10

    def test_register_passes(self):
        unit = VectorUnit(320, DataMemory(64))
        unit.configure(5, encode_vtype(64, 1))
        assert unit.register_passes == 1
        unit.configure(25, encode_vtype(64, 8))
        assert unit.register_passes == 5  # VL = 5*EleNum -> 5 passes

    def test_unknown_instruction_rejected(self):
        unit = make_unit()
        spec = ISA.lookup("mul")
        with pytest.raises(IllegalInstructionError):
            unit.execute(spec, {"rd": 1, "rs1": 2, "rs2": 3}, lambda n: 0)


class TestArithmetic:
    def test_vxor_vv(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [1, 2, 3, 4, 5])
        unit.regfile.write_elements(2, 64, [7, 7, 7, 7, 7])
        execute(unit, "vxor.vv v3, v1, v2")
        assert unit.regfile.read_elements(3, 64) == [6, 5, 4, 3, 2]

    def test_vadd_wraps_at_sew(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [(1 << 64) - 1] * 5)
        unit.regfile.write_elements(2, 64, [1] * 5)
        execute(unit, "vadd.vv v3, v1, v2")
        assert unit.regfile.read_elements(3, 64) == [0] * 5

    def test_vsub(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [10] * 5)
        unit.regfile.write_elements(2, 64, [3] * 5)
        execute(unit, "vsub.vv v3, v1, v2")
        assert unit.regfile.read_elements(3, 64) == [7] * 5

    def test_vxor_vx_sign_extends_scalar(self):
        # The paper's NOT idiom: s2 = -1 (32-bit all-ones) must become
        # 64-bit all-ones at SEW=64 ("adjust the length of the scalar
        # integer register", Section 3).
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [0, 1, 2, 3, 4])
        execute(unit, "vxor.vx v3, v1, s2", scalars={18: 0xFFFFFFFF})
        mask = (1 << 64) - 1
        assert unit.regfile.read_elements(3, 64) == \
            [~v & mask for v in [0, 1, 2, 3, 4]]

    def test_vxor_vx_positive_scalar_zero_extends(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [0] * 5)
        execute(unit, "vxor.vx v3, v1, t0", scalars={5: 0x7FFFFFFF})
        assert unit.regfile.read_elements(3, 64) == [0x7FFFFFFF] * 5

    def test_vand_vi_sign_extended_immediate(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [0xFF00, 0x1234, 7, 8, 9])
        execute(unit, "vand.vi v3, v1, -1")
        assert unit.regfile.read_elements(3, 64) == [0xFF00, 0x1234, 7, 8, 9]

    def test_vsll_vi(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [1, 2, 3, 4, 5])
        execute(unit, "vsll.vi v3, v1, 4")
        assert unit.regfile.read_elements(3, 64) == [16, 32, 48, 64, 80]

    def test_vsrl_vv(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [256] * 5)
        unit.regfile.write_elements(2, 64, [0, 1, 2, 3, 4])
        execute(unit, "vsrl.vv v3, v1, v2")
        assert unit.regfile.read_elements(3, 64) == [256, 128, 64, 32, 16]

    def test_masked_operation_skips_elements(self):
        unit = make_unit()
        unit.regfile.write_raw(0, 0b00101)  # mask: elements 0 and 2 active
        unit.regfile.write_elements(1, 64, [1, 1, 1, 1, 1])
        unit.regfile.write_elements(2, 64, [2, 2, 2, 2, 2])
        unit.regfile.write_elements(3, 64, [9, 9, 9, 9, 9])
        execute(unit, "vadd.vv v3, v1, v2, v0.t")
        assert unit.regfile.read_elements(3, 64) == [3, 9, 3, 9, 9]

    def test_tail_elements_undisturbed(self):
        unit = make_unit(elenum=8)
        unit.configure(5, encode_vtype(64, 1))  # VL=5 of 8 elements
        unit.regfile.write_elements(
            3, 64, [9, 9, 9, 9, 9, 111, 222, 333])
        unit.regfile.write_elements(1, 64, [1] * 8)
        unit.regfile.write_elements(2, 64, [1] * 8)
        execute(unit, "vadd.vv v3, v1, v2")
        assert unit.regfile.read_elements(3, 64) == \
            [2, 2, 2, 2, 2, 111, 222, 333]

    def test_in_place_operation(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [1, 2, 3, 4, 5])
        execute(unit, "vxor.vv v1, v1, v1")
        assert unit.regfile.read_elements(1, 64) == [0] * 5

    def test_lmul8_group_operation(self):
        unit = make_unit(elenum=5)
        unit.configure(25, encode_vtype(64, 8))
        for r in range(5):
            unit.regfile.write_elements(8 + r, 64, [r * 10 + x
                                                    for x in range(5)])
            unit.regfile.write_elements(16 + r, 64, [1] * 5)
        execute(unit, "vadd.vv v24, v8, v16")
        for r in range(5):
            assert unit.regfile.read_elements(24 + r, 64) == \
                [r * 10 + x + 1 for x in range(5)]

    def test_lmul_group_alignment_enforced(self):
        unit = make_unit(elenum=5)
        unit.configure(25, encode_vtype(64, 8))
        with pytest.raises(IllegalInstructionError, match="aligned"):
            execute(unit, "vadd.vv v1, v8, v16")


class TestSlideModuloFive:
    """Paper Table 1 and Fig. 7."""

    def test_slide_down_single_state(self):
        unit = make_unit()
        unit.regfile.write_elements(5, 64, [100, 101, 102, 103, 104])
        execute(unit, "vslidedownm.vi v7, v5, 1")
        # vd[j] = vs2[(j+1) mod 5]
        assert unit.regfile.read_elements(7, 64) == \
            [101, 102, 103, 104, 100]

    def test_slide_up_single_state(self):
        unit = make_unit()
        unit.regfile.write_elements(5, 64, [100, 101, 102, 103, 104])
        execute(unit, "vslideupm.vi v6, v5, 1")
        # vd[j] = vs2[(j-1) mod 5]
        assert unit.regfile.read_elements(6, 64) == \
            [104, 100, 101, 102, 103]

    def test_slide_down_offset_two(self):
        unit = make_unit()
        unit.regfile.write_elements(5, 64, [0, 1, 2, 3, 4])
        execute(unit, "vslidedownm.vi v7, v5, 2")
        assert unit.regfile.read_elements(7, 64) == [2, 3, 4, 0, 1]

    def test_states_do_not_interfere(self):
        # Fig. 7: lanes of different Keccak states never mix.
        unit = make_unit(elenum=15)
        elements = [s * 100 + x for s in range(3) for x in range(5)]
        unit.regfile.write_elements(5, 64, elements)
        execute(unit, "vslidedownm.vi v7, v5, 1")
        out = unit.regfile.read_elements(7, 64)
        for s in range(3):
            chunk = out[5 * s : 5 * s + 5]
            assert chunk == [s * 100 + (x + 1) % 5 for x in range(5)]

    def test_slide_up_then_down_is_identity(self):
        unit = make_unit()
        values = [7, 11, 13, 17, 19]
        unit.regfile.write_elements(5, 64, values)
        execute(unit, "vslideupm.vi v6, v5, 2")
        execute(unit, "vslidedownm.vi v7, v6, 2")
        assert unit.regfile.read_elements(7, 64) == values

    def test_elements_beyond_states_untouched(self):
        # Section 3.3: elements with index >= 5*SN are unchanged.
        unit = make_unit(elenum=8)
        unit.configure(8, encode_vtype(64, 1))  # VL=8 -> SN=1, 3 tail elems
        unit.regfile.write_elements(5, 64, [0, 1, 2, 3, 4, 55, 66, 77])
        unit.regfile.write_elements(7, 64, [0] * 8)
        execute(unit, "vslidedownm.vi v7, v5, 1")
        assert unit.regfile.read_elements(7, 64) == \
            [1, 2, 3, 4, 0, 0, 0, 0]

    def test_lmul8_slides_each_register_independently(self):
        unit = make_unit(elenum=5)
        unit.configure(25, encode_vtype(64, 8))
        for r in range(5):
            unit.regfile.write_elements(8 + r, 64,
                                        [r * 10 + x for x in range(5)])
        execute(unit, "vslidedownm.vi v16, v8, 1")
        for r in range(5):
            assert unit.regfile.read_elements(16 + r, 64) == \
                [r * 10 + (x + 1) % 5 for x in range(5)]


class TestRotations:
    """Paper Table 3."""

    def test_vrotup_rotates_all_elements(self):
        unit = make_unit()
        values = [0x8000000000000001, 1, 2, 1 << 63, 0]
        unit.regfile.write_elements(7, 64, values)
        execute(unit, "vrotup.vi v7, v7, 1")
        assert unit.regfile.read_elements(7, 64) == \
            [rotl64(v, 1) for v in values]

    def test_vrotup_requires_sew64(self):
        unit = make_unit(elen=32)
        with pytest.raises(IllegalInstructionError, match="64-bit"):
            execute(unit, "vrotup.vi v7, v7, 1")

    def test_v32rotup_pair_semantics(self):
        unit = make_unit(elen=32)
        hi = [0x80000000, 0, 1, 2, 3]
        lo = [0x00000001, 5, 6, 7, 8]
        unit.regfile.write_elements(23, 32, hi)
        unit.regfile.write_elements(7, 32, lo)
        execute(unit, "v32lrotup.vv v8, v23, v7")
        execute(unit, "v32hrotup.vv v9, v23, v7")
        for i in range(5):
            rotated = rotl64((hi[i] << 32) | lo[i], 1)
            assert unit.regfile.get_element(8, i, 32) == rotated & 0xFFFFFFFF
            assert unit.regfile.get_element(9, i, 32) == rotated >> 32

    def test_v32rotup_requires_sew32(self):
        unit = make_unit(elen=64)
        with pytest.raises(IllegalInstructionError):
            execute(unit, "v32lrotup.vv v8, v23, v7")

    def test_v32hrotup_can_overwrite_source(self):
        # The 32-bit theta writes v32hrotup.vv v23, v23, v7 in place.
        unit = make_unit(elen=32)
        unit.regfile.write_elements(23, 32, [0x80000000] * 5)
        unit.regfile.write_elements(7, 32, [1] * 5)
        execute(unit, "v32hrotup.vv v23, v23, v7")
        rotated = rotl64((0x80000000 << 32) | 1, 1)
        assert unit.regfile.get_element(23, 0, 32) == rotated >> 32


class TestRho:
    """Paper Table 3, v64rho/v32lrho/v32hrho vs the reference rho step."""

    def test_v64rho_explicit_rows_match_reference(self, random_state):
        unit = make_unit()
        layout.load_states_regfile64(unit.regfile, [random_state])
        for y in range(5):
            execute(unit, f"v64rho.vi v{y}, v{y}, {y}")
        out = layout.read_states_regfile64(unit.regfile, 1)[0]
        assert out == rho(random_state)

    def test_v64rho_lmul8_matches_reference(self, random_state):
        unit = make_unit(elenum=5)
        layout.load_states_regfile64(unit.regfile, [random_state])
        unit.configure(25, encode_vtype(64, 8))
        execute(unit, "v64rho.vi v0, v0, -1")
        unit.configure(5, encode_vtype(64, 1))
        out = layout.read_states_regfile64(unit.regfile, 1)[0]
        assert out == rho(random_state)

    def test_v64rho_row_uses_paper_lookup_table(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [1, 1, 1, 1, 1])
        execute(unit, "v64rho.vi v2, v1, 2")
        assert unit.regfile.read_elements(2, 64) == \
            [1 << RHO_BY_ROW[2][x] for x in range(5)]

    def test_v64rho_invalid_row(self):
        unit = make_unit()
        with pytest.raises(IllegalInstructionError):
            execute(unit, "v64rho.vi v0, v0, 5")

    def test_v64rho_explicit_row_needs_lmul1(self):
        unit = make_unit(elenum=5)
        unit.configure(25, encode_vtype(64, 8))
        with pytest.raises(IllegalInstructionError, match="LMUL=1"):
            execute(unit, "v64rho.vi v0, v0, 2")

    def test_v32rho_pair_matches_reference(self, random_state):
        unit = make_unit(elen=32, elenum=5)
        layout.load_states_regfile32(unit.regfile, [random_state])
        unit.configure(25, encode_vtype(32, 8))
        execute(unit, "v32lrho.vv v8, v16, v0")
        execute(unit, "v32hrho.vv v24, v16, v0")
        unit.configure(5, encode_vtype(32, 1))
        out = layout.read_states_regfile32(unit.regfile, 1,
                                           lo_base=8, hi_base=24)[0]
        assert out == rho(random_state)

    def test_v32rho_requires_sew32(self):
        unit = make_unit(elen=64)
        with pytest.raises(IllegalInstructionError):
            execute(unit, "v32lrho.vv v8, v16, v0")


class TestPi:
    """Paper Table 4 / Fig. 8, vpi vs the reference pi step."""

    def test_vpi_explicit_rows_match_reference(self, random_state):
        unit = make_unit()
        layout.load_states_regfile64(unit.regfile, [random_state])
        for y in range(5):
            execute(unit, f"vpi.vi v5, v{y}, {y}")
        out = layout.read_states_regfile64(unit.regfile, 1, base_reg=5)[0]
        assert out == pi(random_state)

    def test_vpi_lmul8_matches_reference(self, random_state):
        unit = make_unit(elenum=5)
        layout.load_states_regfile64(unit.regfile, [random_state])
        unit.configure(25, encode_vtype(64, 8))
        execute(unit, "vpi.vi v8, v0, -1")
        unit.configure(5, encode_vtype(64, 1))
        out = layout.read_states_regfile64(unit.regfile, 1, base_reg=8)[0]
        assert out == pi(random_state)

    def test_vpi_multi_state(self, random_states):
        states = random_states(3)
        unit = make_unit(elenum=15)
        layout.load_states_regfile64(unit.regfile, states)
        unit.configure(75, encode_vtype(64, 8))
        execute(unit, "vpi.vi v8, v0, -1")
        unit.configure(15, encode_vtype(64, 1))
        out = layout.read_states_regfile64(unit.regfile, 3, base_reg=8)
        for i, state in enumerate(states):
            assert out[i] == pi(state), f"state {i}"

    def test_vpi_writes_columns(self):
        # Processing source row 0: lane a goes to plane 2a mod 5, lane
        # slot 0 — a column write across five destination registers.
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [100, 101, 102, 103, 104])
        execute(unit, "vpi.vi v5, v1, 0")
        for a in range(5):
            dest_reg = 5 + (2 * a) % 5
            assert unit.regfile.get_element(dest_reg, 0, 64) == 100 + a

    def test_vpi_destination_bounds_checked(self):
        unit = make_unit()
        with pytest.raises(IllegalInstructionError, match="exceeds"):
            execute(unit, "vpi.vi v28, v1, 0")


class TestIota:
    """Paper Table 5, viota in 64-bit and 32-bit modes."""

    def test_viota_xors_lane0_of_each_state(self):
        unit = make_unit(elenum=10)
        unit.configure(10, encode_vtype(64, 1))
        unit.regfile.write_elements(1, 64, list(range(10)))
        execute(unit, "viota.vx v2, v1, s3", scalars={19: 3})
        out = unit.regfile.read_elements(2, 64)
        assert out[0] == 0 ^ ROUND_CONSTANTS[3]
        assert out[5] == 5 ^ ROUND_CONSTANTS[3]
        assert out[1:5] == [1, 2, 3, 4]
        assert out[6:10] == [6, 7, 8, 9]

    def test_viota_32bit_uses_split_table(self):
        unit = make_unit(elen=32)
        unit.regfile.write_elements(1, 32, [0] * 5)
        execute(unit, "viota.vx v2, v1, s3", scalars={19: 4})  # round 2 low
        assert unit.regfile.get_element(2, 0, 32) == \
            ROUND_CONSTANTS[2] & 0xFFFFFFFF
        execute(unit, "viota.vx v3, v1, s3", scalars={19: 5})  # round 2 high
        assert unit.regfile.get_element(3, 0, 32) == \
            ROUND_CONSTANTS[2] >> 32

    def test_rc32_table_is_interleaved_halves(self):
        assert len(RC32_TABLE) == 48
        for i, rc in enumerate(ROUND_CONSTANTS):
            assert RC32_TABLE[2 * i] == rc & 0xFFFFFFFF
            assert RC32_TABLE[2 * i + 1] == rc >> 32

    def test_viota_index_out_of_range(self):
        unit = make_unit()
        with pytest.raises(IllegalInstructionError):
            execute(unit, "viota.vx v2, v1, s3", scalars={19: 24})


class TestVectorMemory:
    def test_unit_stride_load_store(self):
        unit = make_unit()
        data = bytes(range(40))
        unit.memory.store_bytes(0x100, data)
        execute(unit, "vle64.v v1, (a0)", scalars={10: 0x100})
        expected = [int.from_bytes(data[8 * i : 8 * i + 8], "little")
                    for i in range(5)]
        assert unit.regfile.read_elements(1, 64) == expected
        execute(unit, "vse64.v v1, (a1)", scalars={11: 0x200})
        assert unit.memory.load_bytes(0x200, 40) == data

    def test_strided_load(self):
        unit = make_unit()
        for i in range(5):
            unit.memory.store(0x100 + 16 * i, 64, i + 1)
        execute(unit, "vlse64.v v1, (a0), t0",
                scalars={10: 0x100, 5: 16})
        assert unit.regfile.read_elements(1, 64) == [1, 2, 3, 4, 5]

    def test_indexed_load_gathers(self):
        unit = make_unit()
        for i in range(5):
            unit.memory.store(0x100 + 8 * i, 64, 100 + i)
        # Indices pick elements in reverse order.
        unit.regfile.write_elements(2, 64, [32, 24, 16, 8, 0])
        execute(unit, "vluxei64.v v1, (a0), v2", scalars={10: 0x100})
        assert unit.regfile.read_elements(1, 64) == \
            [104, 103, 102, 101, 100]

    def test_indexed_store_scatters(self):
        unit = make_unit()
        unit.regfile.write_elements(1, 64, [5, 6, 7, 8, 9])
        unit.regfile.write_elements(2, 64, [32, 24, 16, 8, 0])
        execute(unit, "vsuxei64.v v1, (a0), v2", scalars={10: 0x100})
        assert unit.memory.load(0x100, 64) == 9
        assert unit.memory.load(0x120, 64) == 5

    def test_masked_store_skips_elements(self):
        unit = make_unit()
        unit.memory.store_bytes(0x100, b"\xee" * 40)
        unit.regfile.write_raw(0, 0b00001)  # only element 0 active
        unit.regfile.write_elements(1, 64, [1, 2, 3, 4, 5])
        execute(unit, "vse64.v v1, (a0), v0.t", scalars={10: 0x100})
        assert unit.memory.load(0x100, 64) == 1
        assert unit.memory.load(0x108, 64) == 0xEEEEEEEEEEEEEEEE

    def test_vle32_loads_32_bit_elements(self):
        unit = make_unit(elen=32)
        for i in range(5):
            unit.memory.store(0x100 + 4 * i, 32, 0xA0 + i)
        execute(unit, "vle32.v v1, (a0)", scalars={10: 0x100})
        assert unit.regfile.read_elements(1, 32) == \
            [0xA0, 0xA1, 0xA2, 0xA3, 0xA4]


class TestCycleCosts:
    """The calibrated cycle model (paper Algorithms 2/3 annotations)."""

    def test_lmul1_arith_costs_2(self):
        unit = make_unit()
        assert execute(unit, "vxor.vv v3, v1, v2") == 2

    def test_lmul1_vpi_costs_3(self):
        unit = make_unit()
        assert execute(unit, "vpi.vi v5, v1, 0") == 3

    def test_lmul8_over_5_registers_costs_6(self):
        unit = make_unit(elenum=5)
        unit.configure(25, encode_vtype(64, 8))
        assert execute(unit, "vxor.vv v24, v8, v16") == 6
        assert execute(unit, "vslidedownm.vi v16, v8, 1") == 6
        assert execute(unit, "v64rho.vi v0, v0, -1") == 6

    def test_lmul8_vpi_costs_7(self):
        unit = make_unit(elenum=5)
        unit.configure(25, encode_vtype(64, 8))
        assert execute(unit, "vpi.vi v8, v0, -1") == 7

    def test_full_lmul8_group_costs_9(self):
        unit = make_unit(elenum=5)
        unit.configure(40, encode_vtype(64, 8))  # all 8 registers active
        assert execute(unit, "vxor.vv v24, v8, v16") == 9


class TestRvvCornerCases:
    def test_vl_zero_is_noop(self):
        unit = make_unit()
        unit.configure(0, encode_vtype(64, 1))
        unit.regfile.write_elements(3, 64, [9] * 5)
        execute(unit, "vxor.vv v3, v1, v2")
        assert unit.regfile.read_elements(3, 64) == [9] * 5

    def test_vl_zero_still_costs_dispatch(self):
        unit = make_unit()
        unit.configure(0, encode_vtype(64, 1))
        assert execute(unit, "vxor.vv v3, v1, v2") == 2

    def test_lmul2_group(self):
        unit = make_unit(elenum=5)
        unit.configure(10, encode_vtype(64, 2))
        unit.regfile.write_elements(2, 64, [1] * 5)
        unit.regfile.write_elements(3, 64, [2] * 5)
        unit.regfile.write_elements(4, 64, [10] * 5)
        unit.regfile.write_elements(5, 64, [20] * 5)
        assert execute(unit, "vadd.vv v6, v2, v4") == 3  # 2 passes + 1
        assert unit.regfile.read_elements(6, 64) == [11] * 5
        assert unit.regfile.read_elements(7, 64) == [22] * 5

    def test_lmul4_slide_per_register(self):
        unit = make_unit(elenum=5)
        unit.configure(20, encode_vtype(64, 4))
        for r in range(4):
            unit.regfile.write_elements(
                4 + r, 64, [100 * r + x for x in range(5)])
        assert execute(unit, "vslidedownm.vi v8, v4, 1") == 5
        for r in range(4):
            assert unit.regfile.read_elements(8 + r, 64) == \
                [100 * r + (x + 1) % 5 for x in range(5)]

    def test_lmul2_misaligned_group_rejected(self):
        unit = make_unit(elenum=5)
        unit.configure(10, encode_vtype(64, 2))
        with pytest.raises(IllegalInstructionError, match="aligned"):
            execute(unit, "vadd.vv v6, v3, v4")

    def test_partial_final_register_in_group(self):
        # VL = 7 at EleNum=5, LMUL=2: second register only has 2 active.
        unit = make_unit(elenum=5)
        unit.configure(7, encode_vtype(64, 2))
        unit.regfile.write_elements(2, 64, [1] * 5)
        unit.regfile.write_elements(3, 64, [1, 1, 77, 77, 77])
        unit.regfile.write_elements(4, 64, [3] * 5)
        unit.regfile.write_elements(5, 64, [3] * 5)
        execute(unit, "vadd.vv v6, v2, v4")
        assert unit.regfile.read_elements(6, 64) == [4] * 5
        out = unit.regfile.read_elements(7, 64)
        assert out[:2] == [4, 4]
        assert out[2:] == [0, 0, 0]  # tail untouched (registers were 0)

    def test_slide_with_partial_state_in_vl(self):
        # VL = 7: one full state (5) plus 2 tail elements -> SN = 1; the
        # two extra elements must not move.
        unit = make_unit(elenum=10)
        unit.configure(7, encode_vtype(64, 1))
        unit.regfile.write_elements(
            5, 64, [0, 1, 2, 3, 4, 55, 66, 0, 0, 0])
        unit.regfile.write_elements(6, 64, [9] * 10)
        execute(unit, "vslidedownm.vi v6, v5, 1")
        out = unit.regfile.read_elements(6, 64)
        assert out[:5] == [1, 2, 3, 4, 0]
        assert out[5:7] == [9, 9]  # beyond 5*SN: unchanged in vd
