"""Serving executors: correctness, deadline shedding, rolling restarts.

The inline and pooled executors must agree with ``hashlib`` bit for
bit, shed exactly the items whose deadlines expired before dispatch,
and survive a rolling restart without losing the pool.
"""

import hashlib
import time

import pytest

from repro.serve import DEADLINE_EXCEEDED, ERROR, OK, InlineExecutor, \
    PooledExecutor
from repro.serve.executor import _plan_groups, _split_expired

MESSAGES = [bytes([i]) * (40 + i) for i in range(70)]
SHA3 = [hashlib.sha3_256(m).digest() for m in MESSAGES]
SHAKE16 = [hashlib.shake_128(m).digest(16) for m in MESSAGES]


def _items(messages, deadline=None):
    return [(m, deadline) for m in messages]


class TestPlanning:
    def test_groups_cover_every_index_once(self):
        items = _items(MESSAGES)
        groups = _plan_groups(items, 16)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(len(items)))
        assert all(len(g) <= 16 for g in groups)

    def test_urgent_deadlines_dispatch_first(self):
        now = time.monotonic()
        items = [(b"a", now + 9.0), (b"b", now + 1.0), (b"c", None),
                 (b"d", now + 5.0)]
        groups = _plan_groups(items, 2)
        assert groups[0] == [1, 3]  # soonest deadlines lead
        assert groups[1] == [0, 2]  # undated items go last

    def test_split_expired(self):
        now = time.monotonic()
        items = [(b"a", now - 1.0), (b"b", now + 60.0), (b"c", None)]
        live, expired = _split_expired(items, [0, 1, 2], now)
        assert (live, expired) == ([1, 2], [0])


class TestInlineExecutor:
    def test_sha3_matches_hashlib(self):
        ex = InlineExecutor(engine="reference")
        results = ex.hash_batch("sha3_256", 32, _items(MESSAGES))
        assert [r for r in results] == [(OK, d) for d in SHA3]

    def test_shake_matches_hashlib(self):
        ex = InlineExecutor(engine="reference")
        results = ex.hash_batch("shake128", 16, _items(MESSAGES))
        assert results == [(OK, d) for d in SHAKE16]

    def test_expired_items_are_shed_not_hashed(self):
        ex = InlineExecutor(engine="reference")
        past = time.monotonic() - 1.0
        items = [(m, past if i % 2 else None)
                 for i, m in enumerate(MESSAGES)]
        results = ex.hash_batch("sha3_256", 32, items)
        for i, (outcome, digest) in enumerate(results):
            if i % 2:
                assert (outcome, digest) == (DEADLINE_EXCEEDED, None)
            else:
                assert (outcome, digest) == (OK, SHA3[i])

    def test_bad_algorithm_is_error_not_raise(self):
        ex = InlineExecutor(engine="reference")
        results = ex.hash_batch("md5", 16, _items(MESSAGES[:3]))
        assert results == [(ERROR, None)] * 3

    def test_empty_batch(self):
        assert InlineExecutor(engine="reference").hash_batch(
            "sha3_256", 32, []) == []

    def test_restart_is_a_noop(self):
        assert InlineExecutor(engine="reference").restart_workers() == 0


class TestPooledExecutor:
    @pytest.fixture(scope="class")
    def pooled(self):
        ex = PooledExecutor(2, engine="reference")
        yield ex
        ex.close()

    def test_matches_hashlib_in_input_order(self, pooled):
        results = pooled.hash_batch("sha3_256", 32, _items(MESSAGES))
        assert results == [(OK, d) for d in SHA3]

    def test_shake_matches_hashlib(self, pooled):
        results = pooled.hash_batch("shake128", 16, _items(MESSAGES))
        assert results == [(OK, d) for d in SHAKE16]

    def test_expired_work_shed_before_workers(self, pooled):
        past = time.monotonic() - 1.0
        items = [(m, past) for m in MESSAGES]
        results = pooled.hash_batch("sha3_256", 32, items)
        assert results == [(DEADLINE_EXCEEDED, None)] * len(MESSAGES)

    def test_mixed_deadlines_shed_only_expired(self, pooled):
        past = time.monotonic() - 1.0
        items = [(m, past if i % 3 == 0 else None)
                 for i, m in enumerate(MESSAGES)]
        results = pooled.hash_batch("sha3_256", 32, items)
        for i, (outcome, digest) in enumerate(results):
            if i % 3 == 0:
                assert outcome == DEADLINE_EXCEEDED
            else:
                assert (outcome, digest) == (OK, SHA3[i])

    def test_rolling_restart_replaces_every_worker(self, pooled):
        before = {w.process.pid for w in pooled._pool.workers.values()}
        assert pooled.restart_workers() == 2
        after = {w.process.pid for w in pooled._pool.workers.values()}
        assert not before & after
        assert len(after) == 2  # pool size never dips
        results = pooled.hash_batch("sha3_256", 32, _items(MESSAGES[:8]))
        assert results == [(OK, d) for d in SHA3[:8]]

    def test_shm_transport_agrees(self):
        ex = PooledExecutor(2, engine="reference", transport="shm")
        try:
            big = [bytes([i % 251]) * 2048 for i in range(80)]
            results = ex.hash_batch("sha3_256", 32, _items(big))
            assert results == [
                (OK, hashlib.sha3_256(m).digest()) for m in big]
        finally:
            ex.close()

    def test_closed_executor_rejects_work(self):
        ex = PooledExecutor(1, engine="reference")
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.hash_batch("sha3_256", 32, _items(MESSAGES[:1]))
        assert ex.restart_workers() == 0  # idempotent after close

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError, match="worker"):
            PooledExecutor(0, engine="reference")


class TestTreeAlgorithms:
    """The tree-hashing XOFs ride the same executor surface."""

    def test_inline_k12_matches_reference(self):
        from repro.keccak.kangarootwelve import kangarootwelve

        ex = InlineExecutor(engine="reference")
        results = ex.hash_batch("k12", 32, _items(MESSAGES[:8]))
        assert results == [
            (OK, kangarootwelve(m, 32, engine="reference"))
            for m in MESSAGES[:8]
        ]

    def test_inline_parallelhash_matches_reference(self):
        from repro.keccak import parallelhash128, parallelhash256

        ex = InlineExecutor(engine="reference")
        assert ex.hash_batch("parallelhash128", 32,
                             _items(MESSAGES[:6])) == [
            (OK, parallelhash128(m, 32, engine="reference"))
            for m in MESSAGES[:6]
        ]
        assert ex.hash_batch("parallelhash256", 64,
                             _items(MESSAGES[:6])) == [
            (OK, parallelhash256(m, 64, engine="reference"))
            for m in MESSAGES[:6]
        ]

    def test_pooled_k12_matches_inline(self):
        ex = PooledExecutor(2, engine="reference")
        try:
            pooled = ex.hash_batch("k12", 32, _items(MESSAGES[:12]))
        finally:
            ex.close()
        inline = InlineExecutor(engine="reference") \
            .hash_batch("k12", 32, _items(MESSAGES[:12]))
        assert pooled == inline

    def test_lane_width_for_tree_algorithms_is_grouped(self):
        from repro.serve.executor import _DIGEST_BATCH_GROUP, _lane_width

        assert _lane_width((64, 8, 30), "reference", "k12") == \
            _DIGEST_BATCH_GROUP
        assert _lane_width((64, 8, 30), "reference",
                           "parallelhash128") == _DIGEST_BATCH_GROUP
