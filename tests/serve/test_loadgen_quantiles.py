"""Nearest-rank quantiles in the load generator's LoadReport.

Pins the fix for the rounded ``(n - 1)``-based index, which
under-reported tail quantiles at small sample counts."""

import random

from repro.serve.loadgen import LoadReport


def _report(latencies):
    report = LoadReport()
    report.latencies = list(latencies)
    return report


def test_empty_is_zero():
    assert _report([]).p50() == 0.0
    assert _report([]).p99() == 0.0


def test_single_sample_is_both_quantiles():
    report = _report([0.25])
    assert report.p50() == 0.25
    assert report.p99() == 0.25


def test_p50_even_n_is_lower_middle():
    # nearest-rank: ceil(0.5 * 4) = 2nd sample.  The old rounded
    # (n - 1)-index returned the 3rd.
    assert _report([4.0, 1.0, 3.0, 2.0]).p50() == 2.0


def test_p50_odd_n_is_middle():
    assert _report([5.0, 1.0, 3.0, 2.0, 4.0]).p50() == 3.0


def test_p99_small_n_is_the_maximum():
    # ceil(0.99 * 67) = 67 -> the largest sample.  The old index
    # round(0.99 * 66) = 65 landed one sample short of the tail.
    samples = [float(n) for n in range(1, 68)]
    random.Random(0).shuffle(samples)
    report = _report(samples)
    assert report.p99() == 67.0
    assert report.p50() == 34.0


def test_p99_large_n_nearest_rank():
    # ceil(0.99 * 200) = 198th sample of 1..200.
    assert _report(range(1, 201)).p99() == 198.0
