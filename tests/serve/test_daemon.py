"""Daemon behaviour: lifecycle, overload, deadlines, drain, endpoints.

All tests drive a real :class:`HashServer` over a real unix socket (or
TCP) inside ``asyncio.run`` — no event-loop plugin needed.  Executor
doubles make the overload/drain timing deterministic; the correctness
tests use the genuine inline executor on the ``reference`` engine.
"""

import asyncio
import hashlib
import json
import os
import re
import shutil
import tempfile
import time

import pytest

from repro.serve import (
    DEADLINE_EXCEEDED,
    OK,
    HashServer,
    InlineExecutor,
    ServeConfig,
)
from repro.serve.loadgen import request, run_load_async


@pytest.fixture
def sock():
    # Unix socket paths are capped around 107 bytes; pytest's tmp_path
    # can blow past that, so lease a short /tmp directory instead.
    scratch = tempfile.mkdtemp(dir="/tmp", prefix="rsv")
    try:
        yield os.path.join(scratch, "s.sock")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


class SlowExecutor:
    """Deterministic double: fixed service time, honest deadlines."""

    workers = 0

    def __init__(self, delay: float = 0.2) -> None:
        self.delay = delay
        self.batches = []

    def hash_batch(self, algorithm, length, items):
        time.sleep(self.delay)
        self.batches.append(len(items))
        out = []
        now = time.monotonic()
        for message, deadline in items:
            if deadline is not None and deadline <= now:
                out.append((DEADLINE_EXCEEDED, None))
            else:
                out.append((OK, hashlib.sha3_256(message).digest()))
        return out

    def restart_workers(self, reason="rolling"):
        return 0

    def close(self):
        pass


def _config(sock, **overrides):
    base = dict(socket_path=sock, engine="reference",
                observability=False, batch_window=0.002)
    base.update(overrides)
    return ServeConfig(**base)


def _run(config, body, executor=None):
    async def main():
        server = HashServer(config, executor=executor)
        await server.start()
        try:
            return await body(server)
        finally:
            await server.drain()

    return asyncio.run(main())


class TestCorrectness:
    def test_sha3_digests_match_hashlib(self, sock):
        async def body(server):
            return await run_load_async(sock, None, 0, 40, 0.0, 64,
                                        "sha3_256", 32, None, 1, True,
                                        15.0)

        report = _run(_config(sock), body)
        assert report.ok == 40
        assert report.mismatches == 0

    def test_shake_with_length_param(self, sock):
        async def body(server):
            status, payload = await request(
                "/hash/shake128?length=16", b"xof input",
                socket_path=sock)
            return status, payload

        status, payload = _run(_config(sock), body)
        assert status == 200
        assert payload.decode() == \
            hashlib.shake_128(b"xof input").hexdigest(16)

    def test_tcp_listener(self, sock):
        async def body(server):
            port = server.tcp_port
            assert port is not None
            return await request("/hash/sha3_256", b"over tcp",
                                 host="127.0.0.1", port=port)

        config = _config(sock, host="127.0.0.1", port=0)
        status, payload = _run(config, body)
        assert status == 200
        assert payload.decode() == hashlib.sha3_256(b"over tcp").hexdigest()


class TestAdmission:
    def test_overload_rejects_excess_never_queues_unboundedly(self, sock):
        # One slow batch in flight + a 2-slot queue: flooding 16
        # concurrent requests must answer every one of them, with the
        # excess rejected as `overloaded` (429) — not buffered.
        executor = SlowExecutor(delay=0.25)
        config = _config(sock, max_queue=2, max_batch=1,
                         max_inflight_batches=1, batch_window=0.0)

        async def body(server):
            results = await asyncio.gather(
                *[request("/hash/sha3_256", b"m%d" % i, socket_path=sock,
                          timeout=30.0) for i in range(16)])
            assert server._queue.qsize() <= 2
            return results

        results = _run(config, body, executor=executor)
        statuses = [status for status, _ in results]
        assert len(statuses) == 16  # every request got an answer
        rejected = [b for s, b in results if s == 429]
        assert rejected and all(b == b"overloaded\n" for b in rejected)
        assert statuses.count(200) >= 1
        assert set(statuses) <= {200, 429}

    def test_token_bucket_sheds_rate(self, sock):
        config = _config(sock, rate=0.001, burst=1.0)

        async def body(server):
            first = await request("/hash/sha3_256", b"a",
                                  socket_path=sock)
            second = await request("/hash/sha3_256", b"b",
                                   socket_path=sock)
            return first, second

        (s1, _), (s2, body2) = _run(config, body)
        assert s1 == 200
        assert (s2, body2) == (429, b"overloaded\n")


class TestDeadlines:
    def test_expired_deadline_is_shed_with_504(self, sock):
        async def body(server):
            return await request("/hash/sha3_256", b"too late",
                                 socket_path=sock,
                                 headers={"X-Deadline-Ms": "0"})

        status, payload = _run(_config(sock), body)
        assert status == 504
        assert payload == b"deadline_exceeded\n"

    def test_generous_deadline_succeeds(self, sock):
        async def body(server):
            return await request("/hash/sha3_256", b"in time",
                                 socket_path=sock,
                                 headers={"X-Deadline-Ms": "30000"})

        status, payload = _run(_config(sock), body)
        assert status == 200
        assert payload.decode() == hashlib.sha3_256(b"in time").hexdigest()


class TestDrain:
    def test_drain_answers_every_inflight_request(self, sock):
        executor = SlowExecutor(delay=0.2)
        state = sock + ".state.json"
        config = _config(sock, state_path=state, max_batch=4)

        async def body(server):
            tasks = [asyncio.ensure_future(
                request("/hash/sha3_256", b"r%d" % i, socket_path=sock))
                for i in range(4)]
            await asyncio.sleep(0.05)  # all four accepted, none done
            assert server._pending == 4
            await server.drain()
            return await asyncio.gather(*tasks)

        results = _run(config, body, executor=executor)
        assert [status for status, _ in results] == [200] * 4
        saved = json.load(open(state))
        assert saved["outcomes"] == {"ok": 4}
        assert saved["pending_at_exit"] == 0
        assert not os.path.exists(sock)  # socket file removed

    def test_draining_rejects_new_requests_with_503(self, sock):
        async def body(server):
            server.draining = True
            return await request("/hash/sha3_256", b"late",
                                 socket_path=sock)

        status, payload = _run(_config(sock), body)
        assert (status, payload) == (503, b"draining\n")


class TestEndpoints:
    def test_metrics_exposition_parses(self, sock):
        config = _config(sock, observability=True)

        async def body(server):
            await request("/hash/sha3_256", b"one", socket_path=sock)
            status, payload = await request("/metrics", method="GET",
                                            socket_path=sock)
            return status, payload.decode()

        status, text = _run(config, body)
        assert status == 200
        sample = re.compile(
            r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? -?[0-9eE.+inf-]+$")
        lines = [l for l in text.splitlines() if l]
        assert lines
        for line in lines:
            if not line.startswith("#"):
                assert sample.match(line), line
        assert 'serve_requests_total{outcome="ok"} 1' in lines

    def test_timeline_endpoint_serves_trace_json(self, sock):
        config = _config(sock, observability=True)

        async def body(server):
            status, payload = await request("/debug/timeline",
                                            method="GET",
                                            socket_path=sock)
            return status, json.loads(payload)

        status, trace = _run(config, body)
        assert status == 200
        assert isinstance(trace["traceEvents"], list)

    def test_healthz_flips_on_drain(self, sock):
        async def body(server):
            healthy = await request("/healthz", method="GET",
                                    socket_path=sock)
            server.draining = True
            drained = await request("/healthz", method="GET",
                                    socket_path=sock)
            return healthy, drained

        healthy, drained = _run(_config(sock), body)
        assert healthy == (200, b"ok\n")
        assert drained == (503, b"draining\n")

    def test_rolling_restart_endpoint(self, sock):
        async def body(server):
            return await request("/admin/rolling-restart",
                                 socket_path=sock)

        status, payload = _run(_config(sock), body)
        assert (status, payload) == (200, b"restarted 0\n")


class TestProtocolHardening:
    def test_unknown_algorithm_404(self, sock):
        async def body(server):
            return await request("/hash/md5", b"x", socket_path=sock)

        status, _ = _run(_config(sock), body)
        assert status == 404

    def test_bad_length_400(self, sock):
        async def body(server):
            return await request("/hash/shake128?length=bogus", b"x",
                                 socket_path=sock)

        status, _ = _run(_config(sock), body)
        assert status == 400

    def test_oversized_length_400(self, sock):
        async def body(server):
            return await request("/hash/shake128?length=999999", b"x",
                                 socket_path=sock)

        status, _ = _run(_config(sock), body)
        assert status == 400

    def test_bad_deadline_header_400(self, sock):
        async def body(server):
            return await request("/hash/sha3_256", b"x",
                                 socket_path=sock,
                                 headers={"X-Deadline-Ms": "soon"})

        status, _ = _run(_config(sock), body)
        assert status == 400

    def test_garbage_request_line_400(self, sock):
        async def body(server):
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(b"NOT HTTP AT ALL\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = _run(_config(sock), body)
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_oversized_body_400(self, sock):
        config = _config(sock, max_body=128)

        async def body(server):
            return await request("/hash/sha3_256", b"z" * 1024,
                                 socket_path=sock)

        status, _ = _run(config, body)
        assert status == 400

    def test_unknown_path_404(self, sock):
        async def body(server):
            return await request("/nope", method="GET", socket_path=sock)

        status, _ = _run(_config(sock), body)
        assert status == 404

    def test_config_requires_an_endpoint(self):
        with pytest.raises(ValueError, match="socket"):
            HashServer(ServeConfig(), executor=InlineExecutor("reference"))


class TestTreeAlgorithmEndpoints:
    """k12 and ParallelHash served over the same /hash/ surface."""

    def test_k12_with_length_param(self, sock):
        from repro.keccak.kangarootwelve import kangarootwelve

        async def body(server):
            return await request("/hash/k12?length=16", b"tree input",
                                 socket_path=sock)

        status, payload = _run(_config(sock), body)
        assert status == 200
        assert payload.decode() == \
            kangarootwelve(b"tree input", 16, engine="reference").hex()

    def test_parallelhash256_default_length_is_64(self, sock):
        from repro.keccak import parallelhash256

        async def body(server):
            return await request("/hash/parallelhash256", b"ph input",
                                 socket_path=sock)

        status, payload = _run(_config(sock), body)
        assert status == 200
        assert payload.decode() == \
            parallelhash256(b"ph input", 64, engine="reference").hex()

    def test_loadgen_verifies_parallelhash128(self, sock):
        async def body(server):
            return await run_load_async(sock, None, 0, 12, 0.0, 48,
                                        "parallelhash128", 32, None, 3,
                                        True, 15.0)

        report = _run(_config(sock), body)
        assert report.ok == 12
        assert report.mismatches == 0

    def test_loadgen_verifies_k12(self, sock):
        async def body(server):
            return await run_load_async(sock, None, 0, 12, 0.0, 48,
                                        "k12", 24, None, 3, True, 15.0)

        report = _run(_config(sock), body)
        assert report.ok == 12
        assert report.mismatches == 0

    def test_expected_digest_rejects_unknown(self):
        from repro.serve.loadgen import _expected_digest

        with pytest.raises(ValueError):
            _expected_digest("md5", 16, b"x")
