"""End-to-end SIGTERM drain: the acceptance scenario for `repro serve`.

A real daemon subprocess takes open-loop traffic from this process;
SIGTERM lands mid-flight.  Every request the daemon accepted must be
answered (client ok count == state-file ok count, zero digest
mismatches), later arrivals must be refused or told `draining` — never
silently dropped — and the daemon must exit 0.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.serve.loadgen import run_load

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def sock():
    scratch = tempfile.mkdtemp(dir="/tmp", prefix="rsvd")
    try:
        yield os.path.join(scratch, "s.sock")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _spawn_daemon(sock, state):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--workers", "2", "--engine", "reference",
         "--state", state, "--deadline-ms", "30000"],
        cwd=str(REPO_ROOT), env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, start_new_session=True)
    deadline = time.monotonic() + 30.0
    while not os.path.exists(sock):
        if proc.poll() is not None:
            raise AssertionError(
                "daemon died at startup:\n" + proc.communicate()[0])
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("daemon never opened its socket")
        time.sleep(0.05)
    return proc


class TestSigtermDrain:
    def test_sigterm_mid_flight_loses_nothing(self, sock):
        state = sock + ".state.json"
        proc = _spawn_daemon(sock, state)
        holder = {}

        def load():
            holder["report"] = run_load(
                sock, requests=100, rate=50.0, size=64,
                algorithm="sha3_256", verify=True, timeout=60.0)

        client = threading.Thread(target=load)
        client.start()
        try:
            time.sleep(0.8)  # ~40 requests launched, some in flight
            os.kill(proc.pid, signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        client.join(timeout=60)
        assert not client.is_alive()
        report = holder["report"]

        assert proc.returncode == 0
        assert "drained cleanly" in out
        saved = json.load(open(state))
        assert saved["pending_at_exit"] == 0
        assert report.mismatches == 0
        assert report.ok > 0  # SIGTERM really landed mid-flight
        # Every accepted request was answered: the daemon's ledger and
        # the client's agree exactly.
        assert saved["outcomes"].get("ok", 0) == report.ok
        # Arrivals after the drain began were refused or told so —
        # nothing hung, nothing vanished.
        assert sum(report.outcomes.values()) == 100
        assert set(report.outcomes) <= \
            {"ok", "connection_error", "draining"}
