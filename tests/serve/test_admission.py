"""Token-bucket admission: deterministic via an injectable clock."""

import pytest

from repro.serve import TokenBucket


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = _Clock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] \
            == [True, True, True, False]

    def test_refills_at_rate(self):
        clock = _Clock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.1)  # exactly one token at 10/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_burst_caps_the_refill(self):
        clock = _Clock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.available() == 2.0

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate=0.0, burst=0.0)
        assert bucket.unlimited
        assert all(bucket.try_acquire() for _ in range(1000))
        assert bucket.available() == float("inf")

    def test_positive_rate_needs_positive_burst(self):
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.0)

    def test_fractional_tokens_accumulate(self):
        clock = _Clock()
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=clock)
        for _ in range(5):
            assert bucket.try_acquire()
        for _ in range(3):
            clock.advance(0.25)
            assert not bucket.try_acquire()
        clock.advance(0.25)  # the fourth quarter completes one token
        assert bucket.try_acquire()
