"""End-to-end instrumentation: counters record, cycles never move.

The arming rule under test (see ``repro.observability.metrics``): armed
metrics observe the simulation without touching it — every paper cycle
pin must be bit-identical armed or disarmed — and worker registries merge
deterministically into the parent after a pool run.
"""

import hashlib

import pytest

import repro
from repro.keccak import keccak_f1600
from repro.observability import metrics
from repro.programs import Session, build_program


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics.disarm()
    metrics.registry().reset()
    yield
    metrics.disarm()
    metrics.registry().reset()


@pytest.fixture
def armed():
    metrics.arm()
    yield metrics.registry()
    metrics.disarm()


#: (ELEN, LMUL) -> (cycles/round, permutation cycles) — paper Tables 5-8.
PIN_TABLE = {
    (64, 1): (103.0, 2564),
    (64, 8): (75.0, 1892),
    (32, 8): (147.0, 3620),
}


class TestArmedPins:
    @pytest.mark.parametrize("elen,lmul", sorted(PIN_TABLE))
    def test_paper_pins_hold_while_armed(self, elen, lmul, random_state,
                                         armed):
        program = build_program(elen, lmul, 5)
        result = Session().run(program, [random_state], trace=True)
        cpr, perm = PIN_TABLE[(elen, lmul)]
        assert result.cycles_per_round == cpr
        assert result.permutation_cycles == perm
        assert result.states == [keccak_f1600(random_state)]

    @pytest.mark.parametrize("elen,lmul", sorted(PIN_TABLE))
    def test_armed_equals_disarmed_exactly(self, elen, lmul, random_state):
        program = build_program(elen, lmul, 5)
        session = Session()
        for trace in (False, True):
            disarmed = session.run(program, [random_state], trace=trace)
            metrics.arm()
            try:
                armed = session.run(program, [random_state], trace=trace)
            finally:
                metrics.disarm()
            assert armed.states == disarmed.states
            assert armed.stats.cycles == disarmed.stats.cycles
            assert armed.stats.instructions == disarmed.stats.instructions
            assert armed.permutation_cycles == disarmed.permutation_cycles


class TestSimCounters:
    def test_session_runs_and_engine_are_recorded(self, armed):
        program = build_program(64, 8, 5)
        session = Session()
        session.run(program, [])
        session.run(program, [])
        assert armed.get("session_runs_total").value(
            program=program.name, geometry="64x5") == 2
        engines = armed.get("sim_runs_total").snapshot()["series"]
        assert sum(e["value"] for e in engines) == 2

    def test_predecode_cache_hit_and_miss(self, armed):
        program = build_program(64, 8, 5)
        session = Session()
        cache = armed.get("sim_predecode_cache_total")
        session.run(program, [])  # fresh processor: predecode miss
        assert cache.value(event="miss") == 1
        assert cache.value(event="hit") == 0
        session.run(program, [])  # same assembled program: hit
        assert cache.value(event="hit") == 1
        assert cache.value(event="miss") == 1
        [series] = armed.get("sim_predecode_seconds").snapshot()["series"]
        assert series["value"]["count"] == 1  # only the miss was timed

    def test_traced_run_records_compiled_fallback(self, armed):
        program = build_program(64, 8, 5)
        Session(engine="compiled").run(program, [], trace=True)
        fallbacks = armed.get("sim_compiled_fallbacks_total")
        assert fallbacks.value(reason="traced") == 1
        assert armed.get("sim_runs_total").value(engine="compiled") == 0

    def test_superblock_occupancy_gauge(self, armed):
        # Superblocks are built lazily on the fused path; the auto
        # engine would compile this program and never touch them.
        program = build_program(64, 8, 5)
        Session(engine="fused").run(program, [])
        fraction = metrics.registry().get("sim_superblock_fused_fraction")
        value = fraction.value(geometry="64x5")
        assert 0.0 < value <= 1.0
        [series] = armed.get("sim_superblock_length").snapshot()["series"]
        assert series["labels"] == {"geometry": "64x5"}
        assert series["value"]["count"] > 0

    def test_codegen_events_are_mirrored(self, armed):
        from repro.sim.codegen import COMPILE_STATS

        before = dict(COMPILE_STATS)
        program = build_program(64, 8, 30)  # the compilable batch shape
        Session(engine="compiled").run(program, [])
        events = armed.get("sim_codegen_total")
        total = sum(e["value"]
                    for e in events.snapshot()["series"])
        mirrored = sum(COMPILE_STATS[k] - before.get(k, 0)
                       for k in COMPILE_STATS)
        assert total == mirrored > 0


class TestWorkerMerge:
    def test_pool_run_merges_worker_snapshots(self, armed):
        messages = [bytes([n]) * 17 for n in range(12)]
        digests = repro.run_many(messages, workers=2, chunk_size=3)
        assert digests == [hashlib.sha3_256(m).digest() for m in messages]

        # Parent-side pool accounting.
        events = armed.get("pool_events_total")
        assert events.value(event="chunks") == 4
        assert events.value(event="completed") == 4
        latency = armed.get("pool_chunk_latency_seconds")
        total = sum(s["value"]["count"]
                    for s in latency.snapshot()["series"])
        assert total == 4

        # Worker-side metrics arrived via snapshot merge: every chunk's
        # Session.run landed in the parent registry even though it ran
        # in a forked process, and per-worker series stay separate.
        runs = armed.get("session_runs_total").snapshot()["series"]
        assert sum(s["value"] for s in runs) >= 4
        task_seconds = armed.get("pool_worker_task_seconds")
        workers = {s["labels"]["worker"]
                   for s in task_seconds.snapshot()["series"]}
        assert workers  # at least one worker reported
        assert all(w in ("0", "1", 0, 1) for w in workers)

    def test_disarmed_pool_run_records_nothing(self):
        messages = [bytes([n]) * 9 for n in range(4)]
        repro.run_many(messages, workers=2, chunk_size=2)
        snap = metrics.registry().snapshot()
        assert all(not family["series"] for family in snap.values()), [
            name for name, family in snap.items() if family["series"]]
