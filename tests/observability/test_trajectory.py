"""The benchmark trajectory: schema, baseline, regression detection."""

import importlib.util
import json
import pathlib

import pytest

from repro.observability import trajectory

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _load_record_module():
    """Import ``benchmarks/record.py`` (not a package) by path."""
    spec = importlib.util.spec_from_file_location(
        "bench_record", REPO_ROOT / "benchmarks" / "record.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _record(name, min_s, cycles=None, **extra):
    wall = {"min": min_s, "max": min_s * 1.5, "mean": min_s * 1.2,
            "stddev": min_s * 0.1, "rounds": 5}
    if cycles is not None:
        extra["cycles"] = cycles
    return trajectory.BenchRecord(name=name, wall_clock=wall, extra=extra)


class _FakeStats:
    min = 0.01
    max = 0.02
    mean = 0.015
    stddev = 0.001
    rounds = 7


class TestSchemaRoundTrip:
    def test_record_py_and_trajectory_agree_on_fields(self):
        record = _load_record_module()
        assert tuple(record.WALL_CLOCK_FIELDS) \
            == tuple(trajectory.WALL_CLOCK_FIELDS)

    def test_round_trip_through_record_benchmark(self, tmp_path):
        # benchmarks/record.py writes what trajectory.py reads — the
        # schema-drift satellite: every documented field, no extras.
        record = _load_record_module()
        stats = record.extract_stats(type("B", (), {"stats": _FakeStats})())
        assert set(stats) == set(trajectory.WALL_CLOCK_FIELDS)
        path = record.record_benchmark(
            str(tmp_path), "test_bench_demo[x]", stats, {"cycles": 1892})
        assert path.endswith(".json")
        records = trajectory.load_records(str(tmp_path))
        loaded = records["test_bench_demo[x]"]
        assert loaded.wall_clock == stats
        assert loaded.cycles == 1892

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(trajectory.TrajectoryError):
            trajectory.validate_record(
                {"name": "x", "wall_clock": {"min": 1.0}})
        with pytest.raises(trajectory.TrajectoryError):
            trajectory.validate_record({"wall_clock": {}})
        with pytest.raises(trajectory.TrajectoryError):
            trajectory.validate_record([1, 2])

    def test_load_rejects_corrupt_json(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(trajectory.TrajectoryError):
            trajectory.load_records(str(tmp_path))

    def test_load_ignores_non_bench_files(self, tmp_path):
        (tmp_path / "README.md").write_text("not a record")
        assert trajectory.load_records(str(tmp_path)) == {}


class TestBaseline:
    def test_write_baseline_round_trips_and_prunes(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        first = {"a": _record("a", 0.01, cycles=100),
                 "dropped": _record("dropped", 0.02)}
        trajectory.write_baseline(first, str(baseline_dir))
        second = {"a": _record("a", 0.01, cycles=100),
                  "b": _record("b", 0.03)}
        written = trajectory.write_baseline(second, str(baseline_dir))
        assert len(written) == 2
        loaded = trajectory.load_records(str(baseline_dir))
        assert set(loaded) == {"a", "b"}  # stale record pruned
        assert loaded["a"].cycles == 100

    def test_normalize_is_stable_json(self, tmp_path):
        rec = _record("n", 0.01, cycles=5, zeta=1, alpha=2)
        out = trajectory.normalize_record(rec)
        assert list(out) == ["name", "wall_clock", "extra"]
        assert list(out["extra"]) == ["alpha", "cycles", "zeta"]
        json.dumps(out)  # plain data

    def test_check_baseline_flags_problems(self):
        assert trajectory.check_baseline({})  # empty trajectory
        healthy = {
            name: _record(name, 0.01, cycles=pin + 9)
            for name, pin in trajectory.PIN_BENCHES.items()
        }
        assert trajectory.check_baseline(healthy) == []
        missing = dict(healthy)
        missing.pop("test_bench_32bit_permutation")
        assert any("missing" in p
                   for p in trajectory.check_baseline(missing))
        low = dict(healthy)
        low["test_bench_32bit_permutation"] = _record(
            "test_bench_32bit_permutation", 0.01, cycles=100)
        assert any("below the paper pin" in p
                   for p in trajectory.check_baseline(low))

    def test_committed_baseline_is_valid(self):
        # The acceptance criterion: the repo ships a non-empty,
        # schema-valid baseline with all three paper pins.
        baseline = trajectory.load_records(
            str(REPO_ROOT / "benchmarks" / "baseline"))
        assert trajectory.check_baseline(baseline) == []


class TestCompare:
    def test_no_regression_on_identical_runs(self):
        records = {"a": _record("a", 0.01, cycles=50),
                   "b": _record("b", 0.02)}
        report = trajectory.compare(records, records)
        assert report.ok and report.compared == 2
        assert report.scale == pytest.approx(1.0)

    def test_uniform_machine_slowdown_is_not_a_regression(self):
        baseline = {n: _record(n, m) for n, m in
                    [("a", 0.01), ("b", 0.02), ("c", 0.04)]}
        fresh = {n: _record(n, m * 3.0) for n, m in
                 [("a", 0.01), ("b", 0.02), ("c", 0.04)]}
        report = trajectory.compare(fresh, baseline)
        assert report.ok
        assert report.scale == pytest.approx(3.0)

    def test_single_benchmark_regression_is_flagged(self):
        baseline = {n: _record(n, 0.01) for n in "abcde"}
        fresh = {n: _record(n, 0.01) for n in "abcd"}
        fresh["e"] = _record("e", 0.02)  # 2x slower than its peers
        report = trajectory.compare(fresh, baseline)
        assert not report.ok
        [reg] = report.regressions
        assert reg.name == "e" and reg.kind == "wall-clock"
        assert "e" in str(reg)

    def test_cycle_change_is_always_a_regression(self):
        baseline = {"a": _record("a", 0.01, cycles=1892)}
        fresh = {"a": _record("a", 0.01, cycles=1893)}
        report = trajectory.compare(fresh, baseline)
        assert not report.ok
        [reg] = report.regressions
        assert reg.kind == "cycles"

    def test_added_and_missing_benchmarks_reported_not_failed(self):
        baseline = {"a": _record("a", 0.01), "old": _record("old", 0.01)}
        fresh = {"a": _record("a", 0.01), "new": _record("new", 0.01)}
        report = trajectory.compare(fresh, baseline)
        assert report.ok
        assert report.missing == ["old"] and report.added == ["new"]
        assert "old" in report.summary() and "new" in report.summary()

    def test_improvements_are_counted(self):
        baseline = {n: _record(n, 0.01) for n in "abcde"}
        fresh = {n: _record(n, 0.01) for n in "abcd"}
        fresh["e"] = _record("e", 0.004)
        report = trajectory.compare(fresh, baseline)
        assert report.ok and report.improvements == ["e"]

    def test_empty_fresh_artifact_set_fails(self):
        # A bench job that produced no BENCH_*.json at all must fail
        # the trajectory check, not sail through with zero comparisons.
        baseline = {"a": _record("a", 0.01)}
        report = trajectory.compare({}, baseline)
        assert not report.ok
        assert report.empty
        assert "empty" in report.summary()

    def test_threshold_is_respected(self):
        baseline = {n: _record(n, 0.01) for n in "abcde"}
        fresh = dict(baseline)
        fresh["e"] = _record("e", 0.0112)  # +12%: inside 15%, outside 5%
        assert trajectory.compare(fresh, baseline).ok
        assert not trajectory.compare(fresh, baseline, threshold=0.05).ok


def test_aggregate_renders_table():
    records = {"bench": _record("bench", 0.01, cycles=1892)}
    text = trajectory.aggregate(records)
    assert "bench" in text and "1892" in text
    assert trajectory.aggregate({}) == "(no benchmark records)"
