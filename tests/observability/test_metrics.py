"""The metrics registry: families, labels, snapshot/merge/delta."""

import pickle

import pytest

from repro.observability.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    delta,
    render_prometheus,
    render_snapshot,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        runs = registry.counter("runs", "total runs", ("engine",))
        runs.inc(engine="fused")
        runs.inc(2, engine="fused")
        runs.inc(engine="compiled")
        assert runs.value(engine="fused") == 3
        assert runs.value(engine="compiled") == 1
        assert runs.value(engine="stepped") == 0

    def test_rejects_negative(self, registry):
        runs = registry.counter("runs")
        with pytest.raises(ValueError):
            runs.inc(-1)

    def test_rejects_wrong_labels(self, registry):
        runs = registry.counter("runs", "", ("engine",))
        with pytest.raises(ValueError):
            runs.inc(program="x")
        with pytest.raises(ValueError):
            runs.inc()  # missing the engine label


class TestGauge:
    def test_set_remembers_last(self, registry):
        g = registry.gauge("occupancy")
        g.set(0.5)
        g.set(0.25)
        assert g.value() == 0.25


class TestHistogram:
    def test_bucketing(self, registry):
        h = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        [series] = snap["series"]
        assert series["value"]["counts"] == [1, 1, 1, 1]  # incl. +Inf
        assert series["value"]["count"] == 4
        assert series["value"]["sum"] == pytest.approx(5.555)

    def test_boundary_lands_in_its_bucket(self, registry):
        # bisect_left: an observation equal to an upper bound counts in
        # that bucket (Prometheus "le" semantics).
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)
        [series] = h.snapshot()["series"]
        assert series["value"]["counts"] == [1, 0, 0]

    def test_rejects_unsorted_buckets(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0))

    def test_count_buckets_cover_superblock_lengths(self):
        assert COUNT_BUCKETS[0] == 1 and COUNT_BUCKETS[-1] >= 256


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        a = registry.counter("runs", "help", ("engine",))
        b = registry.counter("runs", "help", ("engine",))
        assert a is b

    def test_type_mismatch_raises(self, registry):
        registry.counter("runs")
        with pytest.raises(ValueError):
            registry.gauge("runs")

    def test_label_mismatch_raises(self, registry):
        registry.counter("runs", "", ("engine",))
        with pytest.raises(ValueError):
            registry.counter("runs", "", ("program",))

    def test_reset_keeps_family_references_valid(self, registry):
        runs = registry.counter("runs", "", ("engine",))
        runs.inc(engine="fused")
        registry.reset()
        assert runs.value(engine="fused") == 0
        runs.inc(engine="fused")  # the old reference still records
        assert registry.get("runs").value(engine="fused") == 1

    def test_snapshot_is_plain_data(self, registry):
        registry.counter("runs", "", ("engine",)).inc(engine="fused")
        registry.histogram("lat").observe(0.2)
        registry.gauge("g").set(7)
        snap = registry.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap["runs"]["series"] == [
            {"labels": {"engine": "fused"}, "value": 1}
        ]


class TestMerge:
    def _worker_snapshot(self, inc_by):
        worker = MetricsRegistry()
        worker.counter("runs", "", ("engine",)).inc(inc_by, engine="fused")
        worker.gauge("peak").set(inc_by)
        h = worker.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(inc_by)
        return worker.snapshot()

    def test_merge_is_commutative(self):
        snaps = [self._worker_snapshot(n) for n in (1, 2, 3)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()
        assert forward.get("runs").value(engine="fused") == 6
        assert forward.get("peak").value() == 3  # gauges take the max
        [series] = forward.get("lat").snapshot()["series"]
        assert series["value"]["count"] == 6

    def test_merge_into_populated_registry_adds(self):
        parent = MetricsRegistry()
        parent.counter("runs", "", ("engine",)).inc(5, engine="fused")
        parent.merge(self._worker_snapshot(2))
        assert parent.get("runs").value(engine="fused") == 7

    def test_merge_bucket_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.histogram("lat", buckets=(0.5,)).observe(0.1)
        with pytest.raises(ValueError):
            parent.merge(self._worker_snapshot(1))

    def test_merge_unknown_type_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge(
                {"x": {"type": "summary", "series": []}})


class TestDelta:
    def test_counter_and_histogram_delta(self, registry):
        c = registry.counter("runs", "", ("engine",))
        h = registry.histogram("lat", buckets=(1.0,))
        c.inc(2, engine="fused")
        h.observe(0.5)
        before = registry.snapshot()
        c.inc(3, engine="fused")
        c.inc(engine="compiled")
        h.observe(2.0)
        after = registry.snapshot()
        d = delta(before, after)
        values = {tuple(e["labels"].items()): e["value"]
                  for e in d["runs"]["series"]}
        assert values[(("engine", "fused"),)] == 3
        assert values[(("engine", "compiled"),)] == 1
        [series] = d["lat"]["series"]
        assert series["value"]["counts"] == [0, 1]
        assert series["value"]["count"] == 1

    def test_unchanged_series_are_dropped(self, registry):
        c = registry.counter("runs")
        c.inc()
        snap = registry.snapshot()
        assert delta(snap, snap) == {}


def test_render_snapshot_mentions_series():
    registry = MetricsRegistry()
    registry.counter("runs", "", ("engine",)).inc(4, engine="fused")
    registry.histogram("lat").observe(0.25)
    text = render_snapshot(registry.snapshot())
    assert "runs" in text and "engine=fused" in text and "4" in text
    assert "count=1" in text
    assert render_snapshot(MetricsRegistry().snapshot()) \
        == "(no metrics recorded)"


class TestRenderPrometheus:
    def test_counter_and_gauge_samples(self, registry):
        registry.counter("runs_total", "total runs",
                         ("engine",)).inc(4, engine="fused")
        registry.gauge("depth", "queue depth").set(3)
        text = render_prometheus(registry.snapshot())
        assert "# HELP runs_total total runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{engine="fused"} 4' in text
        assert "# TYPE depth gauge" in text
        assert "depth 3" in text.splitlines()

    def test_histogram_buckets_are_cumulative(self, registry):
        h = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(registry.snapshot())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5.55" in text
        assert "lat_count 3" in text

    def test_label_values_are_escaped(self, registry):
        registry.counter("c", "", ("path",)).inc(path='a"b\\c\nd')
        text = render_prometheus(registry.snapshot())
        assert r'c{path="a\"b\\c\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_every_sample_line_parses(self, registry):
        import re
        registry.counter("runs_total", "", ("engine",)).inc(engine="x")
        registry.histogram("lat", "l").observe(0.2)
        registry.gauge("g", "g").set(1.5)
        sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
                            r"(\{[^{}]*\})? \S+$")
        for line in render_prometheus(registry.snapshot()).splitlines():
            if line and not line.startswith("#"):
                assert sample.match(line), line


class TestServeFamilies:
    """The serving daemon's families obey the registry merge rules —
    what makes worker-side serve metrics safe to fold into the parent."""

    def _serve_snapshot(self, ok, depth, latency):
        worker = MetricsRegistry()
        worker.counter("serve_requests_total", "", ("outcome",)).inc(
            ok, outcome="ok")
        worker.gauge("serve_queue_depth", "").set(depth)
        worker.histogram("serve_request_latency_seconds", "",
                         ("algorithm",),
                         buckets=(0.01, 0.1, 1.0)).observe(
            latency, algorithm="sha3_256")
        return worker.snapshot()

    def test_outcome_counts_add_and_depth_takes_max(self):
        parent = MetricsRegistry()
        parent.merge(self._serve_snapshot(3, 5, 0.05))
        parent.merge(self._serve_snapshot(2, 1, 0.5))
        assert parent.get("serve_requests_total").value(outcome="ok") == 5
        assert parent.get("serve_queue_depth").value() == 5  # max, not sum
        [series] = parent.get(
            "serve_request_latency_seconds").snapshot()["series"]
        assert series["value"]["count"] == 2
        assert series["value"]["counts"] == [0, 1, 1, 0]

    def test_merged_serve_snapshot_still_renders(self):
        parent = MetricsRegistry()
        parent.merge(self._serve_snapshot(1, 2, 0.02))
        text = render_prometheus(parent.snapshot())
        assert 'serve_requests_total{outcome="ok"} 1' in text
        assert 'serve_request_latency_seconds_bucket' \
            '{algorithm="sha3_256",le="+Inf"} 1' in text


def test_families_are_typed():
    registry = MetricsRegistry()
    assert isinstance(registry.counter("a"), Counter)
    assert isinstance(registry.gauge("b"), Gauge)
    assert isinstance(registry.histogram("c"), Histogram)
