"""Chrome trace_event timelines: format, lanes, export, arming."""

import json

import pytest

from repro.observability import timeline


@pytest.fixture(autouse=True)
def _no_active_timeline():
    timeline.stop()
    yield
    timeline.stop()


def test_complete_event_format():
    tl = timeline.Timeline()
    tl.complete("run", start=0.001, duration=0.002, tid=3,
                args={"engine": "fused"})
    [event] = tl.events
    assert event["ph"] == "X"
    assert event["name"] == "run"
    assert event["ts"] == pytest.approx(1000.0)   # µs
    assert event["dur"] == pytest.approx(2000.0)
    assert event["tid"] == 3
    assert event["args"] == {"engine": "fused"}


def test_instant_and_lane_labels():
    tl = timeline.Timeline()
    tl.label_lane(1, "worker 0")
    tl.instant("quarantine", tid=1)
    meta, instant = tl.events
    assert meta["ph"] == "M" and meta["args"] == {"name": "worker 0"}
    assert instant["ph"] == "i" and instant["tid"] == 1


def test_now_is_monotonic_from_origin():
    tl = timeline.Timeline()
    a = tl.now()
    b = tl.now()
    assert 0 <= a <= b


def test_export_round_trips(tmp_path):
    tl = timeline.Timeline()
    tl.complete("span", 0.0, 0.5)
    path = tl.export(str(tmp_path / "trace.json"))
    with open(path) as handle:
        data = json.load(handle)
    assert data["displayTimeUnit"] == "ms"
    assert data["traceEvents"] == tl.events


def test_start_stop_toggle_active():
    assert timeline.active() is None
    tl = timeline.start()
    assert timeline.active() is tl
    # The session lane is pre-labeled.
    assert tl.events[0]["ph"] == "M"
    assert tl.events[0]["tid"] == timeline.MAIN_LANE
    stopped = timeline.stop()
    assert stopped is tl
    assert timeline.active() is None
    assert timeline.stop() is None  # idempotent


def test_session_run_records_span():
    from repro.programs import Session, build_program

    session = Session()
    program = build_program(64, 8, 5)
    tl = timeline.start()
    session.run(program)
    timeline.stop()
    spans = [e for e in tl.events if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["name"] == program.name
    assert spans[0]["tid"] == timeline.MAIN_LANE
    assert spans[0]["dur"] > 0
    assert spans[0]["args"]["geometry"] == "64x5"


def test_no_events_recorded_without_active_timeline():
    from repro.programs import Session, build_program

    tl = timeline.Timeline()  # constructed but never started
    Session().run(build_program(64, 8, 5))
    assert tl.events == []
