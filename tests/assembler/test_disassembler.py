"""Tests for the disassembler, including full round-trip properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembler import assemble, disassemble, disassemble_word
from repro.isa import ISA
from repro.isa.formats import encode_instruction
from repro.programs import keccak32_lmul8, keccak64_lmul1, keccak64_lmul8, scalar_keccak


class TestSingleWords:
    def test_addi(self):
        assert disassemble_word(0x06410093) == "addi ra, sp, 100"

    def test_unknown_word_renders_as_data(self):
        assert disassemble_word(0x00000000) == ".word 0x00000000"

    def test_branch_target_absolute(self):
        program = assemble("loop:\nnop\nblt s3, s4, loop", base_address=0x100)
        text = disassemble_word(program.words[1], 0x104)
        assert text == "blt s3, s4, 0x100"

    def test_vsetvli_renders_vtype(self):
        program = assemble("vsetvli x0, s1, e64, m8, tu, mu")
        assert disassemble_word(program.words[0]) == \
            "vsetvli zero, s1, e64,m8,tu,mu"

    def test_mask_suffix_rendered(self):
        program = assemble("vadd.vv v1, v2, v3, v0.t")
        assert disassemble_word(program.words[0]).endswith(", v0.t")

    def test_memory_operand_rendered(self):
        program = assemble("lw t0, -4(sp)")
        assert disassemble_word(program.words[0]) == "lw t0, -4(sp)"

    def test_vector_load_rendered(self):
        program = assemble("vle64.v v0, (a0)")
        assert disassemble_word(program.words[0]) == "vle64.v v0, (a0)"


class TestRoundTrips:
    def _round_trip(self, source):
        """asm -> dis -> asm must reproduce identical machine code."""
        program = assemble(source)
        texts = disassemble(program.words, program.base_address)
        # Branch/jump targets come back as absolute addresses, which the
        # assembler evaluates relative to each line's own address.
        reassembled = assemble("\n".join(texts))
        assert reassembled.words == program.words

    def test_straight_line_round_trip(self):
        self._round_trip("""
            addi x1, x2, -7
            lui t0, 0x12345
            lw a0, 16(sp)
            sw a0, -16(sp)
            xor s1, s2, s3
            srai t1, t2, 5
            mul a2, a3, a4
            vsetvli x0, s1, e32, m8, tu, mu
            vxor.vv v5, v3, v4
            vand.vi v1, v2, -5
            vslidedownm.vi v7, v5, 2
            v64rho.vi v0, v0, -1
            vpi.vi v5, v0, 3
            viota.vx v0, v0, s3
            vle32.v v1, (a0)
            vsse64.v v2, (a1), t3
            ecall
        """)

    def test_keccak_programs_round_trip(self):
        for program in (
            keccak64_lmul1.build(15).assemble(),
            keccak64_lmul8.build(30).assemble(),
            keccak32_lmul8.build(5).assemble(),
            scalar_keccak.build().assemble(),
        ):
            texts = disassemble(program.words, program.base_address)
            reassembled = assemble("\n".join(texts))
            assert reassembled.words == program.words


@given(mnemonic=st.sampled_from(sorted(ISA.mnemonics())),
       regs=st.lists(st.integers(0, 31), min_size=4, max_size=4),
       imm=st.integers(-16, 15),
       data=st.data())
@settings(max_examples=200, deadline=None)
def test_fuzz_encode_disassemble_reassemble(mnemonic, regs, imm, data):
    """Any encodable instruction survives dis/assembly bit-exactly."""
    spec = ISA.lookup(mnemonic)
    ops = {}
    for name in spec.operands:
        if name in ("rd", "rs1", "rs2"):
            ops[name] = regs[0]
        elif name in ("vd", "vs1", "vs2"):
            ops[name] = regs[1]
        elif name == "imm":
            if spec.fmt in ("i", "load", "store", "jalr"):
                ops[name] = data.draw(st.integers(-2048, 2047))
            elif spec.fmt == "u":
                ops[name] = data.draw(st.integers(0, (1 << 20) - 1))
            elif spec.extra.get("signed_imm"):
                ops[name] = imm
            else:
                ops[name] = abs(imm)
        elif name == "shamt":
            ops[name] = data.draw(st.integers(0, 31))
        elif name == "offset":
            ops[name] = 2 * data.draw(st.integers(-512, 511))
        elif name == "vtype":
            ops[name] = data.draw(st.sampled_from([0x18, 0x1B, 0x10, 0x13]))
        elif name == "csr":
            ops[name] = data.draw(st.sampled_from(
                [0x008, 0xC00, 0xC01, 0xC02, 0xC20, 0xC21, 0xC22]))
    if spec.fmt.startswith("v"):
        ops.setdefault("vm", data.draw(st.sampled_from([0, 1])))
    word = encode_instruction(spec, ops)
    address = 0x1000
    text = disassemble_word(word, address)
    assert not text.startswith(".word"), (mnemonic, hex(word))
    reassembled = assemble(text, base_address=address)
    assert reassembled.words[-1] == word, (mnemonic, text)
