"""Tests for the two-pass assembler."""

import pytest

from repro.assembler import AssemblyError, SymbolError, assemble
from repro.isa import ISA, decode_operands


def words_of(source, base=0):
    return assemble(source, base).words


class TestBasicAssembly:
    def test_single_instruction(self):
        words = words_of("addi x1, x2, 100")
        assert words == [0x06410093]

    def test_known_add_encoding(self):
        assert words_of("add x1, x2, x3") == [0x003100B3]

    def test_abi_names(self):
        assert words_of("add ra, sp, gp") == words_of("add x1, x2, x3")

    def test_program_size(self):
        program = assemble("nop\nnop\nnop")
        assert program.size_bytes == 12
        assert len(program.instructions) == 3

    def test_addresses_sequential(self):
        program = assemble("nop\nnop", base_address=0x100)
        assert [i.address for i in program.instructions] == [0x100, 0x104]

    def test_to_bytes_little_endian(self):
        program = assemble("addi x1, x2, 100")
        assert program.to_bytes() == (0x06410093).to_bytes(4, "little")

    def test_word_at(self):
        program = assemble("nop\naddi x1, x2, 100", base_address=0x40)
        assert program.word_at(0x44) == 0x06410093
        assert program.word_at(0x46) is None
        assert program.word_at(0x48) is None

    def test_listing_contains_source(self):
        listing = assemble("addi x1, x2, 100  # bump").listing()
        assert "addi x1, x2, 100" in listing
        assert "06410093" in listing


class TestLabelsAndBranches:
    def test_backward_branch_offset(self):
        program = assemble("loop:\nnop\nblt s3, s4, loop")
        word = program.words[1]
        spec = ISA.find(word)
        assert spec.mnemonic == "blt"
        assert decode_operands(word, spec)["offset"] == -4

    def test_forward_branch_offset(self):
        program = assemble("beq x0, x0, done\nnop\ndone:\nnop")
        word = program.words[0]
        assert decode_operands(word, ISA.find(word))["offset"] == 8

    def test_jump_to_label(self):
        program = assemble("start:\nnop\nj start")
        word = program.words[1]
        spec = ISA.find(word)
        assert spec.mnemonic == "jal"
        assert decode_operands(word, spec)["offset"] == -4

    def test_label_redefinition_rejected(self):
        with pytest.raises(SymbolError, match="redefined"):
            assemble("x:\nnop\nx:\nnop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined symbol"):
            assemble("beq x0, x0, nowhere")

    def test_labels_in_symbol_table(self):
        program = assemble("nop\nhere:\nnop", base_address=0x10)
        assert program.symbols["here"] == 0x14

    def test_label_after_pseudo_accounts_expansion(self):
        # li with a large value expands to 2 instructions; the label after
        # it must sit at +8.
        program = assemble("li t0, 0x12345\nafter:\nnop")
        assert program.symbols["after"] == 8


class TestDirectives:
    def test_equ_constant(self):
        words = words_of(".equ N, 30\naddi x1, x0, N")
        assert decode_operands(words[0], ISA.find(words[0]))["imm"] == 30

    def test_equ_expression(self):
        words = words_of(".equ A, 8\n.equ B, A * 5\naddi x1, x0, B")
        assert decode_operands(words[0], ISA.find(words[0]))["imm"] == 40

    def test_equ_redefinition_rejected(self):
        with pytest.raises(SymbolError):
            assemble(".equ N, 1\n.equ N, 2")

    def test_word_directive(self):
        program = assemble(".word 0xDEADBEEF, 17")
        assert program.words == [0xDEADBEEF, 17]

    def test_org_pads_with_nops(self):
        program = assemble("nop\n.org 0x10\nmarker:\naddi x1, x0, 1")
        assert program.symbols["marker"] == 0x10
        assert len(program.instructions) == 5  # 1 + 3 pad + 1

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblyError, match="backwards"):
            assemble("nop\nnop\n.org 4")

    def test_align(self):
        program = assemble("nop\n.align 3\nhere:\nnop")
        assert program.symbols["here"] == 8

    def test_ignored_directives(self):
        program = assemble(".text\n.globl main\nmain:\nnop")
        assert len(program.instructions) == 1

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".bogus 1")


class TestVectorAssembly:
    def test_vsetvli_paper_syntax(self):
        words = words_of("vsetvli x0, s1, e64, m1, tu, mu")
        spec = ISA.find(words[0])
        assert spec.mnemonic == "vsetvli"
        assert decode_operands(words[0], spec)["vtype"] == 0b011_000

    def test_vector_arith_operand_order(self):
        # vxor.vv vd, vs2, vs1
        words = words_of("vxor.vv v5, v3, v4")
        ops = decode_operands(words[0], ISA.find(words[0]))
        assert ops == {"vd": 5, "vs2": 3, "vs1": 4, "vm": 1}

    def test_mask_suffix(self):
        words = words_of("vadd.vv v1, v2, v3, v0.t")
        assert decode_operands(words[0], ISA.find(words[0]))["vm"] == 0

    def test_unit_stride_load(self):
        words = words_of("vle64.v v0, (a0)")
        ops = decode_operands(words[0], ISA.find(words[0]))
        assert ops["vd"] == 0
        assert ops["rs1"] == 10

    def test_load_with_offset_rejected(self):
        with pytest.raises(AssemblyError, match="no address offset"):
            assemble("vle64.v v0, 8(a0)")

    def test_strided_store(self):
        words = words_of("vsse32.v v2, (a0), t1")
        ops = decode_operands(words[0], ISA.find(words[0]))
        assert ops["rs2"] == 6

    def test_indexed_load(self):
        words = words_of("vluxei32.v v2, (a0), v8")
        ops = decode_operands(words[0], ISA.find(words[0]))
        assert ops["vs2"] == 8

    def test_custom_instructions_assemble(self):
        source = """
            vslidedownm.vi v7, v5, 1
            vslideupm.vi v6, v5, 1
            vrotup.vi v7, v7, 1
            v64rho.vi v0, v0, -1
            vpi.vi v5, v0, 0
            viota.vx v0, v0, s3
            v32lrotup.vv v8, v23, v7
            v32hrho.vv v24, v16, v0
        """
        program = assemble(source)
        mnemonics = [i.mnemonic for i in program.instructions]
        assert mnemonics == [
            "vslidedownm.vi", "vslideupm.vi", "vrotup.vi", "v64rho.vi",
            "vpi.vi", "viota.vx", "v32lrotup.vv", "v32hrho.vv",
        ]

    def test_paper_vi_alias_for_vv_customs(self):
        # The paper's Table 3 spells v32lrotup with a .vi suffix.
        a = words_of("v32lrotup.vi v8, v23, v7")
        b = words_of("v32lrotup.vv v8, v23, v7")
        assert a == b

    def test_signed_custom_immediate_range(self):
        with pytest.raises(AssemblyError):
            assemble("v64rho.vi v0, v0, 16")  # simm5 max is 15


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown instruction"):
            assemble("frobnicate x1, x2")

    def test_error_reports_line(self):
        with pytest.raises(AssemblyError) as err:
            assemble("nop\nnop\nbadop x1")
        assert err.value.line_number == 3

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add x1, x2")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblyError):
            assemble("addi x1, x2, 5000")

    def test_scalar_where_vector_expected(self):
        with pytest.raises(AssemblyError, match="vector register"):
            assemble("vxor.vv x1, v2, v3")

    def test_vector_where_scalar_expected(self):
        with pytest.raises(AssemblyError, match="scalar register"):
            assemble("addi v1, x2, 0")

    def test_branch_offset_overflow(self):
        source = "start:\n" + ".zero 8192\n" + "beq x0, x0, start"
        with pytest.raises(AssemblyError):
            assemble(source)
