"""Tests for pseudo-instruction expansion."""

import pytest

from repro.assembler.errors import OperandError
from repro.assembler.pseudo import expand_pseudo, is_pseudo, pseudo_size


class TestLi:
    def test_small_immediate_single_addi(self):
        assert expand_pseudo("li", ["t0", "42"], {}) == \
            [("addi", ["t0", "x0", "42"])]

    def test_negative_small(self):
        assert expand_pseudo("li", ["t0", "-2048"], {}) == \
            [("addi", ["t0", "x0", "-2048"])]

    def test_large_immediate_lui_addi(self):
        pieces = expand_pseudo("li", ["t0", "0x12345"], {})
        assert len(pieces) == 2
        assert pieces[0][0] == "lui"
        assert pieces[1][0] == "addi"

    def test_large_expansion_reconstructs_value(self):
        for value in (0x12345, 0xFFFFF800, 0x7FFFFFFF, -0x80000000, 4096,
                      0x1000, 0xABCDE123, -1, 2047, 2048, -2049):
            pieces = expand_pseudo("li", ["t0", str(value)], {})
            result = 0
            for mnemonic, ops in pieces:
                if mnemonic == "lui":
                    result = (int(ops[1], 0) << 12) & 0xFFFFFFFF
                elif mnemonic == "addi":
                    base = 0 if ops[1] == "x0" else result
                    result = (base + int(ops[1 + 1], 0)) & 0xFFFFFFFF
            assert result == value & 0xFFFFFFFF, value

    def test_symbolic_immediate(self):
        assert expand_pseudo("li", ["s1", "N"], {"N": 30}) == \
            [("addi", ["s1", "x0", "30"])]

    def test_out_of_range(self):
        with pytest.raises(OperandError):
            expand_pseudo("li", ["t0", str(1 << 32)], {})

    def test_fixed_size_for_layout(self):
        # The pass-1 size must equal the pass-2 expansion length.
        for imm in ("0", "0x1000", "0x12345678"):
            size = pseudo_size("li", ["t0", imm], {})
            assert size == len(expand_pseudo("li", ["t0", imm], {}))

    def test_wrong_operand_count(self):
        with pytest.raises(OperandError):
            expand_pseudo("li", ["t0"], {})


class TestSimplePseudos:
    def test_mv(self):
        assert expand_pseudo("mv", ["a0", "a1"], {}) == \
            [("addi", ["a0", "a1", "0"])]

    def test_not(self):
        assert expand_pseudo("not", ["t0", "t1"], {}) == \
            [("xori", ["t0", "t1", "-1"])]

    def test_neg(self):
        assert expand_pseudo("neg", ["t0", "t1"], {}) == \
            [("sub", ["t0", "x0", "t1"])]

    def test_nop(self):
        assert expand_pseudo("nop", [], {}) == \
            [("addi", ["x0", "x0", "0"])]

    def test_j(self):
        assert expand_pseudo("j", ["loop"], {}) == \
            [("jal", ["x0", "loop"])]

    def test_jr_and_ret(self):
        assert expand_pseudo("jr", ["t0"], {}) == \
            [("jalr", ["x0", "t0", "0"])]
        assert expand_pseudo("ret", [], {}) == \
            [("jalr", ["x0", "ra", "0"])]

    def test_call(self):
        assert expand_pseudo("call", ["func"], {}) == \
            [("jal", ["ra", "func"])]

    def test_branch_aliases_swap_operands(self):
        assert expand_pseudo("bgt", ["a0", "a1", "x"], {}) == \
            [("blt", ["a1", "a0", "x"])]
        assert expand_pseudo("ble", ["a0", "a1", "x"], {}) == \
            [("bge", ["a1", "a0", "x"])]

    def test_zero_compare_branches(self):
        assert expand_pseudo("beqz", ["a0", "x"], {}) == \
            [("beq", ["a0", "x0", "x"])]
        assert expand_pseudo("bnez", ["a0", "x"], {}) == \
            [("bne", ["a0", "x0", "x"])]

    def test_vector_pseudos(self):
        assert expand_pseudo("vmv.v.v", ["v1", "v2"], {}) == \
            [("vadd.vi", ["v1", "v2", "0"])]
        assert expand_pseudo("vnot.v", ["v1", "v2"], {}) == \
            [("vxor.vi", ["v1", "v2", "-1"])]

    def test_operand_count_validation(self):
        for mnemonic, tokens in [("mv", ["a0"]), ("nop", ["x"]),
                                 ("ret", ["x"]), ("j", []),
                                 ("bgt", ["a0", "a1"])]:
            with pytest.raises(OperandError):
                expand_pseudo(mnemonic, tokens, {})


class TestPredicate:
    def test_known_pseudos(self):
        for name in ("li", "mv", "not", "nop", "j", "ret", "vmv.v.v"):
            assert is_pseudo(name)

    def test_real_instructions_are_not_pseudo(self):
        for name in ("addi", "vxor.vv", "vpi.vi"):
            assert not is_pseudo(name)

    def test_expand_non_pseudo_raises(self):
        with pytest.raises(OperandError):
            expand_pseudo("addi", ["x1", "x1", "1"], {})
