"""Tests for assembly-line lexing."""

import pytest

from repro.assembler.errors import AssemblyError
from repro.assembler.lexer import lex, lex_line, split_operands, strip_comment


class TestComments:
    def test_hash_comment(self):
        assert strip_comment("addi x1, x1, 1 # inc") == "addi x1, x1, 1 "

    def test_double_slash_comment(self):
        assert strip_comment("nop // nothing") == "nop "

    def test_semicolon_comment(self):
        assert strip_comment("nop ; nothing") == "nop "

    def test_comment_only_line(self):
        line = lex_line(1, "# just a comment")
        assert line.is_empty


class TestLabels:
    def test_label_alone(self):
        line = lex_line(1, "loop:")
        assert line.label == "loop"
        assert line.mnemonic is None

    def test_label_with_instruction(self):
        line = lex_line(1, "loop: addi x1, x1, 1")
        assert line.label == "loop"
        assert line.mnemonic == "addi"
        assert line.operands == ["x1", "x1", "1"]

    def test_label_with_dots_and_underscores(self):
        assert lex_line(1, "_my.label$2:").label == "_my.label$2"

    def test_numeric_start_is_not_a_label(self):
        # "1:" is not a valid identifier here.
        line = lex_line(1, "1: nop")
        assert line.label is None


class TestOperands:
    def test_simple_split(self):
        assert split_operands("x1, x2, 3") == ["x1", "x2", "3"]

    def test_memory_operand_kept_together(self):
        assert split_operands("t0, 8(sp)") == ["t0", "8(sp)"]

    def test_vtype_tokens(self):
        line = lex_line(1, "vsetvli x0, s1, e64, m1, tu, mu")
        assert line.operands == ["x0", "s1", "e64", "m1", "tu", "mu"]

    def test_unbalanced_parens(self):
        with pytest.raises(AssemblyError, match="unbalanced"):
            split_operands("t0, 8(sp")
        with pytest.raises(AssemblyError, match="unbalanced"):
            split_operands("t0, 8)sp(")

    def test_empty_operand(self):
        with pytest.raises(AssemblyError, match="empty operand"):
            split_operands("x1,, x2")

    def test_mask_operand(self):
        line = lex_line(1, "vadd.vv v1, v2, v3, v0.t")
        assert line.operands[-1] == "v0.t"


class TestLexWholeSource:
    def test_skips_blank_lines(self):
        lines = lex("\n\naddi x1, x1, 1\n\n# c\nnop\n")
        assert [l.mnemonic for l in lines] == ["addi", "nop"]

    def test_line_numbers_are_original(self):
        lines = lex("\nnop\n\nnop\n")
        assert [l.number for l in lines] == [2, 4]

    def test_directive_detection(self):
        lines = lex(".equ N, 5\naddi x1, x0, N\n")
        assert lines[0].is_directive
        assert not lines[1].is_directive

    def test_mnemonic_lowercased(self):
        assert lex_line(1, "ADDI x1, x1, 1").mnemonic == "addi"

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as err:
            lex("nop\naddi x1,, 1\n")
        assert err.value.line_number == 2
