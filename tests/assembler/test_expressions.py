"""Tests for the constant-expression evaluator."""

import pytest

from repro.assembler.errors import OperandError
from repro.assembler.expressions import evaluate, is_plain_integer


class TestLiterals:
    def test_decimal(self):
        assert evaluate("42") == 42

    def test_hex(self):
        assert evaluate("0x1000") == 4096
        assert evaluate("0XFF") == 255

    def test_binary_and_octal(self):
        assert evaluate("0b1010") == 10
        assert evaluate("0o17") == 15

    def test_negative(self):
        assert evaluate("-1") == -1
        assert evaluate("-0x10") == -16

    def test_unary_plus_and_not(self):
        assert evaluate("+5") == 5
        assert evaluate("~0") == -1


class TestOperators:
    def test_additive(self):
        assert evaluate("1 + 2 - 3") == 0

    def test_precedence(self):
        assert evaluate("2 + 3 * 4") == 14
        assert evaluate("(2 + 3) * 4") == 20

    def test_shifts(self):
        assert evaluate("1 << 12") == 4096
        assert evaluate("256 >> 4") == 16

    def test_bitwise(self):
        assert evaluate("0xF0 | 0x0F") == 0xFF
        assert evaluate("0xFF & 0x0F") == 0x0F
        assert evaluate("0xFF ^ 0x0F") == 0xF0

    def test_bitwise_precedence_below_shift(self):
        assert evaluate("1 << 4 | 1") == 17

    def test_nested_parens(self):
        assert evaluate("((1 + 2) * (3 + 4))") == 21


class TestSymbols:
    def test_lookup(self):
        assert evaluate("N + 1", {"N": 4}) == 5

    def test_symbols_with_dots(self):
        assert evaluate(".base + 8", {".base": 0x100}) == 0x108

    def test_undefined_symbol(self):
        with pytest.raises(OperandError, match="undefined symbol"):
            evaluate("MISSING")

    def test_symbol_times_constant(self):
        assert evaluate("ROW * 5", {"ROW": 8}) == 40


class TestErrors:
    def test_empty(self):
        with pytest.raises(OperandError):
            evaluate("")

    def test_trailing_garbage(self):
        with pytest.raises(OperandError, match="trailing"):
            evaluate("1 2")

    def test_unclosed_paren(self):
        with pytest.raises(OperandError, match="missing"):
            evaluate("(1 + 2")

    def test_dangling_operator(self):
        with pytest.raises(OperandError):
            evaluate("1 +")

    def test_invalid_characters(self):
        with pytest.raises(OperandError):
            evaluate("1 @ 2")


class TestIsPlainInteger:
    def test_plain(self):
        assert is_plain_integer("5")
        assert is_plain_integer("-0x10")
        assert is_plain_integer(" 12 ")

    def test_not_plain(self):
        assert not is_plain_integer("N")
        assert not is_plain_integer("1+2")
