"""Tests for the Kyber-style PQC workloads over parallel Keccak states."""

import hashlib

import pytest

from repro.pqc import (
    KYBER_K,
    KYBER_N,
    KYBER_Q,
    ParallelShake128,
    cbd,
    estimate_workload_cycles,
    generate_matrix_parallel,
    generate_matrix_sequential,
    parse_xof,
    sample_secret,
)

SEED = bytes(range(32))


class TestParseXof:
    def test_coefficients_below_q(self):
        stream = hashlib.shake_128(b"x").digest(1000)
        coefficients = parse_xof(stream)
        assert len(coefficients) == KYBER_N
        assert all(0 <= c < KYBER_Q for c in coefficients)

    def test_deterministic(self):
        stream = hashlib.shake_128(b"y").digest(1000)
        assert parse_xof(stream) == parse_xof(stream)

    def test_rejection_actually_happens(self):
        # A stream of 0xFF bytes yields candidates 0xFFF >= q: all rejected.
        with pytest.raises(ValueError, match="exhausted"):
            parse_xof(b"\xff" * 300)

    def test_known_encoding_of_candidates(self):
        # bytes (1, 16, 2): d1 = 1 + 256*(16%16) = 1, d2 = 16//16 + 16*2 = 33.
        coefficients = parse_xof(bytes([1, 16, 2]) * 400, count=2)
        assert coefficients[:2] == [1, 33]

    def test_partial_count(self):
        stream = hashlib.shake_128(b"z").digest(100)
        assert len(parse_xof(stream, count=16)) == 16


class TestMatrixGeneration:
    @pytest.mark.parametrize("k", sorted(KYBER_K.values()))
    def test_parallel_equals_sequential(self, k):
        seq = generate_matrix_sequential(SEED, k)
        par = generate_matrix_parallel(SEED, k)
        assert seq == par

    def test_matrix_shape(self):
        matrix = generate_matrix_parallel(SEED, 2)
        assert len(matrix) == 2
        assert all(len(row) == 2 for row in matrix)
        assert all(len(entry) == KYBER_N for row in matrix for entry in row)

    def test_transposed_swaps_indices(self):
        a = generate_matrix_parallel(SEED, 2, transposed=False)
        at = generate_matrix_parallel(SEED, 2, transposed=True)
        assert a[0][1] == at[1][0]
        assert a[1][0] == at[0][1]
        assert a[0][0] == at[0][0]

    def test_different_seeds_differ(self):
        a = generate_matrix_parallel(SEED, 2)
        b = generate_matrix_parallel(bytes(32), 2)
        assert a != b

    def test_seed_length_validated(self):
        with pytest.raises(ValueError, match="32 bytes"):
            generate_matrix_sequential(b"short", 2)

    def test_entries_derive_from_shake128(self):
        # Entry (i=0, j=0) is Parse(SHAKE128(seed || 0 || 0)).
        matrix = generate_matrix_sequential(SEED, 2)
        stream = hashlib.shake_128(SEED + bytes([0, 0])).digest(3 * 168)
        assert matrix[0][0] == parse_xof(stream)


class TestParallelShake128Streaming:
    def test_blocks_match_hashlib(self):
        seeds = [b"a", b"b", b"c"]
        xof = ParallelShake128(seeds)
        first = xof.read_block()
        second = xof.read_block()
        for i, seed in enumerate(seeds):
            expected = hashlib.shake_128(seed).digest(336)
            assert first[i] + second[i] == expected

    def test_permutation_counter(self):
        xof = ParallelShake128([b"a", b"b"])
        assert xof.permutation_count == 0
        xof.read_block()
        xof.read_block()
        assert xof.permutation_count == 2

    def test_oversized_seed_rejected(self):
        with pytest.raises(ValueError):
            ParallelShake128([b"x" * 200])


class TestCbd:
    def test_output_shape_and_range(self):
        stream = hashlib.shake_256(b"prf").digest(128)
        poly = cbd(stream, eta=2)
        assert len(poly) == KYBER_N
        for c in poly:
            # CBD_2 outputs lie in [-2, 2] mod q.
            assert c < 3 or c > KYBER_Q - 3

    def test_eta3(self):
        stream = hashlib.shake_256(b"prf").digest(192)
        poly = cbd(stream, eta=3)
        for c in poly:
            assert c < 4 or c > KYBER_Q - 4

    def test_eta_validated(self):
        with pytest.raises(ValueError):
            cbd(b"\x00" * 128, eta=4)

    def test_stream_length_validated(self):
        with pytest.raises(ValueError, match="needs"):
            cbd(b"\x00" * 10, eta=2)

    def test_zero_stream_gives_zero_polynomial(self):
        assert cbd(b"\x00" * 128, eta=2) == [0] * KYBER_N

    def test_distribution_is_centered(self):
        stream = hashlib.shake_256(b"center").digest(128)
        poly = cbd(stream, eta=2)
        centered = [c if c < KYBER_Q // 2 else c - KYBER_Q for c in poly]
        assert abs(sum(centered)) < KYBER_N  # mean well inside +-1


class TestSampleSecret:
    def test_shape(self):
        vector = sample_secret(SEED, k=3)
        assert len(vector) == 3
        assert all(len(p) == KYBER_N for p in vector)

    def test_nonce_separates_polynomials(self):
        vector = sample_secret(SEED, k=2)
        assert vector[0] != vector[1]

    def test_nonce_base_continues_stream(self):
        s = sample_secret(SEED, k=2, nonce_base=0)
        e = sample_secret(SEED, k=2, nonce_base=2)
        assert s[0] != e[0]

    def test_seed_validated(self):
        with pytest.raises(ValueError):
            sample_secret(b"x", k=2)


class TestWorkloadEstimate:
    def test_batching(self):
        est = estimate_workload_cycles(16, 1892, 6, "64-bit")
        assert est.batches == 3
        assert est.total_cycles == 3 * 1892

    def test_exact_multiple(self):
        est = estimate_workload_cycles(12, 1892, 6, "64-bit")
        assert est.batches == 2

    def test_single_state_architecture(self):
        est = estimate_workload_cycles(16, 1892, 1, "64-bit")
        assert est.batches == 16

    def test_parallel_speedup_ratio(self):
        solo = estimate_workload_cycles(24, 1892, 1, "x")
        batch = estimate_workload_cycles(24, 1892, 6, "x")
        assert solo.total_cycles / batch.total_cycles == 6.0

    def test_zero_permutations(self):
        est = estimate_workload_cycles(0, 1892, 6, "x")
        assert est.total_cycles == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            estimate_workload_cycles(-1, 1892, 6, "x")
