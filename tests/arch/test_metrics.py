"""Tests for the performance metrics (Section 4.2 definitions)."""

import pytest

from repro.arch.metrics import (
    PerformancePoint,
    cycles_per_byte,
    throughput_bits_per_cycle,
    throughput_e3,
)


class TestCyclesPerByte:
    def test_paper_values(self):
        # 2564 cycles / 200 bytes = 12.8 c/b (Table 7).
        assert cycles_per_byte(2564) == pytest.approx(12.8, abs=0.05)
        assert cycles_per_byte(1892) == pytest.approx(9.5, abs=0.05)
        assert cycles_per_byte(3620) == pytest.approx(18.1, abs=0.05)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cycles_per_byte(0)


class TestThroughput:
    def test_single_state_paper_value(self):
        # 1600 bits / 2564 cycles = 0.62402 b/c -> 624.02 x10^-3.
        assert throughput_e3(2564, 1) == pytest.approx(624.02, abs=0.01)

    def test_scales_linearly_with_states(self):
        one = throughput_e3(1892, 1)
        six = throughput_e3(1892, 6)
        assert six == pytest.approx(6 * one)

    def test_paper_table7_values(self):
        assert throughput_e3(1892, 1) == pytest.approx(845.67, abs=0.01)
        assert throughput_e3(1892, 3) == pytest.approx(2537.00, abs=0.05)
        assert throughput_e3(2564, 6) == pytest.approx(3744.15, abs=0.01)

    def test_paper_table8_values(self):
        assert throughput_e3(3620, 1) == pytest.approx(441.99, abs=0.01)
        assert throughput_e3(3620, 6) == pytest.approx(2651.93, abs=0.01)

    def test_bits_per_cycle_base_unit(self):
        assert throughput_bits_per_cycle(1600, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_e3(-1, 1)
        with pytest.raises(ValueError):
            throughput_e3(100, 0)


class TestPerformancePoint:
    def test_derived_metrics(self):
        point = PerformancePoint("x", 75, 1892, 6)
        assert point.cycles_per_byte == pytest.approx(9.46)
        assert point.throughput_e3 == pytest.approx(5074.0, abs=0.1)

    def test_speedup_over(self):
        fast = PerformancePoint("fast", 75, 1892, 6)
        slow = PerformancePoint("slow", 103, 2564, 1)
        assert fast.speedup_over(slow) == pytest.approx(
            (6 * 1600 / 1892) / (1600 / 2564)
        )
