"""Tests for absolute-time projections at the paper's 100 MHz clock."""

import pytest

from repro.arch.frequency import PAPER_CLOCK_HZ, at_frequency


class TestProjection:
    def test_paper_clock(self):
        assert PAPER_CLOCK_HZ == 100_000_000

    def test_latency(self):
        perf = at_frequency("x", 1892, 1)
        assert perf.permutation_latency_s == pytest.approx(18.92e-6)

    def test_permutations_per_second_scale_with_states(self):
        one = at_frequency("x", 1892, 1)
        six = at_frequency("x", 1892, 6)
        assert six.permutations_per_second == \
            pytest.approx(6 * one.permutations_per_second)

    def test_throughput_at_100mhz(self):
        # 6 x 1600 bits / 1892 cycles x 100 MHz = 507.4 Mbit/s.
        perf = at_frequency("64-bit LMUL=8, 6 states", 1892, 6)
        assert perf.throughput_mbit_per_second == pytest.approx(507.4,
                                                                abs=0.1)

    def test_throughput_consistent_with_table_metric(self):
        # (bits/cycle) x clock == bits/second.
        from repro.arch.metrics import throughput_bits_per_cycle

        perf = at_frequency("x", 3620, 3)
        expected = throughput_bits_per_cycle(3620, 3) * PAPER_CLOCK_HZ
        assert perf.throughput_bits_per_second == pytest.approx(expected)

    def test_hash_rate_uses_rate_bytes(self):
        perf = at_frequency("x", 1892, 1)
        sha3_256_rate = perf.hash_rate_per_second(136)
        shake128_rate = perf.hash_rate_per_second(168)
        assert shake128_rate > sha3_256_rate

    def test_custom_clock(self):
        slow = at_frequency("x", 1892, 1, clock_hz=50e6)
        fast = at_frequency("x", 1892, 1, clock_hz=200e6)
        assert fast.throughput_bits_per_second == \
            pytest.approx(4 * slow.throughput_bits_per_second)

    def test_validation(self):
        with pytest.raises(ValueError):
            at_frequency("x", 1892, 1, clock_hz=0)
        with pytest.raises(ValueError):
            at_frequency("x", 0, 1)
        with pytest.raises(ValueError):
            at_frequency("x", 1892, 0)
