"""Tests for the calibrated slice-count model."""

import pytest

from repro.arch.area import (
    AREA_ANCHORS,
    IBEX_SLICES,
    area_ratio,
    slices,
    slices_per_element,
)


class TestAnchorsReproduced:
    @pytest.mark.parametrize("elen,elenum,expected", [
        (64, 5, 7323), (64, 15, 24789), (64, 30, 48180),
        (32, 5, 6359), (32, 15, 23408), (32, 30, 48036),
    ])
    def test_published_points_exact(self, elen, elenum, expected):
        assert slices(elen, elenum) == expected

    def test_ibex_baseline(self):
        assert IBEX_SLICES == 432


class TestInterpolation:
    def test_between_anchors_monotone(self):
        for elen in (32, 64):
            previous = slices(elen, 5)
            for elenum in range(6, 31):
                current = slices(elen, elenum)
                assert current > previous, (elen, elenum)
                previous = current

    def test_midpoint_between_anchors(self):
        mid = slices(64, 10)
        assert slices(64, 5) < mid < slices(64, 15)

    def test_extrapolation_beyond_30(self):
        beyond = slices(64, 40)
        slope = slices_per_element(64)
        assert beyond == pytest.approx(48180 + 10 * slope)

    def test_small_elenum_extrapolates_down(self):
        assert slices(64, 1) < slices(64, 5)

    def test_marginal_cost_positive(self):
        assert slices_per_element(64) > 0
        assert slices_per_element(32) > 0


class TestPaperObservations:
    def test_32_and_64_bit_similar_at_elenum_30(self):
        """Paper: 'both use similar resources' at LMUL=8/EleNum=30."""
        ratio = slices(64, 30) / slices(32, 30)
        assert 0.95 < ratio < 1.05

    def test_64bit_larger_at_small_elenum(self):
        assert slices(64, 5) > slices(32, 5)

    def test_area_ratio_vs_ibex(self):
        assert area_ratio(32, 30, IBEX_SLICES) == \
            pytest.approx(111.2, abs=0.1)


class TestValidation:
    def test_unknown_elen(self):
        with pytest.raises(ValueError):
            slices(128, 5)

    def test_invalid_elenum(self):
        with pytest.raises(ValueError):
            slices(64, 0)

    def test_invalid_reference_area(self):
        with pytest.raises(ValueError):
            area_ratio(64, 5, 0)

    def test_anchor_table_shape(self):
        assert set(AREA_ANCHORS) == {32, 64}
        for anchors in AREA_ANCHORS.values():
            assert [a[0] for a in anchors] == [5, 15, 30]
