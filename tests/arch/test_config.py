"""Tests for the architecture configuration dataclass."""

import pytest

from repro.arch import ArchConfig, TABLE7_CONFIGS, TABLE8_CONFIGS


class TestValidation:
    def test_valid_configs(self):
        ArchConfig(64, 5, 1, 1)
        ArchConfig(64, 30, 8, 6)
        ArchConfig(32, 15, 8, 3)

    def test_invalid_elen(self):
        with pytest.raises(ValueError, match="ELEN"):
            ArchConfig(16, 5, 1, 1)

    def test_invalid_lmul(self):
        with pytest.raises(ValueError, match="LMUL"):
            ArchConfig(64, 5, 3, 1)

    def test_elenum_too_small(self):
        with pytest.raises(ValueError, match="EleNum"):
            ArchConfig(64, 4, 1, 1)

    def test_states_need_elements(self):
        # Paper: 5 x SN must not exceed EleNum.
        with pytest.raises(ValueError, match="5 x SN|elements"):
            ArchConfig(64, 5, 1, 2)

    def test_at_least_one_state(self):
        with pytest.raises(ValueError):
            ArchConfig(64, 5, 1, 0)


class TestDerived:
    def test_vlen(self):
        assert ArchConfig(64, 30, 8, 6).vlen_bits == 1920
        assert ArchConfig(32, 5, 8, 1).vlen_bits == 160

    def test_max_states(self):
        assert ArchConfig(64, 16, 1, 3).max_states == 3
        assert ArchConfig(64, 30, 8, 1).max_states == 6

    def test_label_matches_paper_wording(self):
        assert ArchConfig(64, 5, 1, 1).label == \
            "64-bit with LMUL=1 (EleNum=5, 1 state)"
        assert ArchConfig(32, 30, 8, 6).label == \
            "32-bit with LMUL=8 (EleNum=30, 6 states)"

    def test_str(self):
        assert str(ArchConfig(64, 5, 1, 1)).startswith("64-bit")

    def test_frozen(self):
        config = ArchConfig(64, 5, 1, 1)
        with pytest.raises(Exception):
            config.elen = 32


class TestPaperConfigLists:
    def test_table7_has_six_configs(self):
        assert len(TABLE7_CONFIGS) == 6
        assert all(c.elen == 64 for c in TABLE7_CONFIGS)
        assert {c.lmul for c in TABLE7_CONFIGS} == {1, 8}
        assert {c.elenum for c in TABLE7_CONFIGS} == {5, 15, 30}

    def test_table8_has_three_configs(self):
        assert len(TABLE8_CONFIGS) == 3
        assert all(c.elen == 32 and c.lmul == 8 for c in TABLE8_CONFIGS)

    def test_state_counts(self):
        assert [c.num_states for c in TABLE8_CONFIGS] == [1, 3, 6]
