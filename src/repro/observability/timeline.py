"""Chrome ``trace_event`` timelines of runs and pool activity.

A :class:`Timeline` collects *complete* ("ph": "X") and *instant*
("ph": "i") events in the Trace Event Format that ``chrome://tracing``
and `Perfetto <https://ui.perfetto.dev>`_ open directly: one row (tid)
per logical lane — the session's runs on lane 0, each pool worker on its
own lane — with microsecond timestamps relative to the timeline start.

Arming follows the metrics rule (:mod:`repro.observability.metrics`):
instrumented sites pay one module-attribute load and branch when no
timeline is active, and events are recorded only at coarse boundaries
(a run, a compile, a chunk dispatch→result), never per instruction.

Usage::

    from repro.observability import timeline

    tl = timeline.start()
    repro.run_many(messages, workers=4)
    timeline.stop()
    tl.export("pool.trace.json")   # open in Perfetto

Worker lanes are drawn from the parent's perspective (dispatch to
result), so they are exact for chunk occupancy; worker-internal phases
live in the merged metrics histograms instead.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional

__all__ = ["Timeline", "ACTIVE", "active", "start", "stop"]

#: tid of the main/session lane; pool workers use 1 + worker_id.
MAIN_LANE = 0


class Timeline:
    """An in-memory trace_event recording."""

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.events: List[dict] = []
        self._pid = os.getpid()

    def now(self) -> float:
        """Seconds since the timeline origin (span start timestamps)."""
        return time.perf_counter() - self.origin

    def complete(self, name: str, start: float, duration: float,
                 tid: int = MAIN_LANE,
                 args: Optional[dict] = None) -> None:
        """Record a span: ``start``/``duration`` in seconds from
        :meth:`now`."""
        event = {
            "name": name,
            "ph": "X",
            "ts": round(start * 1e6, 3),
            "dur": round(duration * 1e6, 3),
            "pid": self._pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, tid: int = MAIN_LANE,
                args: Optional[dict] = None) -> None:
        event = {
            "name": name,
            "ph": "i",
            "ts": round(self.now() * 1e6, 3),
            "pid": self._pid,
            "tid": tid,
            "s": "t",
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def label_lane(self, tid: int, name: str) -> None:
        """Name a lane in the viewer (metadata event)."""
        self.events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": self._pid,
            "tid": tid,
            "args": {"name": name},
        })

    def to_dict(self) -> dict:
        return {"traceEvents": list(self.events),
                "displayTimeUnit": "ms"}

    def export(self, path: str) -> str:
        """Write the trace JSON; returns ``path`` for chaining."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")
        return path


#: The active timeline, or None (the disarmed fast path: one attribute
#: load + branch per instrumented site).
ACTIVE: Optional[Timeline] = None


def active() -> Optional[Timeline]:
    return ACTIVE


def start() -> Timeline:
    """Begin recording into a fresh timeline and return it."""
    global ACTIVE
    ACTIVE = Timeline()
    ACTIVE.label_lane(MAIN_LANE, "session")
    return ACTIVE


def stop() -> Optional[Timeline]:
    """Stop recording; returns the timeline that was active."""
    global ACTIVE
    timeline, ACTIVE = ACTIVE, None
    return timeline
