"""A dependency-free metrics registry: counters, gauges, histograms.

The simulator's performance story (Tables 7/8 cycles, the engine
speedups, the pool's recovery behaviour) was previously observable only
through ad-hoc module counters (``codegen.COMPILE_STATS``) and the
scheduler's :class:`~repro.parallel_exec.hardening.PoolStats`.  This
module gives every layer one shared vocabulary — the same
counter/gauge/histogram trio coreblocks wires through its pipeline via
``transactron.lib.metrics`` — without pulling in a client library:

* :class:`Counter` — monotonically increasing totals (runs per engine,
  cache hits, retries).
* :class:`Gauge` — last/maximum observed value (superblock fused
  fraction, pool size).
* :class:`Histogram` — fixed-bucket distributions (compile seconds,
  chunk latency, superblock occupancy).

Every metric is a *family* of labeled series: ``SIM_RUNS.inc(engine=
"fused")`` and ``SIM_RUNS.inc(engine="compiled")`` are two series of one
counter.  Families are created once at import time by the modules they
instrument; creation is idempotent (get-or-create by name), so several
modules can share a family.

Arming rule — near-zero disarmed overhead
-----------------------------------------

Instrumentation follows the same wrap-on-arm discipline as the fault
injector (:mod:`repro.resilience.inject`): with metrics *disarmed* (the
default) every instrumented site pays exactly one module-attribute load
and branch (``if metrics.ARMED:``), placed only at *coarse* boundaries —
per run, per compile, per pool chunk — never inside the per-instruction
hot loops.  Arming flips one flag; nothing is wrapped, re-decoded or
re-compiled, so simulated cycle counts are bit-identical armed or
disarmed (metrics observe the simulation, they never touch architectural
state).  ``benchmarks/bench_metrics.py`` guards both properties.

Snapshots
---------

:meth:`MetricsRegistry.snapshot` returns a plain-dict, JSON/pickle-able
view; :meth:`MetricsRegistry.merge` folds another snapshot in using
commutative per-type rules (counters and histograms add, gauges take the
maximum), so parent processes can merge forked workers' snapshots in any
arrival order and still get a deterministic result.  :func:`delta`
subtracts two snapshots, giving the activity between them.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ARMED",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "arm",
    "armed",
    "delta",
    "disarm",
    "registry",
    "render_prometheus",
    "render_snapshot",
]

#: Default histogram buckets for durations in seconds (upper bounds; an
#: implicit +Inf bucket catches the tail).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Buckets for small integer counts (superblock lengths and the like).
COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 512)


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, object]
               ) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Common family machinery: name, labels, series table."""

    kind = "metric"

    def __init__(self, name: str, help: str,
                 labelnames: Iterable[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._series: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _zero(self):
        return 0

    def _slot(self, labels: Dict[str, object]):
        key = _label_key(self.labelnames, labels)
        series = self._series
        if key not in series:
            with self._lock:
                series.setdefault(key, self._zero())
        return key

    def clear(self) -> None:
        with self._lock:
            self._series.clear()

    # -- snapshot support ---------------------------------------------------------

    def _series_value(self, value) -> object:
        return value

    def snapshot(self) -> dict:
        with self._lock:
            series = [
                {"labels": dict(zip(self.labelnames, key)),
                 "value": self._series_value(value)}
                for key, value in sorted(self._series.items())
            ]
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": series,
        }


class Counter(_Metric):
    """A monotonically increasing labeled counter."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        key = self._slot(labels)
        with self._lock:
            self._series[key] += amount

    def value(self, **labels) -> float:
        return self._series.get(_label_key(self.labelnames, labels), 0)


class Gauge(_Metric):
    """A labeled gauge: remembers the last value set (merge takes max)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._slot(labels)
        with self._lock:
            self._series[key] = value

    def value(self, **labels) -> float:
        return self._series.get(_label_key(self.labelnames, labels), 0)


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """A fixed-bucket labeled histogram of observed values."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 labelnames: Iterable[str] = (),
                 buckets: Tuple[float, ...] = LATENCY_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be sorted and non-empty: "
                             f"{buckets}")
        super().__init__(name, help, labelnames)
        self.buckets: Tuple[float, ...] = tuple(buckets)

    def _zero(self):
        return _HistogramSeries(len(self.buckets))

    def observe(self, value: float, **labels) -> None:
        key = self._slot(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series: _HistogramSeries = self._series[key]  # type: ignore
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def _series_value(self, value) -> object:
        return {"counts": list(value.counts), "sum": value.sum,
                "count": value.count}

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["buckets"] = list(self.buckets)
        return snap


class MetricsRegistry:
    """Holds metric families by name; the snapshot/merge/reset surface."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labelnames,
                       **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) \
                        or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Tuple[float, ...] = LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every series, keeping the families (and references to
        them) valid — what a forked worker does before its first task."""
        for metric in self._metrics.values():
            metric.clear()

    def snapshot(self) -> dict:
        """A plain-dict (JSON/pickle-able) view of every series."""
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}

    def merge(self, snapshot: dict) -> None:
        """Fold ``snapshot`` (from :meth:`snapshot`, possibly another
        process's) into this registry.

        Merge rules are commutative per type — counters and histogram
        buckets add, gauges keep the maximum — so merging N worker
        snapshots yields the same totals in any arrival order.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            labelnames = tuple(data.get("labelnames", ()))
            if kind == "counter":
                metric = self.counter(name, data.get("help", ""),
                                      labelnames)
                for entry in data["series"]:
                    value = entry["value"]
                    if value:
                        metric.inc(value, **entry["labels"])
            elif kind == "gauge":
                metric = self.gauge(name, data.get("help", ""), labelnames)
                for entry in data["series"]:
                    current = metric.value(**entry["labels"])
                    metric.set(max(current, entry["value"]),
                               **entry["labels"])
            elif kind == "histogram":
                metric = self.histogram(name, data.get("help", ""),
                                        labelnames,
                                        buckets=tuple(data["buckets"]))
                if tuple(data["buckets"]) != metric.buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge")
                for entry in data["series"]:
                    key = metric._slot(entry["labels"])
                    value = entry["value"]
                    with metric._lock:
                        series: _HistogramSeries = \
                            metric._series[key]  # type: ignore
                        for i, c in enumerate(value["counts"]):
                            series.counts[i] += c
                        series.sum += value["sum"]
                        series.count += value["count"]
            else:
                raise ValueError(f"unknown metric type in snapshot: "
                                 f"{kind!r} ({name})")


def delta(before: dict, after: dict) -> dict:
    """The activity between two snapshots of the same registry.

    Counters and histograms subtract (series missing from ``before``
    count from zero); gauges take the ``after`` value.  Series whose
    delta is zero are dropped, so the result shows only what happened.
    """
    out: dict = {}
    for name, data in after.items():
        base = before.get(name, {})
        base_series = {
            tuple(sorted(e["labels"].items())): e["value"]
            for e in base.get("series", [])
        }
        kind = data["type"]
        series = []
        for entry in data["series"]:
            key = tuple(sorted(entry["labels"].items()))
            value = entry["value"]
            if kind == "counter":
                changed = value - base_series.get(key, 0)
                if changed:
                    series.append({"labels": entry["labels"],
                                   "value": changed})
            elif kind == "gauge":
                series.append({"labels": entry["labels"], "value": value})
            else:  # histogram
                prev = base_series.get(key)
                if prev is None:
                    prev = {"counts": [0] * len(value["counts"]),
                            "sum": 0.0, "count": 0}
                counts = [c - p for c, p in zip(value["counts"],
                                                prev["counts"])]
                count = value["count"] - prev["count"]
                if count:
                    series.append({
                        "labels": entry["labels"],
                        "value": {"counts": counts,
                                  "sum": value["sum"] - prev["sum"],
                                  "count": count},
                    })
        if series:
            slim = dict(data)
            slim["series"] = series
            out[name] = slim
    return out


def render_snapshot(snapshot: dict) -> str:
    """A compact human-readable report of a snapshot (``repro profile``)."""
    lines: List[str] = []
    for name, data in sorted(snapshot.items()):
        kind = data["type"]
        if not data["series"]:
            continue
        lines.append(f"{name} ({kind})")
        for entry in data["series"]:
            labels = entry["labels"]
            label_text = ", ".join(f"{k}={v}" for k, v in
                                   sorted(labels.items())) or "-"
            value = entry["value"]
            if kind == "histogram":
                count = value["count"]
                mean = value["sum"] / count if count else 0.0
                lines.append(f"  {label_text:40s} count={count:<8d} "
                             f"sum={value['sum']:.6g} mean={mean:.6g}")
            elif isinstance(value, float):
                lines.append(f"  {label_text:40s} {value:.6g}")
            else:
                lines.append(f"  {label_text:40s} {value}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _prom_escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _prom_labels(labels: Dict[str, object], extra: str = "") -> str:
    parts = [f'{k}="{_prom_escape(str(v))}"'
             for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(value) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: dict) -> str:
    """A snapshot in the Prometheus text exposition format (v0.0.4).

    Counters and gauges render one sample per labeled series;
    histograms render the standard cumulative ``_bucket`` samples
    (including ``+Inf``) plus ``_sum`` and ``_count``, so any
    Prometheus scraper can compute quantiles from the daemon's
    ``/metrics`` endpoint without a client library on our side.
    """
    lines: List[str] = []
    for name, data in sorted(snapshot.items()):
        if not data["series"]:
            continue
        kind = data["type"]
        if data.get("help"):
            lines.append(f"# HELP {name} {data['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in data["series"]:
            labels = entry["labels"]
            value = entry["value"]
            if kind != "histogram":
                lines.append(
                    f"{name}{_prom_labels(labels)} {_prom_number(value)}")
                continue
            cumulative = 0
            bounds = [_prom_number(b) for b in data["buckets"]] + ["+Inf"]
            for bound, count in zip(bounds, value["counts"]):
                cumulative += count
                le = 'le="' + bound + '"'
                lines.append(f"{name}_bucket{_prom_labels(labels, le)} "
                             f"{cumulative}")
            lines.append(f"{name}_sum{_prom_labels(labels)} "
                         f"{_prom_number(value['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{cumulative}")
    return "\n".join(lines) + "\n" if lines else ""


# -- the process-wide registry and arming flag ----------------------------------

_REGISTRY = MetricsRegistry()

#: The arming flag instrumented sites check (one attribute load + branch
#: per coarse event when disarmed).  Flip via :func:`arm`/:func:`disarm`.
ARMED = False


def registry() -> MetricsRegistry:
    """The process-wide registry (workers inherit a copy on fork)."""
    return _REGISTRY


def arm() -> None:
    """Start recording: instrumented sites begin feeding the registry."""
    global ARMED
    ARMED = True


def disarm() -> None:
    """Stop recording; already-collected series stay readable."""
    global ARMED
    ARMED = False


def armed() -> bool:
    return ARMED
