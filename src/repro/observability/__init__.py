"""Observability: metrics registry, trace timelines, perf trajectory.

Three complementary views of the simulator's behaviour:

* :mod:`repro.observability.metrics` — a dependency-free registry of
  labeled counters, gauges and histograms fed by instrumentation hooks
  in the engines, the code generator and the worker pool.  Disarmed by
  default; ``metrics.arm()`` flips one flag and instrumented sites
  start recording at coarse boundaries only (never per instruction).
* :mod:`repro.observability.timeline` — Chrome ``trace_event``-format
  timelines of session runs and pool chunks, viewable in Perfetto.
* :mod:`repro.observability.trajectory` — the cross-PR benchmark
  trajectory: load/compare/commit ``BENCH_*.json`` records against the
  ``benchmarks/baseline/`` snapshot (``repro stats``).

Quick start::

    from repro.observability import metrics

    metrics.arm()
    repro.run("keccak64_lmul1")
    print(metrics.render_snapshot(metrics.registry().snapshot()))
"""

from . import metrics, timeline, trajectory  # noqa: F401

__all__ = ["metrics", "timeline", "trajectory"]
