"""The benchmark trajectory: BENCH_*.json records compared across PRs.

``pytest benchmarks/ --bench-json=DIR`` (see ``benchmarks/record.py``)
writes one ``BENCH_<name>.json`` per benchmark.  Until this module
existed those files were only uploaded as CI artifacts — never compared,
never committed — so the performance trajectory across PRs was *empty*:
a wall-clock or cycle regression was invisible unless someone manually
downloaded two artifact sets and diffed them.

This module fixes that pipeline:

* :func:`load_records` / :func:`validate_record` — read and
  schema-check a directory of records (the schema is
  ``{name, wall_clock: {min, max, mean, stddev, rounds}, extra}``,
  shared with ``benchmarks/record.py``).
* :func:`write_baseline` — normalize records into the *committed*
  ``benchmarks/baseline/`` snapshot (``repro stats --update-baseline``).
* :func:`compare` — diff a fresh run against the baseline.  Simulator
  cycle counts are deterministic and must match **exactly**; wall-clock
  is machine-dependent, so it is first normalized by the run-to-run
  scale factor (the median fresh/baseline ratio across all shared
  benchmarks) and only a benchmark that slows down by more than
  ``threshold`` (default 15%) *relative to the rest of the suite* is a
  regression — a uniformly slower CI machine does not trip the gate,
  one benchmark regressing does.

``repro stats`` is the CLI front end; CI runs
``repro stats --check-baseline`` on every push.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "BenchRecord",
    "PIN_BENCHES",
    "TrajectoryReport",
    "WALL_CLOCK_FIELDS",
    "aggregate",
    "check_baseline",
    "compare",
    "default_baseline_dir",
    "load_records",
    "normalize_record",
    "validate_record",
    "write_baseline",
]

#: The wall-clock statistics every record carries (``benchmarks/record.py``
#: must stay in sync — the round-trip test pins this).
WALL_CLOCK_FIELDS = ("min", "max", "mean", "stddev", "rounds")

#: Regression threshold on normalized wall-clock (CI gate default).
DEFAULT_THRESHOLD = 0.15

#: The paper's per-permutation cycle pins (Tables 7/8).  Each of these
#: benchmarks must be present in a valid baseline and record at least
#: this many cycles — whole-run totals sit a few setup/halt cycles above
#: the pin, so ``>=`` is the right check here (the exact-equality check
#: lives in :func:`compare`, fresh vs. baseline).
PIN_BENCHES = {
    "test_bench_64bit_permutation[lmul1]": 2564,
    "test_bench_64bit_permutation[lmul8]": 1892,
    "test_bench_32bit_permutation": 3620,
    # The design-space sweep benchmark records the default-timing V64H8
    # row of its explore grid — the same 1892-cycle pin, measured
    # through the TimingModel + `repro explore` path.
    "test_bench_explore_grid": 1892,
}


@dataclass
class BenchRecord:
    """One benchmark's persisted measurements."""

    name: str
    wall_clock: Dict[str, float]
    extra: Dict[str, object]
    path: str = ""

    @property
    def cycles(self) -> Optional[int]:
        """The simulator cycle count the benchmark attached, if any."""
        value = self.extra.get("cycles")
        return int(value) if isinstance(value, (int, float)) else None


class TrajectoryError(ValueError):
    """A record or baseline that does not match the schema."""


def validate_record(data: object, path: str = "<record>") -> BenchRecord:
    """Check one parsed record against the schema; returns it typed."""
    if not isinstance(data, dict):
        raise TrajectoryError(f"{path}: record must be a JSON object")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise TrajectoryError(f"{path}: missing benchmark name")
    wall = data.get("wall_clock")
    if not isinstance(wall, dict):
        raise TrajectoryError(f"{path}: missing wall_clock object")
    for fieldname in WALL_CLOCK_FIELDS:
        value = wall.get(fieldname)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            raise TrajectoryError(
                f"{path}: wall_clock.{fieldname} missing or not a finite "
                f"number"
            )
    if wall["min"] < 0 or wall["rounds"] < 1:
        raise TrajectoryError(f"{path}: implausible wall_clock stats")
    extra = data.get("extra", {})
    if not isinstance(extra, dict):
        raise TrajectoryError(f"{path}: extra must be an object")
    return BenchRecord(name=name,
                       wall_clock={f: wall[f] for f in WALL_CLOCK_FIELDS},
                       extra=dict(extra), path=path)


def load_records(directory: str) -> Dict[str, BenchRecord]:
    """All ``BENCH_*.json`` records in ``directory``, keyed by name."""
    if not os.path.isdir(directory):
        raise TrajectoryError(f"not a directory: {directory}")
    records: Dict[str, BenchRecord] = {}
    for filename in sorted(os.listdir(directory)):
        if not (filename.startswith("BENCH_")
                and filename.endswith(".json")):
            continue
        path = os.path.join(directory, filename)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise TrajectoryError(f"{path}: unreadable record: {exc}")
        record = validate_record(data, path)
        if record.name in records:
            raise TrajectoryError(
                f"{path}: duplicate benchmark name {record.name!r}")
        records[record.name] = record
    return records


def normalize_record(record: BenchRecord) -> dict:
    """The canonical on-disk form (stable key order, schema fields only)."""
    return {
        "name": record.name,
        "wall_clock": {f: record.wall_clock[f] for f in WALL_CLOCK_FIELDS},
        "extra": dict(sorted(record.extra.items())),
    }


def write_baseline(records: Dict[str, BenchRecord],
                   baseline_dir: str) -> List[str]:
    """Write normalized records into ``baseline_dir``; returns the paths.

    Stale baseline files for benchmarks that no longer exist are
    removed, so the committed snapshot always mirrors one full run.
    """
    import re

    os.makedirs(baseline_dir, exist_ok=True)
    written: List[str] = []
    fresh_files = set()
    for name in sorted(records):
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")
        filename = f"BENCH_{slug}.json"
        fresh_files.add(filename)
        path = os.path.join(baseline_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(normalize_record(records[name]), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        written.append(path)
    for filename in os.listdir(baseline_dir):
        if filename.startswith("BENCH_") and filename.endswith(".json") \
                and filename not in fresh_files:
            os.unlink(os.path.join(baseline_dir, filename))
    return written


def default_baseline_dir() -> str:
    """The committed snapshot location: ``benchmarks/baseline``.

    Resolved against the current directory first (the normal repo-root
    invocation), falling back to the source checkout the package was
    imported from.
    """
    local = os.path.join("benchmarks", "baseline")
    if os.path.isdir(local):
        return local
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo, "benchmarks", "baseline")


# -- comparison -----------------------------------------------------------------


@dataclass
class Regression:
    """One benchmark that got slower (or changed cycles)."""

    name: str
    kind: str  # "wall-clock" | "cycles"
    baseline: float
    fresh: float
    normalized_ratio: float = 0.0

    def __str__(self) -> str:
        if self.kind == "cycles":
            return (f"{self.name}: cycles changed "
                    f"{int(self.baseline)} -> {int(self.fresh)}")
        return (f"{self.name}: wall-clock {self.baseline * 1e3:.3f}ms -> "
                f"{self.fresh * 1e3:.3f}ms "
                f"({self.normalized_ratio:+.1%} vs suite)")


@dataclass
class TrajectoryReport:
    """Outcome of one fresh-vs-baseline comparison."""

    compared: int
    scale: float
    threshold: float
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    empty: bool = False

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.empty

    def summary(self) -> str:
        lines = [
            f"compared {self.compared} benchmark(s) against baseline "
            f"(machine scale x{self.scale:.2f}, "
            f"threshold {self.threshold:.0%})"
        ]
        if self.empty:
            lines.append(
                "FAIL: fresh artifact set is empty — the bench job "
                "produced no BENCH_*.json records")
        if self.missing:
            lines.append(f"missing from fresh run: "
                         f"{', '.join(self.missing)}")
        if self.added:
            lines.append(f"new benchmarks (no baseline yet): "
                         f"{', '.join(self.added)}")
        if self.improvements:
            lines.append(f"{len(self.improvements)} benchmark(s) "
                         f"improved >{self.threshold:.0%}")
        if self.regressions:
            lines.append(f"{len(self.regressions)} regression(s):")
            lines.extend(f"  {r}" for r in self.regressions)
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def compare(fresh: Dict[str, BenchRecord],
            baseline: Dict[str, BenchRecord],
            threshold: float = DEFAULT_THRESHOLD) -> TrajectoryReport:
    """Diff ``fresh`` against ``baseline`` (see the module docstring)."""
    common = sorted(set(fresh) & set(baseline))
    report = TrajectoryReport(
        compared=len(common),
        scale=1.0,
        threshold=threshold,
        missing=sorted(set(baseline) - set(fresh)),
        added=sorted(set(fresh) - set(baseline)),
        empty=not fresh,
    )
    if not common:
        return report

    ratios = sorted(
        fresh[name].wall_clock["min"] /
        max(baseline[name].wall_clock["min"], 1e-12)
        for name in common
    )
    mid = len(ratios) // 2
    scale = ratios[mid] if len(ratios) % 2 \
        else 0.5 * (ratios[mid - 1] + ratios[mid])
    report.scale = scale if scale > 0 else 1.0

    for name in common:
        fresh_rec, base_rec = fresh[name], baseline[name]
        if fresh_rec.cycles is not None and base_rec.cycles is not None \
                and fresh_rec.cycles != base_rec.cycles:
            report.regressions.append(Regression(
                name=name, kind="cycles",
                baseline=base_rec.cycles, fresh=fresh_rec.cycles,
            ))
            continue
        base_min = max(base_rec.wall_clock["min"], 1e-12)
        normalized = (fresh_rec.wall_clock["min"] / base_min) \
            / report.scale
        if normalized > 1.0 + threshold:
            report.regressions.append(Regression(
                name=name, kind="wall-clock",
                baseline=base_rec.wall_clock["min"],
                fresh=fresh_rec.wall_clock["min"],
                normalized_ratio=normalized - 1.0,
            ))
        elif normalized < 1.0 - threshold:
            report.improvements.append(name)
    return report


def check_baseline(records: Dict[str, BenchRecord]) -> List[str]:
    """Validate the committed baseline; returns the list of problems.

    A healthy baseline is non-empty (the trajectory has data) and holds
    the three paper pin benchmarks (:data:`PIN_BENCHES`) with recorded
    cycle counts at or above the pins.
    """
    problems: List[str] = []
    if not records:
        problems.append(
            "baseline is empty — run `repro stats --update-baseline "
            "--bench-dir DIR` on a fresh benchmark run")
        return problems
    for name, pin in sorted(PIN_BENCHES.items()):
        record = records.get(name)
        if record is None:
            problems.append(f"pin benchmark missing from baseline: {name}")
        elif record.cycles is None:
            problems.append(f"pin benchmark records no cycles: {name}")
        elif record.cycles < pin:
            problems.append(f"{name}: cycles {record.cycles} below the "
                            f"paper pin {pin}")
    return problems


def aggregate(records: Dict[str, BenchRecord]) -> str:
    """A one-screen table of a record set (``repro stats`` output)."""
    if not records:
        return "(no benchmark records)"
    width = min(64, max(len(name) for name in records))
    lines = [f"{'benchmark':{width}s}  {'min ms':>10s}  {'mean ms':>10s}  "
             f"{'rounds':>6s}  {'cycles':>9s}"]
    for name in sorted(records):
        record = records[name]
        cycles = record.cycles
        lines.append(
            f"{name[:width]:{width}s}  "
            f"{record.wall_clock['min'] * 1e3:10.3f}  "
            f"{record.wall_clock['mean'] * 1e3:10.3f}  "
            f"{int(record.wall_clock['rounds']):6d}  "
            f"{cycles if cycles is not None else '-':>9}"
        )
    return "\n".join(lines)
