"""Control and status registers: Zicsr instructions and CSR addresses.

The vector unit exposes its configuration through the standard RVV CSRs
(``vl``, ``vtype``, ``vlenb``), and the scalar core exposes the Zicntr
performance counters (``cycle``, ``instret``) so programs can self-measure
— which the evaluation uses to cross-check the harness's external cycle
accounting.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import InstructionSpec

_SYSTEM = 0x73
_MASK_I = 0x0000707F

#: CSR addresses (RISC-V privileged spec + RVV).
CSR_ADDRESSES: Dict[str, int] = {
    "vstart": 0x008,
    "vl": 0xC20,
    "vtype": 0xC21,
    "vlenb": 0xC22,
    "cycle": 0xC00,
    "time": 0xC01,
    "instret": 0xC02,
    "cycleh": 0xC80,
    "instreth": 0xC82,
}

_CSR_NAMES = {address: name for name, address in CSR_ADDRESSES.items()}

#: CSRs that reject writes (read-only per the spec).
READ_ONLY_CSRS = frozenset(
    CSR_ADDRESSES[name]
    for name in ("vl", "vtype", "vlenb", "cycle", "time", "instret",
                 "cycleh", "instreth")
)


def csr_name(address: int) -> str:
    """Symbolic name of a CSR address (hex string if unknown)."""
    return _CSR_NAMES.get(address, f"{address:#x}")


def parse_csr(token: str) -> int:
    """Resolve a CSR operand: symbolic name or numeric address."""
    key = token.strip().lower()
    if key in CSR_ADDRESSES:
        return CSR_ADDRESSES[key]
    try:
        address = int(key, 0)
    except ValueError:
        raise ValueError(f"unknown CSR: {token!r}") from None
    if not 0 <= address < 4096:
        raise ValueError(f"CSR address out of range: {token!r}")
    return address


def _csr(mnemonic: str, funct3: int, operands, description) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="csr",
        match=(funct3 << 12) | _SYSTEM,
        mask=_MASK_I,
        operands=tuple(operands),
        extension="zicsr",
        description=description,
    )


ZICSR_SPECS: List[InstructionSpec] = [
    _csr("csrrw", 0b001, ("rd", "csr", "rs1"),
         "atomic CSR read/write"),
    _csr("csrrs", 0b010, ("rd", "csr", "rs1"),
         "atomic CSR read and set bits"),
    _csr("csrrc", 0b011, ("rd", "csr", "rs1"),
         "atomic CSR read and clear bits"),
]
