"""ISA reference generator: render the instruction set as Markdown.

Because the assembler, decoder and simulator are all driven by the same
spec table, this generated document is guaranteed to describe exactly what
the tools implement.
"""

from __future__ import annotations

from typing import List, Optional

from .spec import InstructionSet, InstructionSpec

_EXTENSION_TITLES = {
    "rv32i": "RV32I base integer instructions (scalar Ibex core)",
    "rv32m": "RV32M multiply/divide extension",
    "zicsr": "Zicsr control-and-status-register instructions",
    "rvv": "RVV 1.0 subset (vector processing unit)",
    "custom": "Custom vector extensions for Keccak (paper Section 3.3)",
}

_FORMAT_SYNTAX = {
    "r": "{m} rd, rs1, rs2",
    "i": "{m} rd, rs1, imm12",
    "i_shift": "{m} rd, rs1, shamt",
    "load": "{m} rd, imm(rs1)",
    "store": "{m} rs2, imm(rs1)",
    "branch": "{m} rs1, rs2, label",
    "u": "{m} rd, imm20",
    "jal": "{m} rd, label",
    "jalr": "{m} rd, imm(rs1)",
    "system": "{m}",
    "csr": "{m} rd, csr, rs1",
    "vsetvli": "{m} rd, rs1, eSEW, mLMUL, tu|ta, mu|ma",
    "vls_unit": "{m} vd, (rs1)[, v0.t]",
    "vls_strided": "{m} vd, (rs1), rs2[, v0.t]",
    "vls_indexed": "{m} vd, (rs1), vs2[, v0.t]",
    "v_vv": "{m} vd, vs2, vs1[, v0.t]",
    "v_vx": "{m} vd, vs2, rs1[, v0.t]",
    "v_vi": "{m} vd, vs2, imm5[, v0.t]",
}


def syntax_of(spec: InstructionSpec) -> str:
    """Canonical assembly syntax of one instruction."""
    return _FORMAT_SYNTAX[spec.fmt].format(m=spec.mnemonic)


def _spec_row(spec: InstructionSpec) -> str:
    archs = spec.extra.get("archs")
    arch_note = f" *(archs: {', '.join(archs)})*" if archs else ""
    return (
        f"| `{spec.mnemonic}` | `{syntax_of(spec)}` | "
        f"`{spec.match:#010x}` / `{spec.mask:#010x}` | "
        f"{spec.description}{arch_note} |"
    )


def render_isa_reference(isa: InstructionSet,
                         extensions: Optional[List[str]] = None) -> str:
    """Render the full ISA reference as Markdown."""
    extensions = extensions or ["rv32i", "rv32m", "zicsr", "rvv", "custom"]
    lines = [
        "# Instruction set reference",
        "",
        "Generated from the spec table that drives the assembler, the",
        "disassembler and the simulator decoder (single source of truth).",
        "",
    ]
    for extension in extensions:
        specs = sorted(isa.by_extension(extension),
                       key=lambda s: (s.match & 0x7F, s.match))
        if not specs:
            continue
        lines.append(f"## {_EXTENSION_TITLES.get(extension, extension)}")
        lines.append("")
        lines.append(f"{len(specs)} instructions.")
        lines.append("")
        lines.append("| Mnemonic | Syntax | match / mask | Description |")
        lines.append("|---|---|---|---|")
        for spec in specs:
            lines.append(_spec_row(spec))
        lines.append("")
    return "\n".join(lines)
