"""RV32M multiply/divide extension (kept in the scalar core, Section 4.2)."""

from __future__ import annotations

from typing import List

from .spec import InstructionSpec

_OP = 0x33
_MULDIV = 0b0000001
_MASK_R = 0xFE00707F


def _m(mnemonic: str, funct3: int, description: str) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="r",
        match=(_MULDIV << 25) | (funct3 << 12) | _OP,
        mask=_MASK_R,
        operands=("rd", "rs1", "rs2"),
        extension="rv32m",
        description=description,
    )


RV32M_SPECS: List[InstructionSpec] = [
    _m("mul", 0b000, "multiply (low 32 bits)"),
    _m("mulh", 0b001, "multiply high (signed x signed)"),
    _m("mulhsu", 0b010, "multiply high (signed x unsigned)"),
    _m("mulhu", 0b011, "multiply high (unsigned x unsigned)"),
    _m("div", 0b100, "divide (signed)"),
    _m("divu", 0b101, "divide (unsigned)"),
    _m("rem", 0b110, "remainder (signed)"),
    _m("remu", 0b111, "remainder (unsigned)"),
]
