"""RV32I base integer instruction set (the scalar Ibex core's ISA base)."""

from __future__ import annotations

from typing import List

from .spec import InstructionSpec

_OP = 0x33
_OP_IMM = 0x13
_LOAD = 0x03
_STORE = 0x23
_BRANCH = 0x63
_LUI = 0x37
_AUIPC = 0x17
_JAL = 0x6F
_JALR = 0x67
_SYSTEM = 0x73
_MISC_MEM = 0x0F

_MASK_R = 0xFE00707F
_MASK_I = 0x0000707F
_MASK_OP7 = 0x0000007F


def _r(mnemonic: str, funct3: int, funct7: int, description: str) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="r",
        match=(funct7 << 25) | (funct3 << 12) | _OP,
        mask=_MASK_R,
        operands=("rd", "rs1", "rs2"),
        extension="rv32i",
        description=description,
    )


def _i(mnemonic: str, funct3: int, description: str) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="i",
        match=(funct3 << 12) | _OP_IMM,
        mask=_MASK_I,
        operands=("rd", "rs1", "imm"),
        extension="rv32i",
        description=description,
    )


def _shift(mnemonic: str, funct3: int, funct7: int, description: str) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="i_shift",
        match=(funct7 << 25) | (funct3 << 12) | _OP_IMM,
        mask=_MASK_R,
        operands=("rd", "rs1", "shamt"),
        extension="rv32i",
        description=description,
    )


def _ld(mnemonic: str, funct3: int, description: str) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="load",
        match=(funct3 << 12) | _LOAD,
        mask=_MASK_I,
        operands=("rd", "imm", "rs1"),
        extension="rv32i",
        description=description,
    )


def _st(mnemonic: str, funct3: int, description: str) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="store",
        match=(funct3 << 12) | _STORE,
        mask=_MASK_I,
        operands=("rs2", "imm", "rs1"),
        extension="rv32i",
        description=description,
    )


def _br(mnemonic: str, funct3: int, description: str) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="branch",
        match=(funct3 << 12) | _BRANCH,
        mask=_MASK_I,
        operands=("rs1", "rs2", "offset"),
        extension="rv32i",
        description=description,
    )


RV32I_SPECS: List[InstructionSpec] = [
    InstructionSpec("lui", "u", _LUI, _MASK_OP7, ("rd", "imm"),
                    "rv32i", "load upper immediate"),
    InstructionSpec("auipc", "u", _AUIPC, _MASK_OP7, ("rd", "imm"),
                    "rv32i", "add upper immediate to pc"),
    InstructionSpec("jal", "jal", _JAL, _MASK_OP7, ("rd", "offset"),
                    "rv32i", "jump and link"),
    InstructionSpec("jalr", "jalr", _JALR, _MASK_I, ("rd", "rs1", "imm"),
                    "rv32i", "jump and link register"),
    _br("beq", 0b000, "branch if equal"),
    _br("bne", 0b001, "branch if not equal"),
    _br("blt", 0b100, "branch if less than (signed)"),
    _br("bge", 0b101, "branch if greater or equal (signed)"),
    _br("bltu", 0b110, "branch if less than (unsigned)"),
    _br("bgeu", 0b111, "branch if greater or equal (unsigned)"),
    _ld("lb", 0b000, "load byte (sign-extended)"),
    _ld("lh", 0b001, "load halfword (sign-extended)"),
    _ld("lw", 0b010, "load word"),
    _ld("lbu", 0b100, "load byte (zero-extended)"),
    _ld("lhu", 0b101, "load halfword (zero-extended)"),
    _st("sb", 0b000, "store byte"),
    _st("sh", 0b001, "store halfword"),
    _st("sw", 0b010, "store word"),
    _i("addi", 0b000, "add immediate"),
    _i("slti", 0b010, "set if less than immediate (signed)"),
    _i("sltiu", 0b011, "set if less than immediate (unsigned)"),
    _i("xori", 0b100, "xor immediate"),
    _i("ori", 0b110, "or immediate"),
    _i("andi", 0b111, "and immediate"),
    _shift("slli", 0b001, 0b0000000, "shift left logical immediate"),
    _shift("srli", 0b101, 0b0000000, "shift right logical immediate"),
    _shift("srai", 0b101, 0b0100000, "shift right arithmetic immediate"),
    _r("add", 0b000, 0b0000000, "add"),
    _r("sub", 0b000, 0b0100000, "subtract"),
    _r("sll", 0b001, 0b0000000, "shift left logical"),
    _r("slt", 0b010, 0b0000000, "set if less than (signed)"),
    _r("sltu", 0b011, 0b0000000, "set if less than (unsigned)"),
    _r("xor", 0b100, 0b0000000, "xor"),
    _r("srl", 0b101, 0b0000000, "shift right logical"),
    _r("sra", 0b101, 0b0100000, "shift right arithmetic"),
    _r("or", 0b110, 0b0000000, "or"),
    _r("and", 0b111, 0b0000000, "and"),
    InstructionSpec("ecall", "system", 0x00000073, 0xFFFFFFFF, (),
                    "rv32i", "environment call (halts the simulator)"),
    InstructionSpec("ebreak", "system", 0x00100073, 0xFFFFFFFF, (),
                    "rv32i", "environment break (halts the simulator)"),
    InstructionSpec("fence", "system", _MISC_MEM, _MASK_I, (),
                    "rv32i", "memory fence (no-op in the simulator)"),
]
