"""Bit-level helpers for encoding and decoding 32-bit RISC-V instructions."""

from __future__ import annotations

WORD_MASK = 0xFFFFFFFF


class EncodingError(ValueError):
    """Raised when a value does not fit its instruction field."""


def get_bits(word: int, hi: int, lo: int) -> int:
    """Extract bits ``hi:lo`` (inclusive) of ``word``."""
    if hi < lo:
        raise ValueError(f"invalid bit range {hi}:{lo}")
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def set_bits(word: int, hi: int, lo: int, value: int) -> int:
    """Return ``word`` with bits ``hi:lo`` replaced by ``value``."""
    if hi < lo:
        raise ValueError(f"invalid bit range {hi}:{lo}")
    width = hi - lo + 1
    if not 0 <= value < (1 << width):
        raise EncodingError(
            f"value {value:#x} does not fit in {width} bits ({hi}:{lo})"
        )
    mask = ((1 << width) - 1) << lo
    return (word & ~mask & WORD_MASK) | (value << lo)


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` of ``value`` to a Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def to_unsigned(value: int, bits: int) -> int:
    """Represent a (possibly negative) value in ``bits`` two's complement."""
    lo = -(1 << (bits - 1))
    hi = (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"value {value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def check_signed_range(value: int, bits: int, what: str) -> None:
    """Validate a signed immediate range, with a helpful message."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(
            f"{what} {value} out of signed {bits}-bit range [{lo}, {hi}]"
        )


def check_unsigned_range(value: int, bits: int, what: str) -> None:
    """Validate an unsigned immediate range, with a helpful message."""
    hi = (1 << bits) - 1
    if not 0 <= value <= hi:
        raise EncodingError(
            f"{what} {value} out of unsigned {bits}-bit range [0, {hi}]"
        )


# -- base instruction formats (RISC-V spec chapter 2) --------------------------


def encode_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int,
             funct7: int) -> int:
    """R-type: funct7 | rs2 | rs1 | funct3 | rd | opcode."""
    word = 0
    word = set_bits(word, 6, 0, opcode)
    word = set_bits(word, 11, 7, rd)
    word = set_bits(word, 14, 12, funct3)
    word = set_bits(word, 19, 15, rs1)
    word = set_bits(word, 24, 20, rs2)
    word = set_bits(word, 31, 25, funct7)
    return word


def encode_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    """I-type: imm[11:0] | rs1 | funct3 | rd | opcode."""
    check_signed_range(imm, 12, "I-type immediate")
    word = 0
    word = set_bits(word, 6, 0, opcode)
    word = set_bits(word, 11, 7, rd)
    word = set_bits(word, 14, 12, funct3)
    word = set_bits(word, 19, 15, rs1)
    word = set_bits(word, 31, 20, imm & 0xFFF)
    return word


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """S-type: imm[11:5] | rs2 | rs1 | funct3 | imm[4:0] | opcode."""
    check_signed_range(imm, 12, "S-type immediate")
    uimm = imm & 0xFFF
    word = 0
    word = set_bits(word, 6, 0, opcode)
    word = set_bits(word, 11, 7, uimm & 0x1F)
    word = set_bits(word, 14, 12, funct3)
    word = set_bits(word, 19, 15, rs1)
    word = set_bits(word, 24, 20, rs2)
    word = set_bits(word, 31, 25, uimm >> 5)
    return word


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """B-type: byte offset, must be even, range +-4 KiB."""
    if imm % 2:
        raise EncodingError(f"branch offset must be even, got {imm}")
    check_signed_range(imm, 13, "B-type immediate")
    uimm = imm & 0x1FFF
    word = 0
    word = set_bits(word, 6, 0, opcode)
    word = set_bits(word, 7, 7, (uimm >> 11) & 1)
    word = set_bits(word, 11, 8, (uimm >> 1) & 0xF)
    word = set_bits(word, 14, 12, funct3)
    word = set_bits(word, 19, 15, rs1)
    word = set_bits(word, 24, 20, rs2)
    word = set_bits(word, 30, 25, (uimm >> 5) & 0x3F)
    word = set_bits(word, 31, 31, (uimm >> 12) & 1)
    return word


def decode_b_imm(word: int) -> int:
    """Recover the signed branch offset of a B-type instruction."""
    imm = (
        (get_bits(word, 31, 31) << 12)
        | (get_bits(word, 7, 7) << 11)
        | (get_bits(word, 30, 25) << 5)
        | (get_bits(word, 11, 8) << 1)
    )
    return sign_extend(imm, 13)


def encode_u(opcode: int, rd: int, imm: int) -> int:
    """U-type: imm[31:12] | rd | opcode.  ``imm`` is the raw 20-bit field."""
    check_unsigned_range(imm, 20, "U-type immediate")
    word = 0
    word = set_bits(word, 6, 0, opcode)
    word = set_bits(word, 11, 7, rd)
    word = set_bits(word, 31, 12, imm)
    return word


def encode_j(opcode: int, rd: int, imm: int) -> int:
    """J-type: byte offset, must be even, range +-1 MiB."""
    if imm % 2:
        raise EncodingError(f"jump offset must be even, got {imm}")
    check_signed_range(imm, 21, "J-type immediate")
    uimm = imm & 0x1FFFFF
    word = 0
    word = set_bits(word, 6, 0, opcode)
    word = set_bits(word, 11, 7, rd)
    word = set_bits(word, 19, 12, (uimm >> 12) & 0xFF)
    word = set_bits(word, 20, 20, (uimm >> 11) & 1)
    word = set_bits(word, 30, 21, (uimm >> 1) & 0x3FF)
    word = set_bits(word, 31, 31, (uimm >> 20) & 1)
    return word


def decode_j_imm(word: int) -> int:
    """Recover the signed jump offset of a J-type instruction."""
    imm = (
        (get_bits(word, 31, 31) << 20)
        | (get_bits(word, 19, 12) << 12)
        | (get_bits(word, 20, 20) << 11)
        | (get_bits(word, 30, 21) << 1)
    )
    return sign_extend(imm, 21)
