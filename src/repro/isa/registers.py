"""Register names of the SIMD processor.

The scalar core (Ibex) exposes the 32 RV32I integer registers with their
ABI aliases; the vector processing unit exposes the 32 vector registers of
the RVV register file (paper Fig. 4).
"""

from __future__ import annotations

from typing import Dict

#: Number of scalar integer registers.
NUM_SCALAR_REGS = 32

#: Number of vector registers in the VecRegfile (paper Section 2.2, item 1).
NUM_VECTOR_REGS = 32

#: ABI aliases for the integer registers (RISC-V calling convention).
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)


def _build_scalar_map() -> Dict[str, int]:
    names: Dict[str, int] = {}
    for i in range(NUM_SCALAR_REGS):
        names[f"x{i}"] = i
    for i, alias in enumerate(ABI_NAMES):
        names[alias] = i
    names["fp"] = 8  # frame pointer alias of s0
    return names


_SCALAR_BY_NAME = _build_scalar_map()
_VECTOR_BY_NAME = {f"v{i}": i for i in range(NUM_VECTOR_REGS)}


class RegisterError(ValueError):
    """Raised for an unknown or out-of-range register name/number."""


def parse_scalar_register(name: str) -> int:
    """Resolve a scalar register name (``x7``, ``t2``, ``s1``...) to its number."""
    key = name.strip().lower()
    if key not in _SCALAR_BY_NAME:
        raise RegisterError(f"unknown scalar register: {name!r}")
    return _SCALAR_BY_NAME[key]


def parse_vector_register(name: str) -> int:
    """Resolve a vector register name (``v0``..``v31``) to its number."""
    key = name.strip().lower()
    if key not in _VECTOR_BY_NAME:
        raise RegisterError(f"unknown vector register: {name!r}")
    return _VECTOR_BY_NAME[key]


def scalar_register_name(number: int, abi: bool = True) -> str:
    """Render a scalar register number as a name (ABI alias by default)."""
    if not 0 <= number < NUM_SCALAR_REGS:
        raise RegisterError(f"scalar register number out of range: {number}")
    return ABI_NAMES[number] if abi else f"x{number}"


def vector_register_name(number: int) -> str:
    """Render a vector register number as ``vN``."""
    if not 0 <= number < NUM_VECTOR_REGS:
        raise RegisterError(f"vector register number out of range: {number}")
    return f"v{number}"


def is_scalar_register(name: str) -> bool:
    """True if ``name`` names a scalar register."""
    return name.strip().lower() in _SCALAR_BY_NAME


def is_vector_register(name: str) -> bool:
    """True if ``name`` names a vector register."""
    return name.strip().lower() in _VECTOR_BY_NAME
