"""Instruction-set architecture of the SIMD processor.

One table-driven definition of every instruction the processor understands:
RV32I base, RV32M, the reserved RVV 1.0 subset, and the paper's ten custom
vector extensions.  :data:`ISA` is the fully-populated registry shared by
the assembler, the disassembler and the simulator's decoder.
"""

from .custom import (
    CUSTOM_ALIASES,
    CUSTOM_MNEMONICS,
    CUSTOM_OPCODE,
    CUSTOM_SPECS,
    FUSED_MNEMONICS,
    FUSED_SPECS,
)
from .csr import CSR_ADDRESSES, READ_ONLY_CSRS, ZICSR_SPECS, csr_name, parse_csr
from .encoding import EncodingError, get_bits, set_bits, sign_extend
from .formats import FORMATS, decode_operands, encode_instruction
from .registers import (
    NUM_SCALAR_REGS,
    NUM_VECTOR_REGS,
    RegisterError,
    is_scalar_register,
    is_vector_register,
    parse_scalar_register,
    parse_vector_register,
    scalar_register_name,
    vector_register_name,
)
from .rv32i import RV32I_SPECS
from .rv32m import RV32M_SPECS
from .spec import InstructionSet, InstructionSpec
from .vector import (
    LMUL_ENCODING,
    RVV_SPECS,
    SEW_ENCODING,
    decode_vtype,
    encode_vtype,
    parse_vtype_tokens,
    render_vtype,
)


def build_isa(include_fused: bool = True) -> InstructionSet:
    """Construct a fresh registry with every supported instruction.

    ``include_fused`` adds the future-work fused extensions (vrhopi/vchi)
    on top of the paper's baseline ISA.
    """
    isa = InstructionSet()
    isa.register_all(RV32I_SPECS)
    isa.register_all(RV32M_SPECS)
    isa.register_all(ZICSR_SPECS)
    isa.register_all(RVV_SPECS)
    isa.register_all(CUSTOM_SPECS)
    if include_fused:
        isa.register_all(FUSED_SPECS)
    return isa


#: The shared, fully-populated instruction set.
ISA = build_isa()

__all__ = [
    "ISA",
    "build_isa",
    "InstructionSet",
    "InstructionSpec",
    "FORMATS",
    "encode_instruction",
    "decode_operands",
    "EncodingError",
    "get_bits",
    "set_bits",
    "sign_extend",
    "RV32I_SPECS",
    "RV32M_SPECS",
    "ZICSR_SPECS",
    "CSR_ADDRESSES",
    "READ_ONLY_CSRS",
    "csr_name",
    "parse_csr",
    "RVV_SPECS",
    "CUSTOM_SPECS",
    "CUSTOM_ALIASES",
    "CUSTOM_MNEMONICS",
    "CUSTOM_OPCODE",
    "FUSED_SPECS",
    "FUSED_MNEMONICS",
    "NUM_SCALAR_REGS",
    "NUM_VECTOR_REGS",
    "RegisterError",
    "parse_scalar_register",
    "parse_vector_register",
    "scalar_register_name",
    "vector_register_name",
    "is_scalar_register",
    "is_vector_register",
    "encode_vtype",
    "decode_vtype",
    "parse_vtype_tokens",
    "render_vtype",
    "SEW_ENCODING",
    "LMUL_ENCODING",
]
