"""Declarative instruction specifications.

Every instruction the SIMD processor understands — RV32I base, the M
extension kept in the scalar core, the RVV 1.0 subset reserved in the
vector processing unit, and the ten custom vector extensions — is described
by one :class:`InstructionSpec` carrying a riscv-opcodes-style
``match``/``mask`` pair plus a format key.  The assembler, disassembler and
simulator decoder are all driven by the same table, so they cannot drift
apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one instruction encoding.

    Attributes
    ----------
    mnemonic:
        Assembly mnemonic, e.g. ``"vxor.vv"`` or ``"v64rho.vi"``.
    fmt:
        Format key into :data:`repro.isa.formats.FORMATS`, which defines
        how operands map to bit fields.
    match:
        Value of the fixed bits.
    mask:
        Bit mask of the fixed bits; ``word & mask == match`` identifies the
        instruction.
    operands:
        Operand names in assembly order.
    extension:
        ISA extension this instruction belongs to (``rv32i``, ``rv32m``,
        ``rvv`` or ``custom``).
    description:
        One-line human description.
    extra:
        Format-specific options (e.g. ``signed_imm`` for vector-immediate
        instructions).
    """

    mnemonic: str
    fmt: str
    match: int
    mask: int
    operands: Tuple[str, ...]
    extension: str
    description: str = ""
    extra: Mapping[str, Any] = field(default_factory=dict)

    def matches(self, word: int) -> bool:
        """True if the fixed bits of ``word`` identify this instruction."""
        return (word & self.mask) == self.match


class InstructionSet:
    """A registry of instruction specs with decode support.

    Decoding walks specs in *descending mask-popcount order* so that more
    specific encodings (e.g. ``srai`` with its fixed funct7) win over less
    specific ones.
    """

    def __init__(self) -> None:
        self._by_mnemonic: Dict[str, InstructionSpec] = {}
        self._decode_order: list = []

    def register(self, spec: InstructionSpec) -> InstructionSpec:
        """Add a spec; mnemonics must be unique."""
        if spec.mnemonic in self._by_mnemonic:
            raise ValueError(f"duplicate mnemonic: {spec.mnemonic}")
        if spec.match & ~spec.mask:
            raise ValueError(
                f"{spec.mnemonic}: match has bits outside mask "
                f"({spec.match:#010x} vs {spec.mask:#010x})"
            )
        self._by_mnemonic[spec.mnemonic] = spec
        self._decode_order.append(spec)
        self._decode_order.sort(
            key=lambda s: bin(s.mask).count("1"), reverse=True
        )
        return spec

    def register_all(self, specs) -> None:
        """Register an iterable of specs."""
        for spec in specs:
            self.register(spec)

    def lookup(self, mnemonic: str) -> InstructionSpec:
        """Find a spec by mnemonic; raises KeyError with suggestions."""
        key = mnemonic.lower()
        if key not in self._by_mnemonic:
            close = [m for m in self._by_mnemonic if m.startswith(key[:4])]
            hint = f" (did you mean one of {sorted(close)[:4]}?)" if close else ""
            raise KeyError(f"unknown instruction: {mnemonic!r}{hint}")
        return self._by_mnemonic[key]

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic.lower() in self._by_mnemonic

    def find(self, word: int) -> InstructionSpec:
        """Decode the 32-bit ``word`` to its spec; raises LookupError."""
        for spec in self._decode_order:
            if spec.matches(word):
                return spec
        raise LookupError(f"cannot decode instruction word {word:#010x}")

    def mnemonics(self) -> Tuple[str, ...]:
        """All registered mnemonics, sorted."""
        return tuple(sorted(self._by_mnemonic))

    def by_extension(self, extension: str) -> Tuple[InstructionSpec, ...]:
        """All specs of one ISA extension."""
        return tuple(
            s for s in self._by_mnemonic.values() if s.extension == extension
        )

    def __len__(self) -> int:
        return len(self._by_mnemonic)
