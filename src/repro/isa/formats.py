"""Instruction formats: the operand <-> bit-field mapping for each layout.

A format knows how to *encode* an operand dictionary into a 32-bit word on
top of a spec's fixed ``match`` bits, and how to *decode* the operand fields
back out of a word.  Register operands are plain integers (already resolved
from names); immediates are Python ints; the ``vm`` operand follows the RVV
convention (1 = unmasked, 0 = masked by v0.t).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from .encoding import (
    EncodingError,
    check_signed_range,
    check_unsigned_range,
    decode_b_imm,
    decode_j_imm,
    encode_b,
    encode_j,
    get_bits,
    set_bits,
    sign_extend,
)
from .spec import InstructionSpec

Operands = Dict[str, int]


class Format:
    """One instruction layout: paired encode/decode functions."""

    def __init__(
        self,
        name: str,
        encode: Callable[[InstructionSpec, Mapping[str, int]], int],
        decode: Callable[[int, InstructionSpec], Operands],
    ) -> None:
        self.name = name
        self._encode = encode
        self._decode = decode

    def encode(self, spec: InstructionSpec, ops: Mapping[str, int]) -> int:
        """Encode ``ops`` into a word for ``spec``."""
        missing = [o for o in spec.operands if o not in ops]
        if missing:
            raise EncodingError(
                f"{spec.mnemonic}: missing operands {missing}"
            )
        return self._encode(spec, ops)

    def decode(self, word: int, spec: InstructionSpec) -> Operands:
        """Extract operand values from ``word``."""
        return self._decode(word, spec)


def _reg(ops: Mapping[str, int], name: str) -> int:
    value = ops[name]
    if not 0 <= value < 32:
        raise EncodingError(f"register operand {name}={value} out of range")
    return value


# -- scalar formats ------------------------------------------------------------


def _enc_r(spec, ops):
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "rd"))
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 24, 20, _reg(ops, "rs2"))
    return word


def _dec_r(word, spec):
    return {
        "rd": get_bits(word, 11, 7),
        "rs1": get_bits(word, 19, 15),
        "rs2": get_bits(word, 24, 20),
    }


def _enc_i(spec, ops):
    check_signed_range(ops["imm"], 12, f"{spec.mnemonic} immediate")
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "rd"))
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 31, 20, ops["imm"] & 0xFFF)
    return word


def _dec_i(word, spec):
    return {
        "rd": get_bits(word, 11, 7),
        "rs1": get_bits(word, 19, 15),
        "imm": sign_extend(get_bits(word, 31, 20), 12),
    }


def _enc_i_shift(spec, ops):
    check_unsigned_range(ops["shamt"], 5, f"{spec.mnemonic} shift amount")
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "rd"))
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 24, 20, ops["shamt"])
    return word


def _dec_i_shift(word, spec):
    return {
        "rd": get_bits(word, 11, 7),
        "rs1": get_bits(word, 19, 15),
        "shamt": get_bits(word, 24, 20),
    }


def _enc_load(spec, ops):
    check_signed_range(ops["imm"], 12, f"{spec.mnemonic} offset")
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "rd"))
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 31, 20, ops["imm"] & 0xFFF)
    return word


def _enc_store(spec, ops):
    check_signed_range(ops["imm"], 12, f"{spec.mnemonic} offset")
    uimm = ops["imm"] & 0xFFF
    word = spec.match
    word = set_bits(word, 11, 7, uimm & 0x1F)
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 24, 20, _reg(ops, "rs2"))
    word = set_bits(word, 31, 25, uimm >> 5)
    return word


def _dec_store(word, spec):
    imm = (get_bits(word, 31, 25) << 5) | get_bits(word, 11, 7)
    return {
        "rs2": get_bits(word, 24, 20),
        "rs1": get_bits(word, 19, 15),
        "imm": sign_extend(imm, 12),
    }


def _enc_branch(spec, ops):
    word = encode_b(
        spec.match & 0x7F,
        (spec.match >> 12) & 0x7,
        _reg(ops, "rs1"),
        _reg(ops, "rs2"),
        ops["offset"],
    )
    return word


def _dec_branch(word, spec):
    return {
        "rs1": get_bits(word, 19, 15),
        "rs2": get_bits(word, 24, 20),
        "offset": decode_b_imm(word),
    }


def _enc_u(spec, ops):
    imm = ops["imm"]
    if not -(1 << 19) <= imm < (1 << 20):
        raise EncodingError(
            f"{spec.mnemonic} immediate {imm} out of 20-bit range"
        )
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "rd"))
    word = set_bits(word, 31, 12, imm & 0xFFFFF)
    return word


def _dec_u(word, spec):
    return {"rd": get_bits(word, 11, 7), "imm": get_bits(word, 31, 12)}


def _enc_jal(spec, ops):
    return encode_j(spec.match & 0x7F, _reg(ops, "rd"), ops["offset"])


def _dec_jal(word, spec):
    return {"rd": get_bits(word, 11, 7), "offset": decode_j_imm(word)}


def _enc_system(spec, ops):
    return spec.match


def _dec_system(word, spec):
    return {}


def _enc_csr(spec, ops):
    check_unsigned_range(ops["csr"], 12, "CSR address")
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "rd"))
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 31, 20, ops["csr"])
    return word


def _dec_csr(word, spec):
    return {
        "rd": get_bits(word, 11, 7),
        "rs1": get_bits(word, 19, 15),
        "csr": get_bits(word, 31, 20),
    }


# -- vector formats -----------------------------------------------------------


def _vm_bit(ops: Mapping[str, int]) -> int:
    vm = ops.get("vm", 1)
    if vm not in (0, 1):
        raise EncodingError(f"vm must be 0 or 1, got {vm}")
    return vm


def _enc_vsetvli(spec, ops):
    check_unsigned_range(ops["vtype"], 11, "vtype immediate")
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "rd"))
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 30, 20, ops["vtype"])
    return word


def _dec_vsetvli(word, spec):
    return {
        "rd": get_bits(word, 11, 7),
        "rs1": get_bits(word, 19, 15),
        "vtype": get_bits(word, 30, 20),
    }


def _enc_vls_unit(spec, ops):
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "vd"))
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 25, 25, _vm_bit(ops))
    return word


def _dec_vls_unit(word, spec):
    return {
        "vd": get_bits(word, 11, 7),
        "rs1": get_bits(word, 19, 15),
        "vm": get_bits(word, 25, 25),
    }


def _enc_vls_strided(spec, ops):
    word = _enc_vls_unit(spec, ops)
    word = set_bits(word, 24, 20, _reg(ops, "rs2"))
    return word


def _dec_vls_strided(word, spec):
    ops = _dec_vls_unit(word, spec)
    ops["rs2"] = get_bits(word, 24, 20)
    return ops


def _enc_vls_indexed(spec, ops):
    word = _enc_vls_unit(spec, ops)
    word = set_bits(word, 24, 20, _reg(ops, "vs2"))
    return word


def _dec_vls_indexed(word, spec):
    ops = _dec_vls_unit(word, spec)
    ops["vs2"] = get_bits(word, 24, 20)
    return ops


def _enc_v_vv(spec, ops):
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "vd"))
    word = set_bits(word, 19, 15, _reg(ops, "vs1"))
    word = set_bits(word, 24, 20, _reg(ops, "vs2"))
    word = set_bits(word, 25, 25, _vm_bit(ops))
    return word


def _dec_v_vv(word, spec):
    return {
        "vd": get_bits(word, 11, 7),
        "vs1": get_bits(word, 19, 15),
        "vs2": get_bits(word, 24, 20),
        "vm": get_bits(word, 25, 25),
    }


def _enc_v_vx(spec, ops):
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "vd"))
    word = set_bits(word, 19, 15, _reg(ops, "rs1"))
    word = set_bits(word, 24, 20, _reg(ops, "vs2"))
    word = set_bits(word, 25, 25, _vm_bit(ops))
    return word


def _dec_v_vx(word, spec):
    return {
        "vd": get_bits(word, 11, 7),
        "rs1": get_bits(word, 19, 15),
        "vs2": get_bits(word, 24, 20),
        "vm": get_bits(word, 25, 25),
    }


def _enc_v_vi(spec, ops):
    imm = ops["imm"]
    if spec.extra.get("signed_imm", False):
        check_signed_range(imm, 5, f"{spec.mnemonic} immediate")
        imm5 = imm & 0x1F
    else:
        check_unsigned_range(imm, 5, f"{spec.mnemonic} immediate")
        imm5 = imm
    word = spec.match
    word = set_bits(word, 11, 7, _reg(ops, "vd"))
    word = set_bits(word, 19, 15, imm5)
    word = set_bits(word, 24, 20, _reg(ops, "vs2"))
    word = set_bits(word, 25, 25, _vm_bit(ops))
    return word


def _dec_v_vi(word, spec):
    raw = get_bits(word, 19, 15)
    imm = sign_extend(raw, 5) if spec.extra.get("signed_imm", False) else raw
    return {
        "vd": get_bits(word, 11, 7),
        "imm": imm,
        "vs2": get_bits(word, 24, 20),
        "vm": get_bits(word, 25, 25),
    }


#: All known formats, keyed by the name used in :class:`InstructionSpec`.
FORMATS: Dict[str, Format] = {
    "r": Format("r", _enc_r, _dec_r),
    "i": Format("i", _enc_i, _dec_i),
    "i_shift": Format("i_shift", _enc_i_shift, _dec_i_shift),
    "load": Format("load", _enc_load, _dec_i),
    "store": Format("store", _enc_store, _dec_store),
    "branch": Format("branch", _enc_branch, _dec_branch),
    "u": Format("u", _enc_u, _dec_u),
    "jal": Format("jal", _enc_jal, _dec_jal),
    "jalr": Format("jalr", _enc_i, _dec_i),
    "system": Format("system", _enc_system, _dec_system),
    "csr": Format("csr", _enc_csr, _dec_csr),
    "vsetvli": Format("vsetvli", _enc_vsetvli, _dec_vsetvli),
    "vls_unit": Format("vls_unit", _enc_vls_unit, _dec_vls_unit),
    "vls_strided": Format("vls_strided", _enc_vls_strided, _dec_vls_strided),
    "vls_indexed": Format("vls_indexed", _enc_vls_indexed, _dec_vls_indexed),
    "v_vv": Format("v_vv", _enc_v_vv, _dec_v_vv),
    "v_vx": Format("v_vx", _enc_v_vx, _dec_v_vx),
    "v_vi": Format("v_vi", _enc_v_vi, _dec_v_vi),
}


def encode_instruction(spec: InstructionSpec, ops: Mapping[str, int]) -> int:
    """Encode operands for ``spec`` into a 32-bit word."""
    return FORMATS[spec.fmt].encode(spec, ops)


def decode_operands(word: int, spec: InstructionSpec) -> Operands:
    """Decode the operand fields of ``word`` according to ``spec``."""
    return FORMATS[spec.fmt].decode(word, spec)
