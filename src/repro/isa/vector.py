"""The RVV 1.0 subset reserved in the vector processing unit.

Per Section 4.2 of the paper, the vector unit keeps: configuration-setting
instructions (``vsetvli``), vector load/store instructions (unit-stride,
strided and indexed addressing modes), and the vector *logical* arithmetic
instructions — plus ``vadd``, which Algorithm 2's chi step uses.  This
module also provides the ``vtype`` encode/parse/render helpers used by the
assembler and the simulator's configuration state.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .spec import InstructionSpec

_OP_V = 0x57
_LOAD_FP = 0x07
_STORE_FP = 0x27

#: funct3 values selecting the vector-arithmetic operand category.
OPIVV = 0b000
OPIVX = 0b100
OPIVI = 0b011

_MASK_VARITH = 0xFC00707F
_MASK_VLS_UNIT = 0xFDF0707F
_MASK_VLS_OTHER = 0xFC00707F

#: Element-width funct3 encodings for vector loads/stores (RVV 1.0 table).
WIDTH_FUNCT3 = {8: 0b000, 16: 0b101, 32: 0b110, 64: 0b111}

# Memory addressing modes (mop field, bits 27:26).
_MOP_UNIT = 0b00
_MOP_INDEXED = 0b01
_MOP_STRIDED = 0b10

# -- vtype ---------------------------------------------------------------------

#: vsew field values: selected element width = 8 * 2^vsew.
SEW_ENCODING = {8: 0b000, 16: 0b001, 32: 0b010, 64: 0b011}
SEW_DECODING = {v: k for k, v in SEW_ENCODING.items()}

#: vlmul field values for the integer register-group multipliers
#: (the paper only uses integer LMUL: "LMUL supports integer values
#: no larger than 8, that is, 1, 2, 4 or 8").
LMUL_ENCODING = {1: 0b000, 2: 0b001, 4: 0b010, 8: 0b011}
LMUL_DECODING = {v: k for k, v in LMUL_ENCODING.items()}


def encode_vtype(sew: int, lmul: int, tail_agnostic: bool = False,
                 mask_agnostic: bool = False) -> int:
    """Build the 8-bit vtype value (vlmul | vsew | vta | vma)."""
    if sew not in SEW_ENCODING:
        raise ValueError(f"unsupported SEW: {sew} (expected 8/16/32/64)")
    if lmul not in LMUL_ENCODING:
        raise ValueError(f"unsupported LMUL: {lmul} (expected 1/2/4/8)")
    return (
        LMUL_ENCODING[lmul]
        | (SEW_ENCODING[sew] << 3)
        | (int(tail_agnostic) << 6)
        | (int(mask_agnostic) << 7)
    )


def decode_vtype(vtype: int) -> Dict[str, int]:
    """Split a vtype value into sew/lmul/ta/ma components."""
    vlmul = vtype & 0x7
    vsew = (vtype >> 3) & 0x7
    if vsew not in SEW_DECODING:
        raise ValueError(f"reserved vsew encoding: {vsew}")
    if vlmul not in LMUL_DECODING:
        raise ValueError(f"unsupported vlmul encoding: {vlmul}")
    return {
        "sew": SEW_DECODING[vsew],
        "lmul": LMUL_DECODING[vlmul],
        "ta": (vtype >> 6) & 1,
        "ma": (vtype >> 7) & 1,
    }


def parse_vtype_tokens(tokens: List[str]) -> int:
    """Parse assembly vtype tokens like ``["e64", "m1", "tu", "mu"]``."""
    sew = None
    lmul = None
    ta = False
    ma = False
    for token in tokens:
        t = token.strip().lower()
        if t.startswith("e") and t[1:].isdigit():
            sew = int(t[1:])
        elif t.startswith("m") and t[1:].isdigit():
            lmul = int(t[1:])
        elif t == "tu":
            ta = False
        elif t == "ta":
            ta = True
        elif t == "mu":
            ma = False
        elif t == "ma":
            ma = True
        else:
            raise ValueError(f"unknown vtype token: {token!r}")
    if sew is None or lmul is None:
        raise ValueError(f"vtype needs eSEW and mLMUL tokens, got {tokens}")
    return encode_vtype(sew, lmul, ta, ma)


def render_vtype(vtype: int) -> str:
    """Render a vtype value in assembly syntax."""
    parts = decode_vtype(vtype)
    return (
        f"e{parts['sew']},m{parts['lmul']},"
        f"{'ta' if parts['ta'] else 'tu'},{'ma' if parts['ma'] else 'mu'}"
    )


# -- spec builders --------------------------------------------------------------


def _varith(mnemonic: str, funct6: int, funct3: int, operands: Tuple[str, ...],
            description: str, signed_imm: bool = False) -> InstructionSpec:
    extra = {"signed_imm": True} if signed_imm else {}
    fmt = {OPIVV: "v_vv", OPIVX: "v_vx", OPIVI: "v_vi"}[funct3]
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt=fmt,
        match=(funct6 << 26) | (funct3 << 12) | _OP_V,
        mask=_MASK_VARITH,
        operands=operands,
        extension="rvv",
        description=description,
        extra=extra,
    )


def _vv(mnemonic: str, funct6: int, description: str) -> InstructionSpec:
    return _varith(mnemonic, funct6, OPIVV, ("vd", "vs2", "vs1"), description)


def _vx(mnemonic: str, funct6: int, description: str) -> InstructionSpec:
    return _varith(mnemonic, funct6, OPIVX, ("vd", "vs2", "rs1"), description)


def _vi(mnemonic: str, funct6: int, description: str,
        signed: bool = True) -> InstructionSpec:
    return _varith(mnemonic, funct6, OPIVI, ("vd", "vs2", "imm"),
                   description, signed_imm=signed)


def _vload_unit(mnemonic: str, width: int) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="vls_unit",
        match=(WIDTH_FUNCT3[width] << 12) | _LOAD_FP,
        mask=_MASK_VLS_UNIT,
        operands=("vd", "rs1"),
        extension="rvv",
        description=f"unit-stride vector load of {width}-bit memory elements",
        extra={"width": width, "mop": "unit"},
    )


def _vstore_unit(mnemonic: str, width: int) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="vls_unit",
        match=(WIDTH_FUNCT3[width] << 12) | _STORE_FP,
        mask=_MASK_VLS_UNIT,
        operands=("vd", "rs1"),
        extension="rvv",
        description=f"unit-stride vector store of {width}-bit memory elements",
        extra={"width": width, "mop": "unit", "is_store": True},
    )


def _vload_strided(mnemonic: str, width: int) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="vls_strided",
        match=(_MOP_STRIDED << 26) | (WIDTH_FUNCT3[width] << 12) | _LOAD_FP,
        mask=_MASK_VLS_OTHER,
        operands=("vd", "rs1", "rs2"),
        extension="rvv",
        description=f"strided vector load of {width}-bit memory elements",
        extra={"width": width, "mop": "strided"},
    )


def _vstore_strided(mnemonic: str, width: int) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="vls_strided",
        match=(_MOP_STRIDED << 26) | (WIDTH_FUNCT3[width] << 12) | _STORE_FP,
        mask=_MASK_VLS_OTHER,
        operands=("vd", "rs1", "rs2"),
        extension="rvv",
        description=f"strided vector store of {width}-bit memory elements",
        extra={"width": width, "mop": "strided", "is_store": True},
    )


def _vload_indexed(mnemonic: str, width: int) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="vls_indexed",
        match=(_MOP_INDEXED << 26) | (WIDTH_FUNCT3[width] << 12) | _LOAD_FP,
        mask=_MASK_VLS_OTHER,
        operands=("vd", "rs1", "vs2"),
        extension="rvv",
        description=f"indexed vector load with {width}-bit indices",
        extra={"width": width, "mop": "indexed"},
    )


def _vstore_indexed(mnemonic: str, width: int) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt="vls_indexed",
        match=(_MOP_INDEXED << 26) | (WIDTH_FUNCT3[width] << 12) | _STORE_FP,
        mask=_MASK_VLS_OTHER,
        operands=("vd", "rs1", "vs2"),
        extension="rvv",
        description=f"indexed vector store with {width}-bit indices",
        extra={"width": width, "mop": "indexed", "is_store": True},
    )


RVV_SPECS: List[InstructionSpec] = [
    InstructionSpec(
        "vsetvli", "vsetvli", 0x00007057, 0x8000707F,
        ("rd", "rs1", "vtype"), "rvv",
        "set vector length and configuration (VL, SEW, LMUL)",
    ),
    # Integer arithmetic (funct6 from the RVV 1.0 OPI table).
    _vv("vadd.vv", 0b000000, "vector-vector addition"),
    _vx("vadd.vx", 0b000000, "vector-scalar addition"),
    _vi("vadd.vi", 0b000000, "vector-immediate addition"),
    _vv("vsub.vv", 0b000010, "vector-vector subtraction"),
    _vx("vsub.vx", 0b000010, "vector-scalar subtraction"),
    _vv("vand.vv", 0b001001, "vector-vector bitwise and"),
    _vx("vand.vx", 0b001001, "vector-scalar bitwise and"),
    _vi("vand.vi", 0b001001, "vector-immediate bitwise and"),
    _vv("vor.vv", 0b001010, "vector-vector bitwise or"),
    _vx("vor.vx", 0b001010, "vector-scalar bitwise or"),
    _vi("vor.vi", 0b001010, "vector-immediate bitwise or"),
    _vv("vxor.vv", 0b001011, "vector-vector bitwise xor"),
    _vx("vxor.vx", 0b001011, "vector-scalar bitwise xor"),
    _vi("vxor.vi", 0b001011, "vector-immediate bitwise xor"),
    _vv("vsll.vv", 0b100101, "vector-vector logical shift left"),
    _vx("vsll.vx", 0b100101, "vector-scalar logical shift left"),
    _vi("vsll.vi", 0b100101, "vector-immediate logical shift left", signed=False),
    _vv("vsrl.vv", 0b101000, "vector-vector logical shift right"),
    _vx("vsrl.vx", 0b101000, "vector-scalar logical shift right"),
    _vi("vsrl.vi", 0b101000, "vector-immediate logical shift right", signed=False),
    # Memory: unit-stride, strided and indexed (Section 2.2 item 9).
    _vload_unit("vle32.v", 32),
    _vload_unit("vle64.v", 64),
    _vstore_unit("vse32.v", 32),
    _vstore_unit("vse64.v", 64),
    _vload_strided("vlse32.v", 32),
    _vload_strided("vlse64.v", 64),
    _vstore_strided("vsse32.v", 32),
    _vstore_strided("vsse64.v", 64),
    _vload_indexed("vluxei32.v", 32),
    _vload_indexed("vluxei64.v", 64),
    _vstore_indexed("vsuxei32.v", 32),
    _vstore_indexed("vsuxei64.v", 64),
]
