"""The paper's ten custom vector extensions (Section 3.3, Tables 1/3/4/5).

All ten live in the *custom-1* major opcode (0b0101011) so they cannot
collide with standard RVV encodings, and reuse the RVV vector-arithmetic
field layout (funct6 | vm | vs2 | vs1/imm5/rs1 | funct3 | vd | opcode).

Semantics summary (SN = number of Keccak states = VL / 5; all instructions
only touch elements with index < 5*SN, elements beyond are unchanged):

===============  =====  ======================================================
Instruction      Archs  Semantics
===============  =====  ======================================================
vslidedownm.vi   64/32  vd[5i+j] = vs2[5i + (j+uimm) mod 5]  (Table 1)
vslideupm.vi     64/32  vd[5i+j] = vs2[5i + (j-uimm) mod 5]  (Table 1)
vrotup.vi        64     vd = rotl64(vs2, uimm)               (Table 3)
v32lrotup.vv     32     vd = rotl64(vs2||vs1, 1)[31:0]       (Table 3)
v32hrotup.vv     32     vd = rotl64(vs2||vs1, 1)[63:32]      (Table 3)
v64rho.vi        64     per-lane rho rotation; simm selects the row of the
                        lookup table, simm = -1 iterates rows via lmul_cnt
v32lrho.vv       32     rho rotation of vs2||vs1, low half; row via lmul_cnt
v32hrho.vv       32     rho rotation of vs2||vs1, high half; row via lmul_cnt
vpi.vi           64/32  pi lane scramble with column-mode writes (Table 4);
                        simm selects the source row, -1 iterates all rows
viota.vx         64/32  lane (x=0) of each state ^= RC[rs1]  (Table 5)
===============  =====  ======================================================

Note on mnemonics: the paper's Table 3 prints ``v32lrotup.vi vd, vs2, vs1``
(and similar) with two *vector* source operands; since the operands are
vector-vector we encode them as ``.vv`` and the assembler accepts the
paper's ``.vi`` spelling as an alias.  ``viota.vx`` here is the paper's
iota-step instruction, unrelated to the standard RVV mask instruction
``viota.m`` (which the vector unit does not implement).
"""

from __future__ import annotations

from typing import Dict, List

from .spec import InstructionSpec
from .vector import OPIVI, OPIVV, OPIVX

#: The custom-1 major opcode used for all ten extensions.
CUSTOM_OPCODE = 0b0101011

_MASK = 0xFC00707F


def _custom(mnemonic: str, funct6: int, funct3: int, operands, description,
            signed_imm: bool = False, archs=("rv64", "rv32")) -> InstructionSpec:
    fmt = {OPIVV: "v_vv", OPIVX: "v_vx", OPIVI: "v_vi"}[funct3]
    extra: Dict[str, object] = {"archs": tuple(archs)}
    if signed_imm:
        extra["signed_imm"] = True
    return InstructionSpec(
        mnemonic=mnemonic,
        fmt=fmt,
        match=(funct6 << 26) | (funct3 << 12) | CUSTOM_OPCODE,
        mask=_MASK,
        operands=tuple(operands),
        extension="custom",
        description=description,
        extra=extra,
    )


CUSTOM_SPECS: List[InstructionSpec] = [
    _custom(
        "vslidedownm.vi", 0b000001, OPIVI, ("vd", "vs2", "imm"),
        "slide elements down by uimm, modulo 5 within each Keccak state",
    ),
    _custom(
        "vslideupm.vi", 0b000010, OPIVI, ("vd", "vs2", "imm"),
        "slide elements up by uimm, modulo 5 within each Keccak state",
    ),
    _custom(
        "vrotup.vi", 0b000011, OPIVI, ("vd", "vs2", "imm"),
        "rotate each 64-bit element left by uimm (theta parity rotation)",
        archs=("rv64",),
    ),
    _custom(
        "v32lrotup.vv", 0b000100, OPIVV, ("vd", "vs2", "vs1"),
        "rotate the 64-bit pair vs2||vs1 left by 1, keep the low 32 bits",
        archs=("rv32",),
    ),
    _custom(
        "v32hrotup.vv", 0b000101, OPIVV, ("vd", "vs2", "vs1"),
        "rotate the 64-bit pair vs2||vs1 left by 1, keep the high 32 bits",
        archs=("rv32",),
    ),
    _custom(
        "v64rho.vi", 0b000110, OPIVI, ("vd", "vs2", "imm"),
        "rho rotation per lane; simm = row index, -1 iterates via lmul_cnt",
        signed_imm=True, archs=("rv64",),
    ),
    _custom(
        "v32lrho.vv", 0b000111, OPIVV, ("vd", "vs2", "vs1"),
        "rho rotation of vs2||vs1 per lane, low half; row via lmul_cnt",
        archs=("rv32",),
    ),
    _custom(
        "v32hrho.vv", 0b001000, OPIVV, ("vd", "vs2", "vs1"),
        "rho rotation of vs2||vs1 per lane, high half; row via lmul_cnt",
        archs=("rv32",),
    ),
    _custom(
        "vpi.vi", 0b001001, OPIVI, ("vd", "vs2", "imm"),
        "pi lane scramble with column-mode register-file writes; "
        "simm = source row, -1 iterates via lmul_cnt",
        signed_imm=True,
    ),
    _custom(
        "viota.vx", 0b001010, OPIVX, ("vd", "vs2", "rs1"),
        "XOR round constant RC[rs1] into lane (0, y) of each Keccak state",
    ),
]

#: Fused-operation extensions (the paper's future work, Section 5: the
#: performance "will improve more if we increase the granularity or
#: combine some adjacent operations").  Not part of the paper's ten
#: instructions; kept in a separate list so the baseline ISA stays faithful.
FUSED_SPECS: List[InstructionSpec] = [
    _custom(
        "vrhopi.vi", 0b001011, OPIVI, ("vd", "vs2", "imm"),
        "fused rho+pi: rotate each lane by its rho offset and scramble it "
        "into the pi destination column in one pass; simm = source row, "
        "-1 iterates via lmul_cnt",
        signed_imm=True, archs=("rv64",),
    ),
    _custom(
        "vchi.vi", 0b001100, OPIVI, ("vd", "vs2", "imm"),
        "fused chi: vd[5i+j] = vs2[5i+j] ^ (~vs2[5i+(j+1)%5] & "
        "vs2[5i+(j+2)%5]) in one pass; simm must be 0 (reserved)",
        signed_imm=True,
    ),
]

#: Mnemonics of the fused extensions.
FUSED_MNEMONICS = tuple(spec.mnemonic for spec in FUSED_SPECS)

#: Mnemonic aliases: the paper's Table 3 spells the two-vector-operand
#: custom instructions with a ``.vi`` suffix; accept both spellings.
CUSTOM_ALIASES: Dict[str, str] = {
    "v32lrotup.vi": "v32lrotup.vv",
    "v32hrotup.vi": "v32hrotup.vv",
    "v32lrho.vi": "v32lrho.vv",
    "v32hrho.vi": "v32hrho.vv",
}

#: The ten custom mnemonics in paper order (for docs and tests).
CUSTOM_MNEMONICS = tuple(spec.mnemonic for spec in CUSTOM_SPECS)
