"""The execution-engine registry: capability negotiation for ``engine=``.

The ``engine="auto|stepped|predecoded|fused|compiled|soa"`` axis used to
be an if/else chain inside :meth:`SIMDProcessor._run`; every new backend
(the SoA batch kernels, a service-side batcher, alternative timing
models) needed another special case in the processor core.  This module
replaces that chain with a registry: each backend registers an
:class:`EngineSpec` declaring *capabilities* —

* can it reproduce per-instruction **tracing**?
* does it honour **instrumentation** (armed fault injectors, the stepped
  path's ``fault_hook``)?
* can it stop at an exact **max_cycles** boundary?
* does it do multi-message **batching** (the SoA path)?
* does it **own the paper's cycle pins** (i.e. is it cycle-accurate)?
* is it **functional** — digests only, no per-instruction simulation?

— and ``auto`` selection, the compiled→fused→predecoded→stepped fallback
cascade, and the observability labels all derive from those declarations
instead of hard-coded names.  A third-party backend registered here runs
through :meth:`SIMDProcessor.run` without a single edit to
``processor.py``.

Capability table of the built-in engines:

=========== ======= =============== ========== ======== ========= ==========
engine      tracing instrumentation max_cycles batching owns pins functional
=========== ======= =============== ========== ======== ========= ==========
stepped     yes     yes             yes        no       yes       no
predecoded  yes     yes             yes        no       yes       no
fused       yes     yes             no         no       yes       no
compiled    no      no              no         no       yes       no
soa         no      no              no         yes      no        yes
=========== ======= =============== ========== ======== ========= ==========

Two kinds of backend coexist:

* **processor engines** provide a ``runner`` and execute a loaded
  program on a :class:`~repro.sim.processor.SIMDProcessor`.  A runner
  may *decline at run time* by returning None (the compiled kernel's
  eligibility checks), in which case execution cascades down the
  pre-computed :func:`plan`.
* **functional engines** provide ``run_states`` instead: they transform
  Keccak states directly (the SoA mega-batch kernels), never touching a
  processor.  :class:`~repro.programs.session.Session` dispatches to
  them; at the processor level they simply cascade to their declared
  ``fallback``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..observability import metrics as _metrics

__all__ = [
    "EngineCaps",
    "EngineSpec",
    "PlanStep",
    "RunContext",
    "get",
    "maybe_get",
    "names",
    "note_functional_fallback",
    "plan",
    "register",
    "unregister",
    "validate",
]

#: The pseudo-engine resolved per run against declared capabilities.
AUTO = "auto"

# Functional engines falling back to a processor engine (e.g. a traced
# run requested on the SoA backend) are metered here, mirroring the
# compiled engine's ``sim_compiled_fallbacks_total``.
_FUNCTIONAL_FALLBACKS = _metrics.registry().counter(
    "sim_functional_fallbacks_total",
    "Runs a functional engine declined, by engine and reason",
    ("engine", "reason"))


@dataclass(frozen=True)
class EngineCaps:
    """What a backend can reproduce exactly (see the module table)."""

    #: Per-instruction trace records (``trace=True`` runs).
    tracing: bool = True
    #: Armed fault injectors / wrapped entries / ``fault_hook``.
    instrumentation: bool = True
    #: Exact ``max_cycles`` execution limits.
    max_cycles: bool = True
    #: Processes many messages per call (SoA batch kernels).
    batching: bool = False
    #: Cycle-accurate: the paper's Table 7/8 pins are measured here.
    owns_pins: bool = False
    #: Digests only — no cycle model, no architectural simulation.
    functional: bool = False


@dataclass(frozen=True)
class EngineSpec:
    """One registered backend: capabilities plus its entry points."""

    name: str
    caps: EngineCaps
    #: Processor-level entry point:
    #: ``runner(proc, pre, max_instructions, max_cycles)`` returning the
    #: run's ExecutionStats, or None to decline (cascade to the next
    #: plan step).  None for purely functional engines.
    runner: Optional[Callable] = None
    #: Functional entry point: ``run_states(program, states)`` returning
    #: the transformed states (functional engines only).
    run_states: Optional[Callable] = None
    #: Whole-message fast path for digest-only batch traffic:
    #: ``digest_batch(algorithm, length, messages) -> [digest, ...]``.
    #: Engines that can produce final digests without simulating sponge
    #: rounds (the hashlib-backed ``reference`` engine) declare it; the
    #: batch drivers use it to skip per-permutation dispatch entirely.
    digest_batch: Optional[Callable] = None
    #: For batching engines: ``batch_width()`` — how many messages one
    #: kernel call carries (the :class:`BatchPermutation` lane budget).
    batch_width: Optional[Callable[[], int]] = None
    #: Pre-compile hook: ``warm(program) -> bool`` (pool parents call
    #: this before forking so workers warm-start from the disk cache).
    warm: Optional[Callable] = None
    #: Engine to cascade to when this one is ineligible or declines.
    fallback: Optional[str] = None
    #: ``auto`` picks the highest-priority eligible processor engine.
    priority: int = 0
    #: Structural requirements (checked silently, like the old chain).
    requires_predecode: bool = False
    requires_fuse: bool = False
    #: Meter capability-based skips to the engine's fallback counter
    #: (the compiled engine's ``sim_compiled_fallbacks_total`` story).
    meter_fallbacks: bool = False
    description: str = ""


@dataclass(frozen=True)
class RunContext:
    """What one :meth:`SIMDProcessor.run` call needs reproduced."""

    traced: bool = False
    has_fault_hook: bool = False
    instrumented: bool = False
    wants_max_cycles: bool = False
    has_predecode: bool = False
    fuse_enabled: bool = False


@dataclass(frozen=True)
class PlanStep:
    """One engine in a run's cascade: runnable, or skipped for a reason."""

    spec: EngineSpec
    #: None — try the runner.  Otherwise the capability the engine lacks
    #: (``traced``/``fault_hook``/``instrumented``/``max_cycles``); the
    #: processor meters it (when the spec asks) and moves on.
    blocked: Optional[str] = None


_REGISTRY: Dict[str, EngineSpec] = {}


def register(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Add a backend; ``replace=True`` swaps an existing registration."""
    if spec.name == AUTO:
        raise ValueError("'auto' is the selection policy, not an engine")
    if spec.runner is None and spec.run_states is None:
        raise ValueError(
            f"engine {spec.name!r} must provide a runner or run_states")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"engine already registered: {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a backend (tests registering throwaway engines)."""
    _REGISTRY.pop(name, None)


def names() -> Tuple[str, ...]:
    """Every selectable engine name, ``auto`` first."""
    return (AUTO,) + tuple(_REGISTRY)


def validate(engine: str) -> str:
    """Check an engine name against the registry; returns it for chaining."""
    if engine != AUTO and engine not in _REGISTRY:
        raise ValueError(
            f"unknown engine {engine!r}: expected one of {names()}"
        )
    return engine


def get(name: str) -> EngineSpec:
    """The spec registered under ``name`` (KeyError -> ValueError)."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown engine {name!r}: expected one of {names()}"
        )
    return spec


def maybe_get(name: str) -> Optional[EngineSpec]:
    """Like :func:`get`, but ``auto`` (no fixed spec) returns None."""
    return None if name == AUTO else get(name)


def _blocked_reason(spec: EngineSpec, ctx: RunContext) -> Optional[str]:
    caps = spec.caps
    if ctx.traced and not caps.tracing:
        return "traced"
    if ctx.has_fault_hook and not caps.instrumentation:
        return "fault_hook"
    if ctx.instrumented and not caps.instrumentation:
        return "instrumented"
    if ctx.wants_max_cycles and not caps.max_cycles:
        return "max_cycles"
    return None


def _structurally_available(spec: EngineSpec, ctx: RunContext) -> bool:
    if spec.runner is None:
        return False  # functional engines never run on the processor
    if spec.requires_predecode and not ctx.has_predecode:
        return False
    if spec.requires_fuse and not ctx.fuse_enabled:
        return False
    return True


def plan(engine: str, ctx: RunContext) -> List[PlanStep]:
    """The ordered cascade of engines for one run.

    ``auto`` considers every processor engine by descending priority;
    an explicit name starts from that engine and follows its declared
    ``fallback`` links.  Structurally unavailable engines (no predecoded
    program, fusion disabled, functional-only) are dropped silently —
    exactly like the old if/else chain; capability mismatches become
    blocked steps so the processor can meter the fallback reason.
    """
    if engine == AUTO:
        chain: List[EngineSpec] = sorted(
            (s for s in _REGISTRY.values() if s.runner is not None),
            key=lambda s: -s.priority)
    else:
        chain = []
        seen = set()
        cursor: Optional[str] = engine
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            spec = get(cursor)
            chain.append(spec)
            cursor = spec.fallback
    steps: List[PlanStep] = []
    for spec in chain:
        if not _structurally_available(spec, ctx):
            continue
        steps.append(PlanStep(spec, _blocked_reason(spec, ctx)))
    return steps


def note_functional_fallback(spec: EngineSpec, reason: str) -> None:
    """Meter a functional engine handing a run to its fallback."""
    if _metrics.ARMED:
        _FUNCTIONAL_FALLBACKS.inc(engine=spec.name, reason=reason)


# -- built-in processor engines -------------------------------------------------
#
# The runner bodies live on SIMDProcessor (they are the hot loops); the
# specs here only declare capabilities and wire the cascade.  Priorities
# order the ``auto`` preference: compiled > fused > predecoded > stepped.


def _run_stepped(proc, pre, max_instructions, max_cycles):
    return proc._run_stepped(max_instructions, max_cycles)


def _run_predecoded(proc, pre, max_instructions, max_cycles):
    return proc._run_predecoded(pre, max_instructions, max_cycles)


def _run_fused(proc, pre, max_instructions, max_cycles):
    return proc._run_fused(pre, max_instructions, max_cycles)


def _run_compiled(proc, pre, max_instructions, max_cycles):
    return proc._run_compiled(pre, max_instructions)


register(EngineSpec(
    name="stepped",
    caps=EngineCaps(owns_pins=True),
    runner=_run_stepped,
    priority=10,
    description="per-instruction fetch/decode/execute (reference)",
))
register(EngineSpec(
    name="predecoded",
    caps=EngineCaps(owns_pins=True),
    runner=_run_predecoded,
    fallback="stepped",
    priority=20,
    requires_predecode=True,
    description="decode-once executor closures, per-instruction dispatch",
))
register(EngineSpec(
    name="fused",
    caps=EngineCaps(max_cycles=False, owns_pins=True),
    runner=_run_fused,
    fallback="predecoded",
    priority=30,
    requires_predecode=True,
    requires_fuse=True,
    description="superblock-fused straight-line dispatch",
))
register(EngineSpec(
    name="compiled",
    caps=EngineCaps(tracing=False, instrumentation=False,
                    max_cycles=False, owns_pins=True),
    runner=_run_compiled,
    fallback="fused",
    priority=40,
    requires_predecode=True,
    meter_fallbacks=True,
    description="AOT flat kernel per program x geometry",
))


# -- the SoA mega-batch engine ---------------------------------------------------
#
# A *functional* fast path: N messages per generated-function call with
# the 25-lane Keccak state packed across giant-int columns (see
# repro.sim.codegen's SoA compiler).  It owns no cycle model — the paper
# pins stay on the processor engines above — so at the processor level
# it simply cascades to the compiled engine.


def _soa_run_states(program, states):
    from . import codegen

    return codegen.run_soa(states, num_rounds=program.num_rounds)


def _soa_batch_width() -> int:
    from . import codegen

    return codegen.soa_width()


def _soa_warm(program) -> bool:
    from . import codegen

    return codegen.warm_soa(codegen.soa_width(),
                            num_rounds=program.num_rounds) is not None


register(EngineSpec(
    name="soa",
    caps=EngineCaps(tracing=False, instrumentation=False, max_cycles=False,
                    batching=True, functional=True),
    run_states=_soa_run_states,
    batch_width=_soa_batch_width,
    warm=_soa_warm,
    fallback="compiled",
    priority=0,
    description="structure-of-arrays mega-batch kernels (digests only)",
))


# -- the reference digest engine ---------------------------------------------------
#
# The serving story (ROADMAP item 1) needs a backend that produces
# *correct digests at native speed* for traffic that does not ask for
# cycle metrics — and the transport/scheduler benchmarks need a
# compute-light leg so they measure byte movement, not simulation.  This
# engine is that backend: ``run_states`` applies the pure-Python
# round-function reference (so Session-level program runs stay exact),
# and ``digest_batch`` hands whole messages to hashlib.  It owns no
# cycle model; traced runs cascade to the compiled engine like ``soa``.


def _reference_run_states(program, states):
    from ..keccak.permutation import keccak_p1600

    return [keccak_p1600(state, program.num_rounds) for state in states]


def _reference_digest_batch(algorithm, length, messages):
    import hashlib

    if algorithm == "sha3_256":
        return [hashlib.sha3_256(m).digest() for m in messages]
    if algorithm == "shake128":
        return [hashlib.shake_128(m).digest(length) for m in messages]
    if algorithm == "shake256":
        return [hashlib.shake_256(m).digest(length) for m in messages]
    if algorithm == "k12_leaf":
        # hashlib has no TurboSHAKE: the pure-Python 12-round sponge
        # with the K12 leaf domain byte is the ground truth here.
        from ..keccak.kangarootwelve import turboshake128

        return [turboshake128(bytes(m), 32, domain=0x0B)
                for m in messages]
    raise ValueError(f"unsupported algorithm: {algorithm!r}")


register(EngineSpec(
    name="reference",
    caps=EngineCaps(tracing=False, instrumentation=False, max_cycles=False,
                    functional=True),
    run_states=_reference_run_states,
    digest_batch=_reference_digest_batch,
    fallback="compiled",
    priority=0,
    description="hashlib/round-function digests, no cycle model",
))
