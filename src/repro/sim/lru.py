"""A minimal least-recently-used cache for the simulator's memo tables.

The predecode cache, the per-instruction geometry-specializer memos and
the code-generation kernel cache all memoize "compiled" artifacts keyed
on small hashable tuples.  Long-lived server :class:`~repro.Session`
objects churn through programs and geometries, so every one of those
memos must be bounded; this class gives them one shared, dependency-free
eviction policy.

Plain dicts preserve insertion order (Python >= 3.7), so recency is
modelled by re-inserting on access: the first key in iteration order is
always the least recently used.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional, TypeVar

V = TypeVar("V")

_MISS = object()


class LRU:
    """A bounded mapping that evicts the least recently used entry."""

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be positive: {capacity}")
        self.capacity = capacity
        self._data: Dict[Hashable, object] = {}

    def get(self, key: Hashable, default: Optional[V] = None):
        """Look up ``key``, refreshing its recency on a hit."""
        data = self._data
        value = data.pop(key, _MISS)
        if value is _MISS:
            return default
        data[key] = value  # re-insert: now the most recently used
        return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert/replace ``key``, evicting the LRU entry when full."""
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.capacity:
            del data[next(iter(data))]
        data[key] = value

    def pop(self, key: Hashable, default: Optional[V] = None):
        """Remove and return ``key`` without touching other recencies."""
        return self._data.pop(key, default)

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()
