"""A minimal least-recently-used cache for the simulator's memo tables.

The predecode cache, the per-instruction geometry-specializer memos and
the code-generation kernel cache all memoize "compiled" artifacts keyed
on small hashable tuples.  Long-lived server :class:`~repro.Session`
objects churn through programs and geometries, so every one of those
memos must be bounded; this class gives them one shared, dependency-free
eviction policy.

Plain dicts preserve insertion order (Python >= 3.7), so recency is
modelled by re-inserting on access: the first key in iteration order is
always the least recently used.

Mutations are guarded by a per-instance :class:`threading.RLock` —
``get`` is a pop + re-insert and ``put`` a check-then-delete, both of
which could corrupt the table if two threads interleaved them.  The
simulator itself is single-threaded per processor, but the long-lived
server Sessions this cache is sold for may be driven from thread pools,
and the codegen kernel cache is module-global.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterator, Optional, TypeVar

V = TypeVar("V")

_MISS = object()


class LRU:
    """A bounded mapping that evicts the least recently used entry."""

    __slots__ = ("capacity", "_data", "_lock")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be positive: {capacity}")
        self.capacity = capacity
        self._data: Dict[Hashable, object] = {}
        self._lock = threading.RLock()

    def get(self, key: Hashable, default: Optional[V] = None):
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            data = self._data
            value = data.pop(key, _MISS)
            if value is _MISS:
                return default
            data[key] = value  # re-insert: now the most recently used
            return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert/replace ``key``, evicting the LRU entry when full."""
        with self._lock:
            data = self._data
            if key in data:
                del data[key]
            elif len(data) >= self.capacity:
                del data[next(iter(data))]
            data[key] = value

    def pop(self, key: Hashable, default: Optional[V] = None):
        """Remove and return ``key`` without touching other recencies."""
        with self._lock:
            return self._data.pop(key, default)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()
