"""The vector register file (paper Fig. 4, VecRegfile module).

32 registers of VLEN bits each.  Each register is stored as one Python
integer; elements are bit-slices of width SEW, so the same physical
register can be viewed with 32-bit elements by the 32-bit architecture and
64-bit elements by the 64-bit architecture — exactly like the hardware,
where the ELEN/SEW configuration reinterprets the register bits.

Register *groups* (LMUL > 1) address element ``i`` of a group based at
register ``base`` as register ``base + i // elements_per_register``,
element slot ``i % elements_per_register`` — the address allocation of
Fig. 4.
"""

from __future__ import annotations

from typing import Dict, List

from .exceptions import IllegalInstructionError

NUM_VECTOR_REGISTERS = 32


class VectorRegfile:
    """32 x VLEN-bit registers with SEW-granular element access."""

    __slots__ = ("vlen_bits", "_regs", "_full_mask", "_per_reg")

    def __init__(self, vlen_bits: int) -> None:
        if vlen_bits < 8:
            raise ValueError(f"VLEN too small: {vlen_bits}")
        self.vlen_bits = vlen_bits
        self._regs: List[int] = [0] * NUM_VECTOR_REGISTERS
        self._full_mask = (1 << vlen_bits) - 1
        # SEW -> elements per register, memoized
        self._per_reg: Dict[int, int] = {}

    def _check_reg(self, reg: int) -> None:
        if not 0 <= reg < NUM_VECTOR_REGISTERS:
            raise IllegalInstructionError(f"vector register out of range: {reg}")

    def elements_per_register(self, sew: int) -> int:
        """How many SEW-bit elements one register holds."""
        per_reg = self._per_reg.get(sew)
        if per_reg is None:
            if sew <= 0 or self.vlen_bits % sew:
                raise IllegalInstructionError(
                    f"SEW {sew} does not divide VLEN {self.vlen_bits}"
                )
            per_reg = self._per_reg[sew] = self.vlen_bits // sew
        return per_reg

    # -- raw access ---------------------------------------------------------------

    def read_raw(self, reg: int) -> int:
        """The whole register as a VLEN-bit integer."""
        self._check_reg(reg)
        return self._regs[reg]

    def write_raw(self, reg: int, value: int) -> None:
        """Replace the whole register."""
        self._check_reg(reg)
        self._regs[reg] = value & self._full_mask

    # -- element access -------------------------------------------------------------

    def get_element(self, reg: int, index: int, sew: int) -> int:
        """Element ``index`` of ``reg`` viewed at SEW granularity."""
        per_reg = self.elements_per_register(sew)
        if not 0 <= index < per_reg:
            raise IllegalInstructionError(
                f"element index {index} out of range for SEW {sew}"
            )
        self._check_reg(reg)
        return (self._regs[reg] >> (index * sew)) & ((1 << sew) - 1)

    def set_element(self, reg: int, index: int, sew: int, value: int) -> None:
        """Write element ``index`` of ``reg`` at SEW granularity."""
        per_reg = self.elements_per_register(sew)
        if not 0 <= index < per_reg:
            raise IllegalInstructionError(
                f"element index {index} out of range for SEW {sew}"
            )
        self._check_reg(reg)
        mask = (1 << sew) - 1
        shift = index * sew
        self._regs[reg] = (
            self._regs[reg] & ~(mask << shift) | ((value & mask) << shift)
        )

    # -- group (LMUL) access -----------------------------------------------------------

    def get_group_element(self, base: int, index: int, sew: int) -> int:
        """Element ``index`` of the register group based at ``base``."""
        per_reg = self.elements_per_register(sew)
        reg, slot = divmod(index, per_reg)
        return self.get_element(base + reg, slot, sew)

    def set_group_element(self, base: int, index: int, sew: int,
                          value: int) -> None:
        """Write element ``index`` of the register group based at ``base``."""
        per_reg = self.elements_per_register(sew)
        reg, slot = divmod(index, per_reg)
        self.set_element(base + reg, slot, sew, value)

    def read_elements(self, reg: int, sew: int) -> List[int]:
        """All elements of one register at SEW granularity."""
        per_reg = self._per_reg.get(sew) or self.elements_per_register(sew)
        if not 0 <= reg < NUM_VECTOR_REGISTERS:
            raise IllegalInstructionError(f"vector register out of range: {reg}")
        # Peel elements off the low end instead of shifting by index * sew
        # each time — the shift distances stay small, which matters for the
        # wide registers of the high-EleNum configurations.
        mask = (1 << sew) - 1
        value = self._regs[reg]
        elements = []
        append = elements.append
        for _ in range(per_reg):
            append(value & mask)
            value >>= sew
        return elements

    def write_elements(self, reg: int, sew: int, values: List[int]) -> None:
        """Replace all elements of one register."""
        per_reg = self._per_reg.get(sew) or self.elements_per_register(sew)
        if len(values) != per_reg:
            raise ValueError(
                f"expected {per_reg} elements for SEW {sew}, got {len(values)}"
            )
        if not 0 <= reg < NUM_VECTOR_REGISTERS:
            raise IllegalInstructionError(f"vector register out of range: {reg}")
        mask = (1 << sew) - 1
        packed = 0
        for value in reversed(values):
            packed = (packed << sew) | (value & mask)
        self._regs[reg] = packed

    def mask_bit(self, index: int) -> int:
        """Mask bit for element ``index`` (bit ``index`` of v0, RVV layout)."""
        return (self._regs[0] >> index) & 1

    def clear(self) -> None:
        """Zero every register (in place: compiled executors and the
        element-access helpers bind ``self``, and keeping the same list
        object means a cleared file never aliases a stale snapshot)."""
        self._regs[:] = [0] * NUM_VECTOR_REGISTERS
