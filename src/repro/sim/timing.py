"""The pluggable timing model: microarchitectural knobs over the costs.

:class:`~repro.sim.cycles.CycleModel` holds the calibrated per-class
costs (what one ALU op, one register pass, one dispatch *costs*).  This
module layers the *microarchitecture* on top: how many scalar
instructions issue per cycle, how many vector register banks serve
register passes concurrently, whether chaining hides the dispatch
latency, and an explicit dispatch-overhead override.  These are the
knobs a parameterized vector unit exposes (register bank count, issue
width) and the ones the design-space sweeps in ``repro explore`` turn.

The default :data:`DEFAULT_TIMING_MODEL` is the identity over the
calibrated costs: single issue, one bank, no chaining — every cost
reduces exactly to the :class:`CycleModel` formula, so the paper's
cycle pins (2564 / 1892 / 3620 per permutation, 103 / 75 / 147 per
round) are bit-identical under it.

A :class:`TimingModel` exposes the complete cost interface the
simulator consumes — the scalar cost attributes plus
``vector_arith`` / ``vector_pi`` / ``vector_memory`` — so the scalar
core, vector unit, predecoder and code generator take either model
unchanged.  Everything that *caches* anything derived from costs must
key on :meth:`TimingModel.fingerprint`.
"""

from __future__ import annotations

import hashlib
from dataclasses import astuple, dataclass
from functools import cached_property
from typing import Optional, Union

from .cycles import CycleModel, DEFAULT_CYCLE_MODEL

#: Bumped whenever the fingerprint payload layout or cost semantics
#: change, so stale disk-cache keys can never collide with new ones.
_FINGERPRINT_VERSION = 1


def _ceil_div(value: int, divisor: int) -> int:
    return -(-value // divisor)


@dataclass(frozen=True)
class TimingModel:
    """Microarchitectural timing knobs over a calibrated cost model.

    ``issue_width``
        Scalar instructions issued per cycle.  Every scalar cost becomes
        ``max(1, ceil(cost / issue_width))`` — a dual-issue front end
        halves the Ibex bookkeeping between vector instructions but can
        never make an instruction free.
    ``register_banks``
        Independent vector register file banks.  The register passes of
        one vector instruction spread across banks:
        ``ceil(passes / banks)`` regfile cycles instead of ``passes``.
        Memory round-trips (the VecLSU term) are *not* banked — the
        memory port stays single.
    ``chaining``
        When True, vector arithmetic dispatch overlaps the previous
        instruction's execution, hiding the dispatch cycle(s) on the
        arith/pi path.  Vector memory ops still pay dispatch (the LSU
        hand-off cannot chain).
    ``dispatch_overhead``
        Explicit override for the VecISAInterface dispatch cost;
        ``None`` means the base model's ``vector_dispatch``.

    The defaults are the identity: costs equal the ``base``
    :class:`CycleModel` exactly, preserving the paper pins.
    """

    base: CycleModel = DEFAULT_CYCLE_MODEL
    issue_width: int = 1
    register_banks: int = 1
    chaining: bool = False
    dispatch_overhead: Optional[int] = None

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.register_banks < 1:
            raise ValueError("register_banks must be >= 1")
        if self.dispatch_overhead is not None and self.dispatch_overhead < 0:
            raise ValueError("dispatch_overhead must be >= 0")

    # -- normalization -----------------------------------------------------

    @classmethod
    def of(cls, model: Union["TimingModel", CycleModel, None]
           ) -> "TimingModel":
        """Normalize any cost-model argument to a :class:`TimingModel`.

        Accepts a :class:`TimingModel` (returned as-is), a bare
        :class:`CycleModel` (wrapped with identity knobs, preserving the
        long-standing ``cycle_model=CycleModel(...)`` call sites), or
        ``None`` (the default model).
        """
        if model is None:
            return DEFAULT_TIMING_MODEL
        if isinstance(model, TimingModel):
            return model
        if isinstance(model, CycleModel):
            if model == DEFAULT_CYCLE_MODEL:
                return DEFAULT_TIMING_MODEL
            return cls(base=model)
        raise TypeError(
            f"expected TimingModel or CycleModel, got {type(model).__name__}"
        )

    # -- scalar costs ------------------------------------------------------

    def _scalar(self, cost: int) -> int:
        return max(1, _ceil_div(cost, self.issue_width))

    @cached_property
    def scalar_alu(self) -> int:
        return self._scalar(self.base.scalar_alu)

    @cached_property
    def scalar_load(self) -> int:
        return self._scalar(self.base.scalar_load)

    @cached_property
    def scalar_store(self) -> int:
        return self._scalar(self.base.scalar_store)

    @cached_property
    def scalar_mul(self) -> int:
        return self._scalar(self.base.scalar_mul)

    @cached_property
    def scalar_div(self) -> int:
        return self._scalar(self.base.scalar_div)

    @cached_property
    def branch_taken(self) -> int:
        return self._scalar(self.base.branch_taken)

    @cached_property
    def branch_not_taken(self) -> int:
        return self._scalar(self.base.branch_not_taken)

    @cached_property
    def jump(self) -> int:
        return self._scalar(self.base.jump)

    @cached_property
    def vsetvli(self) -> int:
        return self._scalar(self.base.vsetvli)

    # -- vector costs ------------------------------------------------------

    @cached_property
    def vector_dispatch(self) -> int:
        if self.dispatch_overhead is not None:
            return self.dispatch_overhead
        return self.base.vector_dispatch

    @property
    def vpi_extra(self) -> int:
        return self.base.vpi_extra

    @property
    def vector_memory_extra_per_pass(self) -> int:
        return self.base.vector_memory_extra_per_pass

    def pass_cycles(self, register_passes: int) -> int:
        """Regfile cycles for ``register_passes`` passes across banks."""
        return _ceil_div(register_passes, self.register_banks)

    def vector_arith(self, register_passes: int) -> int:
        """A vector arithmetic / slide / rotate / iota instruction."""
        if register_passes < 1:
            raise ValueError("a vector op needs at least one register pass")
        dispatch = 0 if self.chaining else self.vector_dispatch
        return self.pass_cycles(register_passes) + dispatch

    def vector_pi(self, register_passes: int) -> int:
        """The vpi instruction (column-mode write interface)."""
        return self.vector_arith(register_passes) + self.base.vpi_extra

    def vector_memory(self, register_passes: int) -> int:
        """A vector load or store (regfile passes banked; the per-pass
        memory round-trips and the LSU dispatch are not)."""
        return (
            self.pass_cycles(register_passes)
            + register_passes * self.base.vector_memory_extra_per_pass
            + self.vector_dispatch
        )

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable short hash of every cost-determining field.

        This is the cache key component for anything that bakes cycle
        costs: compiled kernels (in-process LRU and on-disk), default
        sessions, predecode memos.  Two models with equal fingerprints
        produce identical cycle counts for every instruction.
        """
        payload = (
            _FINGERPRINT_VERSION,
            astuple(self.base),
            self.issue_width,
            self.register_banks,
            self.chaining,
            self.dispatch_overhead,
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]

    @property
    def is_default(self) -> bool:
        """True when every cost reduces to the calibrated paper model."""
        return self == DEFAULT_TIMING_MODEL


#: The calibrated identity model — the paper's pins hold under it.
DEFAULT_TIMING_MODEL = TimingModel()
