"""The scalar core (paper Fig. 3, top half — the Ibex core).

A single-issue in-order RV32IM core: 32 registers (x0 hardwired to zero),
a program counter, and Ibex-like cycle costs from the shared
:class:`~repro.sim.cycles.CycleModel`.  Vector instructions are *not*
handled here — the processor routes them to the vector unit, mirroring the
hardware where Ibex forwards vector instructions over the VecISAInterface.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Tuple

from ..isa.spec import InstructionSpec
from .cycles import CycleModel, DEFAULT_CYCLE_MODEL
from .exceptions import IllegalInstructionError, ProcessorHalted
from .memory import DataMemory

_MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    """Interpret a 32-bit pattern as signed."""
    value &= _MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


class ScalarCore:
    """RV32IM register state and instruction execution."""

    def __init__(self, memory: DataMemory,
                 cycle_model: CycleModel = DEFAULT_CYCLE_MODEL) -> None:
        self.memory = memory
        self.cycle_model = cycle_model
        self.pc = 0
        self._regs = [0] * 32

    def reset(self) -> None:
        """Zero registers and pc.

        The register list is cleared in place so executors compiled by
        :meth:`compile_executor` (which capture the list) stay valid.
        """
        self._regs[:] = [0] * 32
        self.pc = 0

    # -- register access -------------------------------------------------------

    def read_register(self, number: int) -> int:
        """Read a register (x0 always reads 0)."""
        if not 0 <= number < 32:
            raise IllegalInstructionError(f"register out of range: {number}")
        return 0 if number == 0 else self._regs[number]

    def write_register(self, number: int, value: int) -> None:
        """Write a register (writes to x0 are discarded)."""
        if not 0 <= number < 32:
            raise IllegalInstructionError(f"register out of range: {number}")
        if number != 0:
            self._regs[number] = value & _MASK32

    # -- execution --------------------------------------------------------------

    def execute(self, spec: InstructionSpec,
                ops: Mapping[str, int]) -> Tuple[int, Optional[int]]:
        """Execute one scalar instruction at the current pc.

        Returns ``(cycles, next_pc)``; ``next_pc`` is None for sequential
        fall-through.  Raises :class:`ProcessorHalted` on ecall/ebreak.
        """
        mnemonic = spec.mnemonic
        model = self.cycle_model

        if mnemonic in _ALU_OPS:
            op = _ALU_OPS[mnemonic]
            a = self.read_register(ops["rs1"])
            b = self.read_register(ops["rs2"])
            self.write_register(ops["rd"], op(a, b))
            return model.scalar_alu, None

        if mnemonic in _ALU_IMM_OPS:
            op = _ALU_IMM_OPS[mnemonic]
            a = self.read_register(ops["rs1"])
            self.write_register(ops["rd"], op(a, ops["imm"]))
            return model.scalar_alu, None

        if mnemonic in _SHIFT_IMM_OPS:
            op = _SHIFT_IMM_OPS[mnemonic]
            a = self.read_register(ops["rs1"])
            self.write_register(ops["rd"], op(a, ops["shamt"]))
            return model.scalar_alu, None

        if mnemonic in _MUL_OPS:
            a = self.read_register(ops["rs1"])
            b = self.read_register(ops["rs2"])
            self.write_register(ops["rd"], _MUL_OPS[mnemonic](a, b))
            return model.scalar_mul, None

        if mnemonic in _DIV_OPS:
            a = self.read_register(ops["rs1"])
            b = self.read_register(ops["rs2"])
            self.write_register(ops["rd"], _DIV_OPS[mnemonic](a, b))
            return model.scalar_div, None

        if mnemonic in _LOADS:
            width, is_signed = _LOADS[mnemonic]
            address = (self.read_register(ops["rs1"]) + ops["imm"]) & _MASK32
            value = self.memory.load(address, width, signed=is_signed)
            self.write_register(ops["rd"], value & _MASK32)
            return model.scalar_load, None

        if mnemonic in _STORES:
            width = _STORES[mnemonic]
            address = (self.read_register(ops["rs1"]) + ops["imm"]) & _MASK32
            self.memory.store(address, width, self.read_register(ops["rs2"]))
            return model.scalar_store, None

        if mnemonic in _BRANCHES:
            taken = _BRANCHES[mnemonic](
                self.read_register(ops["rs1"]),
                self.read_register(ops["rs2"]),
            )
            if taken:
                return model.branch_taken, (self.pc + ops["offset"]) & _MASK32
            return model.branch_not_taken, None

        if mnemonic == "lui":
            self.write_register(ops["rd"], (ops["imm"] << 12) & _MASK32)
            return model.scalar_alu, None

        if mnemonic == "auipc":
            self.write_register(
                ops["rd"], (self.pc + (ops["imm"] << 12)) & _MASK32
            )
            return model.scalar_alu, None

        if mnemonic == "jal":
            self.write_register(ops["rd"], (self.pc + 4) & _MASK32)
            return model.jump, (self.pc + ops["offset"]) & _MASK32

        if mnemonic == "jalr":
            target = (self.read_register(ops["rs1"]) + ops["imm"]) & ~1
            self.write_register(ops["rd"], (self.pc + 4) & _MASK32)
            return model.jump, target & _MASK32

        if mnemonic in ("ecall", "ebreak"):
            raise ProcessorHalted(f"{mnemonic} at pc={self.pc:#x}")

        if mnemonic == "fence":
            return model.scalar_alu, None

        raise IllegalInstructionError(
            f"scalar core cannot execute {mnemonic!r}"
        )

    def compile_executor(
        self, spec: InstructionSpec, ops: Mapping[str, int], pc: int
    ) -> Callable[[], Tuple[int, Optional[int]]]:
        """Bind one decoded scalar instruction at address ``pc`` to a
        zero-argument executor returning ``(cycles, next_pc)``.

        Used by the predecode engine: table lookups, pc-relative targets
        and immediate values are resolved once at decode time.  Executors
        capture the register *list*, so :meth:`reset` must clear it in
        place.  Unknown mnemonics yield an executor that faults when (and
        only when) the instruction is actually reached, matching the
        per-step decode behaviour.
        """
        mnemonic = spec.mnemonic
        model = self.cycle_model
        regs = self._regs

        if mnemonic in _ALU_OPS or mnemonic in _MUL_OPS or \
                mnemonic in _DIV_OPS:
            if mnemonic in _ALU_OPS:
                op, cost = _ALU_OPS[mnemonic], model.scalar_alu
            elif mnemonic in _MUL_OPS:
                op, cost = _MUL_OPS[mnemonic], model.scalar_mul
            else:
                op, cost = _DIV_OPS[mnemonic], model.scalar_div
            rd, rs1, rs2 = ops["rd"], ops["rs1"], ops["rs2"]
            if rd == 0:
                return lambda: (cost, None)

            def run_rtype() -> Tuple[int, Optional[int]]:
                regs[rd] = op(regs[rs1], regs[rs2])
                return cost, None

            return run_rtype

        if mnemonic in _ALU_IMM_OPS or mnemonic in _SHIFT_IMM_OPS:
            if mnemonic in _ALU_IMM_OPS:
                op = _ALU_IMM_OPS[mnemonic]
                imm = ops["imm"]
            else:
                op = _SHIFT_IMM_OPS[mnemonic]
                imm = ops["shamt"]
            cost = model.scalar_alu
            rd, rs1 = ops["rd"], ops["rs1"]
            if rd == 0:
                return lambda: (cost, None)

            def run_itype() -> Tuple[int, Optional[int]]:
                regs[rd] = op(regs[rs1], imm)
                return cost, None

            return run_itype

        if mnemonic in _LOADS:
            width, is_signed = _LOADS[mnemonic]
            cost = model.scalar_load
            rd, rs1, imm = ops["rd"], ops["rs1"], ops["imm"]
            load = self.memory.load

            def run_load() -> Tuple[int, Optional[int]]:
                value = load((regs[rs1] + imm) & _MASK32, width,
                             signed=is_signed)
                if rd != 0:
                    regs[rd] = value & _MASK32
                return cost, None

            return run_load

        if mnemonic in _STORES:
            width = _STORES[mnemonic]
            cost = model.scalar_store
            rs1, rs2, imm = ops["rs1"], ops["rs2"], ops["imm"]
            store = self.memory.store

            def run_store() -> Tuple[int, Optional[int]]:
                store((regs[rs1] + imm) & _MASK32, width, regs[rs2])
                return cost, None

            return run_store

        if mnemonic in _BRANCHES:
            cond = _BRANCHES[mnemonic]
            rs1, rs2 = ops["rs1"], ops["rs2"]
            target = (pc + ops["offset"]) & _MASK32
            taken, not_taken = model.branch_taken, model.branch_not_taken

            def run_branch() -> Tuple[int, Optional[int]]:
                if cond(regs[rs1], regs[rs2]):
                    return taken, target
                return not_taken, None

            return run_branch

        if mnemonic in ("lui", "auipc"):
            cost = model.scalar_alu
            rd = ops["rd"]
            value = (ops["imm"] << 12) & _MASK32
            if mnemonic == "auipc":
                value = (pc + value) & _MASK32
            if rd == 0:
                return lambda: (cost, None)

            def run_upper() -> Tuple[int, Optional[int]]:
                regs[rd] = value
                return cost, None

            return run_upper

        if mnemonic == "jal":
            cost = model.jump
            rd = ops["rd"]
            link = (pc + 4) & _MASK32
            target = (pc + ops["offset"]) & _MASK32

            def run_jal() -> Tuple[int, Optional[int]]:
                if rd != 0:
                    regs[rd] = link
                return cost, target

            return run_jal

        if mnemonic == "jalr":
            cost = model.jump
            rd, rs1, imm = ops["rd"], ops["rs1"], ops["imm"]
            link = (pc + 4) & _MASK32

            def run_jalr() -> Tuple[int, Optional[int]]:
                target = ((regs[rs1] + imm) & ~1) & _MASK32
                if rd != 0:
                    regs[rd] = link
                return cost, target

            return run_jalr

        if mnemonic in ("ecall", "ebreak"):
            def run_halt() -> Tuple[int, Optional[int]]:
                raise ProcessorHalted(f"{mnemonic} at pc={pc:#x}")

            return run_halt

        if mnemonic == "fence":
            cost = model.scalar_alu
            return lambda: (cost, None)

        def run_illegal() -> Tuple[int, Optional[int]]:
            raise IllegalInstructionError(
                f"scalar core cannot execute {mnemonic!r}"
            )

        return run_illegal


# -- operation tables ------------------------------------------------------------


def _sra(a: int, b: int) -> int:
    return (_signed(a) >> (b & 31)) & _MASK32


def _div(a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    if sb == 0:
        return _MASK32  # RISC-V: division by zero yields all ones
    if sa == -(1 << 31) and sb == -1:
        return a  # overflow case: result is the dividend
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & _MASK32


def _rem(a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    if sb == 0:
        return a
    if sa == -(1 << 31) and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return remainder & _MASK32


_ALU_OPS = {
    "add": lambda a, b: (a + b) & _MASK32,
    "sub": lambda a, b: (a - b) & _MASK32,
    "sll": lambda a, b: (a << (b & 31)) & _MASK32,
    "slt": lambda a, b: int(_signed(a) < _signed(b)),
    "sltu": lambda a, b: int((a & _MASK32) < (b & _MASK32)),
    "xor": lambda a, b: (a ^ b) & _MASK32,
    "srl": lambda a, b: (a & _MASK32) >> (b & 31),
    "sra": _sra,
    "or": lambda a, b: (a | b) & _MASK32,
    "and": lambda a, b: (a & b) & _MASK32,
}

_ALU_IMM_OPS = {
    "addi": lambda a, imm: (a + imm) & _MASK32,
    "slti": lambda a, imm: int(_signed(a) < imm),
    "sltiu": lambda a, imm: int((a & _MASK32) < (imm & _MASK32)),
    "xori": lambda a, imm: (a ^ imm) & _MASK32,
    "ori": lambda a, imm: (a | imm) & _MASK32,
    "andi": lambda a, imm: (a & imm) & _MASK32,
}

_SHIFT_IMM_OPS = {
    "slli": lambda a, sh: (a << sh) & _MASK32,
    "srli": lambda a, sh: (a & _MASK32) >> sh,
    "srai": _sra,
}

_MUL_OPS = {
    "mul": lambda a, b: (_signed(a) * _signed(b)) & _MASK32,
    "mulh": lambda a, b: ((_signed(a) * _signed(b)) >> 32) & _MASK32,
    "mulhsu": lambda a, b: ((_signed(a) * (b & _MASK32)) >> 32) & _MASK32,
    "mulhu": lambda a, b: (((a & _MASK32) * (b & _MASK32)) >> 32) & _MASK32,
}

_DIV_OPS = {
    "div": _div,
    "divu": lambda a, b: _MASK32 if b == 0 else (a & _MASK32) // (b & _MASK32),
    "rem": _rem,
    "remu": lambda a, b: a & _MASK32 if b == 0
            else (a & _MASK32) % (b & _MASK32),
}

_LOADS = {
    "lb": (8, True),
    "lh": (16, True),
    "lw": (32, False),
    "lbu": (8, False),
    "lhu": (16, False),
}

_STORES = {"sb": 8, "sh": 16, "sw": 32}

_BRANCHES = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _signed(a) < _signed(b),
    "bge": lambda a, b: _signed(a) >= _signed(b),
    "bltu": lambda a, b: (a & _MASK32) < (b & _MASK32),
    "bgeu": lambda a, b: (a & _MASK32) >= (b & _MASK32),
}
