"""The SIMD processor: scalar Ibex core + vector processing unit (Fig. 3).

:class:`SIMDProcessor` is the top-level executable model.  It owns the
program memory (an assembled :class:`~repro.assembler.program.Program`),
the data memory, the scalar core and the vector unit, and runs the classic
fetch → decode → dispatch loop:

* configuration-setting instructions (``vsetvli``) update the vector unit's
  VL/SEW/LMUL and write the resulting VL back to the scalar register file;
* vector memory and arithmetic instructions (standard RVV subset plus the
  ten custom extensions) are executed by the vector unit;
* everything else executes on the scalar core.

The hardware parameters mirror the paper's: ``elen`` (the vector element
width — 64 for the 64-bit architecture, 32 for the 32-bit one) and
``elenum`` (elements per vector register), giving VLEN = elen * elenum.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Union

from ..assembler.program import Program
from ..observability import metrics as _metrics
from ..isa import ISA, decode_operands
from ..isa.spec import InstructionSet
from .cycles import CycleModel, DEFAULT_CYCLE_MODEL
from .timing import TimingModel
from .exceptions import (
    ExecutionLimitExceeded,
    IllegalInstructionError,
    ProcessorHalted,
    SimulationError,
)
from . import engines as _engines
from .lru import LRU
from .memory import DataMemory
from .predecode import PredecodedProgram, build_superblocks, predecode
from .scalar_core import ScalarCore
from .trace import ExecutionStats
from .vector_unit import VectorUnit

#: Predecoded programs kept per processor before the least recently
#: used is evicted (see :class:`~repro.sim.lru.LRU`).
_PREDECODE_CACHE_SIZE = 16

# Metric families (created once; disarmed sites pay one flag check —
# see the arming rule in repro.observability.metrics).
_RUNS = _metrics.registry().counter(
    "sim_runs_total", "Processor runs by the engine that executed them",
    ("engine",))
_FALLBACKS = _metrics.registry().counter(
    "sim_compiled_fallbacks_total",
    "Runs the compiled engine declined, by reason", ("reason",))
_PREDECODE_CACHE = _metrics.registry().counter(
    "sim_predecode_cache_total", "Predecode cache lookups", ("event",))
_PREDECODE_SECONDS = _metrics.registry().histogram(
    "sim_predecode_seconds", "Time spent predecoding a program")


def validate_engine(engine: str) -> str:
    """Check an engine name, returning it for chaining.

    Thin shim over :func:`repro.sim.engines.validate`: the engine axis
    is now open — any backend registered in ``repro.sim.engines`` is a
    valid name here, without edits to this module.
    """
    return _engines.validate(engine)


def __getattr__(name: str):
    # ``ENGINES`` used to be a module constant; it is now a live view of
    # the registry so third-party registrations show up in CLI choices
    # and error messages without touching this module.
    if name == "ENGINES":
        return _engines.names()
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


class SIMDProcessor:
    """Executable model of the scalable SIMD RISC-V based processor."""

    def __init__(
        self,
        elen: int = 64,
        elenum: int = 16,
        memory_size: int = 1 << 20,
        cycle_model: Union[CycleModel, TimingModel] = DEFAULT_CYCLE_MODEL,
        trace: bool = False,
        isa: InstructionSet = ISA,
        predecode: bool = True,
        fuse: bool = True,
        engine: str = "auto",
    ) -> None:
        if elen not in (32, 64):
            raise ValueError(f"ELEN must be 32 or 64, got {elen}")
        if elenum < 1:
            raise ValueError(f"EleNum must be positive, got {elenum}")
        validate_engine(engine)
        self.elen = elen
        self.elenum = elenum
        self.vlen_bits = elen * elenum
        self._isa = isa
        self.memory = DataMemory(memory_size)
        #: The normalized :class:`~repro.sim.timing.TimingModel`.  Bare
        #: :class:`CycleModel` arguments are wrapped with identity knobs,
        #: so ``cycle_model`` and ``timing_model`` are the same object —
        #: every cost the cores read and every cache fingerprint comes
        #: from this one model.
        self.timing_model = TimingModel.of(cycle_model)
        self.cycle_model = self.timing_model
        self.scalar = ScalarCore(self.memory, self.timing_model)
        self.vector = VectorUnit(self.vlen_bits, self.memory,
                                 self.timing_model)
        self.stats = ExecutionStats(records=[] if trace else None)
        self.halted = False
        self._program_words: Dict[int, int] = {}
        self._program: Optional[Program] = None
        self._predecode_enabled = predecode
        self._fuse_enabled = fuse and predecode
        #: Requested execution engine; ``auto`` resolves per run (the
        #: compiled kernel when eligible, the fused engine otherwise).
        self.engine = engine
        #: Count of live instrumentation wrappers on predecoded entries
        #: (armed :class:`~repro.resilience.inject.FaultInjector` specs).
        #: Non-zero disqualifies the compiled engine: a flat kernel
        #: would bypass the wrapped executors entirely.
        self.instrumented = 0
        self._predecoded: Optional[PredecodedProgram] = None
        self._predecode_cache: LRU = LRU(_PREDECODE_CACHE_SIZE)
        #: Fault-injection hook for the *stepped* (non-predecoded) path:
        #: called as ``hook(processor, pc)`` before each instruction
        #: executes.  Predecoded/fused processors are instrumented by
        #: wrapping decoded entries instead (see ``repro.resilience``),
        #: so the fused hot loop never pays for this check.
        self.fault_hook: Optional[
            Callable[["SIMDProcessor", int], None]] = None

    # -- program loading ----------------------------------------------------------

    def load_program(self, program: Program) -> None:
        """Load an assembled program into program memory and reset the pc.

        With predecoding enabled (the default) every instruction word is
        decoded once, here, into a dense executor array; re-loading the
        same (unmutated) :class:`Program` hits a per-processor cache and
        is free — the batch-hashing and sweep pattern.
        """
        self._program = program
        self._program_words = {
            inst.address: inst.word for inst in program.instructions
        }
        if self._predecode_enabled:
            cached = self._predecode_cache.get(id(program))
            if cached is None or not cached.matches(program):
                if _metrics.ARMED:
                    _PREDECODE_CACHE.inc(event="miss")
                    started = time.perf_counter()
                    cached = predecode(self, program)
                    _PREDECODE_SECONDS.observe(
                        time.perf_counter() - started)
                else:
                    cached = predecode(self, program)
                self._predecode_cache.put(id(program), cached)
            elif _metrics.ARMED:
                _PREDECODE_CACHE.inc(event="hit")
            self._predecoded = cached
        self.scalar.pc = program.base_address
        self.halted = False

    @property
    def program(self) -> Optional[Program]:
        """The currently loaded program."""
        return self._program

    def symbol(self, name: str) -> int:
        """Resolve a label/constant of the loaded program."""
        if self._program is None:
            raise ValueError("no program loaded")
        return self._program.symbols[name]

    # -- execution ------------------------------------------------------------------

    def step(self) -> int:
        """Fetch and execute one instruction; returns its cycles.

        Uses the predecoded entry when available, falling back to the
        naive fetch → ``ISA.find`` → ``decode_operands`` path otherwise
        (``predecode=False`` processors).
        """
        if self.halted:
            raise ProcessorHalted("processor is halted")
        try:
            return self._step()
        except ProcessorHalted:
            raise
        except SimulationError as exc:
            raise self._annotate(exc)

    def _step(self) -> int:
        pc = self.scalar.pc
        pre = self._predecoded if self.engine != "stepped" else None
        if pre is not None:
            entry = pre.entry_at(pc)
            if entry is None:
                raise IllegalInstructionError(
                    f"instruction fetch outside the program at pc={pc:#x}"
                )
            try:
                cycles, next_pc = entry.execute()
            except ProcessorHalted:
                self.halted = True
                cycles, next_pc = self.cycle_model.scalar_alu, None
            self.stats.record(pc, entry.word, entry.mnemonic, cycles)
            self.scalar.pc = next_pc if next_pc is not None else pc + 4
            return cycles
        return self._step_decode(pc)

    def _annotate(self, exc: SimulationError) -> SimulationError:
        """Attach pc/cycle/instruction context as the error unwinds.

        Fused blocks flush their retired prefix and repair ``scalar.pc``
        before re-raising, so by the time the exception reaches the run
        loop the architectural counters already sit exactly at the fault.
        Fields the raise site filled in are preserved.
        """
        pc = self.scalar.pc
        mnemonic = None
        pre = self._predecoded
        if pre is not None:
            entry = pre.entry_at(pc)
            if entry is not None:
                mnemonic = entry.mnemonic
        else:
            word = self._program_words.get(pc)
            if word is not None:
                try:
                    mnemonic = self._isa.find(word).mnemonic
                except LookupError:
                    pass
        return exc.annotate(
            pc=pc,
            cycle=self.stats.cycles,
            instruction=self.stats.instructions,
            mnemonic=mnemonic,
        )

    def _step_decode(self, pc: int) -> int:
        """The original per-step decode path (reference semantics)."""
        if self.fault_hook is not None:
            self.fault_hook(self, pc)
        word = self._program_words.get(pc)
        if word is None:
            raise IllegalInstructionError(
                f"instruction fetch outside the program at pc={pc:#x}"
            )
        try:
            spec = self._isa.find(word)
        except LookupError as exc:
            raise IllegalInstructionError(str(exc)) from exc
        ops = decode_operands(word, spec)

        next_pc: Optional[int] = None
        if spec.mnemonic == "vsetvli":
            cycles = self._execute_vsetvli(ops)
        elif spec.extension == "zicsr":
            cycles = self._execute_csr(spec, ops)
        elif spec.extension in ("rvv", "custom"):
            cycles = self.vector.execute(spec, ops, self.scalar.read_register)
        else:
            try:
                cycles, next_pc = self.scalar.execute(spec, ops)
            except ProcessorHalted:
                self.halted = True
                cycles = self.cycle_model.scalar_alu
        self.stats.record(pc, word, spec.mnemonic, cycles)
        self.scalar.pc = next_pc if next_pc is not None else pc + 4
        return cycles

    def _execute_vsetvli(self, ops) -> int:
        rd, rs1 = ops["rd"], ops["rs1"]
        vtype = ops["vtype"]
        if rs1 != 0:
            avl = self.scalar.read_register(rs1)
        elif rd != 0:
            avl = 1 << 31  # rs1=x0, rd!=x0: request VLMAX
        else:
            avl = self.vector.vl  # keep the current VL, change vtype only
        new_vl = self.vector.configure(avl, vtype)
        self.scalar.write_register(rd, new_vl)
        return self.cycle_model.vsetvli

    def _execute_csr(self, spec, ops) -> int:
        from ..isa.csr import READ_ONLY_CSRS, csr_name
        from ..isa.vector import encode_vtype

        address = ops["csr"]
        rd, rs1 = ops["rd"], ops["rs1"]
        rs1_value = self.scalar.read_register(rs1)

        def read() -> int:
            if address == 0xC20:  # vl
                return self.vector.vl
            if address == 0xC21:  # vtype
                return encode_vtype(self.vector.sew, self.vector.lmul)
            if address == 0xC22:  # vlenb
                return self.vlen_bits // 8
            if address == 0x008:  # vstart (always 0 in this model)
                return 0
            if address == 0xC00:  # cycle
                return self.stats.cycles & 0xFFFFFFFF
            if address == 0xC80:  # cycleh
                return (self.stats.cycles >> 32) & 0xFFFFFFFF
            if address == 0xC02:  # instret
                return self.stats.instructions & 0xFFFFFFFF
            if address == 0xC82:  # instreth
                return (self.stats.instructions >> 32) & 0xFFFFFFFF
            if address == 0xC01:  # time (== cycle at 1 tick per cycle)
                return self.stats.cycles & 0xFFFFFFFF
            raise IllegalInstructionError(
                f"unimplemented CSR {csr_name(address)}"
            )

        wants_write = (spec.mnemonic == "csrrw") or rs1 != 0
        if wants_write and address in READ_ONLY_CSRS:
            raise IllegalInstructionError(
                f"write to read-only CSR {csr_name(address)}"
            )
        old = read()
        # The only writable CSR in this model is vstart, whose writes are
        # accepted and discarded (it always reads 0 — the vector unit never
        # interrupts mid-instruction).
        self.scalar.write_register(rd, old)
        return self.cycle_model.scalar_alu

    def run(self, max_instructions: int = 10_000_000,
            max_cycles: Optional[int] = None) -> ExecutionStats:
        """Run until ecall/ebreak; returns the accumulated statistics.

        With a predecoded program the hot loop dispatches fused
        superblocks: one call executes a whole straight-line run with a
        single batched statistics update (see
        :class:`~repro.sim.predecode.FusedBlock`).  ``max_cycles`` runs
        and the final approach to ``max_instructions`` fall back to the
        per-instruction loop so limit errors fire at exactly the same
        instruction as before.

        Any :class:`SimulationError` escaping the run carries structured
        pc/cycle/instruction context (see :meth:`_annotate`).
        """
        try:
            return self._run(max_instructions, max_cycles)
        except SimulationError as exc:
            raise self._annotate(exc)

    def _run(self, max_instructions: int,
             max_cycles: Optional[int]) -> ExecutionStats:
        """Registry-driven dispatch: plan the engine cascade, run it.

        The old if/else chain is now :func:`repro.sim.engines.plan`: the
        requested engine (or ``auto``'s priority order) is filtered
        against what this run needs reproduced — tracing, fault hooks,
        ``max_cycles`` — and against structural availability (predecoded
        program, fusion).  Capability-blocked steps are metered when the
        engine asks for it (the compiled engine's fallback counter);
        a runner may still decline at run time by returning None.  The
        run counter is bumped *after* the chosen backend actually ran,
        keyed by the registry's resolved name — never for an engine
        whose eligibility check bailed out.
        """
        engine = self.engine
        pre = self._predecoded if engine != "stepped" else None
        ctx = _engines.RunContext(
            traced=self.stats.records is not None,
            has_fault_hook=self.fault_hook is not None,
            instrumented=bool(self.instrumented),
            wants_max_cycles=max_cycles is not None,
            has_predecode=pre is not None,
            fuse_enabled=self._fuse_enabled,
        )
        for step in _engines.plan(engine, ctx):
            spec = step.spec
            if step.blocked is not None:
                if _metrics.ARMED and spec.meter_fallbacks:
                    _FALLBACKS.inc(reason=step.blocked)
                continue
            result = spec.runner(self, pre, max_instructions, max_cycles)
            if result is not None:
                if _metrics.ARMED:
                    _RUNS.inc(engine=spec.name)
                return result
        raise SimulationError(
            f"no registered engine could execute this run "
            f"(engine={engine!r})")

    def _run_stepped(self, max_instructions: int,
                     max_cycles: Optional[int]) -> ExecutionStats:
        """Per-instruction reference loop via :meth:`step`."""
        while not self.halted:
            if self.stats.instructions >= max_instructions:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions at "
                    f"pc={self.scalar.pc:#x} — infinite loop?"
                )
            if max_cycles is not None \
                    and self.stats.cycles >= max_cycles:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_cycles} cycles at "
                    f"pc={self.scalar.pc:#x}"
                )
            self.step()
        return self.stats

    def _run_fused(self, pre: PredecodedProgram, max_instructions: int,
                   max_cycles: Optional[int]) -> ExecutionStats:
        """Superblock-fused hot loop (the PR 2 default engine)."""
        superblocks = pre.superblocks
        if superblocks is None:
            superblocks = pre.superblocks = build_superblocks(self, pre)
        blocks = superblocks.blocks
        margin = superblocks.max_block_len
        entries = pre.entries
        base = pre.base_address
        size = len(entries)
        scalar = self.scalar
        stats = self.stats
        traced = stats.records is not None
        halt_cycles = self.cycle_model.scalar_alu
        pc = scalar.pc
        while not self.halted:
            if stats.instructions + margin > max_instructions:
                # Close enough to the limit that a fused block could
                # overshoot it: finish per-instruction, which raises (or
                # halts) at exactly the reference point.
                scalar.pc = pc
                return self._run_predecoded(pre, max_instructions,
                                            max_cycles)
            offset = pc - base
            index = offset >> 2
            if offset & 3 or not 0 <= index < size:
                raise IllegalInstructionError(
                    f"instruction fetch outside the program at pc={pc:#x}"
                )
            block = blocks[index]
            if block is not None:
                pc = block.run_traced(stats) if traced \
                    else block.run(stats)
            else:
                # Mid-block pc (an indirect-jump target): single-step it.
                entry = entries[index]
                try:
                    cycles, next_pc = entry.execute()
                except ProcessorHalted:
                    self.halted = True
                    cycles, next_pc = halt_cycles, None
                stats.record(pc, entry.word, entry.mnemonic, cycles)
                pc = next_pc if next_pc is not None else pc + 4
            scalar.pc = pc
        return stats

    def _run_compiled(self, pre: PredecodedProgram,
                      max_instructions: int) -> Optional[ExecutionStats]:
        """Run the whole program as one compiled kernel, if eligible.

        Returns None — and the caller falls back to the fused/stepped
        engines — whenever flat code could not reproduce the exact
        reference behaviour: tracing (per-instruction records), an armed
        fault injector or fault hook, a pc that is not the program
        entry, scalar/vector state differing from the values the kernel
        was specialized against, or an instruction limit the unrolled
        body would cross.  The kernel itself may also be uncompilable
        (``get_or_compile`` returns None, cached negatively).
        """
        stats = self.stats
        if (self.halted
                or stats.records is not None
                or self.fault_hook is not None
                or self.instrumented):
            if _metrics.ARMED:
                _FALLBACKS.inc(reason=(
                    "halted" if self.halted
                    else "traced" if stats.records is not None
                    else "fault_hook" if self.fault_hook is not None
                    else "instrumented"))
            return None
        program = self._program
        if program is None or self.scalar.pc != pre.base_address:
            if _metrics.ARMED:
                _FALLBACKS.inc(reason="entry_pc")
            return None
        from . import codegen

        fingerprint = pre.codegen_fingerprint
        if fingerprint is None:
            fingerprint = pre.codegen_fingerprint = \
                codegen.program_fingerprint(self, program)
        kernel = codegen.get_or_compile(self, fingerprint, program)
        if kernel is None:
            if _metrics.ARMED:
                _FALLBACKS.inc(reason="uncompilable")
            return None
        meta = kernel.meta
        if stats.instructions + meta["instructions"] > max_instructions:
            if _metrics.ARMED:
                _FALLBACKS.inc(reason="instruction_limit")
            return None
        scalar_regs = self.scalar._regs
        for reg, expected in meta["sregs"].items():
            if scalar_regs[reg] != expected:
                if _metrics.ARMED:
                    _FALLBACKS.inc(reason="scalar_state")
                return None
        vconfig = meta["vconfig"]
        if vconfig is not None:
            vector = self.vector
            if [vector.vl, vector.sew, vector.lmul] != vconfig:
                if _metrics.ARMED:
                    _FALLBACKS.inc(reason="vector_state")
                return None
        kernel.fn(self)
        return stats

    def _run_predecoded(self, pre: PredecodedProgram,
                        max_instructions: int,
                        max_cycles: Optional[int]) -> ExecutionStats:
        """Per-instruction predecoded loop (reference dispatch order)."""
        entries = pre.entries
        base = pre.base_address
        size = len(entries)
        scalar = self.scalar
        stats = self.stats
        record = stats.record
        halt_cycles = self.cycle_model.scalar_alu
        pc = scalar.pc
        while not self.halted:
            if stats.instructions >= max_instructions:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions at "
                    f"pc={pc:#x} — infinite loop?"
                )
            if max_cycles is not None and stats.cycles >= max_cycles:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_cycles} cycles at pc={pc:#x}"
                )
            offset = pc - base
            index = offset >> 2
            if offset & 3 or not 0 <= index < size:
                raise IllegalInstructionError(
                    f"instruction fetch outside the program at pc={pc:#x}"
                )
            entry = entries[index]
            try:
                cycles, next_pc = entry.execute()
            except ProcessorHalted:
                self.halted = True
                cycles, next_pc = halt_cycles, None
            record(pc, entry.word, entry.mnemonic, cycles)
            pc = next_pc if next_pc is not None else pc + 4
            scalar.pc = pc
        return stats

    # -- test/eval conveniences --------------------------------------------------------

    def reset(self, trace: Optional[bool] = None) -> None:
        """Full architectural reset: registers, vector state, memory, stats.

        Equivalent to constructing a fresh processor (which is what the
        seed drivers did per run), but keeps the predecode cache — state
        is cleared in place so compiled executors stay valid.  The pc
        returns to the loaded program's base address.
        """
        self.scalar.reset()
        self.vector.vl = 0
        self.vector.sew = 64
        self.vector.lmul = 1
        self.vector.regfile.clear()
        self.memory.clear()
        self.reset_stats(trace=trace)
        self.halted = False
        if self._program is not None:
            self.scalar.pc = self._program.base_address

    def reset_stats(self, trace: Optional[bool] = None) -> None:
        """Clear counters (and optionally toggle tracing)."""
        if trace is None:
            trace = self.stats.records is not None
        self.stats = ExecutionStats(records=[] if trace else None)

    def write_scalar(self, name_or_number, value: int) -> None:
        """Write a scalar register by ABI name or number (test setup)."""
        from ..isa.registers import parse_scalar_register

        number = (parse_scalar_register(name_or_number)
                  if isinstance(name_or_number, str) else name_or_number)
        self.scalar.write_register(number, value)

    def read_scalar(self, name_or_number) -> int:
        """Read a scalar register by ABI name or number."""
        from ..isa.registers import parse_scalar_register

        number = (parse_scalar_register(name_or_number)
                  if isinstance(name_or_number, str) else name_or_number)
        return self.scalar.read_register(number)
