"""Simulator exception types."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class MemoryAccessError(SimulationError):
    """Out-of-range or misaligned memory access."""


class IllegalInstructionError(SimulationError):
    """Undecodable word, or an instruction illegal in the current config."""


class ExecutionLimitExceeded(SimulationError):
    """The run exceeded its instruction or cycle budget (likely a hang)."""


class ProcessorHalted(SimulationError):
    """Raised internally when ``ecall``/``ebreak`` stops the processor."""
