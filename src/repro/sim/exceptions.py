"""Simulator exception taxonomy.

Every :class:`SimulationError` carries *structured* execution context —
the program counter, cycle count and retired-instruction index at the
fault, plus the faulting mnemonic when known — exposed both as attributes
and as the machine-readable :attr:`SimulationError.context` dict.  Deep
raise sites (memory, register file, vector unit) do not know the pc, so
they raise bare errors and the processor's run loops fill the missing
fields in via :meth:`SimulationError.annotate` as the exception
propagates; fields set at the raise site always win.

The fault-injection harness (:mod:`repro.resilience`) relies on this
contract: an injected fault is only counted as *detected* when the
resulting exception localizes itself with pc/cycle context.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class SimulationError(Exception):
    """Base class for all simulator errors.

    Parameters beyond the message are keyword-only context:

    ``pc``
        Address of the faulting instruction.
    ``cycle``
        Cycle counter at the fault (retired cycles before it).
    ``instruction``
        Retired-instruction index at the fault (0-based: the number of
        instructions that retired before the faulting one).
    ``mnemonic``
        Mnemonic of the faulting instruction, when decodable.
    """

    def __init__(self, message: str = "", *,
                 pc: Optional[int] = None,
                 cycle: Optional[int] = None,
                 instruction: Optional[int] = None,
                 mnemonic: Optional[str] = None) -> None:
        super().__init__(message)
        self.pc = pc
        self.cycle = cycle
        self.instruction = instruction
        self.mnemonic = mnemonic

    @property
    def context(self) -> Dict[str, Any]:
        """Machine-readable fault context (only the fields that are set)."""
        return {
            key: value
            for key, value in (
                ("pc", self.pc),
                ("cycle", self.cycle),
                ("instruction", self.instruction),
                ("mnemonic", self.mnemonic),
            )
            if value is not None
        }

    def annotate(self, *,
                 pc: Optional[int] = None,
                 cycle: Optional[int] = None,
                 instruction: Optional[int] = None,
                 mnemonic: Optional[str] = None) -> "SimulationError":
        """Fill in context fields that the raise site left unset.

        Called by the processor's run loops while the exception unwinds;
        returns ``self`` so ``raise exc.annotate(...)`` reads naturally.
        """
        if self.pc is None:
            self.pc = pc
        if self.cycle is None:
            self.cycle = cycle
        if self.instruction is None:
            self.instruction = instruction
        if self.mnemonic is None:
            self.mnemonic = mnemonic
        return self

    def __str__(self) -> str:
        message = super().__str__()
        ctx = self.context
        if not ctx:
            return message
        detail = ", ".join(
            f"{key}={value:#x}" if key == "pc" else f"{key}={value}"
            for key, value in ctx.items()
        )
        return f"{message} [{detail}]" if message else f"[{detail}]"


class MemoryAccessError(SimulationError):
    """Out-of-range or misaligned memory access."""


class IllegalInstructionError(SimulationError):
    """Undecodable word, or an instruction illegal in the current config."""


class ExecutionLimitExceeded(SimulationError):
    """The run exceeded its instruction or cycle budget (likely a hang)."""


class ProcessorHalted(SimulationError):
    """Raised internally when ``ecall``/``ebreak`` stops the processor."""


class InjectedFaultError(SimulationError):
    """A fault deliberately raised by the fault-injection harness."""
