"""Execution statistics and optional instruction-level tracing."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TraceRecord:
    """One retired instruction."""

    pc: int
    word: int
    mnemonic: str
    cycles: int
    cycle_total: int


@dataclass
class ExecutionStats:
    """Aggregate counters for a simulation run."""

    cycles: int = 0
    instructions: int = 0
    mnemonic_counts: Counter = field(default_factory=Counter)
    mnemonic_cycles: Counter = field(default_factory=Counter)
    records: Optional[List[TraceRecord]] = None

    def record(self, pc: int, word: int, mnemonic: str, cycles: int) -> None:
        """Account one retired instruction."""
        self.cycles += cycles
        self.instructions += 1
        self.mnemonic_counts[mnemonic] += 1
        self.mnemonic_cycles[mnemonic] += cycles
        if self.records is not None:
            self.records.append(
                TraceRecord(pc, word, mnemonic, cycles, self.cycles)
            )

    def cycles_in_pc_range(self, low: int, high: int) -> int:
        """Cycles spent at addresses in [low, high) — needs tracing on."""
        if self.records is None:
            raise ValueError("run the processor with trace=True first")
        return sum(r.cycles for r in self.records if low <= r.pc < high)

    def instructions_in_pc_range(self, low: int, high: int) -> int:
        """Instructions retired at addresses in [low, high)."""
        if self.records is None:
            raise ValueError("run the processor with trace=True first")
        return sum(1 for r in self.records if low <= r.pc < high)

    def summary(self) -> str:
        """A short human-readable report."""
        lines = [
            f"instructions retired: {self.instructions}",
            f"total cycles:         {self.cycles}",
            "per-mnemonic cycles:",
        ]
        for mnemonic, cycles in self.mnemonic_cycles.most_common():
            count = self.mnemonic_counts[mnemonic]
            lines.append(f"  {mnemonic:16s} {count:8d} x  {cycles:10d} cc")
        return "\n".join(lines)
