"""The cycle cost model, calibrated against the paper's annotations.

The paper annotates its assembly listings (Algorithms 2 and 3) with per-
instruction cycle counts on the SIMD processor:

* every LMUL=1 vector instruction: 2 cc; ``vpi``: 3 cc;
* every LMUL=8 vector instruction over the 5 active registers: 6 cc;
  ``vpi``: 7 cc; ``vsetvli``: 2 cc.

These are all consistent with one simple model, which we adopt::

    cycles(vector op) = ceil(VL / elements_per_register) + 1

i.e. one register-file pass per active register group member, plus one
dispatch cycle through the VecISAInterface.  ``vpi`` pays one extra cycle
for its column-mode write interface.  Scalar costs follow the Ibex core's
documented timing (single-issue, in-order): 1 cycle ALU, 2-cycle loads and
stores, 1-cycle multiply (single-cycle multiplier option), 37-cycle divide,
3 cycles for taken branches and jumps (fetch refill), 1 cycle for untaken
branches.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CycleModel:
    """Per-class cycle costs; all fields overridable for ablations."""

    scalar_alu: int = 1
    scalar_load: int = 2
    scalar_store: int = 2
    scalar_mul: int = 1
    scalar_div: int = 37
    branch_taken: int = 3
    branch_not_taken: int = 1
    jump: int = 3
    vsetvli: int = 2
    vector_dispatch: int = 1
    vpi_extra: int = 1
    #: Extra cycles per register pass for vector memory operations
    #: (the VecLSU pays a memory round-trip per group member).
    vector_memory_extra_per_pass: int = 1

    def vector_arith(self, register_passes: int) -> int:
        """A vector arithmetic / slide / rotate / iota instruction."""
        if register_passes < 1:
            raise ValueError("a vector op needs at least one register pass")
        return register_passes + self.vector_dispatch

    def vector_pi(self, register_passes: int) -> int:
        """The vpi instruction (column-mode write interface)."""
        return self.vector_arith(register_passes) + self.vpi_extra

    def vector_memory(self, register_passes: int) -> int:
        """A vector load or store."""
        return (
            register_passes * (1 + self.vector_memory_extra_per_pass)
            + self.vector_dispatch
        )


#: The calibrated default model used throughout the evaluation.
DEFAULT_CYCLE_MODEL = CycleModel()
