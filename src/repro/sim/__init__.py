"""Functional + cycle-level simulator of the SIMD RISC-V based processor."""

from .cycles import DEFAULT_CYCLE_MODEL, CycleModel
from .exceptions import (
    ExecutionLimitExceeded,
    IllegalInstructionError,
    InjectedFaultError,
    MemoryAccessError,
    ProcessorHalted,
    SimulationError,
)
from .memory import DataMemory
from .predecode import DecodedInstruction, PredecodedProgram, predecode
from .processor import ENGINES, SIMDProcessor
from .scalar_core import ScalarCore
from .trace import ExecutionStats, TraceRecord
from .vector_regfile import NUM_VECTOR_REGISTERS, VectorRegfile
from .vector_unit import RC32_TABLE, VectorUnit

__all__ = [
    "SIMDProcessor",
    "ENGINES",
    "DecodedInstruction",
    "PredecodedProgram",
    "predecode",
    "ScalarCore",
    "VectorUnit",
    "VectorRegfile",
    "DataMemory",
    "CycleModel",
    "DEFAULT_CYCLE_MODEL",
    "ExecutionStats",
    "TraceRecord",
    "RC32_TABLE",
    "NUM_VECTOR_REGISTERS",
    "SimulationError",
    "MemoryAccessError",
    "IllegalInstructionError",
    "ExecutionLimitExceeded",
    "ProcessorHalted",
    "InjectedFaultError",
]
