"""Functional + cycle-level simulator of the SIMD RISC-V based processor."""

from .cycles import DEFAULT_CYCLE_MODEL, CycleModel
from .timing import DEFAULT_TIMING_MODEL, TimingModel
from .exceptions import (
    ExecutionLimitExceeded,
    IllegalInstructionError,
    InjectedFaultError,
    MemoryAccessError,
    ProcessorHalted,
    SimulationError,
)
from .memory import DataMemory
from .predecode import DecodedInstruction, PredecodedProgram, predecode
from . import engines
from .processor import SIMDProcessor
from .scalar_core import ScalarCore
from .trace import ExecutionStats, TraceRecord
from .vector_regfile import NUM_VECTOR_REGISTERS, VectorRegfile
from .vector_unit import RC32_TABLE, VectorUnit


def __getattr__(name: str):
    # Live view: third-party engines registered in repro.sim.engines
    # appear here (and in CLI choices) without re-importing.
    if name == "ENGINES":
        return engines.names()
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SIMDProcessor",
    "ENGINES",
    "engines",
    "DecodedInstruction",
    "PredecodedProgram",
    "predecode",
    "ScalarCore",
    "VectorUnit",
    "VectorRegfile",
    "DataMemory",
    "CycleModel",
    "DEFAULT_CYCLE_MODEL",
    "TimingModel",
    "DEFAULT_TIMING_MODEL",
    "ExecutionStats",
    "TraceRecord",
    "RC32_TABLE",
    "NUM_VECTOR_REGISTERS",
    "SimulationError",
    "MemoryAccessError",
    "IllegalInstructionError",
    "ExecutionLimitExceeded",
    "ProcessorHalted",
    "InjectedFaultError",
]
