"""The vector processing unit (paper Fig. 3, bottom half).

Models the VecISAInterface / VecLSU / VecOpExec / VecRegfile pipeline at
functional + cycle level.  Configuration state (VL, SEW, LMUL) is set by
``vsetvli``; arithmetic, slides, rotations, the pi scramble and iota are
executed element-wise over the active register-group passes, with RVV
masking (``vm`` bit + v0 mask register) honoured everywhere.

Custom-instruction semantics follow Section 3.3 exactly; in particular all
custom instructions only operate on elements holding Keccak state values
(element index < 5*SN with SN = VL // 5) and leave other elements
unchanged, and the ``lmul_cnt`` hardware counter supplies the row index to
``v64rho``/``v32lrho``/``v32hrho``/``vpi`` when the immediate is -1.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping

from ..keccak.constants import RHO_BY_ROW, ROUND_CONSTANTS
from ..isa.spec import InstructionSpec
from ..isa.vector import decode_vtype
from .cycles import CycleModel, DEFAULT_CYCLE_MODEL
from .exceptions import IllegalInstructionError
from .lru import LRU
from .memory import DataMemory
from .vector_regfile import VectorRegfile

#: Geometries cached per predecoded vector instruction.  The Keccak
#: programs swing between at most two configurations (the m1 theta/iota
#: geometry and the m8 rho/pi/chi geometry), so four covers the paper
#: workloads with room for sweeps.
_SPECIALIZER_MEMO_SIZE = 4

_SPECIALIZER_MISS = object()


def _sign_extend_to(value: int, from_bits: int, to_bits: int) -> int:
    """Sign-extend a from_bits value to to_bits (as an unsigned bit pattern)."""
    value &= (1 << from_bits) - 1
    if value & (1 << (from_bits - 1)):
        value |= ((1 << to_bits) - 1) ^ ((1 << from_bits) - 1)
    return value & ((1 << to_bits) - 1)


#: 32-bit round-constant table for the 32-bit architecture's ``viota``:
#: index 2i selects the low half of RC[i], index 2i+1 the high half
#: ("every round constant is divided into a high 32-bit value and a low
#: 32-bit value, and the viota instruction runs twice for each round").
RC32_TABLE = tuple(
    (rc >> 32) & 0xFFFFFFFF if half else rc & 0xFFFFFFFF
    for rc in ROUND_CONSTANTS
    for half in (0, 1)
)


class VectorUnit:
    """Functional + cycle-level model of the vector processing unit."""

    def __init__(
        self,
        vlen_bits: int,
        memory: DataMemory,
        cycle_model: CycleModel = DEFAULT_CYCLE_MODEL,
    ) -> None:
        self.regfile = VectorRegfile(vlen_bits)
        self.memory = memory
        self.cycle_model = cycle_model
        self.vl = 0
        self.sew = 64
        self.lmul = 1
        self._handlers = self._build_handlers()
        self._specializers = self._build_specializers()

    # -- configuration (vsetvli) ---------------------------------------------------

    def vlmax(self, sew: int, lmul: int) -> int:
        """Maximum VL for a given SEW/LMUL on this register file."""
        return self.regfile.elements_per_register(sew) * lmul

    def configure(self, avl: int, vtype: int) -> int:
        """Apply a vtype and requested AVL; returns the new VL.

        Reserved vtype encodings raise IllegalInstructionError (hardware
        would set ``vill``; this model treats executing with an ill vtype
        as a fault).
        """
        try:
            parts = decode_vtype(vtype)
        except ValueError as exc:
            raise IllegalInstructionError(
                f"reserved vtype encoding {vtype:#x}: {exc}"
            ) from exc
        sew, lmul = parts["sew"], parts["lmul"]
        new_vl = min(avl, self.vlmax(sew, lmul))
        self.sew = sew
        self.lmul = lmul
        self.vl = new_vl
        return new_vl

    # -- derived quantities -----------------------------------------------------------

    @property
    def elements_per_register(self) -> int:
        """Elements one register holds at the current SEW."""
        return self.regfile.elements_per_register(self.sew)

    @property
    def register_passes(self) -> int:
        """Active register-group passes for the current VL (>= 1)."""
        if self.vl == 0:
            return 1
        return math.ceil(self.vl / self.elements_per_register)

    @property
    def states_per_register(self) -> int:
        """Keccak states held per register pass (local SN)."""
        return min(self.vl, self.elements_per_register) // 5

    def _geometry(self) -> "tuple[int, int]":
        """(elements per register, register passes) without the property
        chain — one call per executed vector instruction, so it is hot."""
        sew = self.sew
        per_reg = self.regfile._per_reg.get(sew)
        if per_reg is None:
            per_reg = self.regfile.elements_per_register(sew)
        vl = self.vl
        return per_reg, (1 if vl == 0 else -(-vl // per_reg))

    def _element_mask(self) -> int:
        return (1 << self.sew) - 1

    def _check_group(self, base: int, what: str,
                     passes: int | None = None) -> None:
        if self.lmul > 1 and base % self.lmul:
            raise IllegalInstructionError(
                f"{what} register v{base} not aligned to LMUL={self.lmul} group"
            )
        if passes is None:
            passes = self.register_passes
        if base + passes > 32:
            raise IllegalInstructionError(
                f"{what} group v{base}.. exceeds the register file"
            )

    def _active(self, vm: int, element_index: int) -> bool:
        """Is ``element_index`` active under the mask policy?"""
        if element_index >= self.vl:
            return False
        if vm == 1:
            return True
        return self.regfile.mask_bit(element_index) == 1

    # -- execution entry point ---------------------------------------------------------

    def execute(self, spec: InstructionSpec, ops: Mapping[str, int],
                scalar_value: Callable[[int], int]) -> int:
        """Execute one vector instruction; returns its cycle cost.

        ``scalar_value`` reads a scalar register (for .vx operands and
        memory base/stride addresses).
        """
        handler = self._handlers.get(spec.mnemonic)
        if handler is None:
            raise IllegalInstructionError(
                f"vector unit does not implement {spec.mnemonic!r}"
            )
        return handler(spec, dict(ops), scalar_value)

    def compile_executor(self, spec: InstructionSpec, ops: Mapping[str, int],
                         scalar_value: Callable[[int], int]
                         ) -> "Callable[[], tuple]":
        """Bind one decoded vector instruction to a zero-argument executor
        returning ``(cycles, None)`` — vector instructions always fall
        through sequentially.

        Used by the predecode engine: the handler lookup and the operand
        dict are resolved once at decode time, so the per-step cost is just
        the handler call.  Semantics are identical to :meth:`execute`
        (including deferring the unknown-mnemonic fault to execution time).

        For the unmasked Keccak hot-path instructions a *specializer* (see
        :meth:`_build_specializers`) compiles a packed-integer fast
        executor bound to the current (VL, SEW, LMUL) configuration; the
        executor re-specializes whenever the configuration changes and
        falls back to the generic handler for any geometry it cannot
        prove safe (partial tail pass, misaligned group, out-of-range
        registers), so faults and masked/partial semantics are untouched.
        """
        handler = self._handlers.get(spec.mnemonic)
        if handler is None:
            mnemonic = spec.mnemonic

            def missing() -> tuple:
                raise IllegalInstructionError(
                    f"vector unit does not implement {mnemonic!r}"
                )

            return missing
        bound_ops = dict(ops)

        builder = self._specializers.get(spec.mnemonic)
        if builder is not None and bound_ops.get("vm") == 1:
            # Per-geometry fast executors (or None for geometries the
            # builder cannot prove safe), keyed on the observable
            # configuration itself (not a generation counter) so direct
            # vl/sew/lmul pokes by tests re-specialize too.  Bounded:
            # a program alternating between more geometries than the
            # capacity just rebuilds on each swing — correctness never
            # depends on residency.
            memo = LRU(_SPECIALIZER_MEMO_SIZE)
            miss = _SPECIALIZER_MISS

            def run_specialized() -> tuple:
                key = (self.vl, self.sew, self.lmul)
                fast = memo.get(key, miss)
                if fast is miss:
                    fast = builder(bound_ops, scalar_value)
                    memo.put(key, fast)
                if fast is not None:
                    return fast()
                return handler(spec, bound_ops, scalar_value), None

            return run_specialized

        def run() -> tuple:
            return handler(spec, bound_ops, scalar_value), None

        return run

    def _build_handlers(self) -> Dict[str, Callable]:
        mask64 = (1 << 64) - 1

        def rotl_sew64(value: int, amount: int) -> int:
            amount %= 64
            if amount == 0:
                return value & mask64
            return ((value << amount) | (value >> (64 - amount))) & mask64

        handlers: Dict[str, Callable] = {}

        def binary(op, raw=None):
            def run(spec, ops, scalar_value):
                return self._exec_binary(spec, ops, scalar_value, op, raw)
            return run

        handlers["vadd.vv"] = handlers["vadd.vx"] = handlers["vadd.vi"] = \
            binary(lambda a, b, m: (a + b) & m)
        handlers["vsub.vv"] = handlers["vsub.vx"] = \
            binary(lambda a, b, m: (a - b) & m)
        # The bitwise ops have no cross-element carries, so on fully
        # active registers they run on the packed VLEN-bit integers
        # directly (`raw`) — the Keccak theta/chi hot path.
        handlers["vand.vv"] = handlers["vand.vx"] = handlers["vand.vi"] = \
            binary(lambda a, b, m: a & b, raw=lambda a, b: a & b)
        handlers["vor.vv"] = handlers["vor.vx"] = handlers["vor.vi"] = \
            binary(lambda a, b, m: a | b, raw=lambda a, b: a | b)
        handlers["vxor.vv"] = handlers["vxor.vx"] = handlers["vxor.vi"] = \
            binary(lambda a, b, m: a ^ b, raw=lambda a, b: a ^ b)
        # Raw (packed-register) forms for the .vv bitwise ops, used by
        # compile_executor to emit a specialized fast executor.
        self._raw_vv = {
            "vand.vv": lambda a, b: a & b,
            "vor.vv": lambda a, b: a | b,
            "vxor.vv": lambda a, b: a ^ b,
        }
        handlers["vsll.vv"] = handlers["vsll.vx"] = handlers["vsll.vi"] = \
            binary(lambda a, b, m: (a << (b % self.sew)) & m)
        handlers["vsrl.vv"] = handlers["vsrl.vx"] = handlers["vsrl.vi"] = \
            binary(lambda a, b, m: (a & m) >> (b % self.sew))

        handlers["vslidedownm.vi"] = self._exec_slide_modulo
        handlers["vslideupm.vi"] = self._exec_slide_modulo
        handlers["vrotup.vi"] = self._exec_vrotup
        handlers["v32lrotup.vv"] = self._exec_v32rotup
        handlers["v32hrotup.vv"] = self._exec_v32rotup
        handlers["v64rho.vi"] = self._exec_v64rho
        handlers["v32lrho.vv"] = self._exec_v32rho
        handlers["v32hrho.vv"] = self._exec_v32rho
        handlers["vpi.vi"] = self._exec_vpi
        handlers["viota.vx"] = self._exec_viota
        handlers["vrhopi.vi"] = self._exec_vrhopi
        handlers["vchi.vi"] = self._exec_vchi

        for mnemonic in ("vle32.v", "vle64.v", "vlse32.v", "vlse64.v",
                         "vluxei32.v", "vluxei64.v"):
            handlers[mnemonic] = self._exec_vload
        for mnemonic in ("vse32.v", "vse64.v", "vsse32.v", "vsse64.v",
                         "vsuxei32.v", "vsuxei64.v"):
            handlers[mnemonic] = self._exec_vstore

        self._rotl64 = rotl_sew64
        return handlers

    # -- compile-time specialization (superblock hot path) ---------------------------

    def _spec_geometry(self, lanes_of_five: bool):
        """(sew, per_reg, passes) when every pass covers a whole register.

        Returns None — meaning "use the generic handler" — unless VL fills
        an exact number of whole registers (no partial tail pass) and, for
        the five-lane Keccak instructions, registers hold whole lane
        groups.
        """
        vl, sew = self.vl, self.sew
        vlen = self.regfile.vlen_bits
        if vl <= 0 or sew <= 0 or vlen % sew:
            return None
        per_reg = vlen // sew
        if vl % per_reg or (lanes_of_five and per_reg % 5):
            return None
        return sew, per_reg, vl // per_reg

    def _spec_groups_ok(self, passes: int, *bases: int) -> bool:
        """Are all register groups aligned and inside the register file?"""
        lmul = self.lmul
        for base in bases:
            if base + passes > 32:
                return False
            if lmul > 1 and base % lmul:
                return False
        return True

    def _build_specializers(self) -> Dict[str, Callable]:
        """Builders compiling packed-integer executors per configuration.

        Each builder is called with the decoded operands (``vm`` == 1
        guaranteed by the caller) under the *current* vector
        configuration and returns either a zero-argument fast executor
        returning ``(cycles, None)``, or None when any precondition fails
        — misaligned group, partial tail, wrong SEW, reserved operand —
        in which case the generic handler runs (and raises) instead.  The
        fast executors operate on the packed VLEN-bit register integers
        directly, with shift/mask plans precomputed at specialization
        time; results are bit-identical to the element-wise handlers.
        """
        cm = self.cycle_model
        regfile = self.regfile

        def bitwise(raw):
            def build(ops, scalar_value):
                g = self._spec_geometry(False)
                if g is None:
                    return None
                _, _, passes = g
                vd, vs2, vs1 = ops["vd"], ops["vs2"], ops["vs1"]
                if not self._spec_groups_ok(passes, vd, vs2, vs1):
                    return None
                cost = cm.vector_arith(passes)
                if passes == 1:
                    def fast():
                        regs = regfile._regs
                        regs[vd] = raw(regs[vs2], regs[vs1])
                        return cost, None
                else:
                    prange = range(passes)

                    def fast():
                        regs = regfile._regs
                        for p in prange:
                            regs[vd + p] = raw(regs[vs2 + p], regs[vs1 + p])
                        return cost, None
                return fast
            return build

        def slide(down):
            def build(ops, scalar_value):
                g = self._spec_geometry(True)
                if g is None:
                    return None
                sew, per_reg, passes = g
                vd, vs2 = ops["vd"], ops["vs2"]
                if not self._spec_groups_ok(passes, vd, vs2):
                    return None
                offset = ops["imm"] % 5
                emask = (1 << sew) - 1
                pairs = []
                for i in range(per_reg):
                    group, lane = i - i % 5, i % 5
                    src_lane = (lane + offset) % 5 if down \
                        else (lane - offset) % 5
                    pairs.append(((group + src_lane) * sew, i * sew))
                pairs = tuple(pairs)
                cost = cm.vector_arith(passes)
                prange = range(passes)

                def fast():
                    regs = regfile._regs
                    for p in prange:
                        src = regs[vs2 + p]
                        packed = 0
                        for src_shift, dst_shift in pairs:
                            packed |= ((src >> src_shift) & emask) \
                                << dst_shift
                        regs[vd + p] = packed
                    return cost, None
                return fast
            return build

        def rotup(ops, scalar_value):
            if self.sew != 64:
                return None
            g = self._spec_geometry(False)
            if g is None:
                return None
            _, per_reg, passes = g
            vd, vs2 = ops["vd"], ops["vs2"]
            if not self._spec_groups_ok(passes, vd, vs2):
                return None
            amount = ops["imm"] % 64
            cost = cm.vector_arith(passes)
            prange = range(passes)
            if amount == 0:
                def fast_copy():
                    regs = regfile._regs
                    for p in prange:
                        regs[vd + p] = regs[vs2 + p]
                    return cost, None
                return fast_copy
            # Rotate every 64-bit element by the same amount with two
            # whole-register shifts: the bits that stay inside their
            # element after << amount, plus each element's top bits
            # brought down to its own low positions.
            stay = (1 << (64 - amount)) - 1
            wrap = (1 << amount) - 1
            mask_stay = sum(stay << (64 * i) for i in range(per_reg))
            mask_wrap = sum(wrap << (64 * i) for i in range(per_reg))
            down = 64 - amount

            def fast():
                regs = regfile._regs
                for p in prange:
                    x = regs[vs2 + p]
                    regs[vd + p] = ((x & mask_stay) << amount) \
                        | ((x >> down) & mask_wrap)
                return cost, None
            return fast

        def rho_rows(simm, passes):
            """Row schedule for rho/pi, or None to fall back (generic
            handler raises for genuinely invalid immediates)."""
            if simm == -1:
                return [p % 5 for p in range(passes)]
            if 0 <= simm <= 4:
                if self.lmul != 1 and passes > 1:
                    return None
                return [simm] * passes
            return None

        def v64rho(ops, scalar_value):
            if self.sew != 64:
                return None
            g = self._spec_geometry(True)
            if g is None:
                return None
            _, per_reg, passes = g
            vd, vs2 = ops["vd"], ops["vs2"]
            if not self._spec_groups_ok(passes, vd, vs2):
                return None
            rows = rho_rows(ops["imm"], passes)
            if rows is None:
                return None
            m64 = (1 << 64) - 1
            plan = tuple(
                tuple((i * 64, RHO_BY_ROW[row][i % 5])
                      for i in range(per_reg))
                for row in rows
            )
            cost = cm.vector_arith(passes)

            def fast():
                regs = regfile._regs
                for p, elems in enumerate(plan):
                    src = regs[vs2 + p]
                    packed = 0
                    for shift, amount in elems:
                        e = (src >> shift) & m64
                        packed |= (((e << amount) | (e >> (64 - amount)))
                                   & m64) << shift
                    regs[vd + p] = packed
                return cost, None
            return fast

        def vchi(ops, scalar_value):
            if ops["imm"] != 0:
                return None
            g = self._spec_geometry(True)
            if g is None:
                return None
            sew, per_reg, passes = g
            vd, vs2 = ops["vd"], ops["vs2"]
            if not self._spec_groups_ok(passes, vd, vs2):
                return None
            emask = (1 << sew) - 1
            full = regfile._full_mask

            def shuffle_masks(k):
                # Masks for "element j+k (mod 5) of each lane group":
                # near elements arrive via >> (k*sew), wrapped ones via
                # << ((5-k)*sew).
                near = wrapm = 0
                for slot in range(per_reg):
                    j = slot % 5
                    if j + k < 5:
                        near |= emask << (slot * sew)
                    else:
                        wrapm |= emask << (slot * sew)
                return near, wrapm

            near1, wrap1 = shuffle_masks(1)
            near2, wrap2 = shuffle_masks(2)
            d1, u1 = 1 * sew, 4 * sew
            d2, u2 = 2 * sew, 3 * sew
            cost = cm.vector_arith(passes)
            prange = range(passes)

            def fast():
                regs = regfile._regs
                for p in prange:
                    x = regs[vs2 + p]
                    s1 = ((x >> d1) & near1) | ((x << u1) & wrap1)
                    s2 = ((x >> d2) & near2) | ((x << u2) & wrap2)
                    regs[vd + p] = x ^ ((s1 ^ full) & s2)
                return cost, None
            return fast

        def viota(ops, scalar_value):
            g = self._spec_geometry(True)
            if g is None:
                return None
            sew, per_reg, passes = g
            if sew == 64:
                table, what = ROUND_CONSTANTS, "viota"
            elif sew == 32:
                table, what = RC32_TABLE, "viota 32-bit"
            else:
                return None
            vd, vs2 = ops["vd"], ops["vs2"]
            if not self._spec_groups_ok(passes, vd, vs2):
                return None
            rs1 = ops["rs1"]
            # Multiplying by the spread broadcasts the constant to every
            # group's lane-0 slot (slots are 5*sew apart > sew bits, so
            # the products cannot overlap).
            spread = sum(1 << (5 * k * sew) for k in range(per_reg // 5))
            table_len = len(table)
            cost = cm.vector_arith(passes)
            prange = range(passes)

            def fast():
                index = scalar_value(rs1)
                if not 0 <= index < table_len:
                    raise IllegalInstructionError(
                        f"{what} round-constant index out of range: {index}"
                    )
                packed_rc = table[index] * spread
                regs = regfile._regs
                for p in prange:
                    regs[vd + p] = regs[vs2 + p] ^ packed_rc
                return cost, None
            return fast

        def column_write(with_rho):
            """vpi / vrhopi: rotate (optionally) and column-scatter."""
            def build(ops, scalar_value):
                if with_rho and self.sew != 64:
                    return None
                g = self._spec_geometry(True)
                if g is None:
                    return None
                sew, per_reg, passes = g
                vd, vs2 = ops["vd"], ops["vs2"]
                if vd + 5 > 32:
                    return None
                if not self._spec_groups_ok(passes, vs2):
                    return None
                overlap = vs2 < vd + 5 and vd < vs2 + passes
                if overlap and passes > 1:
                    # Multi-pass write-through semantics (a later pass
                    # re-reads what an earlier one wrote): generic only.
                    return None
                rows = rho_rows(ops["imm"], passes)
                if rows is None:
                    return None
                emask = (1 << sew) - 1
                m64 = (1 << 64) - 1
                plan = []
                for row in rows:
                    amounts = RHO_BY_ROW[row]
                    steps = []
                    for i in range(per_reg // 5):
                        for lane in range(5):
                            steps.append((
                                (5 * i + lane) * sew,
                                amounts[lane] if with_rho else 0,
                                (2 * (lane - row)) % 5,
                                (5 * i + row) * sew,
                                ~(emask << ((5 * i + row) * sew)),
                            ))
                    plan.append(tuple(steps))
                plan = tuple(plan)
                cost = cm.vector_pi(passes)

                def fast():
                    regs = regfile._regs
                    acc = regs[vd:vd + 5]
                    for p, steps in enumerate(plan):
                        src = regs[vs2 + p]
                        for src_shift, rot, k, dst_shift, clear in steps:
                            e = (src >> src_shift) & emask
                            if rot:
                                e = ((e << rot) | (e >> (64 - rot))) & m64
                            acc[k] = (acc[k] & clear) | (e << dst_shift)
                    regs[vd:vd + 5] = acc
                    return cost, None
                return fast
            return build

        def v32pair(keep_high, is_rho):
            """v32{l,h}{rho,rotup}.vv: combine hi/lo 32-bit halves, rotate,
            keep one half."""
            def build(ops, scalar_value):
                if self.sew != 32:
                    return None
                g = self._spec_geometry(is_rho)
                if g is None:
                    return None
                _, per_reg, passes = g
                vd, vs2, vs1 = ops["vd"], ops["vs2"], ops["vs1"]
                if not self._spec_groups_ok(passes, vd, vs2, vs1):
                    return None
                m32 = 0xFFFFFFFF
                m64 = (1 << 64) - 1
                if is_rho:
                    plan = tuple(
                        tuple((i * 32, RHO_BY_ROW[p % 5][i % 5])
                              for i in range(per_reg))
                        for p in range(passes)
                    )
                else:
                    plan = tuple(
                        tuple((i * 32, 1) for i in range(per_reg))
                        for _ in range(passes)
                    )
                cost = cm.vector_arith(passes)

                if keep_high:
                    def fast():
                        regs = regfile._regs
                        for p, elems in enumerate(plan):
                            hi, lo = regs[vs2 + p], regs[vs1 + p]
                            packed = 0
                            for shift, amount in elems:
                                w = (((hi >> shift) & m32) << 32) \
                                    | ((lo >> shift) & m32)
                                r = ((w << amount) | (w >> (64 - amount))) \
                                    & m64
                                packed |= (r >> 32) << shift
                            regs[vd + p] = packed
                        return cost, None
                else:
                    def fast():
                        regs = regfile._regs
                        for p, elems in enumerate(plan):
                            hi, lo = regs[vs2 + p], regs[vs1 + p]
                            packed = 0
                            for shift, amount in elems:
                                w = (((hi >> shift) & m32) << 32) \
                                    | ((lo >> shift) & m32)
                                r = ((w << amount) | (w >> (64 - amount))) \
                                    & m64
                                packed |= (r & m32) << shift
                            regs[vd + p] = packed
                        return cost, None
                return fast
            return build

        return {
            "vand.vv": bitwise(lambda a, b: a & b),
            "vor.vv": bitwise(lambda a, b: a | b),
            "vxor.vv": bitwise(lambda a, b: a ^ b),
            "vslidedownm.vi": slide(down=True),
            "vslideupm.vi": slide(down=False),
            "vrotup.vi": rotup,
            "v64rho.vi": v64rho,
            "vchi.vi": vchi,
            "viota.vx": viota,
            "vpi.vi": column_write(with_rho=False),
            "vrhopi.vi": column_write(with_rho=True),
            "v32lrho.vv": v32pair(keep_high=False, is_rho=True),
            "v32hrho.vv": v32pair(keep_high=True, is_rho=True),
            "v32lrotup.vv": v32pair(keep_high=False, is_rho=False),
            "v32hrotup.vv": v32pair(keep_high=True, is_rho=False),
        }

    # -- generic element-wise binary ops -------------------------------------------------

    def _exec_binary(self, spec, ops, scalar_value, op, raw=None) -> int:
        vd = ops["vd"]
        vs2 = ops["vs2"]
        vm = ops["vm"]
        sew = self.sew
        mask = (1 << sew) - 1
        per_reg, passes = self._geometry()
        self._check_group(vd, "destination", passes)
        self._check_group(vs2, "source", passes)

        vs1 = None
        scalar = 0
        if spec.fmt == "v_vv":
            vs1 = ops["vs1"]
            self._check_group(vs1, "source", passes)
        elif spec.fmt == "v_vx":
            scalar = _sign_extend_to(scalar_value(ops["rs1"]), 32, sew)
        else:  # v_vi
            imm = ops["imm"]
            if spec.extra.get("signed_imm", True):
                scalar = _sign_extend_to(imm & 0x1F, 5, sew)
            else:
                scalar = imm & 0x1F

        # One whole-register read/modify/write per group pass.  Register
        # groups are LMUL-aligned, so vd's group is either identical to or
        # disjoint from each source group and pass p never reads a register
        # an earlier pass wrote — results match the snapshot-first order.
        vl = self.vl
        regfile = self.regfile
        packed_scalar = None
        if raw is not None and vm == 1 and vs1 is None:
            packed_scalar = 0
            for _ in range(per_reg):
                packed_scalar = (packed_scalar << sew) | scalar
        regs = regfile._regs
        for p in range(passes):
            base_index = p * per_reg
            count = min(per_reg, vl - base_index)
            if count <= 0:
                continue
            if raw is not None and vm == 1 and count == per_reg:
                # Whole register, every element active: operate on the
                # packed integers (bitwise ops have no carries).
                regs[vd + p] = raw(
                    regs[vs2 + p],
                    regs[vs1 + p] if vs1 is not None else packed_scalar,
                )
                continue
            src2 = regfile.read_elements(vs2 + p, sew)
            src1 = regfile.read_elements(vs1 + p, sew) \
                if vs1 is not None else None
            if vm == 1 and count == per_reg:
                # Whole register overwritten: build it, no dst read.
                if src1 is not None:
                    dst = [op(a, b, mask) for a, b in zip(src2, src1)]
                else:
                    dst = [op(a, scalar, mask) for a in src2]
            else:
                dst = regfile.read_elements(vd + p, sew)
                if vm == 1:
                    if src1 is not None:
                        for i in range(count):
                            dst[i] = op(src2[i], src1[i], mask)
                    else:
                        for i in range(count):
                            dst[i] = op(src2[i], scalar, mask)
                else:
                    for i in range(count):
                        if self._active(vm, base_index + i):
                            dst[i] = op(
                                src2[i],
                                src1[i] if src1 is not None else scalar,
                                mask,
                            )
            regfile.write_elements(vd + p, sew, dst)
        return self.cycle_model.vector_arith(passes)

    # -- custom: slide modulo five (Table 1) ----------------------------------------------

    def _exec_slide_modulo(self, spec, ops, scalar_value) -> int:
        vd, vs2, vm = ops["vd"], ops["vs2"], ops["vm"]
        offset = ops["imm"] % 5
        down = spec.mnemonic == "vslidedownm.vi"
        sew = self.sew
        per_reg, passes = self._geometry()
        self._check_group(vd, "destination", passes)
        self._check_group(vs2, "source", passes)

        # Source slot for lane j of each state, fixed across states/passes.
        if down:
            rotation = [(j + offset) % 5 for j in range(5)]
        else:
            rotation = [(j - offset) % 5 for j in range(5)]
        for p in range(passes):
            base_index = p * per_reg
            count = min(per_reg, self.vl - base_index)
            local_sn = count // 5
            src = self.regfile.read_elements(vs2 + p, sew)
            if vm == 1 and 5 * local_sn == per_reg:
                dst = [src[slot + rot]
                       for slot in range(0, count, 5) for rot in rotation]
            else:
                dst = self.regfile.read_elements(vd + p, sew)
                if vm == 1:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            dst[slot + j] = src[slot + rotation[j]]
                else:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            if self._active(vm, base_index + slot + j):
                                dst[slot + j] = src[slot + rotation[j]]
            self.regfile.write_elements(vd + p, sew, dst)
        return self.cycle_model.vector_arith(passes)

    # -- custom: rotations (Table 3) ---------------------------------------------------------

    def _exec_vrotup(self, spec, ops, scalar_value) -> int:
        if self.sew != 64:
            raise IllegalInstructionError(
                "vrotup.vi requires the 64-bit architecture (SEW=64)"
            )
        vd, vs2, vm = ops["vd"], ops["vs2"], ops["vm"]
        amount = ops["imm"] % 64
        per_reg, passes = self._geometry()
        self._check_group(vd, "destination", passes)
        self._check_group(vs2, "source", passes)
        vl = self.vl
        rotl = self._rotl64
        for p in range(passes):
            base_index = p * per_reg
            count = min(per_reg, vl - base_index)
            if count <= 0:
                continue
            src = self.regfile.read_elements(vs2 + p, 64)
            if vm == 1 and count == per_reg:
                dst = [rotl(value, amount) for value in src]
            else:
                dst = self.regfile.read_elements(vd + p, 64)
                if vm == 1:
                    for i in range(count):
                        dst[i] = rotl(src[i], amount)
                else:
                    for i in range(count):
                        if self._active(vm, base_index + i):
                            dst[i] = rotl(src[i], amount)
            self.regfile.write_elements(vd + p, 64, dst)
        return self.cycle_model.vector_arith(passes)

    def _exec_v32rotup(self, spec, ops, scalar_value) -> int:
        if self.sew != 32:
            raise IllegalInstructionError(
                f"{spec.mnemonic} requires the 32-bit architecture (SEW=32)"
            )
        vd, vs2, vs1, vm = ops["vd"], ops["vs2"], ops["vs1"], ops["vm"]
        keep_high = spec.mnemonic == "v32hrotup.vv"
        per_reg, passes = self._geometry()
        self._check_group(vd, "destination", passes)
        self._check_group(vs2, "source", passes)
        self._check_group(vs1, "source", passes)
        vl = self.vl
        rotl = self._rotl64
        for p in range(passes):
            base_index = p * per_reg
            count = min(per_reg, vl - base_index)
            if count <= 0:
                continue
            hi = self.regfile.read_elements(vs2 + p, 32)
            lo = self.regfile.read_elements(vs1 + p, 32)
            if vm == 1 and count == per_reg:
                if keep_high:
                    dst = [rotl((h << 32) | l, 1) >> 32
                           for h, l in zip(hi, lo)]
                else:
                    dst = [rotl((h << 32) | l, 1) & 0xFFFFFFFF
                           for h, l in zip(hi, lo)]
            else:
                dst = self.regfile.read_elements(vd + p, 32)
                if vm == 1:
                    for i in range(count):
                        rotated = rotl((hi[i] << 32) | lo[i], 1)
                        dst[i] = (rotated >> 32) if keep_high \
                            else (rotated & 0xFFFFFFFF)
                else:
                    for i in range(count):
                        if self._active(vm, base_index + i):
                            rotated = rotl((hi[i] << 32) | lo[i], 1)
                            dst[i] = (rotated >> 32) if keep_high \
                                else (rotated & 0xFFFFFFFF)
            self.regfile.write_elements(vd + p, 32, dst)
        return self.cycle_model.vector_arith(passes)

    def _rho_row_for_pass(self, simm: int, pass_index: int) -> int:
        """Row index: the immediate, or the hardware lmul_cnt counter."""
        if simm == -1:
            return pass_index % 5
        if not 0 <= simm <= 4:
            raise IllegalInstructionError(
                f"rho/pi row immediate out of range: {simm}"
            )
        if self.lmul != 1 and self.register_passes > 1:
            raise IllegalInstructionError(
                "explicit row immediate requires LMUL=1 (use -1 for groups)"
            )
        return simm

    def _exec_v64rho(self, spec, ops, scalar_value) -> int:
        if self.sew != 64:
            raise IllegalInstructionError(
                "v64rho.vi requires the 64-bit architecture (SEW=64)"
            )
        vd, vs2, vm, simm = ops["vd"], ops["vs2"], ops["vm"], ops["imm"]
        per_reg, passes = self._geometry()
        self._check_group(vd, "destination", passes)
        self._check_group(vs2, "source", passes)
        rotl = self._rotl64
        for p in range(passes):
            row = self._rho_row_for_pass(simm, p)
            amounts = RHO_BY_ROW[row]
            base_index = p * per_reg
            count = min(per_reg, self.vl - base_index)
            local_sn = count // 5
            src = self.regfile.read_elements(vs2 + p, 64)
            if vm == 1 and 5 * local_sn == per_reg:
                dst = [rotl(src[slot + j], amounts[j])
                       for slot in range(0, count, 5) for j in range(5)]
            else:
                dst = self.regfile.read_elements(vd + p, 64)
                if vm == 1:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            dst[slot + j] = rotl(src[slot + j], amounts[j])
                else:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            if self._active(vm, base_index + slot + j):
                                dst[slot + j] = rotl(
                                    src[slot + j], amounts[j]
                                )
            self.regfile.write_elements(vd + p, 64, dst)
        return self.cycle_model.vector_arith(passes)

    def _exec_v32rho(self, spec, ops, scalar_value) -> int:
        if self.sew != 32:
            raise IllegalInstructionError(
                f"{spec.mnemonic} requires the 32-bit architecture (SEW=32)"
            )
        vd, vs2, vs1, vm = ops["vd"], ops["vs2"], ops["vs1"], ops["vm"]
        keep_high = spec.mnemonic == "v32hrho.vv"
        per_reg, passes = self._geometry()
        self._check_group(vd, "destination", passes)
        self._check_group(vs2, "source", passes)
        self._check_group(vs1, "source", passes)
        rotl = self._rotl64
        for p in range(passes):
            row = p % 5  # lmul_cnt indexes the row automatically
            amounts = RHO_BY_ROW[row]
            base_index = p * per_reg
            count = min(per_reg, self.vl - base_index)
            local_sn = count // 5
            hi = self.regfile.read_elements(vs2 + p, 32)
            lo = self.regfile.read_elements(vs1 + p, 32)
            if vm == 1 and 5 * local_sn == per_reg:
                if keep_high:
                    dst = [rotl((hi[slot + j] << 32) | lo[slot + j],
                                amounts[j]) >> 32
                           for slot in range(0, count, 5) for j in range(5)]
                else:
                    dst = [rotl((hi[slot + j] << 32) | lo[slot + j],
                                amounts[j]) & 0xFFFFFFFF
                           for slot in range(0, count, 5) for j in range(5)]
            else:
                dst = self.regfile.read_elements(vd + p, 32)
                if vm == 1:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            rotated = rotl(
                                (hi[slot + j] << 32) | lo[slot + j],
                                amounts[j],
                            )
                            dst[slot + j] = (rotated >> 32) if keep_high \
                                else (rotated & 0xFFFFFFFF)
                else:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            if self._active(vm, base_index + slot + j):
                                rotated = rotl(
                                    (hi[slot + j] << 32) | lo[slot + j],
                                    amounts[j],
                                )
                                dst[slot + j] = (rotated >> 32) if keep_high \
                                    else (rotated & 0xFFFFFFFF)
            self.regfile.write_elements(vd + p, 32, dst)
        return self.cycle_model.vector_arith(passes)

    # -- custom: pi (Table 4, Fig. 8) ------------------------------------------------------------

    def _exec_vpi(self, spec, ops, scalar_value) -> int:
        vd, vs2, vm, simm = ops["vd"], ops["vs2"], ops["vm"], ops["imm"]
        sew = self.sew
        per_reg, passes = self._geometry()
        self._check_group(vs2, "source", passes)
        if vd + 5 > 32:
            raise IllegalInstructionError(
                f"vpi destination column v{vd}..v{vd + 4} exceeds the "
                "register file"
            )
        if passes == 1 or (vs2 < vd + 5 and vd < vs2 + passes):
            # Source group overlaps the destination column (write each
            # element through immediately — a later pass may read it
            # back), or a single pass, where touching only the five
            # written elements beats buffering five whole registers.
            for p in range(passes):
                row = self._rho_row_for_pass(simm, p)
                base_index = p * per_reg
                count = min(per_reg, self.vl - base_index)
                local_sn = count // 5
                src = self.regfile.read_elements(vs2 + p, sew)
                for i in range(local_sn):
                    for lane in range(5):
                        if not self._active(vm, base_index + 5 * i + lane):
                            continue
                        # pi: lane `lane` of source plane `row` lands in
                        # plane 2*(lane - row) mod 5, at lane position `row`.
                        dest_plane = (2 * (lane - row)) % 5
                        self.regfile.set_element(
                            vd + dest_plane, 5 * i + row, sew,
                            src[5 * i + lane],
                        )
            return self.cycle_model.vector_pi(passes)
        # Disjoint groups: buffer the five destination planes and write
        # each register once.
        dst = [self.regfile.read_elements(vd + k, sew) for k in range(5)]
        for p in range(passes):
            row = self._rho_row_for_pass(simm, p)
            planes = [(2 * (lane - row)) % 5 for lane in range(5)]
            base_index = p * per_reg
            count = min(per_reg, self.vl - base_index)
            local_sn = count // 5
            src = self.regfile.read_elements(vs2 + p, sew)
            if vm == 1:
                for i in range(local_sn):
                    slot = 5 * i
                    for lane in range(5):
                        dst[planes[lane]][slot + row] = src[slot + lane]
            else:
                for i in range(local_sn):
                    slot = 5 * i
                    for lane in range(5):
                        if self._active(vm, base_index + slot + lane):
                            dst[planes[lane]][slot + row] = src[slot + lane]
        for k in range(5):
            self.regfile.write_elements(vd + k, sew, dst[k])
        return self.cycle_model.vector_pi(passes)

    # -- fused extensions (paper future work, Section 5) -----------------------------

    def _exec_vrhopi(self, spec, ops, scalar_value) -> int:
        """Fused rho+pi: rotate each lane, then column-write it (64-bit)."""
        if self.sew != 64:
            raise IllegalInstructionError(
                "vrhopi.vi requires the 64-bit architecture (SEW=64)"
            )
        vd, vs2, vm, simm = ops["vd"], ops["vs2"], ops["vm"], ops["imm"]
        per_reg, passes = self._geometry()
        rotl = self._rotl64
        self._check_group(vs2, "source", passes)
        if vd + 5 > 32:
            raise IllegalInstructionError(
                f"vrhopi destination column v{vd}..v{vd + 4} exceeds the "
                "register file"
            )
        if passes == 1 or (vs2 < vd + 5 and vd < vs2 + passes):
            for p in range(passes):
                row = self._rho_row_for_pass(simm, p)
                base_index = p * per_reg
                count = min(per_reg, self.vl - base_index)
                local_sn = count // 5
                src = self.regfile.read_elements(vs2 + p, 64)
                for i in range(local_sn):
                    for lane in range(5):
                        if not self._active(vm, base_index + 5 * i + lane):
                            continue
                        rotated = rotl(
                            src[5 * i + lane], RHO_BY_ROW[row][lane]
                        )
                        dest_plane = (2 * (lane - row)) % 5
                        self.regfile.set_element(
                            vd + dest_plane, 5 * i + row, 64, rotated
                        )
            return self.cycle_model.vector_pi(passes)
        dst = [self.regfile.read_elements(vd + k, 64) for k in range(5)]
        for p in range(passes):
            row = self._rho_row_for_pass(simm, p)
            amounts = RHO_BY_ROW[row]
            planes = [(2 * (lane - row)) % 5 for lane in range(5)]
            base_index = p * per_reg
            count = min(per_reg, self.vl - base_index)
            local_sn = count // 5
            src = self.regfile.read_elements(vs2 + p, 64)
            if vm == 1:
                for i in range(local_sn):
                    slot = 5 * i
                    for lane in range(5):
                        dst[planes[lane]][slot + row] = rotl(
                            src[slot + lane], amounts[lane]
                        )
            else:
                for i in range(local_sn):
                    slot = 5 * i
                    for lane in range(5):
                        if self._active(vm, base_index + slot + lane):
                            dst[planes[lane]][slot + row] = rotl(
                                src[slot + lane], amounts[lane]
                            )
        for k in range(5):
            self.regfile.write_elements(vd + k, 64, dst[k])
        return self.cycle_model.vector_pi(passes)

    def _exec_vchi(self, spec, ops, scalar_value) -> int:
        """Fused chi: the whole row function in one instruction."""
        vd, vs2, vm, simm = ops["vd"], ops["vs2"], ops["vm"], ops["imm"]
        if simm != 0:
            raise IllegalInstructionError(
                f"vchi.vi immediate is reserved and must be 0, got {simm}"
            )
        sew = self.sew
        mask = (1 << sew) - 1
        per_reg, passes = self._geometry()
        self._check_group(vd, "destination", passes)
        self._check_group(vs2, "source", passes)
        offset1 = (1, 2, 3, 4, 0)
        offset2 = (2, 3, 4, 0, 1)
        for p in range(passes):
            base_index = p * per_reg
            count = min(per_reg, self.vl - base_index)
            local_sn = count // 5
            src = self.regfile.read_elements(vs2 + p, sew)
            if vm == 1 and 5 * local_sn == per_reg:
                dst = [src[slot + j]
                       ^ ((~src[slot + offset1[j]] & mask)
                          & src[slot + offset2[j]])
                       for slot in range(0, count, 5) for j in range(5)]
            else:
                dst = self.regfile.read_elements(vd + p, sew)
                if vm == 1:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            dst[slot + j] = src[slot + j] ^ (
                                (~src[slot + offset1[j]] & mask)
                                & src[slot + offset2[j]]
                            )
                else:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            if self._active(vm, base_index + slot + j):
                                dst[slot + j] = src[slot + j] ^ (
                                    (~src[slot + offset1[j]] & mask)
                                    & src[slot + offset2[j]]
                                )
            self.regfile.write_elements(vd + p, sew, dst)
        return self.cycle_model.vector_arith(passes)

    # -- custom: iota (Table 5) --------------------------------------------------------------------

    def _exec_viota(self, spec, ops, scalar_value) -> int:
        vd, vs2, vm = ops["vd"], ops["vs2"], ops["vm"]
        index = scalar_value(ops["rs1"])
        sew = self.sew
        per_reg, passes = self._geometry()
        self._check_group(vd, "destination", passes)
        self._check_group(vs2, "source", passes)
        if sew == 64:
            if not 0 <= index < len(ROUND_CONSTANTS):
                raise IllegalInstructionError(
                    f"viota round-constant index out of range: {index}"
                )
            constant = ROUND_CONSTANTS[index]
        elif sew == 32:
            if not 0 <= index < len(RC32_TABLE):
                raise IllegalInstructionError(
                    f"viota 32-bit round-constant index out of range: {index}"
                )
            constant = RC32_TABLE[index]
        else:
            raise IllegalInstructionError(
                f"viota.vx requires SEW of 32 or 64, have {sew}"
            )
        for p in range(passes):
            base_index = p * per_reg
            count = min(per_reg, self.vl - base_index)
            local_sn = count // 5
            src = self.regfile.read_elements(vs2 + p, sew)
            if vm == 1 and 5 * local_sn == per_reg:
                dst = src[:]
                for slot in range(0, count, 5):
                    dst[slot] ^= constant
            else:
                dst = self.regfile.read_elements(vd + p, sew)
                if vm == 1:
                    for i in range(local_sn):
                        slot = 5 * i
                        dst[slot] = src[slot] ^ constant
                        dst[slot + 1:slot + 5] = src[slot + 1:slot + 5]
                else:
                    for i in range(local_sn):
                        slot = 5 * i
                        for j in range(5):
                            if self._active(vm, base_index + slot + j):
                                value = src[slot + j]
                                if j == 0:
                                    value ^= constant
                                dst[slot + j] = value
            self.regfile.write_elements(vd + p, sew, dst)
        return self.cycle_model.vector_arith(passes)

    # -- memory (VecLSU) ------------------------------------------------------------------------------

    def _memory_addresses(self, spec, ops, scalar_value) -> List[int]:
        base = scalar_value(ops["rs1"]) & 0xFFFFFFFF
        width_bytes = spec.extra["width"] // 8
        mop = spec.extra["mop"]
        if mop == "unit":
            return [base + i * width_bytes for i in range(self.vl)]
        if mop == "strided":
            stride = scalar_value(ops["rs2"]) & 0xFFFFFFFF
            return [base + i * stride for i in range(self.vl)]
        if mop == "indexed":
            vs2 = ops["vs2"]
            index_width = spec.extra["width"]
            return [
                base + self.regfile.get_group_element(vs2, i, index_width)
                for i in range(self.vl)
            ]
        raise IllegalInstructionError(f"unknown addressing mode {mop!r}")

    def _exec_vload(self, spec, ops, scalar_value) -> int:
        vd, vm = ops["vd"], ops["vm"]
        mop = spec.extra["mop"]
        # Indexed loads transfer SEW-wide data; unit/strided use the encoded
        # memory element width for both memory and register elements (EEW).
        data_width = self.sew if mop == "indexed" else spec.extra["width"]
        addresses = self._memory_addresses(spec, ops, scalar_value)
        for i, address in enumerate(addresses):
            if not self._active(vm, i):
                continue
            value = self.memory.load(address, data_width)
            per_reg = self.regfile.elements_per_register(data_width)
            reg, slot = divmod(i, per_reg)
            self.regfile.set_element(vd + reg, slot, data_width, value)
        passes = math.ceil(self.vl / self.regfile.elements_per_register(
            data_width)) if self.vl else 1
        return self.cycle_model.vector_memory(passes)

    def _exec_vstore(self, spec, ops, scalar_value) -> int:
        vs3, vm = ops["vd"], ops["vm"]  # store data register reuses vd field
        mop = spec.extra["mop"]
        data_width = self.sew if mop == "indexed" else spec.extra["width"]
        addresses = self._memory_addresses(spec, ops, scalar_value)
        for i, address in enumerate(addresses):
            if not self._active(vm, i):
                continue
            per_reg = self.regfile.elements_per_register(data_width)
            reg, slot = divmod(i, per_reg)
            value = self.regfile.get_element(vs3 + reg, slot, data_width)
            self.memory.store(address, data_width, value)
        passes = math.ceil(self.vl / self.regfile.elements_per_register(
            data_width)) if self.vl else 1
        return self.cycle_model.vector_memory(passes)
