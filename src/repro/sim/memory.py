"""Data memory of the SIMD processor (paper Fig. 3, "Data Mem").

A flat little-endian byte-addressed memory.  The processor uses a Harvard
organisation: instructions live in a separate program memory (the assembled
:class:`~repro.assembler.program.Program`), data lives here.
"""

from __future__ import annotations

from .exceptions import MemoryAccessError

_WIDTH_BYTES = {8: 1, 16: 2, 32: 4, 64: 8}


class DataMemory:
    """Byte-addressable little-endian RAM with bounds checking."""

    def __init__(self, size: int = 1 << 20) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.size = size
        self._bytes = bytearray(size)

    def _check(self, address: int, nbytes: int) -> None:
        if address < 0 or address + nbytes > self.size:
            raise MemoryAccessError(
                f"access of {nbytes} byte(s) at {address:#x} outside "
                f"memory of size {self.size:#x}"
            )

    # -- typed accessors -------------------------------------------------------

    def load(self, address: int, width: int, signed: bool = False) -> int:
        """Load a ``width``-bit value (8/16/32/64)."""
        nbytes = _WIDTH_BYTES.get(width)
        if nbytes is None:
            raise ValueError(f"unsupported access width: {width}")
        self._check(address, nbytes)
        value = int.from_bytes(self._bytes[address : address + nbytes],
                               "little")
        if signed and value >= 1 << (width - 1):
            value -= 1 << width
        return value

    def store(self, address: int, width: int, value: int) -> None:
        """Store the low ``width`` bits of ``value``."""
        nbytes = _WIDTH_BYTES.get(width)
        if nbytes is None:
            raise ValueError(f"unsupported access width: {width}")
        self._check(address, nbytes)
        self._bytes[address : address + nbytes] = (
            value & ((1 << width) - 1)
        ).to_bytes(nbytes, "little")

    # -- bulk accessors ----------------------------------------------------------

    def load_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes."""
        self._check(address, length)
        return bytes(self._bytes[address : address + length])

    def store_bytes(self, address: int, data: bytes) -> None:
        """Write raw bytes."""
        self._check(address, len(data))
        self._bytes[address : address + len(data)] = data

    def clear(self) -> None:
        """Zero the whole memory."""
        self._bytes = bytearray(self.size)
