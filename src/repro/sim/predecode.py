"""Predecoded program representation: decode once, execute many times.

The seed interpreter re-ran ``ISA.find`` (a linear search) and
``decode_operands`` (a dict build) on every fetch.  :func:`predecode`
instead walks an assembled :class:`~repro.assembler.program.Program` once
and binds every instruction word to a :class:`DecodedInstruction` whose
``execute`` closure already routes to the right unit — scalar core,
vector unit, ``vsetvli`` or CSR — with operands resolved.  Entries live
in a dense array indexed by ``(pc - base_address) >> 2``, so the fetch in
the hot loop is a single list index.

Faults are preserved exactly: a word the ISA cannot decode (or a unit
cannot execute) gets an executor that raises the same
:class:`~repro.sim.exceptions.IllegalInstructionError` the per-step
decoder would have raised — but only when the pc actually reaches it,
matching the lazy per-step behaviour that the fault-injection tests rely
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from ..assembler.program import Program
from ..isa import decode_operands
from ..isa.spec import InstructionSpec
from .exceptions import IllegalInstructionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .processor import SIMDProcessor

#: An executor returns ``(cycles, next_pc)``; ``next_pc`` is None for
#: sequential fall-through (the caller advances pc by 4).
Executor = Callable[[], Tuple[int, Optional[int]]]


@dataclass
class DecodedInstruction:
    """One instruction word, decoded and bound to its execution unit."""

    pc: int
    word: int
    mnemonic: str
    spec: Optional[InstructionSpec]
    execute: Executor


@dataclass
class PredecodedProgram:
    """A program with every word decoded into a dense executor array."""

    program: Program
    base_address: int
    words: Tuple[int, ...]
    entries: List[DecodedInstruction]

    def matches(self, program: Program) -> bool:
        """Is this predecode still valid for ``program``?

        Identity alone is not enough: the fault-injection tests mutate
        instruction words in place, so the word snapshot (and base
        address) must still agree.
        """
        return (
            program is self.program
            and program.base_address == self.base_address
            and len(program.instructions) == len(self.words)
            and all(inst.word == word for inst, word
                    in zip(program.instructions, self.words))
        )

    def entry_at(self, pc: int) -> Optional[DecodedInstruction]:
        """The entry at ``pc``, or None for a fetch outside the program."""
        offset = pc - self.base_address
        if offset & 3 or not 0 <= (index := offset >> 2) < len(self.entries):
            return None
        return self.entries[index]


def _illegal_executor(message: str) -> Executor:
    def run() -> Tuple[int, Optional[int]]:
        raise IllegalInstructionError(message)

    return run


def predecode(processor: "SIMDProcessor", program: Program
              ) -> PredecodedProgram:
    """Decode every word of ``program`` against ``processor``'s ISA.

    The returned executors capture the processor's scalar core, vector
    unit and CSR/vsetvli helpers; they stay valid as long as the
    processor keeps those objects (resets are done in place).
    """
    isa = processor._isa
    scalar = processor.scalar
    vector = processor.vector
    read_register = scalar.read_register

    entries: List[DecodedInstruction] = []
    for inst in program.instructions:
        pc, word = inst.address, inst.word
        try:
            spec = isa.find(word)
        except LookupError as exc:
            entries.append(DecodedInstruction(
                pc, word, "<illegal>", None, _illegal_executor(str(exc))
            ))
            continue
        ops = decode_operands(word, spec)

        if spec.mnemonic == "vsetvli":
            def run_vsetvli(ops=ops) -> Tuple[int, Optional[int]]:
                return processor._execute_vsetvli(ops), None

            execute: Executor = run_vsetvli
        elif spec.extension == "zicsr":
            def run_csr(spec=spec, ops=ops) -> Tuple[int, Optional[int]]:
                return processor._execute_csr(spec, ops), None

            execute = run_csr
        elif spec.extension in ("rvv", "custom"):
            execute = vector.compile_executor(spec, ops, read_register)
        else:
            execute = scalar.compile_executor(spec, ops, pc)

        entries.append(DecodedInstruction(pc, word, spec.mnemonic, spec,
                                          execute))

    return PredecodedProgram(
        program=program,
        base_address=program.base_address,
        words=tuple(inst.word for inst in program.instructions),
        entries=entries,
    )
