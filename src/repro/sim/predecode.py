"""Predecoded program representation: decode once, execute many times.

The seed interpreter re-ran ``ISA.find`` (a linear search) and
``decode_operands`` (a dict build) on every fetch.  :func:`predecode`
instead walks an assembled :class:`~repro.assembler.program.Program` once
and binds every instruction word to a :class:`DecodedInstruction` whose
``execute`` closure already routes to the right unit — scalar core,
vector unit, ``vsetvli`` or CSR — with operands resolved.  Entries live
in a dense array indexed by ``(pc - base_address) >> 2``, so the fetch in
the hot loop is a single list index.

On top of the per-instruction entries, :func:`build_superblocks` stitches
straight-line runs (no branch targets inside, ending at the first control
transfer) into :class:`FusedBlock` callables: one dispatch executes the
whole run, the cycle/instruction/mnemonic counters are updated once per
block instead of once per instruction, and per-record trace hooks only
fire when tracing is enabled.  The branch-resolved 24-round loop body of
each Keccak program collapses into a handful of fused superblocks.

Faults are preserved exactly: a word the ISA cannot decode (or a unit
cannot execute) gets an executor that raises the same
:class:`~repro.sim.exceptions.IllegalInstructionError` the per-step
decoder would have raised — but only when the pc actually reaches it,
matching the lazy per-step behaviour that the fault-injection tests rely
on.  A fused block that faults mid-run first accounts the instructions
that did retire, so the visible statistics at the fault are identical to
per-instruction execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..assembler.program import Program
from ..isa import decode_operands
from ..isa.spec import InstructionSpec
from ..observability import metrics as _metrics
from .exceptions import IllegalInstructionError, ProcessorHalted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .processor import SIMDProcessor
    from .trace import ExecutionStats

#: An executor returns ``(cycles, next_pc)``; ``next_pc`` is None for
#: sequential fall-through (the caller advances pc by 4).
Executor = Callable[[], Tuple[int, Optional[int]]]

# Superblock occupancy metrics, recorded once per build (coarse boundary
# — see the arming rule in repro.observability.metrics).
_BLOCK_LEN = _metrics.registry().histogram(
    "sim_superblock_length", "Instructions per fused superblock",
    ("geometry",), buckets=_metrics.COUNT_BUCKETS)
_FUSED_FRACTION = _metrics.registry().gauge(
    "sim_superblock_fused_fraction",
    "Fraction of program entries covered by fused blocks",
    ("geometry",))


@dataclass
class DecodedInstruction:
    """One instruction word, decoded and bound to its execution unit."""

    pc: int
    word: int
    mnemonic: str
    spec: Optional[InstructionSpec]
    execute: Executor


@dataclass
class PredecodedProgram:
    """A program with every word decoded into a dense executor array."""

    program: Program
    base_address: int
    words: Tuple[int, ...]
    entries: List[DecodedInstruction]
    #: Lazily built fused superblocks (see :func:`build_superblocks`).
    #: Lives on the predecode so the existing word-snapshot cache check
    #: invalidates both together: a mutated word re-decodes the program,
    #: which drops the stale blocks with it.
    superblocks: Optional["Superblocks"] = field(default=None, repr=False)
    #: Lazily computed code-generation fingerprint (see
    #: :mod:`repro.sim.codegen`); rides on the predecode for the same
    #: invalidation-by-word-snapshot reason as ``superblocks``.
    codegen_fingerprint: Optional[str] = field(default=None, repr=False)

    def matches(self, program: Program) -> bool:
        """Is this predecode still valid for ``program``?

        Identity alone is not enough: the fault-injection tests mutate
        instruction words in place, so the word snapshot (and base
        address) must still agree.
        """
        return (
            program is self.program
            and program.base_address == self.base_address
            and len(program.instructions) == len(self.words)
            and all(inst.word == word for inst, word
                    in zip(program.instructions, self.words))
        )

    def entry_at(self, pc: int) -> Optional[DecodedInstruction]:
        """The entry at ``pc``, or None for a fetch outside the program."""
        offset = pc - self.base_address
        if offset & 3 or not 0 <= (index := offset >> 2) < len(self.entries):
            return None
        return self.entries[index]


def _illegal_executor(message: str) -> Executor:
    def run() -> Tuple[int, Optional[int]]:
        raise IllegalInstructionError(message)

    return run


def predecode(processor: "SIMDProcessor", program: Program
              ) -> PredecodedProgram:
    """Decode every word of ``program`` against ``processor``'s ISA.

    The returned executors capture the processor's scalar core, vector
    unit and CSR/vsetvli helpers; they stay valid as long as the
    processor keeps those objects (resets are done in place).
    """
    isa = processor._isa
    scalar = processor.scalar
    vector = processor.vector
    read_register = scalar.read_register

    entries: List[DecodedInstruction] = []
    for inst in program.instructions:
        pc, word = inst.address, inst.word
        try:
            spec = isa.find(word)
        except LookupError as exc:
            entries.append(DecodedInstruction(
                pc, word, "<illegal>", None, _illegal_executor(str(exc))
            ))
            continue
        ops = decode_operands(word, spec)

        if spec.mnemonic == "vsetvli":
            def run_vsetvli(ops=ops) -> Tuple[int, Optional[int]]:
                return processor._execute_vsetvli(ops), None

            execute: Executor = run_vsetvli
        elif spec.extension == "zicsr":
            def run_csr(spec=spec, ops=ops) -> Tuple[int, Optional[int]]:
                return processor._execute_csr(spec, ops), None

            execute = run_csr
        elif spec.extension in ("rvv", "custom"):
            execute = vector.compile_executor(spec, ops, read_register)
        else:
            execute = scalar.compile_executor(spec, ops, pc)

        entries.append(DecodedInstruction(pc, word, spec.mnemonic, spec,
                                          execute))

    return PredecodedProgram(
        program=program,
        base_address=program.base_address,
        words=tuple(inst.word for inst in program.instructions),
        entries=entries,
    )


# -- superblock fusion ------------------------------------------------------------

_BRANCH_MNEMONICS = frozenset(
    {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
)
#: Instructions that end a superblock.  Control transfers (and halts) can
#: redirect the pc; CSR reads observe the live cycle/instret counters, so
#: they must execute with fully flushed statistics; undecodable words
#: always raise.  Everything else falls straight through and can be fused.
_TERMINATOR_MNEMONICS = _BRANCH_MNEMONICS | {"jal", "jalr", "ecall", "ebreak"}


def _is_terminator(entry: DecodedInstruction) -> bool:
    spec = entry.spec
    if spec is None:
        return True
    if spec.extension == "zicsr":
        return True
    return spec.mnemonic in _TERMINATOR_MNEMONICS


def _static_branch_target(entry: DecodedInstruction) -> Optional[int]:
    """The pc a branch/jal can transfer to (None for other instructions)."""
    spec = entry.spec
    if spec is None:
        return None
    if spec.mnemonic in _BRANCH_MNEMONICS or spec.mnemonic == "jal":
        ops = decode_operands(entry.word, spec)
        return (entry.pc + ops["offset"]) & 0xFFFFFFFF
    return None


class FusedBlock:
    """A straight-line instruction run executed with a single dispatch.

    The untraced :meth:`run` calls every interior executor back to back,
    accumulating cycles locally, and flushes the aggregate counters
    (cycles, instructions, per-mnemonic counts/cycles) once at the end of
    the block — the per-instruction ``stats.record`` disappears from the
    hot loop.  The traced :meth:`run_traced` keeps the per-record hooks so
    traces stay bit-identical to per-instruction execution.

    If an interior executor raises, the retired prefix is accounted first
    (and the scalar pc is pointed at the faulting instruction), so the
    statistics visible to the handler match per-instruction execution
    exactly.
    """

    __slots__ = (
        "start_pc", "length", "_processor", "_interior", "_pairs",
        "_mnemonics", "_distinct", "_counts", "_terminator", "_term_pc",
        "_fallthrough_pc", "_halt_cycles",
    )

    def __init__(self, processor: "SIMDProcessor",
                 entries: List[DecodedInstruction],
                 has_terminator: bool) -> None:
        self._processor = processor
        self.start_pc = entries[0].pc
        self.length = len(entries)
        interior = entries[:-1] if has_terminator else entries
        self._interior = tuple(interior)
        self._mnemonics = tuple(e.mnemonic for e in interior)
        self._distinct = tuple(dict.fromkeys(self._mnemonics))
        slot_of = {m: i for i, m in enumerate(self._distinct)}
        self._pairs = tuple(
            (e.execute, slot_of[e.mnemonic]) for e in interior
        )
        self._counts = dict(Counter(self._mnemonics))
        self._terminator = entries[-1] if has_terminator else None
        self._term_pc = entries[-1].pc
        self._fallthrough_pc = entries[-1].pc + 4
        self._halt_cycles = processor.cycle_model.scalar_alu

    def _flush(self, stats: "ExecutionStats", retired: int, cycles: int,
               sums: List[int]) -> None:
        """Account ``retired`` interior instructions (possibly a prefix)."""
        stats.cycles += cycles
        stats.instructions += retired
        mnemonic_cycles = stats.mnemonic_cycles
        for mnemonic, total in zip(self._distinct, sums):
            if total:
                mnemonic_cycles[mnemonic] += total
        if retired == len(self._pairs):
            stats.mnemonic_counts.update(self._counts)
        else:
            stats.mnemonic_counts.update(self._mnemonics[:retired])

    def run(self, stats: "ExecutionStats") -> int:
        """Execute the block untraced; returns the next pc."""
        cycles = 0
        sums = [0] * len(self._distinct)
        retired = 0
        try:
            for execute, slot in self._pairs:
                c, _ = execute()
                cycles += c
                sums[slot] += c
                retired += 1
        except BaseException:
            self._flush(stats, retired, cycles, sums)
            self._processor.scalar.pc = self.start_pc + 4 * retired
            raise
        self._flush(stats, retired, cycles, sums)
        return self._run_terminator(stats)

    def run_traced(self, stats: "ExecutionStats") -> int:
        """Execute the block with per-instruction trace records."""
        pc = self.start_pc
        record = stats.record
        try:
            for entry in self._interior:
                c, _ = entry.execute()
                record(pc, entry.word, entry.mnemonic, c)
                pc += 4
        except BaseException:
            self._processor.scalar.pc = pc
            raise
        return self._run_terminator(stats)

    def _run_terminator(self, stats: "ExecutionStats") -> int:
        entry = self._terminator
        if entry is None:
            return self._fallthrough_pc
        try:
            cycles, next_pc = entry.execute()
        except ProcessorHalted:
            self._processor.halted = True
            cycles, next_pc = self._halt_cycles, None
        except BaseException:
            self._processor.scalar.pc = self._term_pc
            raise
        stats.record(self._term_pc, entry.word, entry.mnemonic, cycles)
        return next_pc if next_pc is not None else self._fallthrough_pc


@dataclass
class Superblocks:
    """Fused blocks of one predecoded program, indexed like its entries.

    ``blocks[i]`` is the :class:`FusedBlock` starting at entry ``i``, or
    None when entry ``i`` is not a block leader (mid-block instructions,
    which only an indirect jump could reach — the processor falls back to
    per-instruction execution for such a pc).
    """

    blocks: List[Optional[FusedBlock]]
    max_block_len: int


def build_superblocks(processor: "SIMDProcessor",
                      pre: PredecodedProgram) -> Superblocks:
    """Partition a predecoded program into maximal straight-line blocks.

    Leaders are the program entry, every static branch/jal target, and
    every instruction after a terminator; a block runs from its leader to
    the first terminator (inclusive) or the next leader (exclusive).
    ``jalr`` targets are dynamic and need no leader: any pc that is not a
    block start simply executes per-instruction.
    """
    entries = pre.entries
    size = len(entries)
    base = pre.base_address
    leaders = {0}
    for i, entry in enumerate(entries):
        target = _static_branch_target(entry)
        if target is not None:
            offset = target - base
            if not offset & 3 and 0 <= offset >> 2 < size:
                leaders.add(offset >> 2)
        if _is_terminator(entry) and i + 1 < size:
            leaders.add(i + 1)

    blocks: List[Optional[FusedBlock]] = [None] * size
    max_len = 1
    fused_entries = 0
    for start in sorted(leaders):
        end = start
        has_terminator = False
        while end < size:
            if _is_terminator(entries[end]):
                has_terminator = True
                break
            if end + 1 in leaders or end + 1 == size:
                break
            end += 1
        block = FusedBlock(processor, entries[start:end + 1], has_terminator)
        blocks[start] = block
        max_len = max(max_len, block.length)
        fused_entries += block.length
    if _metrics.ARMED:
        geometry = f"{processor.elen}x{processor.elenum}"
        for block in blocks:
            if block is not None:
                _BLOCK_LEN.observe(block.length, geometry=geometry)
        _FUSED_FRACTION.set(fused_entries / size if size else 0.0,
                            geometry=geometry)
    return Superblocks(blocks=blocks, max_block_len=max_len)
