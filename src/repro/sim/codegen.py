"""Ahead-of-time code generation: compile a program to flat Python.

The paper's instruction streams are *data independent*: every branch of
the three Keccak programs compares scalar registers whose values are
fully determined by the program text (round counters, loop bounds set up
by ``li``), and every vector instruction executes under a geometry
(VL, SEW, LMUL) established by a ``vsetvli`` whose AVL is one of those
known scalars.  This module exploits that: it *symbolically executes* an
assembled program once at compile time — constant-propagating the scalar
register file, folding every ``vsetvli`` into a static geometry, and
resolving every branch — and emits the entire execution as one flat,
specialized Python function:

* packed VLEN-bit vector registers threaded through locals (``r0..r31``)
  instead of regfile attribute lookups;
* every immediate, ρ-rotation row, round constant and shift/mask plan
  folded into the source as literals (a ``viota`` becomes a single XOR
  with a precomputed broadcast constant);
* cycle/instruction/mnemonic accounting reduced to constant increments
  applied once at the end, bit-identical to the fused engine's batched
  ``stats`` flushes.

Compilation *bails out* (returns None, caller falls back to the fused
engine) on anything whose semantics the flat function could not
reproduce exactly: unknown scalar values (scalar loads, CSR reads),
masked vector operations, partial register-group tails, misaligned
groups, out-of-range operands — every case where the generic handlers
would either take a masked slow path or raise.  The fallback rule keeps
fault injection, tracing and instruction limits on the reference
engines (see :meth:`~repro.sim.processor.SIMDProcessor._run_compiled`).

Compiled kernels are cached twice:

* in-process, in a bounded :class:`~repro.sim.lru.LRU` keyed by the
  program fingerprint (word snapshot + architecture + cycle model);
* on disk, as generated source under a *versioned* directory
  (``$REPRO_CODEGEN_CACHE`` or ``~/.cache/repro-codegen/v<N>/``),
  written atomically, so forked pool workers warm-start from the
  parent's compile instead of recompiling per process.  A cache entry
  whose embedded fingerprint does not match its key is discarded and
  recompiled — a corrupted or stale file can cost a recompile, never a
  wrong result.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from collections import Counter
from typing import Dict, List, Optional, TYPE_CHECKING

from ..isa import decode_operands
from ..observability import metrics as _metrics
from ..isa.vector import decode_vtype
from ..keccak.constants import (
    NUM_ROUNDS,
    RHO_BY_ROW,
    RHO_OFFSETS,
    ROUND_CONSTANTS,
)
from ..keccak.state import KeccakState
from .lru import LRU
from .timing import TimingModel
from .scalar_core import (
    _ALU_IMM_OPS,
    _ALU_OPS,
    _BRANCHES,
    _DIV_OPS,
    _MASK32,
    _MUL_OPS,
    _SHIFT_IMM_OPS,
    _STORES,
)
from .vector_unit import RC32_TABLE, _sign_extend_to

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..assembler.program import Program
    from .processor import SIMDProcessor

#: Bump whenever the generated code or META layout changes: the on-disk
#: cache directory is versioned, so old entries are simply never seen.
#: v2: cache keys carry the TimingModel fingerprint (issue width, banks,
#: chaining, dispatch override), not just the base CycleModel fields — a
#: kernel compiled under one timing model bakes that model's cycle
#: increments into flat code and must never be served under another.
CODEGEN_VERSION = 2

#: Compiled kernels (or None for programs that cannot be compiled) kept
#: in this process, keyed by fingerprint.
_KERNEL_CACHE = LRU(64)

#: Unrolled instruction budget: symbolic execution giving up past this
#: point keeps compile time bounded for adversarial programs (a Keccak
#: permutation unrolls to ~2k instructions).
_MAX_UNROLL = 200_000

#: Observability counters (tests and the cold/warm CI check read these).
#: Always-on module totals; the labeled metrics mirror them when armed
#: (see repro.observability.metrics).
COMPILE_STATS = {
    "compiles": 0,
    "memory_hits": 0,
    "disk_hits": 0,
    "bailouts": 0,
}

_COMPILE_EVENTS = _metrics.registry().counter(
    "sim_codegen_total",
    "Compiled-kernel lookups by outcome "
    "(memory_hit/disk_hit/compile/bailout)", ("event",))
_COMPILE_SECONDS = _metrics.registry().histogram(
    "sim_codegen_compile_seconds",
    "Time to symbolically compile one program")

_MISS = object()

_BITWISE_OPS = {
    "vand": ("&", lambda a, b: a & b),
    "vor": ("|", lambda a, b: a | b),
    "vxor": ("^", lambda a, b: a ^ b),
}


class CompiledKernel:
    """One compiled program: the function plus its run preconditions."""

    __slots__ = ("fn", "meta", "source")

    def __init__(self, fn, meta: dict, source: str) -> None:
        self.fn = fn
        self.meta = meta
        self.source = source


class _Bail(Exception):
    """Raised internally when a program cannot be compiled exactly."""


# -- fingerprinting -------------------------------------------------------------


def program_fingerprint(processor: "SIMDProcessor",
                        program: "Program") -> str:
    """A stable key for (program words x architecture x timing model).

    Built on the same word snapshot the predecode cache validates
    against: any in-place mutation of the program re-fingerprints, so a
    compiled kernel can never be applied to words it was not built from.
    The timing-model fingerprint covers every cost-determining knob
    (base cycle costs, issue width, register banks, chaining, dispatch
    override) — compiled kernels precompute their stats increments, so
    a kernel compiled under one timing model must never be served under
    another.
    """
    payload = (
        CODEGEN_VERSION,
        processor.elen,
        processor.elenum,
        processor.vlen_bits,
        processor.memory.size,
        TimingModel.of(processor.cycle_model).fingerprint(),
        program.base_address,
        tuple(inst.word for inst in program.instructions),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:40]


# -- on-disk cache --------------------------------------------------------------


def cache_dir() -> Optional[str]:
    """The versioned cache directory, or None when disk caching is off.

    ``REPRO_CODEGEN_CACHE`` overrides the default ``~/.cache`` location;
    setting it to an empty string disables the disk cache entirely.
    """
    root = os.environ.get("REPRO_CODEGEN_CACHE")
    if root is None:
        root = os.path.join(os.path.expanduser("~"), ".cache",
                            "repro-codegen")
    elif not root:
        return None
    return os.path.join(root, f"v{CODEGEN_VERSION}")


def _disk_path(fingerprint: str) -> Optional[str]:
    directory = cache_dir()
    if directory is None:
        return None
    return os.path.join(directory, f"{fingerprint}.py")


def _load_disk(fingerprint: str) -> Optional[str]:
    path = _disk_path(fingerprint)
    if path is None:
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return None


def _store_disk(fingerprint: str, source: str) -> None:
    """Atomic write: a crashed or concurrent writer never leaves a torn
    file for another process to read."""
    path = _disk_path(fingerprint)
    if path is None:
        return
    try:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(source)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass  # disk cache is best-effort; in-process cache still works


def _header(fingerprint: str) -> str:
    return f"# repro-codegen v{CODEGEN_VERSION} {fingerprint}"


def _kernel_from_source(source: str,
                        fingerprint: str) -> Optional[CompiledKernel]:
    """Compile cached source back into a kernel; None on *any* mismatch.

    The embedded header and META fingerprint must both match the
    requested key — a stale, truncated or corrupted cache entry fails
    here and triggers a clean recompile.
    """
    try:
        first_line = source.split("\n", 1)[0]
        if first_line != _header(fingerprint):
            return None
        namespace: dict = {}
        exec(compile(source, f"<repro-codegen {fingerprint[:12]}>", "exec"),
             namespace)
        meta = namespace["META"]
        if meta["version"] != CODEGEN_VERSION:
            return None
        if meta["fingerprint"] != fingerprint:
            return None
        for key in ("entry_pc", "final_pc", "instructions", "cycles"):
            if not isinstance(meta[key], int):
                return None
        if not isinstance(meta["sregs"], dict):
            return None
        fn = namespace["kernel"]
        if not callable(fn):
            return None
        return CompiledKernel(fn, meta, source)
    except Exception:
        return None


def clear_memory_cache() -> None:
    """Drop every in-process kernel (tests; forces disk/regenerate)."""
    _KERNEL_CACHE.clear()


# -- public entry points --------------------------------------------------------


def get_or_compile(processor: "SIMDProcessor", fingerprint: str,
                   program: "Program") -> Optional[CompiledKernel]:
    """The compiled kernel for ``program`` on ``processor``'s
    architecture, or None when the program cannot be compiled.

    Lookup order: in-process LRU, on-disk cache, fresh generation (which
    then populates both).  Negative results are cached in-process so an
    uncompilable program costs one symbolic-execution attempt, not one
    per run.
    """
    cached = _KERNEL_CACHE.get(fingerprint, _MISS)
    if cached is not _MISS:
        COMPILE_STATS["memory_hits"] += 1
        if _metrics.ARMED:
            _COMPILE_EVENTS.inc(event="memory_hit")
        return cached

    source = _load_disk(fingerprint)
    if source is not None:
        kernel = _kernel_from_source(source, fingerprint)
        if kernel is not None:
            COMPILE_STATS["disk_hits"] += 1
            if _metrics.ARMED:
                _COMPILE_EVENTS.inc(event="disk_hit")
            _KERNEL_CACHE.put(fingerprint, kernel)
            return kernel

    started = time.perf_counter() if _metrics.ARMED else 0.0
    generated = _generate(processor, program, fingerprint)
    if _metrics.ARMED:
        _COMPILE_SECONDS.observe(time.perf_counter() - started)
    if generated is None:
        COMPILE_STATS["bailouts"] += 1
        if _metrics.ARMED:
            _COMPILE_EVENTS.inc(event="bailout")
        _KERNEL_CACHE.put(fingerprint, None)
        return None
    kernel = _kernel_from_source(generated, fingerprint)
    if kernel is None:  # pragma: no cover - generator/loader mismatch
        _KERNEL_CACHE.put(fingerprint, None)
        return None
    COMPILE_STATS["compiles"] += 1
    if _metrics.ARMED:
        _COMPILE_EVENTS.inc(event="compile")
    _store_disk(fingerprint, generated)
    _KERNEL_CACHE.put(fingerprint, kernel)
    return kernel


def warm(processor: "SIMDProcessor") -> Optional[CompiledKernel]:
    """Compile the processor's loaded program without running it.

    ``parallel_exec`` drivers call this in the *parent* before starting
    the pool: the compile lands in the on-disk cache, and every forked
    worker's first run loads by fingerprint instead of recompiling.
    """
    program = processor.program
    if program is None:
        raise ValueError("no program loaded")
    fingerprint = program_fingerprint(processor, program)
    return get_or_compile(processor, fingerprint, program)


# -- code generation ------------------------------------------------------------


def _generate(processor: "SIMDProcessor", program: "Program",
              fingerprint: str) -> Optional[str]:
    """Symbolically execute ``program`` and render the kernel source.

    Returns None when any instruction (or any reachable architectural
    situation) cannot be reproduced exactly by flat code — the caller
    falls back to the fused engine, which *is* exact.
    """
    try:
        gen = _Generator(processor, program)
        gen.run()
        return gen.render(fingerprint)
    except _Bail:
        return None


class _Generator:
    """Symbolic executor + source emitter for one program."""

    def __init__(self, processor: "SIMDProcessor",
                 program: "Program") -> None:
        self.isa = processor._isa
        self.cm = processor.cycle_model
        self.vlen = processor.vlen_bits
        self.mem_size = processor.memory.size
        self.base = program.base_address
        self.decoded: List[Optional[tuple]] = []
        for inst in program.instructions:
            try:
                spec = self.isa.find(inst.word)
            except LookupError:
                self.decoded.append(None)
                continue
            self.decoded.append((spec, decode_operands(inst.word, spec)))

        # Symbolic scalar state: every value is a known constant, or we
        # bail.  Registers read before the program writes them become
        # run-time preconditions (they must still hold their reset value
        # of zero, or the kernel does not apply).
        self.sregs = [0] * 32
        self.written: set = set()
        self.pre_reads: Dict[int, int] = {}
        # Vector configuration: starts at the architectural reset values;
        # any use before the first vsetvli becomes a precondition too.
        self.vl, self.sew, self.lmul = 0, 64, 1
        self.config_virgin = True
        self.initial_config_used = False
        self.config_touched = False

        self.lines: List[str] = []
        self.cycles = 0
        self.instructions = 0
        self.counts: Counter = Counter()
        self.cyc: Counter = Counter()
        self.uses_memory = False
        self.final_pc = 0

    # -- symbolic scalar helpers ------------------------------------------------

    def _sread(self, reg: int) -> int:
        if reg == 0:
            return 0
        if reg not in self.written and reg not in self.pre_reads:
            self.pre_reads[reg] = 0
        return self.sregs[reg]

    def _swrite(self, reg: int, value: int) -> None:
        if reg != 0:
            self.sregs[reg] = value & _MASK32
            self.written.add(reg)

    def _account(self, mnemonic: str, cost: int) -> None:
        self.cycles += cost
        self.instructions += 1
        self.counts[mnemonic] += 1
        self.cyc[mnemonic] += cost

    def _emit(self, line: str) -> None:
        self.lines.append(line)

    # -- main walk ---------------------------------------------------------------

    def run(self) -> None:
        pc = self.base
        size = len(self.decoded)
        for _ in range(_MAX_UNROLL):
            offset = pc - self.base
            index = offset >> 2
            if offset & 3 or not 0 <= index < size:
                raise _Bail  # would fault: keep the exact fault on fused
            entry = self.decoded[index]
            if entry is None:
                raise _Bail  # undecodable word: fault on fused
            spec, ops = entry
            mnemonic = spec.mnemonic
            if mnemonic == "vsetvli":
                self._do_vsetvli(ops)
            elif spec.extension == "zicsr":
                raise _Bail  # CSRs observe live counters: fused only
            elif spec.extension in ("rvv", "custom"):
                self._do_vector(spec, ops)
            elif mnemonic in ("ecall", "ebreak"):
                self._account(mnemonic, self.cm.scalar_alu)
                self.final_pc = (pc + 4) & _MASK32
                return
            else:
                next_pc = self._do_scalar(spec, ops, pc)
                if next_pc is not None:
                    pc = next_pc
                    continue
            pc = (pc + 4) & _MASK32
        raise _Bail  # did not halt within the unroll budget

    # -- scalar instructions -----------------------------------------------------

    def _do_scalar(self, spec, ops, pc: int) -> Optional[int]:
        """Execute one scalar instruction symbolically.

        Returns the branch/jump target, or None for fall-through.
        """
        m = spec.mnemonic
        cm = self.cm
        if m in _ALU_OPS:
            value = _ALU_OPS[m](self._sread(ops["rs1"]),
                                self._sread(ops["rs2"]))
            self._swrite(ops["rd"], value)
            self._account(m, cm.scalar_alu)
            return None
        if m in _ALU_IMM_OPS:
            value = _ALU_IMM_OPS[m](self._sread(ops["rs1"]), ops["imm"])
            self._swrite(ops["rd"], value)
            self._account(m, cm.scalar_alu)
            return None
        if m in _SHIFT_IMM_OPS:
            value = _SHIFT_IMM_OPS[m](self._sread(ops["rs1"]), ops["shamt"])
            self._swrite(ops["rd"], value)
            self._account(m, cm.scalar_alu)
            return None
        if m in _MUL_OPS:
            value = _MUL_OPS[m](self._sread(ops["rs1"]),
                                self._sread(ops["rs2"]))
            self._swrite(ops["rd"], value)
            self._account(m, cm.scalar_mul)
            return None
        if m in _DIV_OPS:
            value = _DIV_OPS[m](self._sread(ops["rs1"]),
                                self._sread(ops["rs2"]))
            self._swrite(ops["rd"], value)
            self._account(m, cm.scalar_div)
            return None
        if m in _STORES:
            width = _STORES[m]
            address = (self._sread(ops["rs1"]) + ops["imm"]) & _MASK32
            if address + width // 8 > self.mem_size:
                raise _Bail  # would fault at run time
            value = self._sread(ops["rs2"]) & ((1 << width) - 1)
            self.uses_memory = True
            self._emit(f"_st({address}, {width}, {value})")
            self._account(m, cm.scalar_store)
            return None
        if m in _BRANCHES:
            taken = _BRANCHES[m](self._sread(ops["rs1"]),
                                 self._sread(ops["rs2"]))
            if taken:
                self._account(m, cm.branch_taken)
                return (pc + ops["offset"]) & _MASK32
            self._account(m, cm.branch_not_taken)
            return None
        if m == "lui":
            self._swrite(ops["rd"], (ops["imm"] << 12) & _MASK32)
            self._account(m, cm.scalar_alu)
            return None
        if m == "auipc":
            self._swrite(ops["rd"], (pc + (ops["imm"] << 12)) & _MASK32)
            self._account(m, cm.scalar_alu)
            return None
        if m == "jal":
            self._swrite(ops["rd"], (pc + 4) & _MASK32)
            self._account(m, cm.jump)
            return (pc + ops["offset"]) & _MASK32
        if m == "jalr":
            target = ((self._sread(ops["rs1"]) + ops["imm"]) & ~1) & _MASK32
            self._swrite(ops["rd"], (pc + 4) & _MASK32)
            self._account(m, cm.jump)
            return target
        if m == "fence":
            self._account(m, cm.scalar_alu)
            return None
        raise _Bail  # scalar loads and everything else: fused only

    # -- vsetvli -----------------------------------------------------------------

    def _do_vsetvli(self, ops) -> None:
        rd, rs1 = ops["rd"], ops["rs1"]
        if rs1 != 0:
            avl = self._sread(rs1)
        elif rd != 0:
            avl = 1 << 31
        else:
            if self.config_virgin:
                self.initial_config_used = True
            avl = self.vl
        try:
            parts = decode_vtype(ops["vtype"])
        except ValueError:
            raise _Bail  # reserved vtype faults: keep it on fused
        sew, lmul = parts["sew"], parts["lmul"]
        if sew <= 0 or self.vlen % sew:
            raise _Bail
        self.sew, self.lmul = sew, lmul
        self.vl = min(avl, (self.vlen // sew) * lmul)
        self.config_virgin = False
        self.config_touched = True
        self._swrite(rd, self.vl)
        self._account("vsetvli", self.cm.vsetvli)

    # -- vector geometry ---------------------------------------------------------

    def _geometry(self, lanes_of_five: bool):
        """(per_reg, passes) under the whole-register preconditions the
        packed emitters need; bails to the fused engine otherwise."""
        if self.config_virgin:
            self.initial_config_used = True
        vl, sew = self.vl, self.sew
        if vl <= 0 or sew <= 0 or self.vlen % sew:
            raise _Bail
        per_reg = self.vlen // sew
        if vl % per_reg or (lanes_of_five and per_reg % 5):
            raise _Bail
        return per_reg, vl // per_reg

    def _groups_ok(self, passes: int, *bases: int) -> None:
        for b in bases:
            if b + passes > 32 or (self.lmul > 1 and b % self.lmul):
                raise _Bail

    def _emask(self) -> int:
        return (1 << self.sew) - 1

    def _full_mask(self) -> int:
        return (1 << self.vlen) - 1

    def _lane_mask(self, per_reg: int, lanes, bits: Optional[int] = None
                   ) -> int:
        """Mask selecting ``bits`` low bits of every element whose lane
        index (slot mod 5) is in ``lanes``."""
        sew = self.sew
        if bits is None:
            bits = sew
        emask = (1 << bits) - 1
        mask = 0
        for slot in range(per_reg):
            if slot % 5 in lanes:
                mask |= emask << (slot * sew)
        return mask

    def _all_mask(self, per_reg: int, bits: int) -> int:
        sew = self.sew
        emask = (1 << bits) - 1
        mask = 0
        for slot in range(per_reg):
            mask |= emask << (slot * sew)
        return mask

    def _rho_rows(self, simm: int, passes: int) -> List[int]:
        if simm == -1:
            return [p % 5 for p in range(passes)]
        if 0 <= simm <= 4:
            if self.lmul != 1 and passes > 1:
                raise _Bail  # generic raises here: keep the fault exact
            return [simm] * passes
        raise _Bail  # invalid immediate faults on the generic handler

    # -- vector instructions -----------------------------------------------------

    def _do_vector(self, spec, ops) -> None:
        m = spec.mnemonic
        if ops.get("vm", 1) != 1:
            raise _Bail  # masked execution: generic handlers only
        stem = m.split(".")[0]
        if stem in _BITWISE_OPS:
            self._vec_bitwise(spec, ops, stem)
        elif m in ("vslidedownm.vi", "vslideupm.vi"):
            self._vec_slide(ops, down=(m == "vslidedownm.vi"))
        elif m == "vrotup.vi":
            self._vec_rotup(ops)
        elif m == "v64rho.vi":
            self._vec_v64rho(ops)
        elif m == "vchi.vi":
            self._vec_vchi(ops)
        elif m == "viota.vx":
            self._vec_viota(ops)
        elif m in ("vpi.vi", "vrhopi.vi"):
            self._vec_column_write(ops, with_rho=(m == "vrhopi.vi"))
        elif m in ("v32lrho.vv", "v32hrho.vv"):
            self._vec_v32pair(ops, keep_high=(m == "v32hrho.vv"),
                              is_rho=True, mnemonic=m)
        elif m in ("v32lrotup.vv", "v32hrotup.vv"):
            self._vec_v32pair(ops, keep_high=(m == "v32hrotup.vv"),
                              is_rho=False, mnemonic=m)
        elif spec.extra.get("mop") in ("unit", "strided"):
            if m.startswith("vl"):
                self._vec_load(spec, ops)
            else:
                self._vec_store(spec, ops)
        else:
            raise _Bail  # anything else executes on the fused engine

    def _vec_bitwise(self, spec, ops, stem: str) -> None:
        symbol, _ = _BITWISE_OPS[stem]
        per_reg, passes = self._geometry(False)
        vd, vs2 = ops["vd"], ops["vs2"]
        if spec.fmt == "v_vv":
            vs1 = ops["vs1"]
            self._groups_ok(passes, vd, vs2, vs1)
            for p in range(passes):
                self._emit(f"r{vd + p} = r{vs2 + p} {symbol} r{vs1 + p}")
        else:
            self._groups_ok(passes, vd, vs2)
            sew = self.sew
            if spec.fmt == "v_vx":
                scalar = _sign_extend_to(self._sread(ops["rs1"]), 32, sew)
            else:  # v_vi
                imm = ops["imm"] & 0x1F
                if spec.extra.get("signed_imm", True):
                    scalar = _sign_extend_to(imm, 5, sew)
                else:
                    scalar = imm
            packed = 0
            for _ in range(per_reg):
                packed = (packed << sew) | scalar
            for p in range(passes):
                self._emit(
                    f"r{vd + p} = r{vs2 + p} {symbol} {hex(packed)}"
                )
        self._account(spec.mnemonic, self.cm.vector_arith(passes))

    def _vec_slide(self, ops, down: bool) -> None:
        per_reg, passes = self._geometry(True)
        vd, vs2 = ops["vd"], ops["vs2"]
        self._groups_ok(passes, vd, vs2)
        offset = ops["imm"] % 5
        sew = self.sew
        mnemonic = "vslidedownm.vi" if down else "vslideupm.vi"
        if offset == 0:
            for p in range(passes):
                self._emit(f"r{vd + p} = r{vs2 + p}")
            self._account(mnemonic, self.cm.vector_arith(passes))
            return
        # Destination lane j takes source lane (j +/- offset) mod 5; lanes
        # sharing a shift delta merge into one mask term.
        deltas: Dict[int, List[int]] = {}
        for j in range(5):
            src_lane = (j + offset) % 5 if down else (j - offset) % 5
            deltas.setdefault(src_lane - j, []).append(j)
        for p in range(passes):
            src = f"r{vs2 + p}"
            terms = []
            for delta, lanes in sorted(deltas.items()):
                mask = hex(self._lane_mask(per_reg, lanes))
                if delta > 0:
                    terms.append(f"(({src} >> {delta * sew}) & {mask})")
                elif delta < 0:
                    terms.append(f"(({src} << {-delta * sew}) & {mask})")
                else:
                    terms.append(f"({src} & {mask})")
            self._emit(f"r{vd + p} = " + " | ".join(terms))
        self._account(mnemonic, self.cm.vector_arith(passes))

    def _rotate_terms(self, src: str, amount: int, mask_bits: int,
                      lanes, per_reg: int) -> str:
        """Source text rotating each selected ``mask_bits``-wide element
        of ``src`` left by ``amount``, masked to those elements."""
        lane_set = lanes if lanes is not None else range(5)
        if amount % mask_bits == 0:
            keep = hex(self._lane_mask(per_reg, lane_set, mask_bits)) \
                if lanes is not None else \
                hex(self._all_mask(per_reg, mask_bits))
            return f"({src} & {keep})"
        amount %= mask_bits
        if lanes is not None:
            stay = self._lane_mask(per_reg, lane_set, mask_bits - amount)
            wrap = self._lane_mask(per_reg, lane_set, amount)
        else:
            stay = self._all_mask(per_reg, mask_bits - amount)
            wrap = self._all_mask(per_reg, amount)
        down = mask_bits - amount
        return (f"((({src} & {hex(stay)}) << {amount}) | "
                f"(({src} >> {down}) & {hex(wrap)}))")

    def _vec_rotup(self, ops) -> None:
        if self.sew != 64:
            raise _Bail  # generic raises for SEW != 64
        per_reg, passes = self._geometry(False)
        vd, vs2 = ops["vd"], ops["vs2"]
        self._groups_ok(passes, vd, vs2)
        amount = ops["imm"] % 64
        for p in range(passes):
            expr = self._rotate_terms(f"r{vs2 + p}", amount, 64, None,
                                      per_reg)
            self._emit(f"r{vd + p} = {expr}")
        self._account("vrotup.vi", self.cm.vector_arith(passes))

    def _vec_v64rho(self, ops) -> None:
        if self.sew != 64:
            raise _Bail
        per_reg, passes = self._geometry(True)
        vd, vs2 = ops["vd"], ops["vs2"]
        self._groups_ok(passes, vd, vs2)
        rows = self._rho_rows(ops["imm"], passes)
        for p, row in enumerate(rows):
            amounts = RHO_BY_ROW[row]
            by_amount: Dict[int, List[int]] = {}
            for lane in range(5):
                by_amount.setdefault(amounts[lane], []).append(lane)
            src = f"r{vs2 + p}"
            terms = [
                self._rotate_terms(src, amount, 64, lanes, per_reg)
                for amount, lanes in sorted(by_amount.items())
            ]
            self._emit(f"r{vd + p} = " + " | ".join(terms))
        self._account("v64rho.vi", self.cm.vector_arith(passes))

    def _vec_vchi(self, ops) -> None:
        if ops["imm"] != 0:
            raise _Bail
        per_reg, passes = self._geometry(True)
        vd, vs2 = ops["vd"], ops["vs2"]
        self._groups_ok(passes, vd, vs2)
        sew = self.sew

        def shuffle(k: int):
            near = wrap = 0
            emask = self._emask()
            for slot in range(per_reg):
                if slot % 5 + k < 5:
                    near |= emask << (slot * sew)
                else:
                    wrap |= emask << (slot * sew)
            return near, wrap

        near1, wrap1 = shuffle(1)
        near2, wrap2 = shuffle(2)
        full = hex(self._full_mask())
        for p in range(passes):
            src = f"r{vs2 + p}"
            self._emit(f"_a = (({src} >> {sew}) & {hex(near1)}) | "
                       f"(({src} << {4 * sew}) & {hex(wrap1)})")
            self._emit(f"_b = (({src} >> {2 * sew}) & {hex(near2)}) | "
                       f"(({src} << {3 * sew}) & {hex(wrap2)})")
            self._emit(f"r{vd + p} = {src} ^ ((_a ^ {full}) & _b)")
        self._account("vchi.vi", self.cm.vector_arith(passes))

    def _vec_viota(self, ops) -> None:
        per_reg, passes = self._geometry(True)
        vd, vs2 = ops["vd"], ops["vs2"]
        self._groups_ok(passes, vd, vs2)
        sew = self.sew
        if sew == 64:
            table = ROUND_CONSTANTS
        elif sew == 32:
            table = RC32_TABLE
        else:
            raise _Bail
        index = self._sread(ops["rs1"])
        if not 0 <= index < len(table):
            raise _Bail  # out-of-range index faults on the generic path
        spread = sum(1 << (5 * k * sew) for k in range(per_reg // 5))
        packed_rc = table[index] * spread
        for p in range(passes):
            self._emit(f"r{vd + p} = r{vs2 + p} ^ {hex(packed_rc)}")
        self._account("viota.vx", self.cm.vector_arith(passes))

    def _vec_column_write(self, ops, with_rho: bool) -> None:
        if with_rho and self.sew != 64:
            raise _Bail
        per_reg, passes = self._geometry(True)
        vd, vs2 = ops["vd"], ops["vs2"]
        if vd + 5 > 32:
            raise _Bail
        self._groups_ok(passes, vs2)
        overlap = vs2 < vd + 5 and vd < vs2 + passes
        if overlap and passes > 1:
            raise _Bail  # write-through re-read semantics: generic only
        rows = self._rho_rows(ops["imm"], passes)
        sew = self.sew
        mnemonic = "vrhopi.vi" if with_rho else "vpi.vi"
        full = self._full_mask()
        for p, row in enumerate(rows):
            amounts = RHO_BY_ROW[row]
            # Snapshot the source register: with a single overlapping
            # pass the plane updates below may write into it.
            self._emit(f"_t = r{vs2 + p}")
            clear = hex(full ^ self._lane_mask(per_reg, (row,)))
            for lane in range(5):
                plane = (2 * (lane - row)) % 5
                amount = amounts[lane] if with_rho else 0
                expr = self._rotate_terms("_t", amount, sew, (lane,),
                                          per_reg)
                delta = (row - lane) * sew
                if delta > 0:
                    expr = f"({expr} << {delta})"
                elif delta < 0:
                    expr = f"({expr} >> {-delta})"
                self._emit(
                    f"r{vd + plane} = (r{vd + plane} & {clear}) | {expr}"
                )
        self._account(mnemonic, self.cm.vector_pi(passes))

    def _vec_v32pair(self, ops, keep_high: bool, is_rho: bool,
                     mnemonic: str) -> None:
        if self.sew != 32:
            raise _Bail
        per_reg, passes = self._geometry(is_rho)
        vd, vs2, vs1 = ops["vd"], ops["vs2"], ops["vs1"]
        self._groups_ok(passes, vd, vs2, vs1)
        for p in range(passes):
            hi, lo = f"r{vs2 + p}", f"r{vs1 + p}"
            if is_rho:
                amounts = RHO_BY_ROW[p % 5]
                by_amount: Dict[int, List[int]] = {}
                for lane in range(5):
                    by_amount.setdefault(amounts[lane], []).append(lane)
                groups = [(a, lanes)
                          for a, lanes in sorted(by_amount.items())]
            else:
                groups = [(1, None)]  # uniform ROT by 1 over all elements
            terms = []
            for amount, lanes in groups:
                # A 64-bit rotation of hi||lo by `amount`: the kept half
                # is built from whole-register shifts of the packed
                # 32-bit halves (amount >= 32 swaps their roles).
                if amount >= 32:
                    a, first, second = amount - 32, lo, hi
                else:
                    a, first, second = amount, hi, lo
                if not keep_high:
                    first, second = second, first
                if lanes is None:
                    stay = self._all_mask(per_reg, 32 - a) if a else \
                        self._all_mask(per_reg, 32)
                    wrap = self._all_mask(per_reg, a)
                else:
                    stay = self._lane_mask(per_reg, lanes, 32 - a) if a \
                        else self._lane_mask(per_reg, lanes, 32)
                    wrap = self._lane_mask(per_reg, lanes, a)
                if a == 0:
                    terms.append(f"({first} & {hex(stay)})")
                else:
                    terms.append(
                        f"((({first} & {hex(stay)}) << {a}) | "
                        f"(({second} >> {32 - a}) & {hex(wrap)}))"
                    )
            self._emit(f"r{vd + p} = " + " | ".join(terms))
        self._account(mnemonic, self.cm.vector_arith(passes))

    # -- vector memory -----------------------------------------------------------

    def _vec_addresses(self, spec, ops) -> List[int]:
        base = self._sread(ops["rs1"]) & _MASK32
        width_bytes = spec.extra["width"] // 8
        if spec.extra["mop"] == "unit":
            stride = width_bytes
        else:
            stride = self._sread(ops["rs2"]) & _MASK32
        addresses = [base + i * stride for i in range(self.vl)]
        for address in addresses:
            if address < 0 or address + width_bytes > self.mem_size:
                raise _Bail  # out-of-bounds access faults on fused
        return addresses

    def _vec_mem_geometry(self, width: int):
        if self.config_virgin:
            self.initial_config_used = True
        if self.vlen % width:
            raise _Bail
        per_reg = self.vlen // width
        vl = self.vl
        passes = 1 if vl == 0 else -(-vl // per_reg)
        return per_reg, passes

    def _vec_load(self, spec, ops) -> None:
        width = spec.extra["width"]
        per_reg, passes = self._vec_mem_geometry(width)
        vd = ops["vd"]
        if vd + passes > 32:
            raise _Bail
        addresses = self._vec_addresses(spec, ops)
        self.uses_memory = True
        emask = (1 << width) - 1
        for p in range(passes):
            count = min(per_reg, self.vl - p * per_reg)
            if count <= 0:
                continue
            terms = []
            for i in range(count):
                address = addresses[p * per_reg + i]
                term = f"_ld({address}, {width})"
                if i:
                    term = f"({term} << {i * width})"
                terms.append(term)
            packed = " | ".join(terms)
            if count < per_reg:
                keep = ((1 << self.vlen) - 1) ^ ((1 << (count * width)) - 1)
                self._emit(
                    f"r{vd + p} = (r{vd + p} & {hex(keep)}) | ({packed})"
                )
            else:
                self._emit(f"r{vd + p} = {packed}")
        del emask
        self._account(spec.mnemonic, self.cm.vector_memory(passes))

    def _vec_store(self, spec, ops) -> None:
        width = spec.extra["width"]
        per_reg, passes = self._vec_mem_geometry(width)
        vs3 = ops["vd"]  # store data register reuses the vd field
        if vs3 + passes > 32:
            raise _Bail
        addresses = self._vec_addresses(spec, ops)
        self.uses_memory = True
        emask = hex((1 << width) - 1)
        for i, address in enumerate(addresses):
            p, slot = divmod(i, per_reg)
            if slot:
                value = f"(r{vs3 + p} >> {slot * width}) & {emask}"
            else:
                value = f"r{vs3 + p} & {emask}"
            self._emit(f"_st({address}, {width}, {value})")
        self._account(spec.mnemonic, self.cm.vector_memory(passes))

    # -- rendering ---------------------------------------------------------------

    def render(self, fingerprint: str) -> str:
        meta = {
            "version": CODEGEN_VERSION,
            "fingerprint": fingerprint,
            "entry_pc": self.base,
            "final_pc": self.final_pc,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "sregs": dict(sorted(self.pre_reads.items())),
            "vconfig": [0, 64, 1] if self.initial_config_used else None,
        }
        names = ", ".join(f"r{i}" for i in range(32))
        out: List[str] = [
            _header(fingerprint),
            '"""Generated by repro.sim.codegen - do not edit."""',
            f"META = {meta!r}",
            "",
            "",
            "def kernel(proc):",
            "    _v = proc.vector",
            "    _regs = _v.regfile._regs",
            f"    {names} = _regs",
        ]
        if self.uses_memory:
            out.append("    _ld = proc.memory.load")
            out.append("    _st = proc.memory.store")
        out.extend(f"    {line}" for line in self.lines)
        out.append(f"    _regs[:] = ({names})")
        if self.written:
            out.append("    _s = proc.scalar._regs")
            for reg in sorted(self.written):
                out.append(f"    _s[{reg}] = {self.sregs[reg]}")
        if self.config_touched:
            out.append(f"    _v.vl = {self.vl}")
            out.append(f"    _v.sew = {self.sew}")
            out.append(f"    _v.lmul = {self.lmul}")
        out.append(f"    proc.scalar.pc = {self.final_pc}")
        out.append("    proc.halted = True")
        out.append("    _stats = proc.stats")
        out.append(f"    _stats.cycles += {self.cycles}")
        out.append(f"    _stats.instructions += {self.instructions}")
        out.append(
            f"    _stats.mnemonic_counts.update({dict(self.counts)!r})"
        )
        out.append(
            f"    _stats.mnemonic_cycles.update({dict(self.cyc)!r})"
        )
        out.append("")
        return "\n".join(out)


# -- structure-of-arrays mega-batch kernels -------------------------------------
#
# The compiled engine above removes per-instruction dispatch but still
# executes one SN-sized state group per Python call, so a 1000-message
# batch pays ~170 engine invocations of interpreter overhead (reset,
# memory-image build, kernel call, read-back).  The SoA compiler removes
# *per-message* dispatch too: it emits a fully unrolled Keccak-p[1600]
# permutation over 25 packed giant-int *columns*, where column ``i``
# carries lane ``i`` of every message in the batch —
#
#     col[i] = sum(state_g.lanes[i] << (64 * g)  for g in 0..lanes-1)
#
# (the state-interleaved layout of the RVV lane-packing literature; see
# ``repro.keccak.interleave`` for the in-repo seed of the idiom).  Every
# theta/chi XOR then processes the whole batch in one Python bignum op,
# and a lane-local rotation becomes two shifts and two masks because the
# 64-bit fields are contiguous:
#
#     rot(col, r) = ((col & M[64-r]) << r) | ((col >> (64-r)) & M[r])
#
# with ``M[b]`` selecting the low ``b`` bits of every field.  The result
# is a *functional* fast path: digests only, no cycle model — the paper
# pins (2564/1892/3620 permutation cycles, 103/75/147 cycles/round) stay
# owned by the per-state engines.  Kernels are cached exactly like
# program kernels: same in-process LRU, same versioned on-disk cache
# (keyed by a distinct ``("soa", version, lanes, rounds)`` fingerprint),
# so pool parents pre-compile once and forked workers warm-start.

#: Messages per SoA kernel call (the lane budget) unless
#: ``REPRO_SOA_LANES`` overrides it.  64 lanes = 4096-bit columns:
#: big enough to amortize dispatch, small enough that Python bignum
#: ops stay cheap.
SOA_DEFAULT_LANES = 64

#: Always-on SoA counters, mirrored to labeled metrics when armed
#: (same discipline as COMPILE_STATS above).
SOA_STATS = {
    "compiles": 0,
    "memory_hits": 0,
    "disk_hits": 0,
    "kernel_calls": 0,
    "lanes_hashed": 0,
    "lanes_padded": 0,
}

_SOA_EVENTS = _metrics.registry().counter(
    "sim_soa_codegen_total",
    "SoA batch-kernel lookups by outcome (memory_hit/disk_hit/compile)",
    ("event",))
_SOA_COMPILE_SECONDS = _metrics.registry().histogram(
    "sim_soa_compile_seconds",
    "Time to generate one SoA batch kernel")
_SOA_CALLS = _metrics.registry().counter(
    "sim_soa_kernel_calls_total",
    "SoA batch-kernel invocations by lane bucket", ("lanes",))
_SOA_OCCUPANCY = _metrics.registry().histogram(
    "sim_soa_lane_occupancy",
    "Fraction of SoA kernel lanes carrying real states",
    buckets=(0.125, 0.25, 0.5, 0.75, 0.875, 1.0))


def soa_width() -> int:
    """The configured SoA lane budget (``REPRO_SOA_LANES`` or default)."""
    raw = os.environ.get("REPRO_SOA_LANES")
    if raw:
        try:
            width = int(raw)
        except ValueError:
            return SOA_DEFAULT_LANES
        if width >= 1:
            return width
    return SOA_DEFAULT_LANES


def soa_bucket(count: int) -> int:
    """The kernel lane count serving a ``count``-message group.

    Power-of-two bucketing: ragged final groups share a handful of
    kernel size classes (1, 2, 4, ... lanes) instead of compiling one
    kernel per batch size; unused lanes carry zero states.
    """
    if count <= 1:
        return 1
    return 1 << (count - 1).bit_length()


def soa_fingerprint(lanes: int, num_rounds: int) -> str:
    """The cache key for one SoA kernel shape.

    Deliberately architecture-independent: the SoA path computes the
    permutation directly (no ELEN/LMUL semantics to specialize on), so
    every geometry shares the same kernels.  It is timing-independent
    too — SoA kernels are functional (digests only, zero cycle metrics),
    so no timing-model fingerprint belongs in this key.
    """
    payload = ("soa", CODEGEN_VERSION, lanes, num_rounds)
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:40]


def _generate_soa(lanes: int, num_rounds: int, fingerprint: str) -> str:
    """Render one unrolled ``lanes``-wide Keccak-p[1600] kernel.

    Reduced-round instances run the *last* ``num_rounds`` rounds, like
    :func:`repro.keccak.permutation.keccak_p1600`.  The giant mask and
    round-constant literals are computed once in the module preamble
    (from the 64-bit repunit ``_S``) and referenced by name, keeping the
    generated source compact at any lane count.
    """
    width = 64 * lanes
    meta = {
        "version": CODEGEN_VERSION,
        "fingerprint": fingerprint,
        "kind": "soa",
        "lanes": lanes,
        "rounds": num_rounds,
    }
    rotations = {1} | {RHO_OFFSETS[x][y] % 64
                       for x in range(5) for y in range(5)}
    rotations.discard(0)
    mask_bits = sorted({b for r in rotations for b in (r, 64 - r)})
    out: List[str] = [
        _header(fingerprint),
        '"""Generated by repro.sim.codegen (SoA batch) - do not edit."""',
        f"META = {meta!r}",
        "",
        f"_F = (1 << {width}) - 1",
        "_S = _F // 0xFFFFFFFFFFFFFFFF",
    ]
    out.extend(f"_M{b} = ((1 << {b}) - 1) * _S" for b in mask_bits)
    first = NUM_ROUNDS - num_rounds
    out.extend(f"_RC{k} = {hex(ROUND_CONSTANTS[k])} * _S"
               for k in range(first, NUM_ROUNDS))
    names = ", ".join(f"a{i}" for i in range(25))
    out += ["", "", "def kernel(cols):", f"    ({names}) = cols"]

    def rot(src: str, amount: int) -> str:
        amount %= 64
        if amount == 0:
            return src
        down = 64 - amount
        return (f"((({src} & _M{down}) << {amount}) | "
                f"(({src} >> {down}) & _M{amount}))")

    for k in range(first, NUM_ROUNDS):
        out.append(f"    # round {k}")
        # theta: column parities, then the per-sheet correction d[x].
        for x in range(5):
            out.append(f"    c{x} = " + " ^ ".join(
                f"a{x + 5 * y}" for y in range(5)))
        for x in range(5):
            out.append(f"    d{x} = c{(x - 1) % 5} ^ "
                       + rot(f"c{(x + 1) % 5}", 1))
        # theta correction + rho + pi fused into one assignment per lane:
        # b[x, y] takes the rotated, corrected source lane pi maps there.
        for y in range(5):
            for x in range(5):
                sx, sy = (x + 3 * y) % 5, x
                out.append(f"    b{x + 5 * y} = " + rot(
                    f"(a{sx + 5 * sy} ^ d{sx})", RHO_OFFSETS[sx][sy]))
        # chi (complement via XOR with the all-ones mask) + iota on a0.
        for y in range(5):
            for x in range(5):
                i = x + 5 * y
                b1 = (x + 1) % 5 + 5 * y
                b2 = (x + 2) % 5 + 5 * y
                expr = f"b{i} ^ ((b{b1} ^ _F) & b{b2})"
                if i == 0:
                    expr = f"({expr}) ^ _RC{k}"
                out.append(f"    a{i} = {expr}")
    out.append(f"    return ({names})")
    out.append("")
    return "\n".join(out)


def _soa_kernel_from_source(source: str,
                            fingerprint: str) -> Optional[CompiledKernel]:
    """Validate + load cached SoA source; None on any mismatch."""
    try:
        first_line = source.split("\n", 1)[0]
        if first_line != _header(fingerprint):
            return None
        namespace: dict = {}
        exec(compile(source, f"<repro-soa {fingerprint[:12]}>", "exec"),
             namespace)
        meta = namespace["META"]
        if meta["version"] != CODEGEN_VERSION:
            return None
        if meta["fingerprint"] != fingerprint:
            return None
        if meta.get("kind") != "soa":
            return None
        if not isinstance(meta["lanes"], int) \
                or not isinstance(meta["rounds"], int):
            return None
        fn = namespace["kernel"]
        if not callable(fn):
            return None
        return CompiledKernel(fn, meta, source)
    except Exception:
        return None


def get_or_compile_soa(lanes: int,
                       num_rounds: int = NUM_ROUNDS) -> CompiledKernel:
    """The SoA kernel for one (lanes, rounds) shape.

    Same lookup order as :func:`get_or_compile` — in-process LRU, disk,
    generate — but generation is total: every shape compiles, so there
    is no negative caching and no None result.
    """
    if lanes < 1:
        raise ValueError(f"lane count must be positive: {lanes}")
    if not 0 < num_rounds <= NUM_ROUNDS:
        raise ValueError(
            f"round count must be in 1..{NUM_ROUNDS}, got {num_rounds}")
    fingerprint = soa_fingerprint(lanes, num_rounds)
    cached = _KERNEL_CACHE.get(fingerprint, _MISS)
    if cached is not _MISS and cached is not None:
        SOA_STATS["memory_hits"] += 1
        if _metrics.ARMED:
            _SOA_EVENTS.inc(event="memory_hit")
        return cached

    source = _load_disk(fingerprint)
    if source is not None:
        kernel = _soa_kernel_from_source(source, fingerprint)
        if kernel is not None:
            SOA_STATS["disk_hits"] += 1
            if _metrics.ARMED:
                _SOA_EVENTS.inc(event="disk_hit")
            _KERNEL_CACHE.put(fingerprint, kernel)
            return kernel

    started = time.perf_counter() if _metrics.ARMED else 0.0
    generated = _generate_soa(lanes, num_rounds, fingerprint)
    if _metrics.ARMED:
        _SOA_COMPILE_SECONDS.observe(time.perf_counter() - started)
    kernel = _soa_kernel_from_source(generated, fingerprint)
    if kernel is None:  # pragma: no cover - generator/loader mismatch
        raise RuntimeError("generated SoA kernel failed self-validation")
    SOA_STATS["compiles"] += 1
    if _metrics.ARMED:
        _SOA_EVENTS.inc(event="compile")
    _store_disk(fingerprint, generated)
    _KERNEL_CACHE.put(fingerprint, kernel)
    return kernel


def warm_soa(lanes: Optional[int] = None,
             num_rounds: int = NUM_ROUNDS) -> CompiledKernel:
    """Pre-compile the SoA kernel for the given (default) lane budget.

    The SoA analogue of :func:`warm`: pool parents call this before
    forking so workers load the kernel from the shared disk cache.
    """
    return get_or_compile_soa(lanes if lanes is not None else soa_width(),
                              num_rounds)


def pack_states(states, lanes: int):
    """Interleave up to ``lanes`` states into 25 packed columns.

    Lane ``g``'s state occupies bits ``[64g, 64(g+1))`` of every column;
    unused lanes stay zero (and come back zero — a zero state is a
    fixpoint of nothing, but padded lanes are simply never read back).
    """
    if len(states) > lanes:
        raise ValueError(
            f"{len(states)} states exceed the kernel's {lanes} lanes")
    cols = [0] * 25
    for g, state in enumerate(states):
        shift = 64 * g
        state_lanes = state.lanes
        for i in range(25):
            cols[i] |= state_lanes[i] << shift
    return tuple(cols)


def unpack_states(cols, count: int):
    """The first ``count`` lanes of packed columns, as KeccakStates."""
    mask = 0xFFFFFFFFFFFFFFFF
    out = []
    for g in range(count):
        shift = 64 * g
        out.append(KeccakState([(col >> shift) & mask for col in cols]))
    return out


def run_soa(states, num_rounds: int = NUM_ROUNDS,
            lanes: Optional[int] = None):
    """Permute ``states`` through SoA batch kernels; returns new states.

    Splits the batch into lane-budget groups (``lanes`` or
    :func:`soa_width`), bucketing each group's kernel to the next power
    of two so ragged tails reuse a few size classes.  This is the
    functional entry point the ``soa`` engine spec wires into
    :class:`~repro.programs.session.Session`.
    """
    total = len(states)
    if total == 0:
        return []
    width = lanes if lanes is not None else soa_width()
    out = []
    for start in range(0, total, width):
        group = states[start:start + width]
        bucket = min(width, soa_bucket(len(group)))
        kernel = get_or_compile_soa(bucket, num_rounds)
        permuted = kernel.fn(pack_states(group, bucket))
        SOA_STATS["kernel_calls"] += 1
        SOA_STATS["lanes_hashed"] += len(group)
        SOA_STATS["lanes_padded"] += bucket - len(group)
        if _metrics.ARMED:
            _SOA_CALLS.inc(lanes=str(bucket))
            _SOA_OCCUPANCY.observe(len(group) / bucket)
        out.extend(unpack_states(permuted, len(group)))
    return out
