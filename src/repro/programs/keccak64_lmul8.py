"""Keccak-f[1600] for the 64-bit architecture with LMUL = 8 (Algorithm 3).

theta and iota keep LMUL=1 (the five rows must be XORed separately for the
column parities; iota only touches row 0), while rho, pi and chi run over
the whole 5-register group under single instructions with VL = 5 * EleNum,
exactly as the paper's Algorithm 3 — 75 cycles per round.
"""

from __future__ import annotations

from .base import DEFAULT_STATE_BASE, KeccakProgram

_ROUND_BODY = """\
round_body:
    # theta step (LMUL=1, as in Algorithm 2)
    vxor.vv v5, v3, v4
    vxor.vv v6, v1, v2
    vxor.vv v7, v0, v6
    vxor.vv v5, v5, v7
    vslideupm.vi v6, v5, 1
    vslidedownm.vi v7, v5, 1
    vrotup.vi v7, v7, 1
    vxor.vv v5, v6, v7
    vxor.vv v0, v0, v5
    vxor.vv v1, v1, v5
    vxor.vv v2, v2, v5
    vxor.vv v3, v3, v5
    vxor.vv v4, v4, v5
    # rho step (Algorithm 3, lines 2-3): whole state under one instruction
    vsetvli x0, s5, e64, m8, tu, mu
    v64rho.vi v0, v0, -1            # lmul_cnt indexes the rows
    # pi step (line 5)
    vpi.vi v8, v0, -1
    # chi step (lines 7-11)
    vslidedownm.vi v16, v8, 1
    vxor.vx v16, v16, s2
    vslidedownm.vi v24, v8, 2
    vand.vv v16, v16, v24
    vxor.vv v0, v8, v16
    # iota step (lines 13-14, back to LMUL=1)
    vsetvli x0, s1, e64, m1, tu, mu
    viota.vx v0, v0, s3
round_end:
"""


def build(elenum: int, include_memory_io: bool = False,
          state_base: int = DEFAULT_STATE_BASE,
          num_rounds: int = 24) -> KeccakProgram:
    """Generate the 64-bit LMUL=8 Keccak permutation program."""
    if not 0 < num_rounds <= 24:
        raise ValueError(
            f"round count must be in 1..24, got {num_rounds}"
        )
    row_bytes = elenum * 8
    lines = [
        "# Keccak-f[1600], 64-bit architecture, LMUL=8 (paper Algorithm 3)",
        f".equ ELENUM, {elenum}",
        f".equ STATE_BASE, {state_base:#x}",
        f".equ ROW_BYTES, {row_bytes}",
        "    li s1, ELENUM                   # VL for LMUL=1 sections",
        "    li s2, -1                       # all-ones for NOT-by-XOR",
        f"    li s3, {24 - num_rounds}"
        "                       # first round index",
        "    li s4, 24                       # last round bound",
        f"    li s5, {5 * elenum}                     # VL for LMUL=8 sections",
        "    vsetvli x0, s1, e64, m1, tu, mu",
    ]
    if include_memory_io:
        lines += [
            "    li a0, STATE_BASE",
            "    vle64.v v0, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vle64.v v1, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vle64.v v2, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vle64.v v3, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vle64.v v4, (a0)",
        ]
    lines.append("permutation:")
    lines.append(_ROUND_BODY)
    lines += [
        "    addi s3, s3, 1",
        "    blt s3, s4, permutation",
    ]
    if include_memory_io:
        lines += [
            "    li a0, STATE_BASE",
            "    vse64.v v0, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vse64.v v1, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vse64.v v2, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vse64.v v3, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vse64.v v4, (a0)",
        ]
    lines.append("    ecall")
    return KeccakProgram(
        name="keccak64_lmul8",
        source="\n".join(lines) + "\n",
        elen=64,
        elenum=elenum,
        lmul=8,
        description="64-bit architecture, LMUL=8 (Algorithm 3)",
        state_base=state_base if include_memory_io else None,
        num_rounds=num_rounds,
    )
