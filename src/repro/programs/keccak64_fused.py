"""Keccak-f[1600] with fused custom instructions (paper future work).

The paper's conclusion predicts: "the two architectures' performance will
improve more if we increase the granularity or combine some adjacent
operations."  This program quantifies that prediction on the 64-bit
architecture with two fused extensions:

* ``vrhopi.vi`` — the rho rotation and the pi column-scramble in a single
  register-file pass (the classic rho+pi fusion of software Keccak);
* ``vchi.vi`` — the whole chi row function (slide, NOT, slide, AND, XOR)
  in one instruction.

The LMUL=8 round drops from 75 to 45 cycles: theta (26) + vsetvli (2) +
vrhopi (7) + vchi (6) + vsetvli (2) + viota (2).
"""

from __future__ import annotations

from .base import DEFAULT_STATE_BASE, KeccakProgram

_ROUND_BODY = """\
round_body:
    # theta step (LMUL=1, unchanged from Algorithm 2)
    vxor.vv v5, v3, v4
    vxor.vv v6, v1, v2
    vxor.vv v7, v0, v6
    vxor.vv v5, v5, v7
    vslideupm.vi v6, v5, 1
    vslidedownm.vi v7, v5, 1
    vrotup.vi v7, v7, 1
    vxor.vv v5, v6, v7
    vxor.vv v0, v0, v5
    vxor.vv v1, v1, v5
    vxor.vv v2, v2, v5
    vxor.vv v3, v3, v5
    vxor.vv v4, v4, v5
    # fused rho + pi (LMUL=8): one column-writing pass over the state
    vsetvli x0, s5, e64, m8, tu, mu
    vrhopi.vi v8, v0, -1
    # fused chi: the whole row function in one instruction
    vchi.vi v0, v8, 0
    # iota step (LMUL=1)
    vsetvli x0, s1, e64, m1, tu, mu
    viota.vx v0, v0, s3
round_end:
"""


def build(elenum: int, include_memory_io: bool = False,
          state_base: int = DEFAULT_STATE_BASE) -> KeccakProgram:
    """Generate the fused-instruction 64-bit LMUL=8 program."""
    row_bytes = elenum * 8
    lines = [
        "# Keccak-f[1600], 64-bit, LMUL=8, fused rho+pi and chi"
        " (future-work extension)",
        f".equ ELENUM, {elenum}",
        f".equ STATE_BASE, {state_base:#x}",
        f".equ ROW_BYTES, {row_bytes}",
        "    li s1, ELENUM",
        "    li s2, -1",
        "    li s3, 0",
        "    li s4, 24",
        f"    li s5, {5 * elenum}",
        "    vsetvli x0, s1, e64, m1, tu, mu",
    ]
    if include_memory_io:
        lines.append("    li a0, STATE_BASE")
        for y in range(5):
            lines.append(f"    vle64.v v{y}, (a0)")
            if y != 4:
                lines.append("    addi a0, a0, ROW_BYTES")
    lines.append("permutation:")
    lines.append(_ROUND_BODY)
    lines += [
        "    addi s3, s3, 1",
        "    blt s3, s4, permutation",
    ]
    if include_memory_io:
        lines.append("    li a0, STATE_BASE")
        for y in range(5):
            lines.append(f"    vse64.v v{y}, (a0)")
            if y != 4:
                lines.append("    addi a0, a0, ROW_BYTES")
    lines.append("    ecall")
    return KeccakProgram(
        name="keccak64_fused",
        source="\n".join(lines) + "\n",
        elen=64,
        elenum=elenum,
        lmul=8,
        description="64-bit, LMUL=8, fused rho+pi and chi (future work)",
        state_base=state_base if include_memory_io else None,
    )
