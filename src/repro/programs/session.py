"""The unified execution entry point: :class:`Session` and :func:`run`.

Everything that executes a Keccak program on the simulator — the legacy
:func:`~repro.programs.runner.run_keccak_program`, the batch/sponge
drivers, the eval harness, benchmarks and examples — funnels through this
module.  A :class:`Session` owns one processor per architecture
(ELEN, EleNum) and therefore one predecode cache per architecture: the
first run of a program decodes it, every subsequent run of the same
assembled program skips straight to execution.  The module-level
:func:`run` uses a process-wide default session per cycle model, so ad-hoc
callers get the caching for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..keccak.constants import STATE_BITS, STATE_BYTES
from ..keccak.sponge import SHAKE_SUFFIX, Sponge
from ..keccak.state import KeccakState
from ..observability import metrics as _metrics
from ..observability import timeline as _timeline
from ..sim import engines as _engines
from ..sim.cycles import CycleModel, DEFAULT_CYCLE_MODEL
from ..sim.lru import LRU
from ..sim.processor import SIMDProcessor, validate_engine
from ..sim.timing import TimingModel
from ..sim.trace import ExecutionStats
from . import layout
from .base import KeccakProgram

# Session-level instrumentation: one counter bump, one histogram
# observation and (with a timeline active) one span per run.
_SESSION_RUNS = _metrics.registry().counter(
    "session_runs_total", "Session.run calls by program and geometry",
    ("program", "geometry"))
_RUN_SECONDS = _metrics.registry().histogram(
    "session_run_seconds", "Wall-clock time of one Session.run",
    ("program", "geometry"))


@dataclass
class RunResult:
    """Outcome of one program execution."""

    states: List[KeccakState]
    stats: ExecutionStats
    cycles_per_round: float
    permutation_cycles: int

    @property
    def num_states(self) -> int:
        """States processed by the run (at least 1 for throughput math)."""
        return len(self.states) or 1

    @property
    def cycles_per_byte(self) -> float:
        """Cycles per state byte over the whole permutation (paper metric)."""
        return self.permutation_cycles / float(STATE_BYTES)

    @property
    def throughput_bits_per_cycle(self) -> float:
        """Bits processed per cycle across all parallel states.

        Functional engines (``soa``) carry no cycle model, so their
        results report 0 here rather than dividing by zero cycles.
        """
        if not self.permutation_cycles:
            return 0.0
        return STATE_BITS * self.num_states / self.permutation_cycles

    @property
    def throughput_kbits_per_cycle(self) -> float:
        """Throughput in the tables' display unit, (bits/cycle) x 10^3."""
        return 1000.0 * self.throughput_bits_per_cycle

    #: Alias matching the column name used by the paper's tables.
    throughput_e3 = throughput_kbits_per_cycle


def _check_capacity(program: KeccakProgram,
                    states: Sequence[KeccakState]) -> None:
    if len(states) > program.max_states:
        raise ValueError(
            f"{program.name} with EleNum={program.elenum} holds at most "
            f"{program.max_states} states, got {len(states)}"
        )


def _execute(proc: SIMDProcessor, program: KeccakProgram,
             states: Sequence[KeccakState]) -> RunResult:
    """Load, place states, run and extract metrics on a prepared processor.

    Does *not* reset the processor — callers decide (a :class:`Session`
    resets; the legacy ``processor=`` path keeps the seed semantics of
    running on whatever state the caller set up).
    """
    assembled = program.assemble()
    proc.load_program(assembled)

    uses_memory = program.state_base is not None
    if not states:
        uses_memory = False  # nothing to place or read back
    if uses_memory:
        if program.elen == 64:
            image = layout.memory_image64(states, program.elenum)
        else:
            image = layout.memory_image32(states, program.elenum)
        proc.memory.store_bytes(program.state_base, image)
    elif states:
        if program.elen == 64:
            layout.load_states_regfile64(proc.vector.regfile, states)
        else:
            layout.load_states_regfile32(proc.vector.regfile, states)

    stats = proc.run()

    if not states:
        out: List[KeccakState] = []
    elif uses_memory:
        if program.elen == 64:
            size = 5 * program.elenum * 8
            image = proc.memory.load_bytes(program.state_base, size)
            out = layout.parse_memory_image64(image, program.elenum,
                                              len(states))
        else:
            size = 2 * 5 * program.elenum * 4
            image = proc.memory.load_bytes(program.state_base, size)
            out = layout.parse_memory_image32(image, program.elenum,
                                              len(states))
    else:
        if program.elen == 64:
            out = layout.read_states_regfile64(proc.vector.regfile,
                                               len(states))
        else:
            out = layout.read_states_regfile32(proc.vector.regfile,
                                               len(states))

    rounds = program.num_rounds
    if stats.records is not None:
        body_start = assembled.symbols["round_body"]
        body_end = assembled.symbols["round_end"]
        body_cycles = stats.cycles_in_pc_range(body_start, body_end)
        cycles_per_round = body_cycles / rounds
        loop_start = assembled.symbols["permutation"]
        # Permutation latency: from the first round instruction until the
        # permuted state is ready, i.e. the end of the last round body.
        # The loop-control addi/blt of iterations 1..23 sit between round
        # bodies and count; the final iteration's addi + untaken blt happen
        # after the result is available and do not (this matches the
        # paper's 2564/1892/3620 cycle totals exactly).
        in_loop = [r for r in stats.records
                   if loop_start <= r.pc < body_end + 8]
        final_overhead = sum(r.cycles for r in in_loop[-2:]
                             if r.pc >= body_end)
        permutation_cycles = sum(r.cycles for r in in_loop) - final_overhead
    else:
        cycles_per_round = stats.cycles / rounds
        permutation_cycles = stats.cycles
    return RunResult(
        states=out,
        stats=stats,
        cycles_per_round=cycles_per_round,
        permutation_cycles=permutation_cycles,
    )


class Session:
    """A reusable execution context: processors plus predecode caches.

    One processor is kept per (ELEN, EleNum) architecture; each run does a
    full in-place architectural reset (registers, vector state, memory,
    stats), so results are identical to running on a freshly constructed
    processor — minus the construction and re-decode cost.
    """

    def __init__(self,
                 cycle_model: Union[CycleModel, TimingModel]
                 = DEFAULT_CYCLE_MODEL,
                 engine: str = "auto") -> None:
        #: Normalized :class:`~repro.sim.timing.TimingModel` — bare
        #: :class:`CycleModel` arguments get identity knobs, so every
        #: processor this session creates keys its caches on the same
        #: timing fingerprint.
        self.timing_model = TimingModel.of(cycle_model)
        self.cycle_model = self.timing_model
        #: Default execution engine for this session's runs (see
        #: :data:`repro.sim.processor.ENGINES`); per-run ``engine=``
        #: arguments override it.
        self.engine = validate_engine(engine)
        self._processors: Dict[Tuple[int, int], SIMDProcessor] = {}
        self._xof_programs: Dict[Tuple[int, int, int, int],
                                 KeccakProgram] = {}

    def processor(self, elen: int, elenum: int) -> SIMDProcessor:
        """The session's processor for one architecture (created lazily)."""
        key = (elen, elenum)
        proc = self._processors.get(key)
        if proc is None:
            proc = SIMDProcessor(
                elen=elen,
                elenum=elenum,
                cycle_model=self.cycle_model,
                trace=False,
            )
            self._processors[key] = proc
        return proc

    def run(self, program: KeccakProgram,
            states: Sequence[KeccakState] = (),
            *, trace: bool = False,
            engine: Optional[str] = None) -> RunResult:
        """Execute ``program`` on ``states``; returns states + metrics.

        The number of states must not exceed ``program.max_states``;
        remaining element slots are left zero.  ``trace=True`` records a
        full instruction trace (needed for the per-round/permutation
        cycle metrics; without it those fall back to whole-run totals) —
        and disqualifies the compiled engine, so traced runs execute on
        the fused/stepped reference paths.  ``engine`` overrides the
        session default for this run only — the session processor is
        restored to the session engine afterwards, so a one-off override
        can never leak into later runs.

        Engines whose registry spec declares ``functional`` (``soa``,
        ``reference``) never touch a processor: the states are
        transformed directly by the engine — the SoA batch kernels, or
        the pure round-function reference — capacity is negotiated by
        the engine instead of ``program.max_states``, and the result
        carries zero cycle metrics (the paper's cycle pins stay on the
        per-state engines).  A traced run cascades down the engine's
        declared fallback chain to a processor engine.
        """
        name = validate_engine(engine) if engine is not None \
            else self.engine
        spec = _engines.maybe_get(name)
        if spec is not None and spec.caps.functional:
            if not trace:
                return self._run_functional(spec, program, states)
            while spec is not None and spec.caps.functional:
                _engines.note_functional_fallback(spec, "traced")
                name = spec.fallback or "auto"
                spec = _engines.maybe_get(name)
        _check_capacity(program, states)
        proc = self.processor(program.elen, program.elenum)
        proc.engine = name
        proc.reset(trace=trace)
        try:
            if not _metrics.ARMED and _timeline.ACTIVE is None:
                return _execute(proc, program, states)
            return self._run_observed(proc, program, states)
        finally:
            proc.engine = self.engine

    def _run_observed(self, proc: SIMDProcessor, program: KeccakProgram,
                      states: Sequence[KeccakState]) -> RunResult:
        """The armed path of :meth:`run`: metrics + timeline span."""
        import time

        geometry = f"{program.elen}x{program.elenum}"
        tl = _timeline.ACTIVE
        span_start = tl.now() if tl is not None else 0.0
        started = time.perf_counter()
        result = _execute(proc, program, states)
        elapsed = time.perf_counter() - started
        if _metrics.ARMED:
            _SESSION_RUNS.inc(program=program.name, geometry=geometry)
            _RUN_SECONDS.observe(elapsed, program=program.name,
                                 geometry=geometry)
        if tl is not None:
            tl.complete(program.name, span_start, elapsed,
                        tid=_timeline.MAIN_LANE,
                        args={"geometry": geometry,
                              "engine": proc.engine,
                              "states": len(states)})
        return result

    def _run_functional(self, spec, program: KeccakProgram,
                        states: Sequence[KeccakState]) -> RunResult:
        """Run a functional (digests-only) engine: no processor involved.

        Mirrors :meth:`_run_observed`'s session metrics and timeline
        span so batch dashboards see these runs too; cycle fields are
        zero by construction.
        """
        import time

        armed = _metrics.ARMED
        tl = _timeline.ACTIVE
        if armed or tl is not None:
            geometry = f"{program.elen}x{program.elenum}"
            span_start = tl.now() if tl is not None else 0.0
            started = time.perf_counter()
        out = spec.run_states(program, list(states))
        if armed or tl is not None:
            elapsed = time.perf_counter() - started
            if armed:
                _SESSION_RUNS.inc(program=program.name, geometry=geometry)
                _RUN_SECONDS.observe(elapsed, program=program.name,
                                     geometry=geometry)
            if tl is not None:
                tl.complete(program.name, span_start, elapsed,
                            tid=_timeline.MAIN_LANE,
                            args={"geometry": geometry,
                                  "engine": spec.name,
                                  "states": len(states)})
        return RunResult(states=out, stats=ExecutionStats(),
                         cycles_per_round=0.0, permutation_cycles=0)

    def xof(self, data: bytes = b"", *,
            capacity_bits: int = 256,
            suffix: int = SHAKE_SUFFIX,
            num_rounds: int = 24,
            elen: int = 64, lmul: int = 8, elenum: int = 30,
            engine: Optional[str] = None) -> "SessionXof":
        """A streaming XOF whose permutations execute on this session.

        Returns a :class:`SessionXof`: absorb with ``update``, then
        stream output with incremental ``read(n)`` calls — each rate
        block of the sponge is one program run on the session's warm
        processor (or functional engine).  The defaults are SHAKE128 on
        the paper's V64H8 architecture; ``suffix``/``capacity_bits``/
        ``num_rounds`` select any sponge in the family (e.g. a
        TurboSHAKE domain byte with ``num_rounds=12``).
        """
        key = (elen, lmul, elenum, num_rounds)
        program = self._xof_programs.get(key)
        if program is None:
            from .factory import build_program

            program = build_program(elen, lmul, elenum,
                                    include_memory_io=True,
                                    num_rounds=num_rounds)
            self._xof_programs[key] = program
        return SessionXof(self, program, capacity_bits, suffix,
                          data=data, engine=engine)

    def warm(self, program: KeccakProgram) -> bool:
        """Pre-compile ``program`` for the compiled engine.

        Populates both kernel caches (in-process and on-disk) without
        executing anything; returns True when a compiled kernel is
        available.  Pool drivers call this in the parent so forked
        workers warm-start from the disk cache.
        """
        from ..sim import codegen

        proc = self.processor(program.elen, program.elenum)
        proc.load_program(program.assemble())
        return codegen.warm(proc) is not None


class SessionXof:
    """An incremental sponge whose permutations run on a :class:`Session`.

    The streaming counterpart of the batch drivers' whole-message paths:
    ``update`` absorbs (block-by-block program runs), ``read(n)``
    squeezes the next ``n`` output bytes — successive calls continue the
    stream without re-absorbing, exactly like
    :meth:`repro.keccak.hashes._ShakeBase.read` and the serve daemon's
    long-output responses.  ``digest(n)`` stays restartable by copying
    the sponge.
    """

    def __init__(self, session: Session, program: KeccakProgram,
                 capacity_bits: int, suffix: int, *,
                 data: bytes = b"",
                 engine: Optional[str] = None) -> None:
        self.program = program

        def permute(state: KeccakState) -> KeccakState:
            return session.run(program, [state], engine=engine).states[0]

        self._sponge = Sponge(capacity_bits, suffix, permute)
        if data:
            self._sponge.absorb(data)

    @property
    def squeezing(self) -> bool:
        """True once ``read`` has started streaming output."""
        return self._sponge.squeezing

    def update(self, data: bytes) -> "SessionXof":
        """Absorb more message bytes (before any ``read``)."""
        self._sponge.absorb(data)
        return self

    def read(self, length: int) -> bytes:
        """Streaming squeeze: successive calls continue the stream."""
        return self._sponge.squeeze(length)

    def digest(self, length: int) -> bytes:
        """``length`` output bytes (restartable: copies the sponge)."""
        return self._sponge.copy().squeeze(length)

    def hexdigest(self, length: int) -> str:
        """``length`` output bytes as hex."""
        return self.digest(length).hex()


#: Process-wide default sessions, one per *timing model* (TimingModel is
#: a frozen dataclass, hence hashable; bare CycleModels normalize to the
#: identity TimingModel, so both spellings share one session).  A true
#: LRU, not an unbounded dict: one Session owns processors plus their
#: predecode caches, so a design-space sweep over thousands of timing
#: configurations must recycle the oldest sessions instead of leaking
#: one per configuration.
_MAX_DEFAULT_SESSIONS = 8
_DEFAULT_SESSIONS: LRU = LRU(_MAX_DEFAULT_SESSIONS)


def default_session(cycle_model: Union[CycleModel, TimingModel]
                    = DEFAULT_CYCLE_MODEL) -> Session:
    """The shared session for ``cycle_model`` (created on first use)."""
    model = TimingModel.of(cycle_model)
    session = _DEFAULT_SESSIONS.get(model)
    if session is None:
        session = Session(model)
        _DEFAULT_SESSIONS.put(model, session)
    return session


def run(program: KeccakProgram,
        states: Sequence[KeccakState] = (),
        *, trace: bool = False,
        engine: Optional[str] = None,
        cycle_model: Union[CycleModel, TimingModel]
        = DEFAULT_CYCLE_MODEL) -> RunResult:
    """Execute a Keccak program on the shared default session.

    The top-level entry point (`repro.run`): repeated runs of the same
    program reuse the session's processor and predecoded program.
    ``engine`` selects the execution engine for this run (default: the
    session's ``auto``, which compiles when eligible).
    """
    return default_session(cycle_model).run(program, states, trace=trace,
                                            engine=engine)
