"""Keccak-f[1600] with the LMUL = 4 + 1 grouping the paper rejected.

Section 4.1: "Another way is choosing LMUL to be 4 and 1.  This way, a
group of 4 registers is operational, followed by a group of 1 register.
We do not do this, because we would need to configure the LMUL value in an
alternating way, which would consume more time."

This program implements exactly that rejected alternative so the claim can
be measured: rho/pi/chi run once over the 4-register group (planes 0-3)
and once over the single register (plane 4), with ``vsetvli``
re-configuration between them.  The round costs 87 cycles — worse than
LMUL=8's 75 — quantitatively validating the paper's design decision.
"""

from __future__ import annotations

from .base import DEFAULT_STATE_BASE, KeccakProgram

_ROUND_BODY = """\
round_body:
    # theta step (LMUL=1, as in Algorithm 2)
    vxor.vv v5, v3, v4
    vxor.vv v6, v1, v2
    vxor.vv v7, v0, v6
    vxor.vv v5, v5, v7
    vslideupm.vi v6, v5, 1
    vslidedownm.vi v7, v5, 1
    vrotup.vi v7, v7, 1
    vxor.vv v5, v6, v7
    vxor.vv v0, v0, v5
    vxor.vv v1, v1, v5
    vxor.vv v2, v2, v5
    vxor.vv v3, v3, v5
    vxor.vv v4, v4, v5
    # rho: group of 4 registers (rows 0-3), then the single row 4
    vsetvli x0, s6, e64, m4, tu, mu
    v64rho.vi v0, v0, -1
    vsetvli x0, s1, e64, m1, tu, mu
    v64rho.vi v4, v4, 4
    # pi: row 4 at LMUL=1, rows 0-3 at LMUL=4 (alternating configs)
    vpi.vi v8, v4, 4
    vsetvli x0, s6, e64, m4, tu, mu
    vpi.vi v8, v0, -1
    # chi step over the group of 4 (planes 0-3)
    vslidedownm.vi v16, v8, 1
    vxor.vx v16, v16, s2
    vslidedownm.vi v24, v8, 2
    vand.vv v16, v16, v24
    vxor.vv v0, v8, v16
    # chi step over the single plane 4 (register v12)
    vsetvli x0, s1, e64, m1, tu, mu
    vslidedownm.vi v20, v12, 1
    vxor.vx v20, v20, s2
    vslidedownm.vi v21, v12, 2
    vand.vv v20, v20, v21
    vxor.vv v4, v12, v20
    # iota step
    viota.vx v0, v0, s3
round_end:
"""


def build(elenum: int, include_memory_io: bool = False,
          state_base: int = DEFAULT_STATE_BASE) -> KeccakProgram:
    """Generate the LMUL=4+1 ablation program (64-bit)."""
    if include_memory_io:
        raise NotImplementedError(
            "the LMUL=4+1 ablation is measured register-resident only"
        )
    lines = [
        "# Keccak-f[1600], 64-bit, LMUL=4+1 (the paper's rejected option)",
        f".equ ELENUM, {elenum}",
        "    li s1, ELENUM",
        "    li s2, -1",
        "    li s3, 0",
        "    li s4, 24",
        f"    li s6, {4 * elenum}                     # VL for LMUL=4 sections",
        "    vsetvli x0, s1, e64, m1, tu, mu",
        "permutation:",
        _ROUND_BODY,
        "    addi s3, s3, 1",
        "    blt s3, s4, permutation",
        "    ecall",
    ]
    return KeccakProgram(
        name="keccak64_lmul41",
        source="\n".join(lines) + "\n",
        elen=64,
        elenum=elenum,
        lmul=4,
        description="64-bit, LMUL=4+1 alternating (rejected alternative)",
        state_base=None,
    )
