"""SHA-3 hashing with the *simulated processor* as the permutation engine.

The sponge construction accepts any permutation; here the permutation is
the paper's vector Keccak program executed instruction-by-instruction on
the SIMD processor simulator (including the vector load/store of the state
through the VecLSU).  Hashing a message this way exercises the entire
stack — assembler, decoder, scalar core, vector unit, memory system — and
still produces digests bit-identical to ``hashlib``.

This also yields end-to-end workload metrics: cycle counts per message,
aggregated over all sponge permutations.
"""

from __future__ import annotations

from typing import Optional

from ..keccak.sponge import SHA3_SUFFIX, SHAKE_SUFFIX, Sponge
from ..keccak.state import KeccakState
from .factory import build_program
from .base import KeccakProgram
from .session import Session


class SimulatedPermutation:
    """A Keccak-f[1600] callable backed by the processor simulator.

    Reuses one :class:`~repro.programs.session.Session` across calls (so
    the program is decoded once) and accumulates cycle counts.
    """

    def __init__(self, elen: int = 64, lmul: int = 8, elenum: int = 5,
                 program: Optional[KeccakProgram] = None,
                 num_rounds: int = 24, engine: str = "auto") -> None:
        self.program = program or build_program(
            elen, lmul, elenum, include_memory_io=True,
            num_rounds=num_rounds,
        )
        if self.program.state_base is None:
            raise ValueError(
                "the simulated permutation needs a memory-IO program"
            )
        self._session = Session(engine=engine)
        self.call_count = 0
        self.total_cycles = 0

    def __call__(self, state: KeccakState) -> KeccakState:
        result = self._session.run(self.program, [state])
        self.call_count += 1
        self.total_cycles += result.stats.cycles
        return result.states[0]


def simulated_sha3_256(message: bytes,
                       permutation: Optional[SimulatedPermutation] = None
                       ) -> bytes:
    """SHA3-256 digest computed entirely on the simulated processor."""
    perm = permutation or SimulatedPermutation()
    return Sponge(512, SHA3_SUFFIX, permutation=perm).absorb(
        message).squeeze(32)


def simulated_shake128(message: bytes, length: int,
                       permutation: Optional[SimulatedPermutation] = None
                       ) -> bytes:
    """SHAKE128 output computed entirely on the simulated processor."""
    perm = permutation or SimulatedPermutation()
    return Sponge(256, SHAKE_SUFFIX, permutation=perm).absorb(
        message).squeeze(length)
