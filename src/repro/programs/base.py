"""Common container for generated Keccak programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..assembler import assemble
from ..assembler.program import Program

#: Data-memory address where the Keccak state image lives by default.
DEFAULT_STATE_BASE = 0x1000


@dataclass
class KeccakProgram:
    """A generated assembly program plus its architectural parameters."""

    name: str
    source: str
    elen: int
    elenum: int
    lmul: int
    description: str = ""
    #: Data-memory address of the state image (None if the program does no
    #: memory I/O and states are pre-placed in the register file).
    state_base: Optional[int] = None
    #: Rounds executed: 24 for Keccak-f[1600], fewer for Keccak-p[1600, nr]
    #: (e.g. 12 for the TurboSHAKE / KangarooTwelve permutation).
    num_rounds: int = 24
    _assembled: Optional[Program] = field(default=None, repr=False)

    def assemble(self, base_address: int = 0) -> Program:
        """Assemble (and cache) the program."""
        if self._assembled is None or \
                self._assembled.base_address != base_address:
            self._assembled = assemble(self.source, base_address)
        return self._assembled

    @property
    def max_states(self) -> int:
        """How many Keccak states this configuration processes in parallel."""
        return self.elenum // 5
