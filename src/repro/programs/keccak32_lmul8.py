"""Keccak-f[1600] for the 32-bit architecture with LMUL = 8 (Section 4.1).

Each 64-bit lane is split into hi/lo 32-bit halves (paper Fig. 6): the
least-significant halves live in vector registers 0..4, the most
significant halves in registers 16..20.  The program mirrors the 64-bit
LMUL=8 structure, except that the two rotations (theta's parity rotation
and rho) use the pair-concatenating custom instructions ``v32lrotup`` /
``v32hrotup`` / ``v32lrho`` / ``v32hrho``, and iota runs twice per round
with the round constant split into 32-bit halves (round-constant indices
count by two: even = low half, odd = high half).

The round body costs 147 cycles under the calibrated cycle model, matching
the paper's Table 8.
"""

from __future__ import annotations

from .base import DEFAULT_STATE_BASE, KeccakProgram

_ROUND_BODY = """\
round_body:
    # theta step (LMUL=1): parities of both halves
    vxor.vv v5, v3, v4
    vxor.vv v6, v1, v2
    vxor.vv v7, v0, v6
    vxor.vv v5, v5, v7              # B_lo[x]
    vxor.vv v21, v19, v20
    vxor.vv v22, v17, v18
    vxor.vv v23, v16, v22
    vxor.vv v21, v21, v23           # B_hi[x]
    vslideupm.vi v6, v5, 1          # B_lo[(x-1) mod 5]
    vslideupm.vi v22, v21, 1        # B_hi[(x-1) mod 5]
    vslidedownm.vi v7, v5, 1        # B_lo[(x+1) mod 5]
    vslidedownm.vi v23, v21, 1      # B_hi[(x+1) mod 5]
    v32lrotup.vv v8, v23, v7        # ROT(B[(x+1) mod 5], 1) low half
    v32hrotup.vv v23, v23, v7       # ROT(B[(x+1) mod 5], 1) high half
    vxor.vv v5, v6, v8              # C_lo[x]
    vxor.vv v21, v22, v23           # C_hi[x]
    vxor.vv v0, v0, v5              # D = A ^ C, low halves
    vxor.vv v1, v1, v5
    vxor.vv v2, v2, v5
    vxor.vv v3, v3, v5
    vxor.vv v4, v4, v5
    vxor.vv v16, v16, v21           # D = A ^ C, high halves
    vxor.vv v17, v17, v21
    vxor.vv v18, v18, v21
    vxor.vv v19, v19, v21
    vxor.vv v20, v20, v21
    # rho step (LMUL=8): rotate hi||lo pairs, rows via lmul_cnt
    vsetvli x0, s5, e32, m8, tu, mu
    v32lrho.vv v8, v16, v0          # rotated low halves -> v8 group
    v32hrho.vv v24, v16, v0         # rotated high halves -> v24 group
    # pi step: scramble both halves back into the state registers
    vpi.vi v0, v8, -1
    vpi.vi v16, v24, -1
    # chi step, low halves
    vslidedownm.vi v8, v0, 1
    vxor.vx v8, v8, s2
    vslidedownm.vi v24, v0, 2
    vand.vv v8, v8, v24
    vxor.vv v0, v0, v8
    # chi step, high halves
    vslidedownm.vi v8, v16, 1
    vxor.vx v8, v8, s2
    vslidedownm.vi v24, v16, 2
    vand.vv v8, v8, v24
    vxor.vv v16, v16, v8
    # iota step (LMUL=1): low then high round-constant half
    vsetvli x0, s1, e32, m1, tu, mu
    viota.vx v0, v0, s3             # even index: low half of RC
    addi s7, s3, 1
    viota.vx v16, v16, s7           # odd index: high half of RC
round_end:
"""


def build(elenum: int, include_memory_io: bool = False,
          state_base: int = DEFAULT_STATE_BASE,
          num_rounds: int = 24) -> KeccakProgram:
    """Generate the 32-bit LMUL=8 Keccak permutation program."""
    if not 0 < num_rounds <= 24:
        raise ValueError(
            f"round count must be in 1..24, got {num_rounds}"
        )
    row_bytes = elenum * 4
    hi_base = state_base + 5 * row_bytes
    lines = [
        "# Keccak-f[1600], 32-bit architecture, LMUL=8 (paper Section 4.1)",
        f".equ ELENUM, {elenum}",
        f".equ STATE_BASE, {state_base:#x}",
        f".equ HI_BASE, {hi_base:#x}",
        f".equ ROW_BYTES, {row_bytes}",
        "    li s1, ELENUM                   # VL for LMUL=1 sections",
        "    li s2, -1                       # all-ones for NOT-by-XOR",
        f"    li s3, {2 * (24 - num_rounds)}"
        "                       # round-constant index (by 2)",
        "    li s4, 48                       # last RC index bound",
        f"    li s5, {5 * elenum}                     # VL for LMUL=8 sections",
        "    vsetvli x0, s1, e32, m1, tu, mu",
    ]
    if include_memory_io:
        load_lines = ["    li a0, STATE_BASE"]
        for y in range(5):
            load_lines.append(f"    vle32.v v{y}, (a0)")
            load_lines.append("    addi a0, a0, ROW_BYTES")
        load_lines.append("    li a0, HI_BASE")
        for y in range(5):
            load_lines.append(f"    vle32.v v{16 + y}, (a0)")
            if y != 4:
                load_lines.append("    addi a0, a0, ROW_BYTES")
        lines += load_lines
    lines.append("permutation:")
    lines.append(_ROUND_BODY)
    lines += [
        "    addi s3, s3, 2",
        "    blt s3, s4, permutation",
    ]
    if include_memory_io:
        store_lines = ["    li a0, STATE_BASE"]
        for y in range(5):
            store_lines.append(f"    vse32.v v{y}, (a0)")
            store_lines.append("    addi a0, a0, ROW_BYTES")
        store_lines.append("    li a0, HI_BASE")
        for y in range(5):
            store_lines.append(f"    vse32.v v{16 + y}, (a0)")
            if y != 4:
                store_lines.append("    addi a0, a0, ROW_BYTES")
        lines += store_lines
    lines.append("    ecall")
    return KeccakProgram(
        name="keccak32_lmul8",
        source="\n".join(lines) + "\n",
        elen=32,
        elenum=elenum,
        lmul=8,
        description="32-bit architecture, LMUL=8 (hi/lo lane split, Fig. 6)",
        state_base=state_base if include_memory_io else None,
        num_rounds=num_rounds,
    )
