"""Keccak-f[1600] for the 64-bit architecture with LMUL = 1 (Algorithm 2).

A faithful transcription of the paper's Algorithm 2: the whole permutation
runs out of the vector register file with one vector register operated on
per instruction.  The round body costs 103 cycles under the calibrated
cycle model, exactly as annotated in the paper.
"""

from __future__ import annotations

from .base import DEFAULT_STATE_BASE, KeccakProgram

_ROUND_BODY = """\
round_body:
    # theta step (Algorithm 2, lines 4-16)
    vxor.vv v5, v3, v4
    vxor.vv v6, v1, v2
    vxor.vv v7, v0, v6
    vxor.vv v5, v5, v7              # B[x]: column parities
    vslideupm.vi v6, v5, 1          # B[(x-1) mod 5]
    vslidedownm.vi v7, v5, 1        # B[(x+1) mod 5]
    vrotup.vi v7, v7, 1             # ROT(B[(x+1) mod 5], 1)
    vxor.vv v5, v6, v7              # C[x]
    vxor.vv v0, v0, v5              # D[x, y] = A[x, y] ^ C[x]
    vxor.vv v1, v1, v5
    vxor.vv v2, v2, v5
    vxor.vv v3, v3, v5
    vxor.vv v4, v4, v5
    # rho step (lines 18-22)
    v64rho.vi v0, v0, 0
    v64rho.vi v1, v1, 1
    v64rho.vi v2, v2, 2
    v64rho.vi v3, v3, 3
    v64rho.vi v4, v4, 4
    # pi step (lines 24-28): column-mode writes into v5..v9
    vpi.vi v5, v0, 0
    vpi.vi v5, v1, 1
    vpi.vi v5, v2, 2
    vpi.vi v5, v3, 3
    vpi.vi v5, v4, 4
    # chi step (lines 30-54)
    vslidedownm.vi v10, v5, 1
    vslidedownm.vi v11, v6, 1
    vslidedownm.vi v12, v7, 1
    vslidedownm.vi v13, v8, 1
    vslidedownm.vi v14, v9, 1
    vxor.vx v10, v10, s2            # NOT via XOR with all-ones
    vxor.vx v11, v11, s2
    vxor.vx v12, v12, s2
    vxor.vx v13, v13, s2
    vxor.vx v14, v14, s2
    vslidedownm.vi v15, v5, 2
    vslidedownm.vi v16, v6, 2
    vslidedownm.vi v17, v7, 2
    vslidedownm.vi v18, v8, 2
    vslidedownm.vi v19, v9, 2
    vand.vv v10, v10, v15
    vand.vv v11, v11, v16
    vand.vv v12, v12, v17
    vand.vv v13, v13, v18
    vand.vv v14, v14, v19
    vxor.vv v0, v5, v10
    vxor.vv v1, v6, v11
    vxor.vv v2, v7, v12
    vxor.vv v3, v8, v13
    vxor.vv v4, v9, v14
    # iota step (line 56)
    viota.vx v0, v0, s3
round_end:
"""


def build(elenum: int, include_memory_io: bool = False,
          state_base: int = DEFAULT_STATE_BASE,
          num_rounds: int = 24) -> KeccakProgram:
    """Generate the 64-bit LMUL=1 Keccak permutation program.

    With ``include_memory_io`` the program also loads the five state rows
    from the Fig. 5 memory image before the permutation and stores them
    back afterwards (using unit-stride ``vle64.v``/``vse64.v``).
    """
    if not 0 < num_rounds <= 24:
        raise ValueError(
            f"round count must be in 1..24, got {num_rounds}"
        )
    row_bytes = elenum * 8
    lines = [
        "# Keccak-f[1600], 64-bit architecture, LMUL=1 (paper Algorithm 2)",
        f".equ ELENUM, {elenum}",
        f".equ STATE_BASE, {state_base:#x}",
        f".equ ROW_BYTES, {row_bytes}",
        "    li s1, ELENUM                   # VL for LMUL=1",
        "    li s2, -1                       # all-ones for NOT-by-XOR",
        f"    li s3, {24 - num_rounds}"
        "                       # first round index",
        "    li s4, 24                       # last round bound",
        "    vsetvli x0, s1, e64, m1, tu, mu",
    ]
    if include_memory_io:
        lines += [
            "    li a0, STATE_BASE",
            "    vle64.v v0, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vle64.v v1, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vle64.v v2, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vle64.v v3, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vle64.v v4, (a0)",
        ]
    lines.append("permutation:")
    lines.append(_ROUND_BODY)
    lines += [
        "    addi s3, s3, 1",
        "    blt s3, s4, permutation",
    ]
    if include_memory_io:
        lines += [
            "    li a0, STATE_BASE",
            "    vse64.v v0, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vse64.v v1, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vse64.v v2, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vse64.v v3, (a0)",
            "    addi a0, a0, ROW_BYTES",
            "    vse64.v v4, (a0)",
        ]
    lines.append("    ecall")
    return KeccakProgram(
        name="keccak64_lmul1",
        source="\n".join(lines) + "\n",
        elen=64,
        elenum=elenum,
        lmul=1,
        description="64-bit architecture, LMUL=1 (Algorithm 2)",
        state_base=state_base if include_memory_io else None,
        num_rounds=num_rounds,
    )
