"""Program factory: pick the right Keccak program for an architecture."""

from __future__ import annotations

from . import keccak32_lmul8, keccak64_lmul1, keccak64_lmul8
from .base import KeccakProgram


def build_program(elen: int, lmul: int, elenum: int,
                  include_memory_io: bool = False,
                  num_rounds: int = 24) -> KeccakProgram:
    """Build one of the three vector Keccak programs by architecture knobs.

    ``num_rounds`` < 24 generates the Keccak-p[1600, nr] variant (e.g. 12
    rounds for the TurboSHAKE / KangarooTwelve permutation).
    """
    if elen == 64 and lmul == 1:
        return keccak64_lmul1.build(elenum, include_memory_io,
                                    num_rounds=num_rounds)
    if elen == 64 and lmul == 8:
        return keccak64_lmul8.build(elenum, include_memory_io,
                                    num_rounds=num_rounds)
    if elen == 32 and lmul == 8:
        return keccak32_lmul8.build(elenum, include_memory_io,
                                    num_rounds=num_rounds)
    raise ValueError(
        f"no program for ELEN={elen}, LMUL={lmul} — the paper evaluates "
        "(64, 1), (64, 8) and (32, 8)"
    )
