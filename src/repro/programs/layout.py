"""Keccak state layout in the vector register file and in data memory.

Implements the paper's memory/register allocation figures:

* Fig. 5 (64-bit architecture): plane y of every state lives in vector
  register y; state s occupies element indices 5s..5s+4; in data memory,
  row y is a contiguous run of EleNum 64-bit lanes.
* Fig. 6 (32-bit architecture): each lane is split into a least-significant
  and a most-significant 32-bit half.  The low halves live in vector
  registers 0..4 (and a low memory region), the high halves in vector
  registers 16..20 (and a high memory region) — no bit interleaving, so no
  pre/post transformation is needed.
"""

from __future__ import annotations

from typing import List, Sequence

from ..keccak.interleave import join_hi_lo, split_hi_lo
from ..keccak.state import KeccakState
from ..sim.vector_regfile import VectorRegfile

#: Default vector register holding plane 0 of the low halves (Fig. 6).
LO_BASE_REG = 0

#: Default vector register holding plane 0 of the high halves (Fig. 6).
HI_BASE_REG = 16


def check_capacity(elenum: int, num_states: int) -> None:
    """Validate that ``num_states`` Keccak states fit in EleNum elements."""
    if num_states < 1:
        raise ValueError(f"need at least one state, got {num_states}")
    if 5 * num_states > elenum:
        raise ValueError(
            f"{num_states} state(s) need {5 * num_states} elements per "
            f"register but EleNum is only {elenum}"
        )


# -- vector register file, 64-bit architecture (Fig. 5) -------------------------


def load_states_regfile64(regfile: VectorRegfile,
                          states: Sequence[KeccakState],
                          base_reg: int = 0) -> None:
    """Place states into the register file per the Fig. 5 allocation."""
    elenum = regfile.elements_per_register(64)
    check_capacity(elenum, len(states))
    for s, state in enumerate(states):
        for y in range(5):
            for x in range(5):
                regfile.set_element(base_reg + y, 5 * s + x, 64, state[x, y])


def read_states_regfile64(regfile: VectorRegfile, num_states: int,
                          base_reg: int = 0) -> List[KeccakState]:
    """Read states back out of the Fig. 5 allocation."""
    elenum = regfile.elements_per_register(64)
    check_capacity(elenum, num_states)
    states = []
    for s in range(num_states):
        state = KeccakState()
        for y in range(5):
            for x in range(5):
                state[x, y] = regfile.get_element(base_reg + y, 5 * s + x, 64)
        states.append(state)
    return states


# -- vector register file, 32-bit architecture (Fig. 6) ----------------------------


def load_states_regfile32(regfile: VectorRegfile,
                          states: Sequence[KeccakState],
                          lo_base: int = LO_BASE_REG,
                          hi_base: int = HI_BASE_REG) -> None:
    """Place hi/lo-split states into the register file per Fig. 6."""
    elenum = regfile.elements_per_register(32)
    check_capacity(elenum, len(states))
    for s, state in enumerate(states):
        for y in range(5):
            for x in range(5):
                hi, lo = split_hi_lo(state[x, y])
                regfile.set_element(lo_base + y, 5 * s + x, 32, lo)
                regfile.set_element(hi_base + y, 5 * s + x, 32, hi)


def read_states_regfile32(regfile: VectorRegfile, num_states: int,
                          lo_base: int = LO_BASE_REG,
                          hi_base: int = HI_BASE_REG) -> List[KeccakState]:
    """Read hi/lo-split states back out of the Fig. 6 allocation."""
    elenum = regfile.elements_per_register(32)
    check_capacity(elenum, num_states)
    states = []
    for s in range(num_states):
        state = KeccakState()
        for y in range(5):
            for x in range(5):
                lo = regfile.get_element(lo_base + y, 5 * s + x, 32)
                hi = regfile.get_element(hi_base + y, 5 * s + x, 32)
                state[x, y] = join_hi_lo(hi, lo)
        states.append(state)
    return states


# -- data memory images -------------------------------------------------------------


def memory_image64(states: Sequence[KeccakState], elenum: int) -> bytes:
    """Serialize states into the Fig. 5 memory layout (5 rows x EleNum lanes)."""
    check_capacity(elenum, len(states))
    image = bytearray(5 * elenum * 8)
    for s, state in enumerate(states):
        for y in range(5):
            for x in range(5):
                offset = (y * elenum + 5 * s + x) * 8
                image[offset : offset + 8] = state[x, y].to_bytes(8, "little")
    return bytes(image)


def parse_memory_image64(data: bytes, elenum: int,
                         num_states: int) -> List[KeccakState]:
    """Inverse of :func:`memory_image64`."""
    check_capacity(elenum, num_states)
    expected = 5 * elenum * 8
    if len(data) < expected:
        raise ValueError(f"image too small: {len(data)} < {expected}")
    states = []
    for s in range(num_states):
        state = KeccakState()
        for y in range(5):
            for x in range(5):
                offset = (y * elenum + 5 * s + x) * 8
                state[x, y] = int.from_bytes(data[offset : offset + 8],
                                             "little")
        states.append(state)
    return states


def memory_image32(states: Sequence[KeccakState], elenum: int) -> bytes:
    """Serialize states into the Fig. 6 memory layout.

    The low region (5 rows x EleNum 32-bit words) is followed by the high
    region of the same size.
    """
    check_capacity(elenum, len(states))
    region = 5 * elenum * 4
    image = bytearray(2 * region)
    for s, state in enumerate(states):
        for y in range(5):
            for x in range(5):
                hi, lo = split_hi_lo(state[x, y])
                offset = (y * elenum + 5 * s + x) * 4
                image[offset : offset + 4] = lo.to_bytes(4, "little")
                image[region + offset : region + offset + 4] = \
                    hi.to_bytes(4, "little")
    return bytes(image)


def parse_memory_image32(data: bytes, elenum: int,
                         num_states: int) -> List[KeccakState]:
    """Inverse of :func:`memory_image32`."""
    check_capacity(elenum, num_states)
    region = 5 * elenum * 4
    if len(data) < 2 * region:
        raise ValueError(f"image too small: {len(data)} < {2 * region}")
    states = []
    for s in range(num_states):
        state = KeccakState()
        for y in range(5):
            for x in range(5):
                offset = (y * elenum + 5 * s + x) * 4
                lo = int.from_bytes(data[offset : offset + 4], "little")
                hi = int.from_bytes(
                    data[region + offset : region + offset + 4], "little"
                )
                state[x, y] = join_hi_lo(hi, lo)
        states.append(state)
    return states
