"""Batch hashing: N distinct messages over N parallel Keccak states.

This is the workload the multi-state vector register file exists for
(paper Section 1: Kyber generates A, s and e from *similar but distinct*
inputs, "it would be beneficial if one or more Keccak states could work
simultaneously").  Each message gets its own sponge state; all states are
absorbed/permuted together by a single program run on the simulator, so N
messages cost the same cycle count as one.

The batch sponge handles messages of *different lengths* by sub-batching:
once a lane's message is exhausted it drops out of the absorb batches,
and the remaining active lanes keep permuting together — mirroring how
software would drive the hardware.
"""

from __future__ import annotations

import hashlib
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from ..keccak.sponge import SHA3_SUFFIX, SHAKE_SUFFIX
from ..keccak.state import KeccakState
from ..sim import engines as _engines
from ..parallel_exec import register_task_kind, run_chunks
from ..parallel_exec import shm as _shm
from ..parallel_exec.hardening import PoolStats, QuarantinedChunk, RetryPolicy
from ..parallel_exec.results import ChunkQuarantinedError
from ..parallel_exec.scheduler import (
    chunked,
    plan_spans,
    run_chunks_report,
    run_spans_report,
)
from .base import KeccakProgram
from .factory import build_program
from .session import Session


class BatchPermutation:
    """Permute up to SN states simultaneously on the simulator.

    ``num_rounds`` selects the Keccak-p[1600, nr] variant when no
    explicit program is passed (12 rounds for the TurboSHAKE/K12 leaf
    permutation; the default 24 is Keccak-f[1600]).
    """

    def __init__(self, elen: int = 64, lmul: int = 8,
                 elenum: int = 30,
                 program: Optional[KeccakProgram] = None,
                 engine: str = "auto",
                 num_rounds: int = 24) -> None:
        self.program = program or build_program(elen, lmul, elenum,
                                                include_memory_io=True,
                                                num_rounds=num_rounds)
        if self.program.state_base is None:
            raise ValueError("batch permutation needs a memory-IO program")
        self.engine = engine
        self._session = Session(engine=engine)
        self.call_count = 0
        self.total_cycles = 0
        # Batching engines (the SoA mega-batch kernels) carry many
        # messages per kernel call: their registry spec's batch width —
        # not the program's SN — is the lock-step group size.
        spec = _engines.maybe_get(self.engine)
        self._batch_width: Optional[int] = None
        if spec is not None and spec.caps.batching \
                and spec.batch_width is not None:
            self._batch_width = spec.batch_width()

    def precompile(self) -> bool:
        """Warm the code-generation caches for this permutation's program.

        Called by the pool drivers in the *parent* process before workers
        fork: the compile lands in the shared on-disk cache, so each
        worker's first chunk loads the kernel by fingerprint instead of
        recompiling.  Returns True when a kernel exists.  Engines that
        declare a ``warm`` hook in the registry (``soa``) pre-compile
        through it; of the built-ins only ``auto``/``compiled`` reach
        the program compiler.
        """
        spec = _engines.maybe_get(self.engine)
        if spec is not None and spec.caps.functional:
            if spec.warm is None:
                return False
            return bool(spec.warm(self.program))
        if self.engine not in ("auto", "compiled"):
            return False
        return self._session.warm(self.program)

    @property
    def max_states(self) -> int:
        """States permuted per call (the engine's batch width, or SN)."""
        if self._batch_width is not None:
            return self._batch_width
        return self.program.max_states

    def __call__(self, states: Sequence[KeccakState]) -> List[KeccakState]:
        if len(states) > self.max_states:
            raise ValueError(
                f"batch of {len(states)} exceeds {self.max_states} states"
            )
        result = self._session.run(self.program, states)
        self.call_count += 1
        self.total_cycles += result.stats.cycles
        return result.states


class BatchSponge:
    """N independent sponges advanced in lock-step by batch permutations."""

    def __init__(self, num_lanes: int, capacity_bits: int, suffix: int,
                 permutation: BatchPermutation) -> None:
        if num_lanes < 1:
            raise ValueError("need at least one lane")
        if num_lanes > permutation.max_states:
            raise ValueError(
                f"{num_lanes} lanes exceed the permutation's "
                f"{permutation.max_states} states"
            )
        if capacity_bits % 8 or not 0 < capacity_bits < 1600:
            raise ValueError(f"bad capacity: {capacity_bits}")
        self.num_lanes = num_lanes
        self.rate_bytes = (1600 - capacity_bits) // 8
        self.suffix = suffix
        self._permutation = permutation
        self._states = [KeccakState() for _ in range(num_lanes)]
        self._buffers = [bytearray() for _ in range(num_lanes)]
        self._squeezing = False
        self._squeeze_offsets = [0] * num_lanes

    def absorb(self, lane: int, data: bytes) -> None:
        """Buffer message bytes for one lane (no permutation yet)."""
        if self._squeezing:
            raise RuntimeError("cannot absorb after squeezing started")
        if not 0 <= lane < self.num_lanes:
            raise IndexError(f"lane out of range: {lane}")
        self._buffers[lane].extend(data)

    def _finalize(self) -> None:
        """Pad every lane and absorb all blocks with batched permutations."""
        # Build each lane's padded message, then absorb block-by-block:
        # iteration k XORs block k of every lane that has one and permutes
        # the whole batch once.  Lanes that ran out of blocks must not
        # change, so they are absorbed with *frozen* snapshots: we permute
        # only lanes still active, in sub-batches.
        padded: List[bytes] = []
        for buffer in self._buffers:
            block = bytearray(buffer)
            pad_len = self.rate_bytes - (len(block) % self.rate_bytes)
            tail = bytearray(pad_len)
            tail[0] = self.suffix
            tail[-1] ^= 0x80  # pad_len == 1 folds suffix and final bit
            block.extend(tail)
            padded.append(bytes(block))

        max_blocks = max(len(p) // self.rate_bytes for p in padded)
        for k in range(max_blocks):
            active = [i for i in range(self.num_lanes)
                      if k < len(padded[i]) // self.rate_bytes]
            for i in active:
                block = padded[i][k * self.rate_bytes:(k + 1) * self.rate_bytes]
                self._states[i].xor_bytes(block)
            # Batch-permute the active lanes together (one program run).
            permuted = self._permutation([self._states[i] for i in active])
            for slot, i in enumerate(active):
                self._states[i] = permuted[slot]
        self._squeezing = True

    def squeeze(self, length: int) -> List[bytes]:
        """Squeeze ``length`` bytes from every lane (batched permutes)."""
        if length < 0:
            raise ValueError(f"cannot squeeze {length} bytes")
        if not self._squeezing:
            self._finalize()
        outputs = [bytearray() for _ in range(self.num_lanes)]
        while any(len(o) < length for o in outputs):
            if all(off == self.rate_bytes for off in self._squeeze_offsets):
                self._states = self._permutation(self._states)
                self._squeeze_offsets = [0] * self.num_lanes
            for i in range(self.num_lanes):
                need = length - len(outputs[i])
                if need <= 0:
                    continue
                offset = self._squeeze_offsets[i]
                take = min(self.rate_bytes - offset, need)
                outputs[i].extend(
                    self._states[i].to_bytes()[offset:offset + take]
                )
                self._squeeze_offsets[i] += take
        return [bytes(o) for o in outputs]


def _resolve_batch_engine(permutation: Optional[BatchPermutation],
                          engine: Optional[str]) -> str:
    """The effective engine for one batch call (explicit > permutation)."""
    if engine is not None:
        resolved = _engines.validate(engine)
        if permutation is not None and permutation.engine != resolved:
            raise ValueError(
                f"engine={resolved!r} conflicts with the permutation's "
                f"engine {permutation.engine!r}; pass one or the other")
        return resolved
    if permutation is not None:
        return permutation.engine
    return "auto"


def _warn_permutation_with_workers() -> None:
    warnings.warn(
        "passing permutation= together with workers= is deprecated: the "
        "permutation object is not used by the pool — only its "
        "(elen, lmul, elenum) and engine are; pass elen=/lmul=/elenum=/"
        "engine= to run_many (or this function's engine=) instead",
        DeprecationWarning, stacklevel=3)


def batch_sha3_256(messages: Sequence[bytes],
                   permutation: Optional[BatchPermutation] = None,
                   workers: Optional[int] = None,
                   engine: Optional[str] = None,
                   transport: str = "auto") -> List[bytes]:
    """SHA3-256 of ``messages`` with batched simulator permutations.

    Without ``workers`` the batch must fit the permutation's lock-step
    width (SN states — or the engine's batch width for batching engines
    like ``soa``).  With ``workers`` the batch may be any size: it is
    split into lock-step groups, and ``workers > 1`` distributes those
    groups across a process pool via :func:`run_many` — digests come
    back in message order either way.  ``engine`` selects the execution
    engine (default: the permutation's, or ``auto``); it must agree
    with an explicitly passed permutation.  ``transport`` picks the
    pool's byte transport exactly as in :func:`run_many` (shm arenas vs
    pickled queues; only meaningful together with ``workers``).
    """
    resolved = _resolve_batch_engine(permutation, engine)
    if workers is not None:
        if permutation is not None:
            _warn_permutation_with_workers()
        arch = _arch_of(permutation)
        return run_many(messages, algorithm="sha3_256", workers=workers,
                        elen=arch[0], lmul=arch[1], elenum=arch[2],
                        engine=resolved, transport=transport)
    perm = permutation or BatchPermutation(engine=resolved)
    sponge = BatchSponge(len(messages), 512, SHA3_SUFFIX, perm)
    for lane, message in enumerate(messages):
        sponge.absorb(lane, message)
    return [d[:32] for d in sponge.squeeze(32)]


def batch_shake128(messages: Sequence[bytes], length: int,
                   permutation: Optional[BatchPermutation] = None,
                   workers: Optional[int] = None,
                   engine: Optional[str] = None,
                   transport: str = "auto") -> List[bytes]:
    """SHAKE128 outputs of ``messages``, batched on the simulator.

    ``workers``, ``engine`` and ``transport`` behave as in
    :func:`batch_sha3_256`.
    """
    resolved = _resolve_batch_engine(permutation, engine)
    if workers is not None:
        if permutation is not None:
            _warn_permutation_with_workers()
        arch = _arch_of(permutation)
        return run_many(messages, algorithm="shake128", length=length,
                        workers=workers, elen=arch[0], lmul=arch[1],
                        elenum=arch[2], engine=resolved,
                        transport=transport)
    perm = permutation or BatchPermutation(engine=resolved)
    sponge = BatchSponge(len(messages), 256, SHAKE_SUFFIX, perm)
    for lane, message in enumerate(messages):
        sponge.absorb(lane, message)
    return sponge.squeeze(length)


# -- process-parallel front end ---------------------------------------------------

#: Architecture key: (ELEN, LMUL, EleNum).
_ArchKey = Tuple[int, int, int]

#: Per-process permutation cache, keyed (arch, engine, rounds).  In a
#: worker this is the warm state the pool exists for: the first chunk
#: predecodes the program (and, on the compiled engine, loads the
#: kernel the parent pre-compiled from the on-disk cache); every later
#: chunk reuses them.
_PERMUTATIONS: Dict[Tuple[_ArchKey, str, int], BatchPermutation] = {}

_HASH_TASK_KIND = "repro.batch_hash"
_HASH_SHM_TASK_KIND = "repro.batch_hash_shm"

#: Sponge shape of every flat batch algorithm:
#: (capacity bits, domain suffix, permutation rounds, fixed digest size
#: or None when the caller's ``length`` decides).  ``k12_leaf`` is the
#: KangarooTwelve leaf sponge — TurboSHAKE128 with the tree's leaf
#: domain byte, fixed 32-byte chaining values.
_SPONGE_ALGORITHMS: Dict[str, Tuple[int, int, int, Optional[int]]] = {
    "sha3_256": (512, SHA3_SUFFIX, 24, 32),
    "shake128": (256, SHAKE_SUFFIX, 24, None),
    "shake256": (512, SHAKE_SUFFIX, 24, None),
    "k12_leaf": (256, 0x0B, 12, 32),
}

#: Whole-message tree algorithms: each message is hashed by the
#: tree-hashing front end (:mod:`repro.keccak.treehash`) *inside* the
#: worker — the leaf batching happens in-process there, so pool workers
#: each run their own two-level tree.
_TREE_ALGORITHMS = ("k12", "parallelhash128", "parallelhash256")


def supported_algorithms() -> Tuple[str, ...]:
    """Every algorithm name the batch drivers accept."""
    return tuple(_SPONGE_ALGORITHMS) + _TREE_ALGORITHMS


def _validate_algorithm(algorithm: str) -> str:
    if algorithm not in _SPONGE_ALGORITHMS \
            and algorithm not in _TREE_ALGORITHMS:
        raise ValueError(f"unsupported algorithm: {algorithm!r}")
    return algorithm


def digest_size(algorithm: str, length: int) -> int:
    """Output bytes per message for one batch call.

    Fixed-output algorithms (``sha3_256``, ``k12_leaf`` chaining
    values) ignore ``length``; the XOFs and tree algorithms honor it.
    """
    _validate_algorithm(algorithm)
    fixed = _SPONGE_ALGORITHMS.get(algorithm, (0, 0, 0, None))[3]
    return fixed if fixed is not None else length


def _arch_of(permutation: Optional[BatchPermutation]) -> _ArchKey:
    if permutation is None:
        return (64, 8, 30)
    program = permutation.program
    return (program.elen, program.lmul, program.elenum)


def _cached_permutation(arch: _ArchKey, engine: str = "auto",
                        num_rounds: int = 24) -> BatchPermutation:
    key = (arch, engine, num_rounds)
    perm = _PERMUTATIONS.get(key)
    if perm is None:
        elen, lmul, elenum = arch
        perm = _PERMUTATIONS[key] = BatchPermutation(elen, lmul, elenum,
                                                     engine=engine,
                                                     num_rounds=num_rounds)
    return perm


def _batch_digest(messages: Sequence[bytes], algorithm: str, length: int,
                  perm: BatchPermutation) -> List[bytes]:
    """One lock-step group of any flat sponge algorithm on ``perm``."""
    capacity_bits, suffix, _rounds, fixed = _SPONGE_ALGORITHMS[algorithm]
    sponge = BatchSponge(len(messages), capacity_bits, suffix, perm)
    for lane, message in enumerate(messages):
        sponge.absorb(lane, message)
    return sponge.squeeze(fixed if fixed is not None else length)


def _hash_tree_messages(algorithm: str, length: int, engine: str,
                        messages: Sequence[bytes]) -> List[bytes]:
    """Whole-message tree hashing: each message is its own leaf tree."""
    from ..keccak import treehash as _treehash
    from ..keccak.kangarootwelve import kangarootwelve as _k12

    if algorithm == "k12":
        return [_k12(bytes(m), length, engine=engine)
                for m in messages]
    final = _treehash.parallelhash128 if algorithm == "parallelhash128" \
        else _treehash.parallelhash256
    return [final(bytes(m), length, engine=engine) for m in messages]


def _hash_messages(algorithm: str, length: int, arch: _ArchKey,
                   engine: str, messages: Sequence[bytes]) -> List[bytes]:
    """Hash ``messages`` on this process's cached execution state.

    The single hashing body shared by the pickle chunk task, the
    shared-memory span task and the serial paths.  Tree algorithms
    (``k12``, ``parallelhash128/256``) hash whole messages through the
    tree front end; engines declaring a ``digest_batch`` hook
    (``reference``) take the whole batch at once; everything else runs
    in lock-step groups on the cached permutation (SN states, or the
    SoA engine's batch width), with the rounds the algorithm demands.
    """
    _validate_algorithm(algorithm)
    engine = _engines.validate(engine)
    if algorithm in _TREE_ALGORITHMS:
        return _hash_tree_messages(algorithm, length, engine, messages)
    spec = _engines.maybe_get(engine)
    if spec is not None and spec.digest_batch is not None:
        return spec.digest_batch(algorithm, length, messages)
    num_rounds = _SPONGE_ALGORITHMS[algorithm][2]
    perm = _cached_permutation(tuple(arch), engine, num_rounds)
    sn = perm.max_states
    digests: List[bytes] = []
    for start in range(0, len(messages), sn):
        digests.extend(_batch_digest(messages[start:start + sn],
                                     algorithm, length, perm))
    return digests


def hash_messages(algorithm: str, length: int, arch: _ArchKey,
                  engine: str, messages: Sequence[bytes]) -> List[bytes]:
    """Hash ``messages`` serially on this process's cached state.

    The public face of :func:`_hash_messages` for in-process callers
    that manage their own batching (the serving executors): same warm
    permutation cache and engine dispatch as the pool task bodies, no
    pool, no chunking policy.
    """
    return _hash_messages(algorithm, length, tuple(arch), engine, messages)


def _hash_chunk(payload) -> List[bytes]:
    """Pickle-transport task body (runs in workers *and* serially).

    ``payload`` is ``(algorithm, length, arch, messages)`` with an
    optional trailing ``engine`` (older checkpoint manifests carry
    4-tuples, which default to ``auto``); returns one digest per
    message, in order.
    """
    algorithm, length, arch, messages = payload[:4]
    engine = payload[4] if len(payload) > 4 else "auto"
    return _hash_messages(algorithm, length, tuple(arch), engine, messages)


def _hash_span_shm(payload) -> Tuple[int, int]:
    """Shared-memory transport task body: hash one span in place.

    ``payload`` is the control descriptor
    ``(segment_name, start, stop, algorithm, length, arch, engine)`` —
    no message bytes cross the queue.  The worker attaches the parent's
    arena (cached across spans), reads the packed messages, writes the
    digests into the arena's digest region and acknowledges with just
    the span range; the parent reads the digests back in place.
    """
    segment_name, start, stop, algorithm, length, arch, engine = payload
    arena = _shm.attach_arena(segment_name)
    spec = _engines.maybe_get(_engines.validate(engine))
    if spec is not None and spec.digest_batch is not None:
        # Whole-message engines hash straight from the shared buffer —
        # no per-message copy on the worker side at all.
        messages: Sequence[bytes] = arena.read_message_views(start, stop)
    else:
        messages = arena.read_messages(start, stop)
    digests = _hash_messages(algorithm, length, tuple(arch), engine,
                             messages)
    arena.write_digests(start, digests)
    return (start, stop)


register_task_kind(_HASH_TASK_KIND, _hash_chunk)
register_task_kind(_HASH_SHM_TASK_KIND, _hash_span_shm)


def _algorithm_rounds(algorithm: str) -> int:
    """Permutation rounds of the kernels ``algorithm`` runs on.

    Tree algorithms report their *leaf* rounds (12 for K12, 24 for
    ParallelHash) — that is the kernel the pool should pre-warm.
    """
    if algorithm == "k12":
        return 12
    if algorithm in _TREE_ALGORITHMS:
        return 24
    return _SPONGE_ALGORITHMS[algorithm][2]


def _prepare_chunks(messages: Sequence[bytes], algorithm: str, length: int,
                    arch: _ArchKey, chunk_size: Optional[int],
                    engine: str = "auto") -> List[Tuple]:
    _validate_algorithm(algorithm)
    if chunk_size is None:
        if algorithm in _TREE_ALGORITHMS:
            chunk_size = 1  # each message is a whole leaf tree
        else:
            sn = _cached_permutation(arch, engine,
                                     _algorithm_rounds(algorithm)).max_states
            chunk_size = 4 * sn
    payloads = [bytes(m) for m in messages]
    # ChunkViews reference `payloads` instead of copying each slice; a
    # view pickles as the plain slice list (and reprs identically, so
    # checkpoint fingerprints from eager-list manifests still match).
    return [(algorithm, length, arch, chunk, engine)
            for chunk in chunked(payloads, chunk_size)]


def _warm_parent(arch: _ArchKey, engine: str,
                 workers: Optional[int], num_rounds: int = 24) -> None:
    """Pre-compile in the parent so pool workers warm-start from disk."""
    if workers and workers > 1:
        _cached_permutation(arch, engine, num_rounds).precompile()


class BatchOutcome:
    """One batch run's digests plus its full failure/recovery report.

    ``digests`` is aligned with the input messages; a message whose
    chunk was quarantined gets ``None`` instead of a digest, so partial
    results stay order-preserving.
    """

    def __init__(self, digests: List[Optional[bytes]],
                 quarantined: List[QuarantinedChunk],
                 stats: PoolStats) -> None:
        self.digests = digests
        self.quarantined = quarantined
        self.stats = stats

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def flat(self) -> List[bytes]:
        """All digests; raises if any work unit was quarantined."""
        if self.quarantined:
            raise ChunkQuarantinedError(
                [chunk.chunk_index for chunk in self.quarantined])
        return list(self.digests)  # type: ignore[arg-type]

    def summary(self) -> str:
        lines = [self.stats.summary()]
        if self.quarantined:
            lines.append(f"{len(self.quarantined)} chunk(s) quarantined:")
            lines.extend(f"  {chunk}" for chunk in self.quarantined)
        else:
            lines.append("no chunks quarantined")
        return "\n".join(lines)


def _batch_fingerprint(algorithm: str, length: int, arch: _ArchKey,
                       engine: str, payloads: Sequence[bytes]) -> str:
    """One content hash for a whole span-scheduled batch.

    Span checkpoints cannot fingerprint per-chunk payloads (work units
    are cut while the run executes), so the manifest is guarded by a
    single digest over the run parameters and every message byte.
    """
    h = hashlib.sha256()
    h.update(repr((algorithm, length, tuple(arch), engine,
                   len(payloads))).encode())
    for message in payloads:
        h.update(len(message).to_bytes(8, "little"))
        h.update(message)
    return h.hexdigest()


def _run_many_shm(payloads: List[bytes], algorithm: str, length: int,
                  arch: _ArchKey, workers: int,
                  timeout: Optional[float], max_retries: int,
                  policy: Optional[RetryPolicy],
                  checkpoint: Optional[str],
                  engine: str) -> BatchOutcome:
    """The zero-copy batch path: arena transport + work-stealing spans.

    The parent packs every message into one shared-memory arena, plans
    cost-balanced spans aligned to the engine's lock-step width, and the
    span scheduler dispatches only small descriptors; workers write
    digests into the arena in place and the parent reads them back.  The
    arena lease is released (back to the process-wide pool, for the next
    batch to reuse) whether the run completes, quarantines or raises.
    """
    _validate_algorithm(algorithm)
    engine = _engines.validate(engine)
    out_size = digest_size(algorithm, length)
    spec = _engines.maybe_get(engine)
    num_rounds = _algorithm_rounds(algorithm)
    if algorithm in _TREE_ALGORITHMS:
        # Whole-message trees: the leaf batching happens inside each
        # worker, so spans need no lock-step alignment — but the leaf
        # kernels are still worth pre-warming in the parent.
        lane_width = 1
        _warm_parent(arch, engine, workers, num_rounds)
    elif spec is not None and spec.digest_batch is not None:
        lane_width = 1  # whole-message engines have no lock-step groups
    else:
        lane_width = _cached_permutation(arch, engine,
                                         num_rounds).max_states
        _warm_parent(arch, engine, workers, num_rounds)
    sizes = [len(message) for message in payloads]
    spans = plan_spans(sizes, workers, lane_width=lane_width)
    fingerprint = ""
    if checkpoint is not None:
        fingerprint = _batch_fingerprint(algorithm, length, arch, engine,
                                         payloads)
    pool = _shm.arena_pool()
    arena = pool.acquire(_shm.required_size(sizes, out_size))
    try:
        arena.pack(payloads, out_size)
        segment = arena.name

        def payload(start: int, stop: int) -> Tuple:
            return (segment, start, stop, algorithm, length, tuple(arch),
                    engine)

        def collect(start: int, stop: int, _ack) -> List[bytes]:
            return arena.read_digests(start, stop)

        report = run_spans_report(
            _HASH_SHM_TASK_KIND, len(payloads), workers=workers,
            payload=payload, collect=collect, spans=spans,
            lane_width=lane_width, timeout=timeout,
            max_retries=max_retries, policy=policy, checkpoint=checkpoint,
            fingerprint=fingerprint, transport="shm")
    finally:
        pool.release(arena)
    return BatchOutcome(report.results, report.quarantined, report.stats)


def run_many_report(messages: Sequence[bytes], *,
                    algorithm: str = "sha3_256",
                    length: int = 32,
                    workers: Optional[int] = None,
                    elen: int = 64, lmul: int = 8, elenum: int = 30,
                    chunk_size: Optional[int] = None,
                    timeout: Optional[float] = None,
                    max_retries: int = 2,
                    policy: Optional[RetryPolicy] = None,
                    checkpoint: Optional[str] = None,
                    engine: str = "auto",
                    transport: str = "auto") -> BatchOutcome:
    """:func:`run_many` with the full :class:`BatchOutcome` report.

    Unlike :func:`run_many` this never raises on quarantine: poisoned
    chunks surface as ``None`` digests plus a
    :class:`~repro.parallel_exec.hardening.QuarantinedChunk` record.
    """
    arch = (elen, lmul, elenum)
    payloads = [bytes(m) for m in messages]
    mode = _shm.choose_transport(transport, sum(len(m) for m in payloads),
                                 workers or 1)
    if mode == "shm":
        return _run_many_shm(payloads, algorithm, length, arch,
                             workers or 1, timeout, max_retries, policy,
                             checkpoint, engine)
    chunks = _prepare_chunks(payloads, algorithm, length, arch, chunk_size,
                             engine)
    _warm_parent(arch, engine, workers, _algorithm_rounds(algorithm))
    report = run_chunks_report(_HASH_TASK_KIND, chunks,
                               workers=workers or 1, timeout=timeout,
                               max_retries=max_retries, policy=policy,
                               checkpoint=checkpoint)
    digests: List[Optional[bytes]] = []
    for chunk, values in zip(chunks, report.chunk_results):
        if values is None:
            digests.extend([None] * len(chunk[3]))
        else:
            digests.extend(values)
    return BatchOutcome(digests, report.quarantined, report.stats)


def run_many(messages: Sequence[bytes], *,
             algorithm: str = "sha3_256",
             length: int = 32,
             workers: Optional[int] = None,
             elen: int = 64, lmul: int = 8, elenum: int = 30,
             chunk_size: Optional[int] = None,
             timeout: Optional[float] = None,
             max_retries: int = 2,
             policy: Optional[RetryPolicy] = None,
             checkpoint: Optional[str] = None,
             engine: str = "auto",
             transport: str = "auto") -> List[bytes]:
    """Hash arbitrarily many messages on the simulator, in parallel.

    Messages are split into chunks, each chunk is hashed in SN-sized
    lock-step batches (SN states per program run, the paper's Table 7/8
    batching), and chunks are distributed across ``workers`` persistent
    processes.  Digests return in message order; every digest matches
    ``hashlib`` (or, for the algorithms hashlib lacks, the pure-Python
    reference).  ``algorithm`` accepts the flat sponge algorithms
    (``sha3_256``, ``shake128``, ``shake256``, the ``k12_leaf``
    chaining-value sponge) and the whole-message tree algorithms
    (``k12``, ``parallelhash128``, ``parallelhash256``) — tree messages
    are hashed one per work unit, with the leaf batching happening
    inside each worker.  ``workers=None``/``1`` runs serially in this process —
    same code path, no pool.  ``chunk_size`` defaults to four SN groups,
    big enough to amortize queue IPC, small enough to load-balance;
    ``timeout``/``max_retries`` (or a full
    :class:`~repro.parallel_exec.hardening.RetryPolicy`) are the
    per-chunk recovery policy of
    :func:`repro.parallel_exec.run_chunked`, and ``checkpoint`` names a
    JSON manifest enabling kill-and-resume.  ``engine`` selects the
    simulator execution engine for every chunk (default ``auto``); with
    ``workers > 1`` the parent pre-compiles once so workers load the
    kernel from the shared on-disk cache.

    ``transport`` picks how message bytes reach the workers:
    ``"pickle"`` serializes chunks through the task queues (the
    original path), ``"shm"`` packs the batch into a shared-memory
    arena that workers read from — and write digests into — in place,
    with adaptive work-stealing spans instead of fixed chunks.  The
    default ``"auto"`` uses shm for multi-worker batches big enough to
    amortize packing and falls back to pickle otherwise (serial runs,
    tiny batches, platforms without POSIX shared memory).
    """
    arch = (elen, lmul, elenum)
    payloads = [bytes(m) for m in messages]
    mode = _shm.choose_transport(transport, sum(len(m) for m in payloads),
                                 workers or 1)
    if mode == "shm":
        outcome = _run_many_shm(payloads, algorithm, length, arch,
                                workers or 1, timeout, max_retries, policy,
                                checkpoint, engine)
        return outcome.flat()
    chunks = _prepare_chunks(payloads, algorithm, length, arch, chunk_size,
                             engine)
    _warm_parent(arch, engine, workers, _algorithm_rounds(algorithm))
    return run_chunks(_HASH_TASK_KIND, chunks, workers=workers or 1,
                      timeout=timeout, max_retries=max_retries,
                      policy=policy, checkpoint=checkpoint)
