"""Scalar Keccak baseline using *bit interleaving* (paper Section 3.2).

The alternative 32-bit lane representation the paper discusses: even bits
of each 64-bit lane in one word, odd bits in the other.  A 64-bit rotation
then becomes two independent, branchless 32-bit rotations — cheaper than
the hi/lo split's double-word shifting — but the data must be interleaved
before the permutation and deinterleaved after ("extra efforts are
required to separate the lane into odd parts and even parts", §3.2).

This program measures both sides of that trade-off in actual RV32IM
machine code: the state arrives in natural (hi/lo) form, is converted
in place by an in-assembly interleave pass, permuted for 24 rounds in the
interleaved domain, and converted back.  Labels around each phase let the
harness attribute cycles to conversion vs permutation.

Additional register conventions beyond :mod:`scalar_keccak`'s:

======  ==========================================
s3      rotation-table base (rotE at +0, rotO at +32, swap at +64)
s4      pi destination-index table base
======  ==========================================
"""

from __future__ import annotations

from typing import List, Tuple

from ..keccak.constants import RHO_OFFSETS, ROUND_CONSTANTS
from ..keccak.interleave import interleave
from ..keccak.state import KeccakState
from ..sim.memory import DataMemory
from .base import KeccakProgram
from .scalar_keccak import pi_destination_table

#: Data-memory map.
STATE_BASE = 0x1000   # 25 lanes x 8 bytes; natural in/out, interleaved inside
B_BASE = 0x1100       # rho+pi scratch buffer
C_BASE = 0x1200       # theta parities
RC_BASE = 0x1300      # interleaved round constants (even word, odd word)
ROT_BASE = 0x1400     # rotE (25 B) @ +0, rotO @ +32, swap @ +64
PI_BASE = 0x1480      # pi destination indices
IDX1_BASE = 0x14C0    # (x+1) mod 5
IDX2_BASE = 0x14C8    # (x+2) mod 5
IDX4_BASE = 0x14D0    # (x+4) mod 5


def rotation_tables() -> Tuple[List[int], List[int], List[int]]:
    """Per-lane (rotE, rotO, swap) for interleaved rho rotations.

    Rotating an interleaved lane left by n: if n is even, both words
    rotate by n/2 in place; if n is odd, the words swap roles and rotate
    by (n+1)/2 (new even, from old odd) and n/2 (new odd, from old even).
    """
    rot_e, rot_o, swap = [], [], []
    for i in range(25):
        n = RHO_OFFSETS[i % 5][i // 5]
        if n % 2 == 0:
            rot_e.append((n // 2) % 32)
            rot_o.append((n // 2) % 32)
            swap.append(0)
        else:
            rot_e.append(((n + 1) // 2) % 32)
            rot_o.append((n // 2) % 32)
            swap.append(1)
    return rot_e, rot_o, swap


_GATHER_EVEN = """\
    and  {d}, {w}, a0
    srli t5, {d}, 1
    or   {d}, {d}, t5
    and  {d}, {d}, a1
    srli t5, {d}, 2
    or   {d}, {d}, t5
    and  {d}, {d}, a2
    srli t5, {d}, 4
    or   {d}, {d}, t5
    and  {d}, {d}, a3
    srli t5, {d}, 8
    or   {d}, {d}, t5
    and  {d}, {d}, a4
"""

_SPREAD16 = """\
    and  {d}, {w}, a4
    slli t5, {d}, 8
    or   {d}, {d}, t5
    and  {d}, {d}, a3
    slli t5, {d}, 4
    or   {d}, {d}, t5
    and  {d}, {d}, a2
    slli t5, {d}, 2
    or   {d}, {d}, t5
    and  {d}, {d}, a1
    slli t5, {d}, 1
    or   {d}, {d}, t5
    and  {d}, {d}, a0
"""


def _conversion_constants() -> str:
    return """\
    li a0, 0x55555555
    li a1, 0x33333333
    li a2, 0x0F0F0F0F
    li a3, 0x00FF00FF
    li a4, 0x0000FFFF
"""


def _interleave_pass() -> str:
    """Natural (lo, hi) -> interleaved (even, odd), in place, looped."""
    body = f"""\
interleave_start:
{_conversion_constants()}\
    li   t0, 0
interleave_loop:
    slli t1, t0, 3
    add  t1, t1, s0
    lw   t2, 0(t1)            # lo 32 bits of the lane
    lw   t3, 4(t1)            # hi 32 bits
{_GATHER_EVEN.format(d="t4", w="t2")}\
{_GATHER_EVEN.format(d="t6", w="t3")}\
    slli t6, t6, 16
    or   t4, t4, t6           # even word
    srli t2, t2, 1
    srli t3, t3, 1
{_GATHER_EVEN.format(d="a5", w="t2")}\
{_GATHER_EVEN.format(d="t6", w="t3")}\
    slli t6, t6, 16
    or   a5, a5, t6           # odd word
    sw   t4, 0(t1)
    sw   a5, 4(t1)
    addi t0, t0, 1
    blt  t0, a7, interleave_loop
interleave_end:
"""
    return body


def _deinterleave_pass() -> str:
    """Interleaved (even, odd) -> natural (lo, hi), in place, looped."""
    body = f"""\
deinterleave_start:
{_conversion_constants()}\
    li   t0, 0
deinterleave_loop:
    slli t1, t0, 3
    add  t1, t1, s0
    lw   t2, 0(t1)            # even word
    lw   t3, 4(t1)            # odd word
{_SPREAD16.format(d="t4", w="t2")}\
{_SPREAD16.format(d="t6", w="t3")}\
    slli t6, t6, 1
    or   t4, t4, t6           # lo 32 bits
    srli t2, t2, 16
    srli t3, t3, 16
{_SPREAD16.format(d="a5", w="t2")}\
{_SPREAD16.format(d="t6", w="t3")}\
    slli t6, t6, 1
    or   a5, a5, t6           # hi 32 bits
    sw   t4, 0(t1)
    sw   a5, 4(t1)
    addi t0, t0, 1
    blt  t0, a7, deinterleave_loop
deinterleave_end:
"""
    return body


_PERMUTATION = """\
    li a6, 32
round_loop:
round_body:
    # ---- theta, part 1: C[x] = XOR of the column (word-wise, both words)
    li t0, 0
theta_c_loop:
    slli t1, t0, 3
    add  t1, t1, s0
    lw   t2, 0(t1)
    lw   t3, 4(t1)
    lw   t4, 40(t1)
    lw   t5, 44(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    lw   t4, 80(t1)
    lw   t5, 84(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    lw   t4, 120(t1)
    lw   t5, 124(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    lw   t4, 160(t1)
    lw   t5, 164(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    slli t4, t0, 3
    add  t4, t4, s7
    sw   t2, 0(t4)
    sw   t3, 4(t4)
    addi t0, t0, 1
    blt  t0, s8, theta_c_loop
    # ---- theta, part 2: D = C[(x+4)%5] ^ ROL1(C[(x+1)%5]); A ^= D
    li t0, 0
theta_d_loop:
    add  t1, t0, s9
    lbu  t1, 0(t1)
    slli t1, t1, 3
    add  t1, t1, s7
    lw   t2, 0(t1)            # C1 even
    lw   t3, 4(t1)            # C1 odd
    # interleaved ROL1: even' = rotl32(odd, 1); odd' = even
    srli t5, t3, 31
    slli t4, t3, 1
    or   t4, t4, t5
    mv   t3, t2
    mv   t2, t4
    add  t1, t0, s11
    lbu  t1, 0(t1)
    slli t1, t1, 3
    add  t1, t1, s7
    lw   t4, 0(t1)
    lw   t5, 4(t1)
    xor  t2, t2, t4           # D even
    xor  t3, t3, t5           # D odd
    slli t1, t0, 3
    add  t1, t1, s0
    lw   t4, 0(t1)
    xor  t4, t4, t2
    sw   t4, 0(t1)
    lw   t4, 4(t1)
    xor  t4, t4, t3
    sw   t4, 4(t1)
    lw   t4, 40(t1)
    xor  t4, t4, t2
    sw   t4, 40(t1)
    lw   t4, 44(t1)
    xor  t4, t4, t3
    sw   t4, 44(t1)
    lw   t4, 80(t1)
    xor  t4, t4, t2
    sw   t4, 80(t1)
    lw   t4, 84(t1)
    xor  t4, t4, t3
    sw   t4, 84(t1)
    lw   t4, 120(t1)
    xor  t4, t4, t2
    sw   t4, 120(t1)
    lw   t4, 124(t1)
    xor  t4, t4, t3
    sw   t4, 124(t1)
    lw   t4, 160(t1)
    xor  t4, t4, t2
    sw   t4, 160(t1)
    lw   t4, 164(t1)
    xor  t4, t4, t3
    sw   t4, 164(t1)
    addi t0, t0, 1
    blt  t0, s8, theta_d_loop
    # ---- rho + pi: branchless interleaved rotations (the win of §3.2)
    li t0, 0
rhopi_loop:
    slli t1, t0, 3
    add  t1, t1, s0
    lw   a0, 0(t1)            # even
    lw   a1, 4(t1)            # odd
    add  t2, t0, s3
    lbu  a2, 0(t2)            # rotE
    lbu  a3, 32(t2)           # rotO
    lbu  a4, 64(t2)           # swap flag (odd rotation amount)
    beqz a4, rho_noswap
    mv   t3, a0
    mv   a0, a1
    mv   a1, t3
rho_noswap:
    sub  t3, a6, a2
    sll  t4, a0, a2
    srl  t5, a0, t3
    or   a0, t4, t5           # even' = rotl32(., rotE)
    sub  t3, a6, a3
    sll  t4, a1, a3
    srl  t5, a1, t3
    or   a1, t4, t5           # odd' = rotl32(., rotO)
    add  t2, t0, s4
    lbu  t2, 0(t2)
    slli t2, t2, 3
    add  t2, t2, s1
    sw   a0, 0(t2)
    sw   a1, 4(t2)
    addi t0, t0, 1
    blt  t0, a7, rhopi_loop
    # ---- chi (word-wise, identical to the hi/lo variant)
    li   a3, 0
    li   a4, 0
chi_y_loop:
    li   t1, 0
chi_x_loop:
    add  t2, t1, s9
    lbu  t2, 0(t2)
    add  t3, t1, s10
    lbu  t3, 0(t3)
    slli t2, t2, 3
    add  t2, t2, a4
    add  t2, t2, s1
    lw   t4, 0(t2)
    lw   t5, 4(t2)
    xori t4, t4, -1
    xori t5, t5, -1
    slli t3, t3, 3
    add  t3, t3, a4
    add  t3, t3, s1
    lw   a0, 0(t3)
    lw   a1, 4(t3)
    and  t4, t4, a0
    and  t5, t5, a1
    slli t3, t1, 3
    add  t3, t3, a4
    add  t3, t3, s1
    lw   a0, 0(t3)
    lw   a1, 4(t3)
    xor  t4, t4, a0
    xor  t5, t5, a1
    add  t3, t3, s0
    sub  t3, t3, s1
    sw   t4, 0(t3)
    sw   t5, 4(t3)
    addi t1, t1, 1
    blt  t1, s8, chi_x_loop
    addi a4, a4, 40
    addi a3, a3, 1
    blt  a3, s8, chi_y_loop
    # ---- iota with interleaved round constants
    slli t1, s5, 3
    add  t1, t1, s2
    lw   t2, 0(t1)
    lw   t3, 4(t1)
    lw   t4, 0(s0)
    lw   t5, 4(s0)
    xor  t4, t4, t2
    xor  t5, t5, t3
    sw   t4, 0(s0)
    sw   t5, 4(s0)
round_end:
    addi s5, s5, 1
    blt  s5, s6, round_loop
"""


def build() -> KeccakProgram:
    """Generate the bit-interleaved scalar Keccak baseline."""
    source = "\n".join([
        "# Scalar Keccak-f[1600], bit-interleaved representation (§3.2)",
        f".equ STATE, {STATE_BASE:#x}",
        f".equ BBUF, {B_BASE:#x}",
        f".equ CBUF, {C_BASE:#x}",
        f".equ RCTAB, {RC_BASE:#x}",
        f".equ ROTTAB, {ROT_BASE:#x}",
        f".equ PITAB, {PI_BASE:#x}",
        f".equ IDX1, {IDX1_BASE:#x}",
        f".equ IDX2, {IDX2_BASE:#x}",
        f".equ IDX4, {IDX4_BASE:#x}",
        "    li s0, STATE",
        "    li s1, BBUF",
        "    li s2, RCTAB",
        "    li s3, ROTTAB",
        "    li s4, PITAB",
        "    li s5, 0",
        "    li s6, 24",
        "    li s7, CBUF",
        "    li s8, 5",
        "    li s9, IDX1",
        "    li s10, IDX2",
        "    li s11, IDX4",
        "    li a7, 25",
        _interleave_pass(),
        _PERMUTATION,
        _deinterleave_pass(),
        "    ecall",
    ])
    return KeccakProgram(
        name="scalar_keccak_interleaved",
        source=source,
        elen=32,
        elenum=1,
        lmul=1,
        description="bit-interleaved scalar baseline (Section 3.2 "
                    "alternative)",
        state_base=STATE_BASE,
    )


def setup_data(memory: DataMemory, state: KeccakState) -> None:
    """Write the state (natural form) and all lookup tables."""
    for i, lane in enumerate(state.lanes):
        memory.store_bytes(STATE_BASE + 8 * i, lane.to_bytes(8, "little"))
    for i, rc in enumerate(ROUND_CONSTANTS):
        even, odd = interleave(rc)
        memory.store(RC_BASE + 8 * i, 32, even)
        memory.store(RC_BASE + 8 * i + 4, 32, odd)
    rot_e, rot_o, swap = rotation_tables()
    memory.store_bytes(ROT_BASE, bytes(rot_e))
    memory.store_bytes(ROT_BASE + 32, bytes(rot_o))
    memory.store_bytes(ROT_BASE + 64, bytes(swap))
    memory.store_bytes(PI_BASE, bytes(pi_destination_table()))
    memory.store_bytes(IDX1_BASE, bytes((x + 1) % 5 for x in range(5)))
    memory.store_bytes(IDX2_BASE, bytes((x + 2) % 5 for x in range(5)))
    memory.store_bytes(IDX4_BASE, bytes((x + 4) % 5 for x in range(5)))


def read_state(memory: DataMemory) -> KeccakState:
    """Read the permuted state back (natural form after deinterleave)."""
    return KeccakState([
        int.from_bytes(memory.load_bytes(STATE_BASE + 8 * i, 8), "little")
        for i in range(25)
    ])
