"""Scalar Keccak-f[1600] baseline for the Ibex core (RV32IM only).

The paper's baseline runs the PQ-M4 project's C Keccak code on the plain
Ibex core (no vector unit).  We reproduce it with a looped, table-driven
RV32IM assembly program in the style such C compiles to: the 1600-bit state
lives in data memory as 25 lanes of two 32-bit words (lo at +0, hi at +4),
64-bit lane operations are synthesized from word pairs, and the rho/pi/chi
index arithmetic reads small lookup tables — no unrolling, no
bit-interleaving.

Register conventions (all callee-saved registers preloaded before the loop):

======  ==========================================
s0      state base address A
s1      scratch buffer base B (rho+pi output)
s2      round-constant table base
s3      rho rotation-offset table base (byte per lane)
s4      pi destination-index table base (byte per lane)
s5      round counter
s6      24
s7      theta column-parity buffer C
s8      constant 5
s9      (x+1) mod 5 byte table
s10     (x+2) mod 5 byte table
s11     (x+4) mod 5 byte table
a6      constant 32
a7      constant 25
======  ==========================================
"""

from __future__ import annotations

from typing import List

from ..keccak.constants import RHO_OFFSETS, ROUND_CONSTANTS
from ..keccak.state import KeccakState
from ..sim.memory import DataMemory
from .base import KeccakProgram

#: Data-memory map of the scalar program.
STATE_BASE = 0x1000   # 25 lanes x 8 bytes
B_BASE = 0x1100       # rho+pi scratch buffer, 200 bytes
C_BASE = 0x1200       # theta parities, 5 lanes x 8 bytes
RC_BASE = 0x1300      # 24 round constants x 8 bytes
RHO_BASE = 0x1400     # 25 rotation offsets (bytes)
PI_BASE = 0x1420      # 25 destination indices (bytes)
IDX1_BASE = 0x1440    # (x+1) mod 5, 5 bytes
IDX2_BASE = 0x1448    # (x+2) mod 5, 5 bytes
IDX4_BASE = 0x1450    # (x+4) mod 5, 5 bytes


def rho_offset_table() -> List[int]:
    """Rotation offset for lane index i = 5y + x."""
    return [RHO_OFFSETS[i % 5][i // 5] for i in range(25)]


def pi_destination_table() -> List[int]:
    """Destination lane index of source lane i = 5y + x under pi.

    pi maps source lane (x, y) to destination lane (y, (2x + 3y) mod 5):
    F[a, b] = E[(a + 3b) mod 5, a] means E[x, y] lands at a = y,
    b = 2(x - y) mod 5 — and 2(x - y) = 2x + 3y (mod 5).
    """
    table = []
    for i in range(25):
        x, y = i % 5, i // 5
        dest_x = y
        dest_y = (2 * x + 3 * y) % 5
        table.append(5 * dest_y + dest_x)
    return table


_SOURCE_TEMPLATE = """\
# Scalar Keccak-f[1600] on the Ibex core (looped, table-driven baseline)
.equ STATE, {state_base:#x}
.equ BBUF, {b_base:#x}
.equ CBUF, {c_base:#x}
.equ RCTAB, {rc_base:#x}
.equ RHOTAB, {rho_base:#x}
.equ PITAB, {pi_base:#x}
.equ IDX1, {idx1_base:#x}
.equ IDX2, {idx2_base:#x}
.equ IDX4, {idx4_base:#x}
    li s0, STATE
    li s1, BBUF
    li s2, RCTAB
    li s3, RHOTAB
    li s4, PITAB
    li s5, 0
    li s6, 24
    li s7, CBUF
    li s8, 5
    li s9, IDX1
    li s10, IDX2
    li s11, IDX4
    li a6, 32
    li a7, 25
round_loop:
round_body:
    # ---- theta, part 1: C[x] = A[x,0] ^ A[x,1] ^ A[x,2] ^ A[x,3] ^ A[x,4]
    li t0, 0
theta_c_loop:
    slli t1, t0, 3
    add  t1, t1, s0
    lw   t2, 0(t1)
    lw   t3, 4(t1)
    lw   t4, 40(t1)
    lw   t5, 44(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    lw   t4, 80(t1)
    lw   t5, 84(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    lw   t4, 120(t1)
    lw   t5, 124(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    lw   t4, 160(t1)
    lw   t5, 164(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    slli t4, t0, 3
    add  t4, t4, s7
    sw   t2, 0(t4)
    sw   t3, 4(t4)
    addi t0, t0, 1
    blt  t0, s8, theta_c_loop
    # ---- theta, part 2: D = C[(x+4)%5] ^ ROL1(C[(x+1)%5]); A[x,y] ^= D
    li t0, 0
theta_d_loop:
    add  t1, t0, s9
    lbu  t1, 0(t1)
    slli t1, t1, 3
    add  t1, t1, s7
    lw   t2, 0(t1)
    lw   t3, 4(t1)
    srli t4, t2, 31
    srli t5, t3, 31
    slli t2, t2, 1
    slli t3, t3, 1
    or   t3, t3, t4
    or   t2, t2, t5
    add  t1, t0, s11
    lbu  t1, 0(t1)
    slli t1, t1, 3
    add  t1, t1, s7
    lw   t4, 0(t1)
    lw   t5, 4(t1)
    xor  t2, t2, t4
    xor  t3, t3, t5
    slli t1, t0, 3
    add  t1, t1, s0
    lw   t4, 0(t1)
    xor  t4, t4, t2
    sw   t4, 0(t1)
    lw   t4, 4(t1)
    xor  t4, t4, t3
    sw   t4, 4(t1)
    lw   t4, 40(t1)
    xor  t4, t4, t2
    sw   t4, 40(t1)
    lw   t4, 44(t1)
    xor  t4, t4, t3
    sw   t4, 44(t1)
    lw   t4, 80(t1)
    xor  t4, t4, t2
    sw   t4, 80(t1)
    lw   t4, 84(t1)
    xor  t4, t4, t3
    sw   t4, 84(t1)
    lw   t4, 120(t1)
    xor  t4, t4, t2
    sw   t4, 120(t1)
    lw   t4, 124(t1)
    xor  t4, t4, t3
    sw   t4, 124(t1)
    lw   t4, 160(t1)
    xor  t4, t4, t2
    sw   t4, 160(t1)
    lw   t4, 164(t1)
    xor  t4, t4, t3
    sw   t4, 164(t1)
    addi t0, t0, 1
    blt  t0, s8, theta_d_loop
    # ---- rho + pi: B[pi[i]] = ROL(A[i], rho[i])
    li t0, 0
rhopi_loop:
    slli t1, t0, 3
    add  t1, t1, s0
    lw   a0, 0(t1)
    lw   a1, 4(t1)
    add  t2, t0, s3
    lbu  a2, 0(t2)
    blt  a2, a6, rho_low
    addi a2, a2, -32
    mv   t2, a0
    mv   a0, a1
    mv   a1, t2
rho_low:
    beqz a2, rho_done
    sub  t3, a6, a2
    sll  t4, a0, a2
    srl  t5, a1, t3
    or   t4, t4, t5
    sll  t6, a1, a2
    srl  t5, a0, t3
    or   t6, t6, t5
    mv   a0, t4
    mv   a1, t6
rho_done:
    add  t2, t0, s4
    lbu  t2, 0(t2)
    slli t2, t2, 3
    add  t2, t2, s1
    sw   a0, 0(t2)
    sw   a1, 4(t2)
    addi t0, t0, 1
    blt  t0, a7, rhopi_loop
    # ---- chi: A[x,y] = B[x,y] ^ (~B[(x+1)%5,y] & B[(x+2)%5,y])
    li   a3, 0
    li   a4, 0
chi_y_loop:
    li   t1, 0
chi_x_loop:
    add  t2, t1, s9
    lbu  t2, 0(t2)
    add  t3, t1, s10
    lbu  t3, 0(t3)
    slli t2, t2, 3
    add  t2, t2, a4
    add  t2, t2, s1
    lw   t4, 0(t2)
    lw   t5, 4(t2)
    xori t4, t4, -1
    xori t5, t5, -1
    slli t3, t3, 3
    add  t3, t3, a4
    add  t3, t3, s1
    lw   a0, 0(t3)
    lw   a1, 4(t3)
    and  t4, t4, a0
    and  t5, t5, a1
    slli t3, t1, 3
    add  t3, t3, a4
    add  t3, t3, s1
    lw   a0, 0(t3)
    lw   a1, 4(t3)
    xor  t4, t4, a0
    xor  t5, t5, a1
    add  t3, t3, s0
    sub  t3, t3, s1
    sw   t4, 0(t3)
    sw   t5, 4(t3)
    addi t1, t1, 1
    blt  t1, s8, chi_x_loop
    addi a4, a4, 40
    addi a3, a3, 1
    blt  a3, s8, chi_y_loop
    # ---- iota: A[0,0] ^= RC[round]
    slli t1, s5, 3
    add  t1, t1, s2
    lw   t2, 0(t1)
    lw   t3, 4(t1)
    lw   t4, 0(s0)
    lw   t5, 4(s0)
    xor  t4, t4, t2
    xor  t5, t5, t3
    sw   t4, 0(s0)
    sw   t5, 4(s0)
round_end:
    addi s5, s5, 1
    blt  s5, s6, round_loop
    ecall
"""


def build() -> KeccakProgram:
    """Generate the scalar (Ibex-only) Keccak baseline program."""
    source = _SOURCE_TEMPLATE.format(
        state_base=STATE_BASE,
        b_base=B_BASE,
        c_base=C_BASE,
        rc_base=RC_BASE,
        rho_base=RHO_BASE,
        pi_base=PI_BASE,
        idx1_base=IDX1_BASE,
        idx2_base=IDX2_BASE,
        idx4_base=IDX4_BASE,
    )
    return KeccakProgram(
        name="scalar_keccak",
        source=source,
        elen=32,
        elenum=1,
        lmul=1,
        description="C-code-equivalent scalar baseline on the Ibex core",
        state_base=STATE_BASE,
    )


def setup_data(memory: DataMemory, state: KeccakState) -> None:
    """Write the state and all lookup tables into data memory."""
    for i, lane in enumerate(state.lanes):
        memory.store_bytes(STATE_BASE + 8 * i, lane.to_bytes(8, "little"))
    for i, rc in enumerate(ROUND_CONSTANTS):
        memory.store_bytes(RC_BASE + 8 * i, rc.to_bytes(8, "little"))
    memory.store_bytes(RHO_BASE, bytes(rho_offset_table()))
    memory.store_bytes(PI_BASE, bytes(pi_destination_table()))
    memory.store_bytes(IDX1_BASE, bytes((x + 1) % 5 for x in range(5)))
    memory.store_bytes(IDX2_BASE, bytes((x + 2) % 5 for x in range(5)))
    memory.store_bytes(IDX4_BASE, bytes((x + 4) % 5 for x in range(5)))


def read_state(memory: DataMemory) -> KeccakState:
    """Read the permuted state back out of data memory."""
    return KeccakState([
        int.from_bytes(memory.load_bytes(STATE_BASE + 8 * i, 8), "little")
        for i in range(25)
    ])
